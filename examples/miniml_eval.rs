//! Mini-ML evaluation through the metalanguage (experiment E8): a
//! call-by-value interpreter whose *entire binding machinery* —
//! substitution for `let`, β for application, unrolling for `fix`,
//! branch instantiation for `case` — is metalanguage β-reduction.
//!
//! Run with `cargo run --example miniml_eval`.

use hoas::langs::miniml::{self, Exp};
use hoas::langs::miniml_types;
use hoas::rewrite::rulesets::miniml_opt;
use hoas::rewrite::Engine;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // fact 5 with fact/mul/add all defined via fix inside the language.
    let prog = Exp::app(miniml::fact_fn(), Exp::num(5));
    println!("program: {prog}");
    // The object language's own type discipline (HM + let-polymorphism).
    println!("type:    {}", miniml_types::infer(&prog)?);
    println!("fact:    {}\n", miniml_types::infer(&miniml::fact_fn())?);

    // Reject an ill-typed program before running anything.
    assert!(miniml_types::infer(&Exp::app(Exp::Z, Exp::Z)).is_err());

    // Native evaluator: hand-written capture-avoiding substitution.
    let t0 = Instant::now();
    let mut fuel = 10_000_000;
    let native = miniml::eval_native(&prog, &mut fuel)?;
    let native_time = t0.elapsed();

    // HOAS evaluator: substitution = β (hoas_core::normalize::happly).
    let encoded = miniml::encode(&prog)?;
    let t0 = Instant::now();
    let mut fuel = 10_000_000;
    let hoas_value = miniml::eval_hoas(&encoded, &mut fuel)?;
    let hoas_time = t0.elapsed();
    let hoas = miniml::decode(&hoas_value)?;

    // Environment machine (closures; the production-interpreter yardstick).
    let t0 = Instant::now();
    let mut fuel = 10_000_000;
    let env_value = miniml::eval_env(&prog, &mut fuel)?;
    let env_time = t0.elapsed();

    println!(
        "native evaluator: {} ({native_time:?})",
        native.as_num().unwrap()
    );
    println!(
        "HOAS evaluator:   {} ({hoas_time:?})",
        hoas.as_num().unwrap()
    );
    println!(
        "env machine:      {} ({env_time:?})",
        env_value.as_num().unwrap()
    );
    assert_eq!(native.as_num(), hoas.as_num());
    assert_eq!(native.as_num(), env_value.as_num());
    assert_eq!(native.as_num(), Some(120));

    // Compile-time simplification with the Mini-ML rule set.
    let sig = miniml::signature();
    let rules = miniml_opt::rules(sig)?;
    let engine = Engine::new(sig, &rules);
    let clunky = Exp::let_(
        "unused",
        Exp::num(99),
        Exp::case(
            Exp::num(2),
            Exp::Z,
            "p",
            Exp::app(Exp::lam("x", Exp::s(Exp::var("x"))), Exp::var("p")),
        ),
    );
    println!("\nbefore simplification: {clunky}");
    let out = engine.normalize(&miniml::exp(), &miniml::encode(&clunky)?)?;
    let simplified = miniml::decode(&out.term)?;
    println!(
        "after  simplification: {simplified}   (rules: {})",
        out.applied.join(", ")
    );
    let mut fuel = 1_000_000;
    assert_eq!(
        miniml::eval_native(&clunky, &mut fuel)?.as_num(),
        simplified.as_num(),
        "simplification computed the same value statically"
    );
    Ok(())
}
