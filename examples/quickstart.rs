//! Quickstart: the paper's three headline claims, in ten minutes.
//!
//! 1. Declare an object language by giving binding constructs functional
//!    types.
//! 2. Object-level substitution is metalanguage β-reduction.
//! 3. Binding-sensitive syntactic analysis is higher-order matching.
//!
//! Run with `cargo run --example quickstart`.

use hoas::core::prelude::*;
use hoas::unify::matching::{match_term, MatchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- 1. An object language is a signature ------------------------------
    let sig = Signature::parse(
        "type tm.
         const lam : (tm -> tm) -> tm.
         const app : tm -> tm -> tm.",
    )?;
    println!("signature:\n{sig}");

    // Terms are written in LF-style concrete syntax; binders are λs.
    let self_app = parse_term(&sig, r"lam (\x. app x x)")?.term;
    println!("δ = {self_app}");
    let ty = infer::reconstruct(&sig, &self_app)?;
    println!("reconstructed type: {ty}");

    // -- 2. Substitution is β-reduction ------------------------------------
    // Apply (λx. app x x) to (lam (\y. y)): one metalanguage β-step
    // performs the object-level substitution, capture-avoidance included.
    let redex = parse_term(&sig, r"(\x. app x x) (lam (\y. y))")?.term;
    let reduced = normalize::nf(&redex);
    println!("(\\x. app x x) (lam (\\y. y))  ⇒β  {reduced}");
    assert_eq!(
        reduced,
        parse_term(&sig, r"app (lam (\y. y)) (lam (\y. y))")?.term
    );

    // α-equivalence is structural equality — binder names are hints only.
    let a = parse_term(&sig, r"lam (\x. x)")?.term;
    let b = parse_term(&sig, r"lam (\anything. anything)")?.term;
    assert_eq!(a, b);
    println!("lam (\\x. x) == lam (\\anything. anything)  (α for free)");

    // -- 3. Syntactic analysis is higher-order matching --------------------
    // The pattern `lam (\x. app (?F x) x)` asks: is the body an
    // application whose argument is exactly the bound variable, with a
    // function part ?F that may use x?
    let parsed = parse_term(&sig, r"lam (\x. app (?F x) x)")?;
    let mut menv = MetaEnv::new();
    menv.insert(
        parsed.metas.get("F").expect("?F is in the pattern").clone(),
        parse_ty("tm -> tm")?,
    );
    let target = parse_term(&sig, r"lam (\x. app (app x x) x)")?.term;
    let solution = match_term(
        &sig,
        &menv,
        &Ctx::new(),
        &parse_ty("tm")?,
        &parsed.term,
        &target,
        &MatchConfig::default(),
    )?
    .expect("the pattern matches");
    for (m, t) in solution.iter() {
        println!("matched with {m} := {t}");
    }

    // A vacuous-binder pattern expresses "x does not occur" with no side
    // condition code: `lam (\x. ?B)` only matches constant-function bodies.
    let vac = parse_term(&sig, r"lam (\x. ?B)")?;
    let mut menv2 = MetaEnv::new();
    menv2.insert(vac.metas.get("B").unwrap().clone(), parse_ty("tm")?);
    let constant_body = parse_term(&sig, r"lam (\x. lam (\y. y))")?.term;
    let uses_x = parse_term(&sig, r"lam (\x. app x x)")?.term;
    let hit = match_term(
        &sig,
        &menv2,
        &Ctx::new(),
        &parse_ty("tm")?,
        &vac.term,
        &constant_body,
        &MatchConfig::default(),
    )?;
    let miss = match_term(
        &sig,
        &menv2,
        &Ctx::new(),
        &parse_ty("tm")?,
        &vac.term,
        &uses_x,
        &MatchConfig::default(),
    )?;
    println!("vacuous pattern matches constant body: {}", hit.is_some());
    println!(
        "vacuous pattern matches self-application: {}",
        miss.is_some()
    );
    assert!(hit.is_some() && miss.is_none());

    Ok(())
}
