//! Prenex normal form by higher-order rewriting (the paper's quantifier
//! figures; experiment E3).
//!
//! The rule `and ?P (forall (\x. ?Q x)) ~> forall (\x. and ?P (?Q x))`
//! is sound only when x is not free in P — a side condition that every
//! first-order implementation must code and test by hand, and that here
//! is carried entirely by `?P` not being applied to `x`.
//!
//! Run with `cargo run --example logic_transform`.

use hoas::langs::fol::{self, FoTerm, Formula, Model, Vocabulary};
use hoas::rewrite::rulesets::fol_prenex;
use hoas::rewrite::Engine;
use hoas_testkit::rng::SmallRng;
use std::collections::HashMap;

fn pred(p: &str, args: &[&str]) -> Formula {
    Formula::Pred(
        p.to_string(),
        args.iter().map(|a| FoTerm::Var(a.to_string())).collect(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = Vocabulary::small();
    let sig = vocab.signature();
    let rules = fol_prenex::rules(&sig)?;
    let engine = Engine::new(&sig, &rules);

    // (∀x. p(x)) → (∃y. q(y, y))
    let f = Formula::imp(
        Formula::forall("x", pred("p", &["x"])),
        Formula::exists("y", pred("q", &["y", "y"])),
    );
    println!("input:   {f}");

    let encoded = fol::encode(&f)?;
    println!("encoded: {encoded}");

    let result = engine.normalize(&fol::o(), &encoded)?;
    let g = fol::decode(&result.term)?;
    println!("prenex:  {g}");
    println!("steps:   {} ({})", result.steps, result.applied.join(", "));
    assert!(result.fixpoint);
    assert!(g.is_prenex(), "rewriting must reach prenex form");

    // Verify truth-preservation over random finite models.
    let mut rng = SmallRng::seed_from_u64(1);
    let mut agree = 0;
    for _ in 0..50 {
        let m = Model::random(&vocab, 3, &mut rng);
        let before = m.eval(&f, &mut HashMap::new())?;
        let after = m.eval(&g, &mut HashMap::new())?;
        assert_eq!(before, after, "prenex transformation changed the meaning");
        agree += 1;
    }
    println!("semantics preserved on {agree}/50 random models");

    // And a bigger randomly generated instance, end to end.
    let big = fol::gen_formula(&vocab, &mut rng, 6);
    let out = engine.normalize(&fol::o(), &fol::encode(&big)?)?;
    let big_prenex = fol::decode(&out.term)?;
    println!(
        "\nrandom formula with {} quantifiers prenexified in {} rewrites:",
        big.quantifier_count(),
        out.steps
    );
    println!("  {big}");
    println!("  ⇒ {big_prenex}");
    assert!(big_prenex.is_prenex());
    Ok(())
}
