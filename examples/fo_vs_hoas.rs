//! The capture bug (the paper's opening motivation; experiment E1).
//!
//! With first-order named syntax, the "obvious" substitution is wrong:
//! substituting `y` for `x` in `λy. x` must NOT produce `λy. y`. This
//! example shows (1) the naive implementation capturing, (2) the
//! hand-written capture-avoiding implementation renaming, and (3) the
//! HOAS encoding where the bug is *unrepresentable*.
//!
//! Run with `cargo run --example fo_vs_hoas`.

use hoas::firstorder::named::Tree;
use hoas::firstorder::{convert, debruijn::DbTree};
use hoas::langs::lambda::{self, LTerm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The classic instance: (λy. x)[x := y].
    let body = Tree::binder("lam", "y", Tree::var("x"));
    println!("term:            {body}");
    println!("substitute:      x := y\n");

    // 1. Naive substitution: wrong.
    let naive = body.subst_naive("x", &Tree::var("y"));
    println!("naive:           {naive}   <- CAPTURED: now the constant-y function");
    assert_eq!(naive, Tree::binder("lam", "y", Tree::var("y")));

    // 2. Capture-avoiding substitution: correct, at the cost of renaming
    //    machinery every object language must re-implement.
    let correct = body.subst("x", &Tree::var("y"));
    println!("capture-avoiding: {correct}   <- binder freshened");
    assert!(!correct.alpha_eq(&naive));
    assert!(correct.alpha_eq(&Tree::binder("lam", "z", Tree::var("y"))));

    // 2b. De Bruijn: correct by arithmetic, but someone had to write (and
    //     get right) the shifting code.
    let db_body = convert::to_debruijn(&body);
    println!("\nde Bruijn term:  {db_body}");
    let db_result = db_body.subst_free("x", &DbTree::Free("y".into()));
    println!("de Bruijn subst: {db_result}");
    assert_eq!(convert::to_debruijn(&correct), db_result);

    // 3. HOAS: the substitution is a metalanguage β-step; capture is
    //    impossible by construction, and nobody wrote any renaming code.
    let hoas_term = LTerm::lam("x", LTerm::lam("y", LTerm::var("x")));
    let encoded = lambda::encode_open(&hoas_term, &["y"])?;
    println!("\nHOAS encoding of λx. λy. x:  {encoded}");
    let substituted = lambda::subst_hoas(&encoded, &hoas::core::Term::Var(0))?;
    let decoded = lambda::decode_open(&substituted, &["y"])?;
    println!("applied to ambient y (β):    {substituted}");
    println!("decoded:                     {decoded}");
    match &decoded {
        LTerm::Lam(binder, inner) => {
            assert_ne!(binder, "y", "decoder freshened the binder");
            assert_eq!(inner.as_ref(), &LTerm::var("y"), "free y preserved");
        }
        other => panic!("expected a λ, got {other}"),
    }
    println!("\ncapture is unrepresentable in the HOAS encoding — the paper's point.");
    Ok(())
}
