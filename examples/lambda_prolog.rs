//! Logic programming over HOAS — the λProlog connection the paper draws.
//!
//! A type checker for the simply typed λ-calculus in two clauses:
//!
//! ```text
//! of (app ?M ?N) ?B :- of ?M (arr ?A ?B), of ?N ?A.
//! of (lam ?F) (arr ?A ?B) :- pi x. (of x ?A => of (?F x) ?B).
//! ```
//!
//! No context data structure, no variable lookup, no weakening lemma:
//! the universal goal introduces the object variable, the hypothetical
//! implication records its type, and the metalanguage's β enters the
//! binder.
//!
//! Run with `cargo run --example lambda_prolog`.

use hoas::lp::examples::{append_program, eval_program, stlc_program};
use hoas::lp::solve::{query_menv, solve, SolveConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- classic Prolog: append --------------------------------------------
    let prog = append_program();
    println!("program:\n{prog}");
    let (goal, menv) = query_menv(
        prog.sig(),
        "append ?X ?Y (cons a (cons b (cons c nil)))",
        &[("X", "i"), ("Y", "i")],
    )?;
    let cfg = SolveConfig {
        max_solutions: 10,
        ..SolveConfig::default()
    };
    let out = solve(&prog, &menv, &goal, &cfg)?;
    println!("?- append ?X ?Y [a,b,c]");
    for a in &out.answers {
        println!("   {a}");
    }
    assert_eq!(out.answers.len(), 4);

    // -- the HOAS showcase: STLC typing in two clauses ----------------------
    let prog = stlc_program();
    println!("\nprogram:\n{prog}");
    for (name, term) in [
        ("I", r"lam (\x. x)"),
        ("K", r"lam (\x. lam (\y. x))"),
        (
            "S",
            r"lam (\x. lam (\y. lam (\z. app (app x z) (app y z))))",
        ),
        ("ω", r"lam (\x. app x x)"),
    ] {
        let (goal, menv) = query_menv(prog.sig(), &format!("of ({term}) ?T"), &[("T", "tp")])?;
        let cfg = SolveConfig {
            max_depth: 128,
            ..SolveConfig::default()
        };
        let out = solve(&prog, &menv, &goal, &cfg)?;
        match out.answers.first() {
            Some(a) => println!("?- of {name} ?T.   T = {}", a.get("T").expect("bound")),
            None => println!("?- of {name} ?T.   no (not simply typable)"),
        }
        if name == "ω" {
            assert!(out.answers.is_empty());
        } else {
            assert_eq!(out.answers.len(), 1);
        }
    }

    // -- evaluation as resolution ------------------------------------------
    let prog = eval_program();
    println!("\nprogram:\n{prog}");
    let (goal, menv) = query_menv(
        prog.sig(),
        r"eval (app (lam (\x. app x x)) (lam (\y. y))) ?V",
        &[("V", "tm")],
    )?;
    let out = solve(&prog, &menv, &goal, &SolveConfig::default())?;
    println!(
        "?- eval ((λx. x x) (λy. y)) ?V.   V = {}",
        out.answers[0].get("V").expect("bound")
    );
    Ok(())
}
