//! The Ergo-style "syntax" facility (the paper's implementation section):
//! declare an object language's grammar textually, get the HOAS signature
//! and an adequate encoder/decoder generated — then immediately drive the
//! rewrite engine against the generated artifacts.
//!
//! Run with `cargo run --example syntax_facility`.

use hoas::core::parse::parse_ty;
use hoas::firstorder::{Abs, Tree};
use hoas::rewrite::{Engine, Rule, RuleSet};
use hoas::syntaxdef::{decode, encode, parse_language_def};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A textual grammar declaration with binding annotations: `(e) e`
    //    is a scope binding one `e`-variable over an `e`-body.
    let def = parse_language_def(
        "language arith {
           sort e;
           prod lit  : int -> e;
           prod plus : e e -> e;
           prod letx : e (e) e -> e;   // let x = e1 in e2
         }",
    )?;
    println!("grammar:\n{def}\n");

    // 2. The signature is generated — one base type per sort, one constant
    //    per production, binding positions functional.
    let sig = def.compile()?;
    println!("generated signature:\n{sig}");

    // 3. Programs arrive as ordinary first-order trees (what a parser
    //    produces) and are encoded generically.
    //    let x = 1 + 2 in x + x
    let tree = Tree::Node(
        "letx".into(),
        vec![
            Abs::plain(Tree::node(
                "plus",
                [
                    Tree::node("lit", [Tree::leaf("1")]),
                    Tree::node("lit", [Tree::leaf("2")]),
                ],
            )),
            Abs::bind("x", Tree::node("plus", [Tree::var("x"), Tree::var("x")])),
        ],
    );
    let encoded = encode(&def, "e", &tree)?;
    println!("encoded: {encoded}");

    // 4. Rules written against the generated signature. Inlining a used
    //    `let` needs the metalanguage: `?B x` captures how the body uses
    //    the variable, and the rhs `?B ?V` instantiates it — object-level
    //    substitution by β, generated language or not.
    let mut rules = RuleSet::new();
    rules.push(Rule::parse(
        &sig,
        "inline-let",
        &parse_ty("e")?,
        &[("V", "e"), ("B", "e -> e")],
        r"letx ?V (\x. ?B x)",
        "?B ?V",
    )?)?;
    let engine = Engine::new(&sig, &rules);
    let out = engine.normalize(&parse_ty("e")?, &encoded)?;
    println!(
        "after `{}` ({} step): {}",
        out.applied.join(", "),
        out.steps,
        out.term
    );

    // 5. And decoded back to a tree for the rest of the toolchain.
    let back = decode(&def, "e", &out.term)?;
    println!("decoded: {back}");
    let expected = Tree::node(
        "plus",
        [
            Tree::node(
                "plus",
                [
                    Tree::node("lit", [Tree::leaf("1")]),
                    Tree::node("lit", [Tree::leaf("2")]),
                ],
            ),
            Tree::node(
                "plus",
                [
                    Tree::node("lit", [Tree::leaf("1")]),
                    Tree::node("lit", [Tree::leaf("2")]),
                ],
            ),
        ],
    );
    assert!(back.alpha_eq(&expected));
    println!("\nlet-inlining on a language that was declared, not programmed.");
    Ok(())
}
