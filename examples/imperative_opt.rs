//! Optimizing the imperative language (the paper's extended example;
//! experiment E4): constant folding, branch folding, `skip` laws, and —
//! the binding-sensitive one — dead-declaration elimination via a
//! vacuous-binder pattern.
//!
//! Run with `cargo run --example imperative_opt`.

use hoas::langs::imp::{self, Aexp, Bexp, Cmd};
use hoas::rewrite::rulesets::imp_opt;
use hoas::rewrite::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sig = imp::signature();
    let rules = imp_opt::rules(sig)?;
    let engine = Engine::new(sig, &rules);

    // local a := 3 * 4 in {
    //   local dead := a + 1 in {        <- never used
    //     if (1 <= 2) { print (a + (2 * 5)) } else { print 0 };
    //     while (5 <= 1) { a := a + 1 }; <- never runs
    //     skip; print (0 + a)
    //   }
    // }
    let prog = Cmd::local(
        "a",
        Aexp::mul(Aexp::Num(3), Aexp::Num(4)),
        Cmd::local(
            "dead",
            Aexp::add(Aexp::var("a"), Aexp::Num(1)),
            Cmd::seq(
                Cmd::if_(
                    Bexp::le(Aexp::Num(1), Aexp::Num(2)),
                    Cmd::Print(Aexp::add(
                        Aexp::var("a"),
                        Aexp::mul(Aexp::Num(2), Aexp::Num(5)),
                    )),
                    Cmd::Print(Aexp::Num(0)),
                ),
                Cmd::seq(
                    Cmd::while_(
                        Bexp::le(Aexp::Num(5), Aexp::Num(1)),
                        Cmd::Assign("a".into(), Aexp::add(Aexp::var("a"), Aexp::Num(1))),
                    ),
                    Cmd::seq(
                        Cmd::Skip,
                        Cmd::Print(Aexp::add(Aexp::Num(0), Aexp::var("a"))),
                    ),
                ),
            ),
        ),
    );

    println!("before ({} nodes):\n  {prog}\n", prog.size());
    let trace_before = imp::run(&prog, 10_000)?;

    let encoded = imp::encode(&prog)?;
    let result = engine.normalize(&imp::cmd_ty(), &encoded)?;
    let optimized = imp::decode(&result.term)?;

    println!("after  ({} nodes):\n  {optimized}\n", optimized.size());
    println!("rewrites applied ({}):", result.steps);
    for name in &result.applied {
        println!("  - {name}");
    }

    let trace_after = imp::run(&optimized, 10_000)?;
    assert_eq!(
        trace_before, trace_after,
        "optimization must preserve output"
    );
    println!("\noutput trace unchanged: {trace_before:?}");
    assert!(
        optimized.size() < prog.size() / 2,
        "expected substantial shrinkage"
    );
    assert!(
        result.applied.iter().any(|n| n == "dead-local"),
        "the vacuous-binder rule should have fired"
    );
    Ok(())
}
