//! # hoas — Higher-Order Abstract Syntax
//!
//! A Rust reproduction of *F. Pfenning and C. Elliott, "Higher-Order
//! Abstract Syntax", PLDI 1988*: a typed λ-calculus **metalanguage** in
//! which object-language binding constructs are represented as meta-level
//! functions, so that
//!
//! * object-language **substitution** is metalanguage **β-reduction**,
//! * object-language **renaming** is **α-conversion** (free with de
//!   Bruijn terms),
//! * **syntactic analysis** of binding structure is **higher-order
//!   matching/unification**,
//! * binding side conditions of transformation rules ("x not free in P")
//!   are expressed by the *shape of the pattern* alone.
//!
//! The workspace is organized as in the paper's system description:
//!
//! | crate | role |
//! |---|---|
//! | [`core`] | metalanguage kernel: terms, types, signatures, normalization to canonical form, type reconstruction, parser/printer |
//! | [`unify`] | Miller pattern unification + Huet pre-unification + higher-order matching |
//! | [`rewrite`] | transformation engine driven by higher-order matching, with the paper's rule sets |
//! | [`langs`] | object languages (λ-calculus, first-order logic, Mini-ML, an imperative language) with adequate encodings |
//! | [`syntaxdef`] | the Ergo-style "syntax" facility: grammar declarations compiled to signatures with generic encode/decode |
//! | [`firstorder`] | the conventional first-order representation the paper compares against |
//! | [`analyze`] | static analysis: pattern-fragment classification, rule-set lints, overlap detection, kernel annotation validation (`hoas-analyze` CLI) |
//!
//! ## Quickstart
//!
//! ```
//! use hoas::core::prelude::*;
//!
//! // Declare the untyped λ-calculus and watch substitution come for free.
//! let sig = Signature::parse(
//!     "type tm.
//!      const lam : (tm -> tm) -> tm.
//!      const app : tm -> tm -> tm.",
//! )?;
//! let redex = parse_term(&sig, r"(\x. app x x) (lam (\y. y))")?.term;
//! assert_eq!(
//!     normalize::nf(&redex).to_string(),
//!     r"app (lam (\y. y)) (lam (\y. y))",
//! );
//! # Ok::<(), hoas::core::Error>(())
//! ```
//!
//! See the `examples/` directory for the paper's worked figures:
//! `quickstart`, `logic_transform` (prenex normal form), `imperative_opt`
//! (constant folding & dead declarations), `miniml_eval`, and
//! `fo_vs_hoas` (the capture bug the paper opens with).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hoas_analyze as analyze;
pub use hoas_core as core;
pub use hoas_firstorder as firstorder;
pub use hoas_langs as langs;
pub use hoas_lp as lp;
pub use hoas_rewrite as rewrite;
pub use hoas_syntaxdef as syntaxdef;
pub use hoas_unify as unify;
