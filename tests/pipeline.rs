//! End-to-end pipelines spanning every crate in the workspace:
//! generate an object-language program → encode (HOAS) → transform by
//! higher-order rewriting → decode → compare semantics.

use hoas::core::prelude::*;
use hoas::langs::{fol, imp, lambda, miniml};
use hoas::rewrite::rulesets::{fol_prenex, imp_opt, miniml_opt};
use hoas::rewrite::Engine;
use hoas::syntaxdef::{Arg, LanguageDef};
use hoas_testkit::rng::SmallRng;
use std::collections::HashMap;

#[test]
fn fol_prenex_pipeline_preserves_semantics() {
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let rules = fol_prenex::rules(&sig).unwrap();
    let engine = Engine::new(&sig, &rules);
    let mut rng = SmallRng::seed_from_u64(0xF01);
    for _ in 0..40 {
        let f = fol::gen_formula(&vocab, &mut rng, 5);
        let out = engine
            .normalize(&fol::o(), &fol::encode(&f).unwrap())
            .unwrap();
        assert!(out.fixpoint);
        let g = fol::decode(&out.term).unwrap();
        assert!(g.is_prenex(), "{f} did not reach prenex form: {g}");
        for _ in 0..3 {
            let m = fol::Model::random(&vocab, 2, &mut rng);
            assert_eq!(
                m.eval(&f, &mut HashMap::new()).unwrap(),
                m.eval(&g, &mut HashMap::new()).unwrap(),
                "semantics changed: {f} vs {g}"
            );
        }
    }
}

#[test]
fn imp_optimizer_pipeline_preserves_traces_and_shrinks() {
    let sig = imp::signature();
    let rules = imp_opt::rules(sig).unwrap();
    let engine = Engine::new(sig, &rules);
    let mut rng = SmallRng::seed_from_u64(0x1347);
    let mut total_before = 0usize;
    let mut total_after = 0usize;
    for _ in 0..30 {
        let prog = imp::gen_cmd(&mut rng, 4);
        let out = engine
            .normalize(&imp::cmd_ty(), &imp::encode(&prog).unwrap())
            .unwrap();
        assert!(out.fixpoint);
        let optimized = imp::decode(&out.term).unwrap();
        total_before += prog.size();
        total_after += optimized.size();
        // Fuel-limited runs (on either side) are acceptable; compare
        // traces only when both terminate.
        if let (Ok(a), Ok(b)) = (imp::run(&prog, 50_000), imp::run(&optimized, 50_000)) {
            assert_eq!(a, b, "trace changed:\n{prog}\n->\n{optimized}");
        }
    }
    assert!(
        total_after < total_before,
        "optimizer should shrink the corpus ({total_before} -> {total_after})"
    );
}

#[test]
fn miniml_simplifier_agrees_with_both_evaluators() {
    let sig = miniml::signature();
    let rules = miniml_opt::rules(sig).unwrap();
    let engine = Engine::new(sig, &rules);
    let progs = vec![
        miniml::Exp::app(
            miniml::Exp::app(miniml::add_fn(), miniml::Exp::num(3)),
            miniml::Exp::num(4),
        ),
        miniml::Exp::let_(
            "k",
            miniml::Exp::num(2),
            miniml::Exp::case(
                miniml::Exp::var("k"),
                miniml::Exp::Z,
                "p",
                miniml::Exp::s(miniml::Exp::var("p")),
            ),
        ),
        miniml::Exp::app(miniml::fact_fn(), miniml::Exp::num(4)),
    ];
    for p in progs {
        let encoded = miniml::encode(&p).unwrap();
        let simplified = engine.normalize(&miniml::exp(), &encoded).unwrap();
        let q = miniml::decode(&simplified.term).unwrap();
        let mut f1 = 1_000_000;
        let mut f2 = 1_000_000;
        let mut f3 = 1_000_000;
        let v_native = miniml::eval_native(&p, &mut f1).unwrap();
        let v_simpl = miniml::eval_native(&q, &mut f2).unwrap();
        let v_hoas = miniml::decode(&miniml::eval_hoas(&encoded, &mut f3).unwrap()).unwrap();
        assert_eq!(v_native.as_num(), v_simpl.as_num());
        assert_eq!(v_native.as_num(), v_hoas.as_num());
    }
}

#[test]
fn syntaxdef_language_drives_the_rewrite_engine() {
    // Define a tiny arithmetic language entirely through the syntax
    // facility, generate its signature, write one rule against it, and
    // run the engine on bridge-encoded trees.
    use hoas::firstorder::Tree;
    let def = LanguageDef::new("arith")
        .sort("e")
        .prod("lit", "e", [Arg::Int])
        .prod("plus", "e", [Arg::sort("e"), Arg::sort("e")])
        .prod("letx", "e", [Arg::sort("e"), Arg::binding("e", "e")]);
    let sig = def.compile().unwrap();

    let mut rules = hoas::rewrite::RuleSet::new();
    // Dead let via vacuous binder — against a *generated* signature.
    rules
        .push(
            hoas::rewrite::Rule::parse(
                &sig,
                "dead-let",
                &parse_ty("e").unwrap(),
                &[("V", "e"), ("B", "e")],
                r"letx ?V (\x. ?B)",
                "?B",
            )
            .unwrap(),
        )
        .unwrap();
    let engine = Engine::new(&sig, &rules);

    let tree = Tree::Node(
        "letx".into(),
        vec![
            hoas::firstorder::Abs::plain(Tree::node("lit", [Tree::leaf("1")])),
            hoas::firstorder::Abs::bind(
                "x",
                Tree::node(
                    "plus",
                    [
                        Tree::node("lit", [Tree::leaf("2")]),
                        Tree::node("lit", [Tree::leaf("3")]),
                    ],
                ),
            ),
        ],
    );
    let encoded = hoas::syntaxdef::encode(&def, "e", &tree).unwrap();
    let out = engine.normalize(&parse_ty("e").unwrap(), &encoded).unwrap();
    assert_eq!(out.steps, 1);
    let back = hoas::syntaxdef::decode(&def, "e", &out.term).unwrap();
    assert_eq!(
        back,
        Tree::node(
            "plus",
            [
                Tree::node("lit", [Tree::leaf("2")]),
                Tree::node("lit", [Tree::leaf("3")])
            ]
        )
    );
}

#[test]
fn lambda_normalization_cross_checked_three_ways() {
    // Native AST reduction, HOAS-driver reduction, and the first-order
    // de Bruijn baseline all agree on random closed terms. Intermediate
    // reducts can get deep within the fuel budget, so run on a wide
    // stack.
    hoas_testkit::with_stack(256, || {
        let mut rng = SmallRng::seed_from_u64(0xABCD);
        let mut compared = 0;
        for _ in 0..60 {
            let t = lambda::gen_closed(&mut rng, 20);
            let native = lambda::normalize_native(&t, 400);
            let hoas = lambda::normalize_hoas(&t, 400);
            if let (Ok(a), Ok(b)) = (native, hoas) {
                assert!(a.alpha_eq(&b), "native {a} vs hoas {b} for {t}");
                // And the de Bruijn projections agree exactly.
                assert_eq!(
                    hoas::firstorder::convert::to_debruijn(&lambda::to_tree(&a)),
                    hoas::firstorder::convert::to_debruijn(&lambda::to_tree(&b)),
                );
                compared += 1;
            }
        }
        assert!(compared > 30, "only {compared} terms normalized in budget");
    });
}

#[test]
fn unifier_validates_rule_instances_across_languages() {
    // Every lhs of every shipped rule set matches its own rhs-instantiated
    // instances (a sanity sweep across rule sets and signatures).
    let fol_sig = fol::Vocabulary::small().signature();
    let rule_sets: Vec<(Signature, hoas::rewrite::RuleSet)> = vec![
        (fol_sig.clone(), fol_prenex::rules(&fol_sig).unwrap()),
        (
            imp::signature().clone(),
            imp_opt::rules(imp::signature()).unwrap(),
        ),
        (
            miniml::signature().clone(),
            miniml_opt::rules(miniml::signature()).unwrap(),
        ),
    ];
    let mut checked = 0;
    for (sig, rs) in &rule_sets {
        for rule in rs.rules() {
            // lhs trivially matches itself.
            let got = hoas::unify::matching::match_term(
                sig,
                rule.menv(),
                &Ctx::new(),
                rule.ty(),
                rule.lhs(),
                &strip_metas_to_consts(sig, rule.lhs(), rule.menv()),
                &hoas::unify::matching::MatchConfig::default(),
            );
            assert!(
                matches!(got, Ok(Some(_))),
                "rule {} failed to match its own ground instance: {:?}",
                rule.name(),
                got
            );
            checked += 1;
        }
    }
    assert!(checked >= 15, "expected to sweep all pattern rules");
}

/// Grounds a pattern by substituting arbitrary closed canonical terms for
/// its metavariables (λs over the first constant of the target base type,
/// if needed).
fn strip_metas_to_consts(sig: &Signature, lhs: &Term, menv: &MetaEnv) -> Term {
    let mut subst = hoas::unify::MetaSubst::new();
    for (m, ty) in menv {
        subst.bind(m.clone(), arbitrary_inhabitant(sig, ty));
    }
    let t = subst.apply(lhs);
    assert!(!t.has_metas());
    t
}

fn arbitrary_inhabitant(sig: &Signature, ty: &Ty) -> Term {
    match ty {
        Ty::Arrow(a, b) => Term::lam("x", {
            let _ = a;
            arbitrary_inhabitant(sig, b)
        }),
        Ty::Int => Term::Int(1),
        Ty::Base(name) => {
            // Pick a constructor that does not immediately recurse into
            // its own base type (e.g. avoid `notb : bexp -> bexp`),
            // preferring small arities.
            let ctor = sig
                .constructors_of(name.as_str())
                .into_iter()
                .min_by_key(|(_, sch)| {
                    let (args, _) = sch.body().uncurry();
                    let self_refs = args
                        .iter()
                        .filter(|a| matches!(a, Ty::Base(b) if b == name))
                        .count();
                    (self_refs, args.len())
                })
                .unwrap_or_else(|| panic!("no constructor for base type {name}"));
            let (args, _) = ctor.1.body().uncurry();
            let args: Vec<Ty> = args.into_iter().cloned().collect();
            Term::apps(
                Term::Const(ctor.0.clone()),
                args.iter().map(|t| arbitrary_inhabitant(sig, t)),
            )
        }
        _ => panic!("unexpected type in rule metavariable: {ty}"),
    }
}

#[test]
fn rule_synthesis_by_anti_unification() {
    // Ergo-style rule synthesis: give the system two before/after example
    // pairs of a transformation; anti-unify the befores and the afters;
    // check the resulting rule reproduces both examples and generalizes.
    //
    // Runs in a private store: the `?H0` assertions below depend on the
    // hole's printing hint, and hints are canonical per α-class per store
    // (first intern wins) — in the shared global store another test's
    // meta with the same numeric id would pre-empt the name.
    StoreHandle::isolated().enter(rule_synthesis_body)
}

fn rule_synthesis_body() {
    use hoas::unify::antiunify::anti_unify;
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let o = fol::o();

    // The transformation being demonstrated: double-negation elimination.
    let before1 = parse_term(&sig, "not (not r)").unwrap().term;
    let after1 = parse_term(&sig, "r").unwrap().term;
    let before2 = parse_term(&sig, "not (not (p a))").unwrap().term;
    let after2 = parse_term(&sig, "p a").unwrap().term;

    let lhs_gen = anti_unify(&sig, &o, &before1, &before2).unwrap();
    let rhs_gen = anti_unify(&sig, &o, &after1, &after2).unwrap();
    assert_eq!(lhs_gen.term.to_string(), "not (not ?H0)");
    assert_eq!(rhs_gen.term.to_string(), "?H0");

    // The lhs and rhs holes correspond (same number, matching residuals);
    // stitch them into a rule. The hole metas come from independent runs,
    // so rebuild the rhs over the lhs's metavariable.
    let lhs_m = lhs_gen.term.metas()[0].clone();
    let rule = hoas::rewrite::Rule::new(
        &sig,
        "synthesized-not-not",
        o.clone(),
        lhs_gen.menv.clone(),
        lhs_gen.term.clone(),
        Term::Meta(lhs_m),
    )
    .unwrap();
    let mut rules = hoas::rewrite::RuleSet::new();
    rules.push(rule).unwrap();
    let engine = Engine::new(&sig, &rules);

    // Reproduces both training examples…
    for (before, after) in [(&before1, &after1), (&before2, &after2)] {
        let out = engine.normalize(&o, before).unwrap();
        assert_eq!(&out.term, after);
    }
    // …and generalizes to unseen instances, including under binders.
    let unseen = parse_term(&sig, r"forall (\x. not (not (q x x)))")
        .unwrap()
        .term;
    let out = engine.normalize(&o, &unseen).unwrap();
    assert_eq!(
        out.term,
        parse_term(&sig, r"forall (\x. q x x)").unwrap().term
    );
}

#[test]
fn locally_nameless_joins_the_representation_square() {
    // named → locally-nameless → named round trip agrees with the
    // de Bruijn route on random λ-terms.
    use hoas::firstorder::{convert, locally};
    let mut rng = SmallRng::seed_from_u64(0x10c4);
    for _ in 0..50 {
        let t = lambda::gen_closed(&mut rng, 30);
        let named = lambda::to_tree(&t);
        let ln = locally::from_named(&named);
        assert!(ln.is_locally_closed());
        let back = locally::to_named(&ln);
        assert!(back.alpha_eq(&named));
        // The two nameless routes agree on α-classes.
        assert_eq!(
            locally::from_named(&back),
            ln,
            "locally nameless round trip changed the α-class"
        );
        assert_eq!(convert::to_debruijn(&back), convert::to_debruijn(&named));
    }
}
