//! Property tests for the parallel batch driver (PR 6): the work-stealing
//! pool in [`hoas_bench::parallel`] must be *observationally transparent*
//! — for every subject, the batch result (term, steps, applied rules,
//! full trace, fixpoint flag) equals what a sequential engine produces —
//! across all four bundled rule sets, both strategies, and both cache
//! modes (per-worker fresh bundles and one shared [`EngineCaches`]).
//! This extends the cache-transparency contract of
//! `tests/engine_cache_props.rs` from "cache on vs off" to "N threads vs
//! one".
//!
//! Also pins the cross-thread warm-replay guarantee: a cache bundle
//! warmed on one thread lets a two-worker batch replay the workload with
//! **zero** memo or subtree-proof misses — the second thread re-derives
//! nothing.
//!
//! Thread counts come from `HOAS_STRESS_THREADS` (default 4) and subject
//! generation from `HOAS_PROP_SEED`, so failures replay deterministically.

use hoas::core::prelude::*;
use hoas::langs::{fol, imp, miniml};
use hoas::rewrite::rulesets::{fol_cnf, fol_prenex, imp_opt, miniml_opt};
use hoas::rewrite::{Engine, EngineCaches, EngineConfig, RuleSet, Strategy};
use hoas_bench::parallel::{normalize_batch, CacheMode};
use hoas_testkit::prelude::*;

const STRATEGIES: [Strategy; 2] = [Strategy::LeftmostOutermost, Strategy::LeftmostInnermost];

/// Normalizes `subjects` sequentially, then through the batch driver at
/// `stress_threads()` workers in both cache modes, and asserts every
/// observable of every [`NormalizeResult`] matches subject-for-subject.
fn assert_batch_transparent(
    sig: &Signature,
    rules: &RuleSet,
    ty: &Ty,
    subjects: &[Term],
    strategy: Strategy,
) {
    let cfg = EngineConfig {
        strategy,
        ..EngineConfig::default()
    };
    let sequential = Engine::with_config(sig, rules, cfg.clone());
    let expected: Vec<_> = subjects
        .iter()
        .map(|t| sequential.normalize(ty, t).unwrap())
        .collect();
    let threads = stress_threads();
    for mode in [CacheMode::PerWorker, CacheMode::Shared(EngineCaches::new())] {
        let got = normalize_batch(sig, rules, &cfg, ty, subjects, threads, &mode).unwrap();
        assert_eq!(got.len(), expected.len());
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g.term, e.term,
                "subject {i}: normal forms differ ({strategy:?}, {mode:?})"
            );
            assert_eq!(g.steps, e.steps, "subject {i}: step counts differ");
            assert_eq!(g.applied, e.applied, "subject {i}: applied lists differ");
            assert_eq!(g.trace, e.trace, "subject {i}: traces differ");
            assert_eq!(g.fixpoint, e.fixpoint);
        }
    }
}

#[test]
fn fol_rulesets_batch_transparent() {
    let cfg = Config::from_env(1);
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let subjects: Vec<Term> = (0..10)
        .map(|i| fol::encode(&fol::gen_formula(&vocab, &mut rng, 2 + (i % 3) as u32)).unwrap())
        .collect();
    for rules in [
        fol_prenex::rules(&sig).unwrap(),
        fol_cnf::rules(&sig).unwrap(),
    ] {
        for strategy in STRATEGIES {
            assert_batch_transparent(&sig, &rules, &fol::o(), &subjects, strategy);
        }
    }
}

#[test]
fn imp_ruleset_batch_transparent() {
    let cfg = Config::from_env(1);
    let sig = imp::signature();
    let rules = imp_opt::rules(sig).unwrap();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x0069_6d70);
    let subjects: Vec<Term> = (0..10)
        .map(|i| imp::encode(&imp::gen_cmd(&mut rng, 2 + (i % 3) as u32)).unwrap())
        .collect();
    for strategy in STRATEGIES {
        assert_batch_transparent(sig, &rules, &imp::cmd_ty(), &subjects, strategy);
    }
}

/// Mini-ML programs are structured (not generator-driven), mirroring the
/// corpus in `tests/engine_cache_props.rs`.
#[test]
fn miniml_ruleset_batch_transparent() {
    let sig = miniml::signature();
    let rules = miniml_opt::rules(sig).unwrap();
    use hoas::langs::miniml::Exp;
    let programs = [
        Exp::app(Exp::app(miniml::add_fn(), Exp::num(6)), Exp::num(7)),
        Exp::app(Exp::app(miniml::mul_fn(), Exp::num(3)), Exp::num(4)),
        Exp::app(miniml::fact_fn(), Exp::num(3)),
        Exp::let_("x", Exp::num(2), Exp::var("x")),
        Exp::case(Exp::num(2), Exp::num(0), "n", Exp::var("n")),
    ];
    let subjects: Vec<Term> = programs
        .iter()
        .map(|p| miniml::encode(p).unwrap())
        .collect();
    for strategy in STRATEGIES {
        assert_batch_transparent(sig, &rules, &miniml::exp(), &subjects, strategy);
    }
}

/// Cross-thread warm replay: warm a cache bundle on the calling thread,
/// then hand it to a two-worker batch over the same subjects. Every
/// worker replays purely from the shared root-step memo — no memo misses,
/// no subtree re-proofs, strictly fewer nodes visited than the cold run —
/// extending `caches_are_reusable_across_engine_instances` across the
/// thread boundary.
#[test]
fn shared_caches_replay_across_threads() {
    let cfg = Config::from_env(1);
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let rules = fol_prenex::rules(&sig).unwrap();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x7265_706c_6179);
    let subjects: Vec<Term> = (0..8)
        .map(|_| fol::encode(&fol::gen_formula(&vocab, &mut rng, 5)).unwrap())
        .collect();

    let first = Engine::new(&sig, &rules);
    let cold: Vec<_> = subjects
        .iter()
        .map(|t| first.normalize(&fol::o(), t).unwrap())
        .collect();
    let warm = first.caches();
    drop(first);

    let got = normalize_batch(
        &sig,
        &rules,
        &EngineConfig::default(),
        &fol::o(),
        &subjects,
        2,
        &CacheMode::Shared(warm),
    )
    .unwrap();
    let mut warm_memo_hits = 0;
    let mut warm_visited = 0;
    let mut cold_visited = 0;
    for (i, (a, b)) in cold.iter().zip(&got).enumerate() {
        assert_eq!(
            a.term, b.term,
            "subject {i}: replay changed the normal form"
        );
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.trace, b.trace);
        assert_eq!(
            b.stats.memo_misses, 0,
            "subject {i}: a worker re-derived a root step"
        );
        assert_eq!(
            b.stats.cache_misses, 0,
            "subject {i}: a worker re-proved a subtree"
        );
        warm_memo_hits += b.stats.memo_hits;
        warm_visited += b.stats.nodes_visited;
        cold_visited += a.stats.nodes_visited;
    }
    assert!(
        warm_memo_hits > 0,
        "shared root-step memo never hit across threads"
    );
    assert!(
        warm_visited < cold_visited,
        "parallel replay did not reduce traversal ({warm_visited} vs {cold_visited})"
    );
}

/// Concurrent *cold* sharing is also exact: when all workers share one
/// initially-empty bundle, whichever worker proves a subtree first seeds
/// the others, yet every observable stays identical to the sequential
/// run (covered mode-by-mode above). Here we additionally pin that the
/// batch leaves the shared bundle warm enough that a sequential replay
/// through it re-derives nothing.
#[test]
fn batch_warmed_caches_replay_sequentially() {
    let cfg = Config::from_env(1);
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let rules = fol_prenex::rules(&sig).unwrap();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x636f_6c64);
    let subjects: Vec<Term> = (0..8)
        .map(|_| fol::encode(&fol::gen_formula(&vocab, &mut rng, 4)).unwrap())
        .collect();

    let shared = EngineCaches::new();
    let batch = normalize_batch(
        &sig,
        &rules,
        &EngineConfig::default(),
        &fol::o(),
        &subjects,
        stress_threads(),
        &CacheMode::Shared(shared.clone()),
    )
    .unwrap();

    let replay = Engine::with_caches(&sig, &rules, EngineConfig::default(), shared);
    for (i, (t, a)) in subjects.iter().zip(&batch).enumerate() {
        let b = replay.normalize(&fol::o(), t).unwrap();
        assert_eq!(a.term, b.term, "subject {i}: replay diverged from batch");
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.trace, b.trace);
        assert_eq!(
            b.stats.memo_misses, 0,
            "subject {i}: batch left a cold memo"
        );
        assert_eq!(
            b.stats.cache_misses, 0,
            "subject {i}: batch left a cold subtree"
        );
    }
}
