//! Property tests for the hash-consed term store (experiment for PR 5):
//! interning identifies terms **exactly up to α-equivalence modulo
//! binder hints**. Both directions are checked over all four object
//! languages' encoders:
//!
//! * same `NodeId` ⇒ structurally α-equivalent (soundness of sharing);
//! * α-equivalent modulo hints ⇒ same `NodeId` (completeness — a
//!   hint-scrambled rebuild of any encoding lands on the same node);
//!
//! plus agreement of the O(1) id-comparison `alpha_eq` fast path with
//! the full structural recursion on generated term pairs.

use hoas::core::prelude::*;
use hoas::langs::{fol, imp, lambda, miniml};
use hoas_testkit::prelude::*;

/// Rebuilds `t` bottom-up with every binder hint replaced by a fresh
/// synthetic name. The de Bruijn skeleton is untouched, so the result is
/// α-equivalent modulo hints by construction.
fn scramble_hints(t: &Term, counter: &mut u32) -> Term {
    match t {
        Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
        Term::Lam(_, b) => {
            *counter += 1;
            Term::lam(
                format!("scrambled{counter}"),
                scramble_hints(b.term(), counter),
            )
        }
        Term::App(f, a) => Term::app(
            scramble_hints(f.term(), counter),
            scramble_hints(a.term(), counter),
        ),
        Term::Pair(a, b) => Term::pair(
            scramble_hints(a.term(), counter),
            scramble_hints(b.term(), counter),
        ),
        Term::Fst(p) => Term::fst(scramble_hints(p.term(), counter)),
        Term::Snd(p) => Term::snd(scramble_hints(p.term(), counter)),
    }
}

/// Checks both directions of `same NodeId ⇔ α-equivalent modulo hints`
/// for one encoding, plus fast-path/structural agreement.
fn assert_interning_respects_alpha(e: &Term) {
    let mut counter = 0;
    let scrambled = scramble_hints(e, &mut counter);
    let a = TermRef::new(e.clone());
    let b = TermRef::new(scrambled.clone());
    // Completeness: hint-scrambled rebuild shares the node.
    assert_eq!(
        a.id(),
        b.id(),
        "hint-scrambled rebuild of {e} changed the node id"
    );
    assert!(e.alpha_eq(&scrambled));
    // Soundness: the shared node really is α-equivalent structurally.
    assert!(e.alpha_eq_structural(&scrambled));
}

/// Cross-checks the O(1) `alpha_eq` fast path against the structural
/// reference on a pair of (possibly unrelated) terms: equal ids must
/// mean α-equivalent, distinct ids must mean α-distinct.
fn assert_fast_path_agrees(x: &Term, y: &Term) {
    assert_eq!(
        x.alpha_eq(y),
        x.alpha_eq_structural(y),
        "fast-path alpha_eq disagrees with structural comparison on {x} vs {y}"
    );
    let same_id = TermRef::new(x.clone()).id() == TermRef::new(y.clone()).id();
    assert_eq!(same_id, x.alpha_eq_structural(y));
}

props! {
    #![cases(96)]

    fn lambda_encodings_intern_up_to_alpha(seed in seeds(), size in 2usize..50) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap();
        assert_interning_respects_alpha(&t);
        let u = lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap();
        assert_fast_path_agrees(&t, &u);
    }

    fn fol_encodings_intern_up_to_alpha(seed in seeds(), depth in 1u32..6) {
        let vocab = fol::Vocabulary::small();
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap();
        assert_interning_respects_alpha(&t);
        let u = fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap();
        assert_fast_path_agrees(&t, &u);
    }

    fn imp_encodings_intern_up_to_alpha(seed in seeds(), depth in 1u32..5) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = imp::encode(&imp::gen_cmd(&mut rng, depth)).unwrap();
        assert_interning_respects_alpha(&t);
        let u = imp::encode(&imp::gen_cmd(&mut rng, depth)).unwrap();
        assert_fast_path_agrees(&t, &u);
    }
}

#[test]
fn miniml_encodings_intern_up_to_alpha() {
    // Mini-ML has no random generator; sweep the structured corpus.
    let corpus = [
        miniml::add_fn(),
        miniml::mul_fn(),
        miniml::fact_fn(),
        miniml::Exp::app(
            miniml::Exp::app(miniml::add_fn(), miniml::Exp::num(4)),
            miniml::Exp::num(5),
        ),
        miniml::Exp::fix(
            "f",
            miniml::Exp::lam(
                "x",
                miniml::Exp::app(miniml::Exp::var("f"), miniml::Exp::var("x")),
            ),
        ),
    ];
    let encoded: Vec<Term> = corpus.iter().map(|p| miniml::encode(p).unwrap()).collect();
    for e in &encoded {
        assert_interning_respects_alpha(e);
    }
    for x in &encoded {
        for y in &encoded {
            assert_fast_path_agrees(x, y);
        }
    }
}

/// Object-language-level α-renaming (not just hint scrambling): a
/// λ-term and its decode∘encode round-trip — which freshens every
/// binder name — must encode to the *same* interned node.
#[test]
fn renamed_lambda_terms_share_nodes() {
    let mut rng = SmallRng::seed_from_u64(0x616c7068);
    for size in [4usize, 9, 16, 25, 40] {
        let t = lambda::gen_closed(&mut rng, size);
        let e = TermRef::new(lambda::encode(&t).unwrap());
        let renamed = lambda::decode(e.term()).unwrap();
        let e2 = TermRef::new(lambda::encode(&renamed).unwrap());
        assert_eq!(e.id(), e2.id(), "α-renamed {t} interned to a new node");
    }
}
