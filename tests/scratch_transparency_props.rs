//! Transparency battery for the scratch-arena kernel (PR 9): the
//! refcount-lean hot paths — scratch-term construction, batch interning,
//! and move-out rebuilds — must be **observationally invisible**. Every
//! kernel operation rewritten over the scratch arena is compared against a
//! reference re-implementation of the old always-intern path (each
//! intermediate node built with the smart constructors and interned via
//! `TermRef::new`), and the results must be *id-identical*: the same
//! [`NodeId`] out of the same store, not merely α-equal.
//!
//! The battery mirrors the shape of `engine_cache_props`: generator-driven
//! properties across all four bundled encoders (λ-calculus, FOL, IMP,
//! Mini-ML) and engine-level coverage across both strategies. Every
//! batch-interned result is additionally re-validated with
//! [`validate::check_term`] (the cached `max_free`/`has_meta`/`beta_normal`
//! annotations computed bottom-up inside the arena must agree with the
//! smart constructors'), and the new `scratch_nodes`/`batch_interned`/
//! `refcount_ops_saved` counters are asserted live end-to-end.
//!
//! [`NodeId`]: hoas::core::store::NodeId

use hoas::core::prelude::*;
use hoas::core::{store, validate};
use hoas::langs::{fol, imp, lambda, miniml};
use hoas::rewrite::rulesets::{fol_cnf, fol_prenex, imp_opt, miniml_opt};
use hoas::rewrite::{Engine, EngineConfig, RuleSet, Strategy};
use hoas::unify::MetaSubst;
use hoas_testkit::gen;
use hoas_testkit::prelude::*;

const STRATEGIES: [Strategy; 2] = [Strategy::LeftmostOutermost, Strategy::LeftmostInnermost];

/// The pre-PR 9 kernel, reproduced verbatim as an executable reference:
/// every traversal rebuilds with the smart constructors and interns each
/// intermediate node through [`TermRef::new`]. Same guards, same recursion
/// orders (`hsub` reduces the argument before the function, `nf` the
/// function before the argument) — only the allocation discipline differs.
mod reference {
    use hoas::core::prelude::*;

    pub fn shift_above(t: &Term, d: u32, cutoff: u32) -> Term {
        if d == 0 || t.max_free() <= cutoff {
            return t.clone();
        }
        match t {
            Term::Var(i) => Term::Var(i + d),
            Term::Lam(h, b) => Term::lam(h.clone(), shift_above_ref(b, d, cutoff + 1)),
            Term::App(f, a) => {
                Term::app(shift_above_ref(f, d, cutoff), shift_above_ref(a, d, cutoff))
            }
            Term::Pair(a, b) => {
                Term::pair(shift_above_ref(a, d, cutoff), shift_above_ref(b, d, cutoff))
            }
            Term::Fst(p) => Term::fst(shift_above_ref(p, d, cutoff)),
            Term::Snd(p) => Term::snd(shift_above_ref(p, d, cutoff)),
            Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
        }
    }

    fn shift_above_ref(t: &TermRef, d: u32, cutoff: u32) -> TermRef {
        if t.max_free() <= cutoff {
            t.clone()
        } else {
            TermRef::new(shift_above(t, d, cutoff))
        }
    }

    pub fn shift(t: &Term, d: u32) -> Term {
        shift_above(t, d, 0)
    }

    pub fn unshift_above(t: &Term, d: u32, cutoff: u32) -> Term {
        if d == 0 || t.max_free() <= cutoff {
            return t.clone();
        }
        match t {
            Term::Var(i) => {
                if *i >= cutoff + d {
                    Term::Var(i - d)
                } else {
                    assert!(*i < cutoff, "reference unshift_above: dangling variable");
                    Term::Var(*i)
                }
            }
            Term::Lam(h, b) => Term::lam(h.clone(), unshift_above_ref(b, d, cutoff + 1)),
            Term::App(f, a) => Term::app(
                unshift_above_ref(f, d, cutoff),
                unshift_above_ref(a, d, cutoff),
            ),
            Term::Pair(a, b) => Term::pair(
                unshift_above_ref(a, d, cutoff),
                unshift_above_ref(b, d, cutoff),
            ),
            Term::Fst(p) => Term::fst(unshift_above_ref(p, d, cutoff)),
            Term::Snd(p) => Term::snd(unshift_above_ref(p, d, cutoff)),
            Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
        }
    }

    fn unshift_above_ref(t: &TermRef, d: u32, cutoff: u32) -> TermRef {
        if t.max_free() <= cutoff {
            t.clone()
        } else {
            TermRef::new(unshift_above(t, d, cutoff))
        }
    }

    pub fn subst(t: &Term, j: u32, s: &Term) -> Term {
        fn go(t: &Term, j: u32, s: &Term, depth: u32) -> Term {
            if t.max_free() <= j + depth {
                return t.clone();
            }
            match t {
                Term::Var(i) => {
                    if *i == j + depth {
                        shift(s, depth)
                    } else {
                        Term::Var(*i)
                    }
                }
                Term::Lam(h, b) => Term::lam(h.clone(), go_ref(b, j, s, depth + 1)),
                Term::App(f, a) => Term::app(go_ref(f, j, s, depth), go_ref(a, j, s, depth)),
                Term::Pair(a, b) => Term::pair(go_ref(a, j, s, depth), go_ref(b, j, s, depth)),
                Term::Fst(p) => Term::fst(go_ref(p, j, s, depth)),
                Term::Snd(p) => Term::snd(go_ref(p, j, s, depth)),
                Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
            }
        }
        fn go_ref(t: &TermRef, j: u32, s: &Term, depth: u32) -> TermRef {
            if t.max_free() <= j + depth {
                t.clone()
            } else {
                TermRef::new(go(t, j, s, depth))
            }
        }
        go(t, j, s, 0)
    }

    pub fn instantiate(body: &Term, arg: &Term) -> Term {
        fn go(t: &Term, arg: &Term, depth: u32) -> Term {
            if t.max_free() <= depth {
                return t.clone();
            }
            match t {
                Term::Var(i) => {
                    if *i == depth {
                        shift(arg, depth)
                    } else if *i > depth {
                        Term::Var(i - 1)
                    } else {
                        Term::Var(*i)
                    }
                }
                Term::Lam(h, b) => Term::lam(h.clone(), go_ref(b, arg, depth + 1)),
                Term::App(f, a) => Term::app(go_ref(f, arg, depth), go_ref(a, arg, depth)),
                Term::Pair(a, b) => Term::pair(go_ref(a, arg, depth), go_ref(b, arg, depth)),
                Term::Fst(p) => Term::fst(go_ref(p, arg, depth)),
                Term::Snd(p) => Term::snd(go_ref(p, arg, depth)),
                Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
            }
        }
        fn go_ref(t: &TermRef, arg: &Term, depth: u32) -> TermRef {
            if t.max_free() <= depth {
                t.clone()
            } else {
                TermRef::new(go(t, arg, depth))
            }
        }
        go(body, arg, 0)
    }

    pub fn hinstantiate(body: &Term, arg: &Term) -> Term {
        hsub(body, 0, arg)
    }

    fn hsub(t: &Term, k: u32, s: &Term) -> Term {
        if t.max_free() <= k && t.is_beta_normal() {
            return t.clone();
        }
        match t {
            Term::Var(i) => {
                if *i == k {
                    shift(s, k)
                } else if *i > k {
                    Term::Var(i - 1)
                } else {
                    Term::Var(*i)
                }
            }
            Term::Lam(h, b) => Term::Lam(h.clone(), hsub_ref(b, k + 1, s)),
            Term::App(f, a) => {
                let a2 = hsub_ref(a, k, s);
                let f2 = hsub_ref(f, k, s);
                match f2.term() {
                    Term::Lam(_, body) => hinstantiate(body, a2.term()),
                    _ => Term::App(f2, a2),
                }
            }
            Term::Pair(a, b) => Term::Pair(hsub_ref(a, k, s), hsub_ref(b, k, s)),
            Term::Fst(p) => {
                let p2 = hsub_ref(p, k, s);
                match p2.term() {
                    Term::Pair(a, _) => a.as_ref().clone(),
                    _ => Term::Fst(p2),
                }
            }
            Term::Snd(p) => {
                let p2 = hsub_ref(p, k, s);
                match p2.term() {
                    Term::Pair(_, b) => b.as_ref().clone(),
                    _ => Term::Snd(p2),
                }
            }
            Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
        }
    }

    fn hsub_ref(t: &TermRef, k: u32, s: &Term) -> TermRef {
        if t.max_free() <= k && t.is_beta_normal() {
            t.clone()
        } else {
            TermRef::new(hsub(t, k, s))
        }
    }

    pub fn nf(t: &Term) -> Term {
        if t.is_beta_normal() {
            return t.clone();
        }
        match t {
            Term::App(f, a) => match nf(f) {
                Term::Lam(_, body) => hinstantiate(&body, &nf(a)),
                g => Term::app(g, nf(a)),
            },
            Term::Lam(h, b) => Term::lam(h.clone(), nf_ref(b)),
            Term::Pair(a, b) => Term::pair(nf_ref(a), nf_ref(b)),
            Term::Fst(p) => match nf(p) {
                Term::Pair(a, _) => a.into_term(),
                q => Term::fst(q),
            },
            Term::Snd(p) => match nf(p) {
                Term::Pair(_, b) => b.into_term(),
                q => Term::snd(q),
            },
            Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
        }
    }

    fn nf_ref(t: &TermRef) -> TermRef {
        if t.is_beta_normal() {
            t.clone()
        } else {
            TermRef::new(nf(t))
        }
    }

    /// The old `MetaSubst::apply`: graft solutions (shifting by binder
    /// depth) with every intermediate interned, then β-normalize.
    pub fn apply_msubst(s: &hoas::unify::MetaSubst, t: &Term) -> Term {
        fn graft(s: &hoas::unify::MetaSubst, t: &Term, depth: u32) -> Term {
            if !t.has_metas() {
                return t.clone();
            }
            match t {
                Term::Meta(m) => match s.get(m) {
                    Some(sol) => shift(sol, depth),
                    None => t.clone(),
                },
                Term::Lam(h, b) => Term::lam(h.clone(), graft(s, b, depth + 1)),
                Term::App(f, a) => Term::app(graft(s, f, depth), graft(s, a, depth)),
                Term::Pair(a, b) => Term::pair(graft(s, a, depth), graft(s, b, depth)),
                Term::Fst(p) => Term::fst(graft(s, p, depth)),
                Term::Snd(p) => Term::snd(graft(s, p, depth)),
                Term::Var(_) | Term::Const(_) | Term::Int(_) | Term::Unit => t.clone(),
            }
        }
        nf(&graft(s, t, 0))
    }
}

/// Asserts the scratch-path result is **id-identical** to the reference
/// result: interning both (the new path's output root is uninterned until
/// `TermRef::new`, exactly like the old path's) must hit the same store
/// node. Also re-validates the cached annotations on the new result.
fn assert_id_identical(new: &Term, old: &Term, what: &str) {
    validate::check_term(new).unwrap_or_else(|e| panic!("{what}: bad annotations: {e}"));
    let new_id = TermRef::new(new.clone()).id();
    let old_id = TermRef::new(old.clone()).id();
    assert_eq!(
        new_id, old_id,
        "{what}: scratch path diverged from the always-intern path"
    );
}

/// Well-typed closed λ-encodings (type `tm`), the workhorse subject.
fn closed_term(seed: u64, size: usize) -> Term {
    let mut rng = SmallRng::seed_from_u64(seed);
    lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap()
}

/// Well-typed *open* terms over the λ-signature in a context of three
/// `tm`-typed variables, so shifts and substitutions have real work to do.
fn open_term(seed: u64, depth: u32) -> Term {
    let sig = lambda::signature();
    let ctx = [lambda::tm(), lambda::tm(), lambda::tm()];
    let mut rng = SmallRng::seed_from_u64(seed);
    // The generator can fail on an unlucky budget; fall back to a small
    // open term that still mentions all three context variables.
    gen::open_term(sig, &mut rng, &ctx, &lambda::tm(), depth).unwrap_or_else(|| {
        Term::apps(
            Term::cnst("app"),
            [
                Term::Var(0),
                Term::apps(Term::cnst("app"), [Term::Var(1), Term::Var(2)]),
            ],
        )
    })
}

props! {
    #![cases(64)]

    fn shift_and_unshift_match_reference(seed in seeds(), depth in 1u32..5, d in 0u32..4, cutoff in 0u32..3) {
        let t = open_term(seed, depth);
        assert_id_identical(
            &subst::shift_above(&t, d, cutoff),
            &reference::shift_above(&t, d, cutoff),
            "shift_above",
        );
        // Unshift what shift introduced: total by construction.
        let up = subst::shift_above(&t, d, cutoff);
        assert_id_identical(
            &subst::unshift_above(&up, d, cutoff),
            &reference::unshift_above(&up, d, cutoff),
            "unshift_above",
        );
    }

    fn subst_and_instantiate_match_reference(seed in seeds(), depth in 1u32..5, j in 0u32..3) {
        let t = open_term(seed, depth);
        let s = open_term(seed ^ 0x5C72, depth);
        assert_id_identical(
            &subst::subst(&t, j, &s),
            &reference::subst(&t, j, &s),
            "subst",
        );
        assert_id_identical(
            &subst::instantiate(&t, &s),
            &reference::instantiate(&t, &s),
            "instantiate",
        );
    }

    fn hereditary_substitution_matches_reference(seed in seeds(), depth in 1u32..5) {
        let body = open_term(seed, depth);
        let arg = open_term(seed ^ 0xA11C, depth);
        assert_id_identical(
            &normalize::hinstantiate(&body, &arg),
            &reference::hinstantiate(&body, &arg),
            "hinstantiate",
        );
        // And through the public happly entry on a manufactured redex.
        let f = Term::lam("x", body.clone());
        assert_id_identical(
            &normalize::happly(f.clone(), arg.clone()),
            &reference::hinstantiate(&body, &arg),
            "happly",
        );
    }

    fn nf_matches_reference_on_redex_chains(seed in seeds(), size in 2usize..30) {
        // Closed canonical encodings have no redexes, so build some: a
        // chain of administrative β-redexes and projections around `t`.
        let t = closed_term(seed, size);
        let redex = Term::app(
            Term::lam("y", Term::fst(Term::pair(Term::Var(0), Term::Unit))),
            Term::app(Term::lam("z", Term::Var(0)), t),
        );
        assert_id_identical(&normalize::nf(&redex), &reference::nf(&redex), "nf");
        // The scratch path must also agree on open, non-normal inputs.
        let open = Term::app(Term::lam("w", open_term(seed, 3)), open_term(seed ^ 0xBEEF, 2));
        assert_id_identical(&normalize::nf(&open), &reference::nf(&open), "nf (open)");
    }

    fn msubst_apply_matches_reference(seed in seeds(), depth in 1u32..4) {
        // ?F applied under a binder, with a λ solution so grafting creates
        // redexes — the exact shape the engine's Miller fast path and the
        // λProlog solver feed through `MetaSubst::apply`.
        let m = MVar::new(0, "F");
        let sol = Term::lam("x", Term::apps(
            Term::cnst("app"),
            [Term::Var(0), subst::shift(&open_term(seed, depth), 1)],
        ));
        let mut s = MetaSubst::new();
        s.bind(m.clone(), sol);
        let subject = Term::lam("y", Term::app(
            subst::shift(&Term::Meta(m), 1),
            open_term(seed ^ 0xD00D, depth),
        ));
        assert_id_identical(
            &s.apply(&subject),
            &reference::apply_msubst(&s, &subject),
            "MetaSubst::apply",
        );
    }
}

// ------------------------------------------------- engine-level battery --

/// Normalizes a subject under every strategy and asserts (a) the result's
/// annotations validate — it was built by the batch-intern path — and
/// (b) a second engine (fresh caches) reproduces the **same interned
/// node**, so the scratch path is deterministic end-to-end.
fn assert_engine_result_sound(sig: &Signature, rules: &RuleSet, ty: &Ty, subject: &Term) {
    for strategy in STRATEGIES {
        let mk = || {
            Engine::with_config(
                sig,
                rules,
                EngineConfig {
                    strategy,
                    ..EngineConfig::default()
                },
            )
        };
        let a = mk().normalize(ty, subject).unwrap();
        validate::check_term(&a.term)
            .unwrap_or_else(|e| panic!("engine result fails check_term ({strategy:?}): {e}"));
        let b = mk().normalize(ty, subject).unwrap();
        assert_eq!(
            TermRef::new(a.term.clone()).id(),
            TermRef::new(b.term.clone()).id(),
            "batch-interned engine results not id-deterministic ({strategy:?})"
        );
    }
}

props! {
    #![cases(48)]

    fn fol_rulesets_sound_under_scratch_kernel(seed in seeds(), depth in 2u32..5) {
        let vocab = fol::Vocabulary::small();
        let sig = vocab.signature();
        let mut rng = SmallRng::seed_from_u64(seed);
        let f = fol::gen_formula(&vocab, &mut rng, depth);
        let t = fol::encode(&f).unwrap();
        for rules in [fol_prenex::rules(&sig).unwrap(), fol_cnf::rules(&sig).unwrap()] {
            assert_engine_result_sound(&sig, &rules, &fol::o(), &t);
        }
    }

    fn imp_ruleset_sound_under_scratch_kernel(seed in seeds(), depth in 2u32..5) {
        let sig = imp::signature();
        let rules = imp_opt::rules(sig).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let c = imp::gen_cmd(&mut rng, depth);
        let t = imp::encode(&c).unwrap();
        assert_engine_result_sound(sig, &rules, &imp::cmd_ty(), &t);
    }
}

/// Mini-ML programs are structured (not generator-driven): the standard
/// arithmetic workload, both strategies.
#[test]
fn miniml_ruleset_sound_under_scratch_kernel() {
    let sig = miniml::signature();
    let rules = miniml_opt::rules(sig).unwrap();
    use hoas::langs::miniml::Exp;
    let programs = [
        Exp::app(Exp::app(miniml::add_fn(), Exp::num(6)), Exp::num(7)),
        Exp::app(Exp::app(miniml::mul_fn(), Exp::num(3)), Exp::num(4)),
        Exp::app(miniml::fact_fn(), Exp::num(3)),
        Exp::let_("x", Exp::num(2), Exp::var("x")),
        Exp::case(Exp::num(2), Exp::num(0), "n", Exp::var("n")),
    ];
    for p in &programs {
        let t = miniml::encode(p).unwrap();
        assert_engine_result_sound(sig, &rules, &miniml::exp(), &t);
    }
}

/// The counters must be live end-to-end. `batch_interned` and
/// `refcount_ops_saved` move whenever the kernel's session-threaded
/// rebuilds run, so a plain rewrite workload drives them through both the
/// per-run `EngineStats` delta and the global `store::stats()`.
#[test]
fn batch_counters_surface_through_engine_and_store_stats() {
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let rules = fol_prenex::rules(&sig).unwrap();
    let engine = Engine::new(&sig, &rules);
    let before = store::stats();
    let mut rng = SmallRng::seed_from_u64(0x9C_A7C4);
    let mut steps = 0;
    let mut batch = 0;
    let mut saved = 0;
    for _ in 0..8 {
        let f = fol::gen_formula(&vocab, &mut rng, 5);
        let out = engine
            .normalize(&fol::o(), &fol::encode(&f).unwrap())
            .unwrap();
        assert!(out.fixpoint);
        steps += out.steps;
        batch += out.stats.batch_interned;
        saved += out.stats.refcount_ops_saved;
    }
    assert!(steps > 0, "workload never rewrote — counters untested");
    assert!(batch > 0, "no batch-interned nodes over {steps} steps");
    assert!(saved > 0, "no refcount ops saved over {steps} steps");
    // Per-run deltas and the global snapshot agree in direction.
    let d = store::stats().since(&before);
    assert!(d.batch_interned >= batch);
    assert!(d.refcount_ops_saved >= saved);
    // And the engine's lifetime totals fold them in too.
    let total = engine.stats();
    assert!(total.batch_interned >= batch);
    assert!(total.refcount_ops_saved >= saved);
}

/// `scratch_nodes` counts transient nodes built in a [`scratch`] arena;
/// the finish pass reports how many died uninterned. Drive the arena
/// directly — build a redex spine, normalize it in-arena, intern only the
/// survivor — and both `scratch_nodes` and `refcount_ops_saved` must move
/// in the global snapshot, with the result id-identical to the
/// always-intern kernel's.
#[test]
fn scratch_counters_surface_through_store_stats() {
    use hoas::core::scratch;
    let before = store::stats();
    // (λx. x x) (λy. y) — the redex and one copy of the argument die in
    // the arena; only `λy. y` survives to interning.
    let out = scratch::with_arena(|ar| {
        let body = ar.of_term(&Term::app(Term::Var(0), Term::Var(0)));
        let arg = ar.of_term(&Term::lam("y", Term::Var(0)));
        let f = ar.lam(Sym::new("x"), body);
        let redex = ar.app(f, arg);
        let n = ar.nf_sid(redex);
        ar.finish_term(n)
    });
    assert_eq!(
        out,
        normalize::nf(&Term::app(
            Term::lam("x", Term::app(Term::Var(0), Term::Var(0))),
            Term::lam("y", Term::Var(0)),
        ))
    );
    let d = store::stats().since(&before);
    assert!(d.scratch_nodes > 0, "arena build recorded no scratch nodes");
    assert!(
        d.refcount_ops_saved > 0,
        "dead transients recorded no saved refcount ops"
    );
}
