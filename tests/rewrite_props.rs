//! Property tests for the rewrite engine: type preservation, strategy
//! agreement on terminating confluent systems, trace well-formedness, and
//! randomly generated orthogonal projection systems.

use hoas::core::prelude::*;
use hoas::langs::fol;
use hoas::rewrite::rulesets::{fol_cnf, fol_prenex};
use hoas::rewrite::{Engine, EngineConfig, Rule, RuleSet, Strategy};
use hoas_testkit::gen;
use hoas_testkit::prelude::*;

fn formula_term(seed: u64, depth: u32) -> (Signature, Term) {
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let mut rng = SmallRng::seed_from_u64(seed);
    let f = fol::gen_formula(&vocab, &mut rng, depth);
    let t = fol::encode(&f).unwrap();
    (sig, t)
}

props! {
    #![cases(64)]

    fn rewriting_preserves_typing(seed in seeds(), depth in 2u32..5) {
        let (sig, t) = formula_term(seed, depth);
        let rules = fol_prenex::rules(&sig).unwrap();
        let engine = Engine::new(&sig, &rules);
        let out = engine.normalize(&fol::o(), &t).unwrap();
        prop_assert!(out.fixpoint);
        typeck::check_closed(&sig, &out.term, &fol::o()).unwrap();
        // And the result decodes (no exotic terms produced).
        prop_assert!(fol::decode(&out.term).is_ok());
    }

    fn strategies_reach_equivalent_normal_forms(seed in seeds(), depth in 2u32..4) {
        // The prenex system is terminating; both strategies must reach
        // *a* prenex normal form of the same formula (prenex NF is not
        // unique syntactically — prefixes can interleave differently —
        // so compare semantically and structurally-by-measure).
        let (sig, t) = formula_term(seed, depth);
        let rules = fol_prenex::rules(&sig).unwrap();
        let outer = Engine::new(&sig, &rules);
        let inner = Engine::with_config(
            &sig,
            &rules,
            EngineConfig {
                strategy: Strategy::LeftmostInnermost,
                ..EngineConfig::default()
            },
        );
        let a = outer.normalize(&fol::o(), &t).unwrap();
        let b = inner.normalize(&fol::o(), &t).unwrap();
        prop_assert!(a.fixpoint && b.fixpoint);
        let fa = fol::decode(&a.term).unwrap();
        let fb = fol::decode(&b.term).unwrap();
        prop_assert!(fa.is_prenex());
        prop_assert!(fb.is_prenex());
        prop_assert_eq!(fa.quantifier_count(), fb.quantifier_count());
        // Semantic agreement on random models.
        let vocab = fol::Vocabulary::small();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xbeef);
        for _ in 0..3 {
            let m = fol::Model::random(&vocab, 2, &mut rng);
            prop_assert_eq!(
                m.eval(&fa, &mut Default::default()).unwrap(),
                m.eval(&fb, &mut Default::default()).unwrap()
            );
        }
    }

    fn traces_replay(seed in seeds(), depth in 2u32..4) {
        // The recorded trace replays step by step: applying rewrite_once
        // repeatedly yields the same intermediate count and final term.
        let (sig, t) = formula_term(seed, depth);
        let rules = fol_cnf::rules(&sig).unwrap();
        let engine = Engine::new(&sig, &rules);
        let out = engine.normalize(&fol::o(), &t).unwrap();
        prop_assert_eq!(out.trace.len(), out.steps);
        let mut cur = normalize::canon_closed(&sig, &t, &fol::o()).unwrap();
        for (i, step) in out.trace.iter().enumerate() {
            let (next, got) = engine
                .rewrite_once_traced(&fol::o(), &cur)
                .unwrap()
                .unwrap_or_else(|| panic!("trace ended early at step {i}"));
            prop_assert_eq!(&got, step);
            cur = next;
        }
        prop_assert_eq!(cur, out.term);
    }

    fn rule_application_count_bounded_by_budget(seed in seeds(), budget in 0usize..6) {
        let (sig, t) = formula_term(seed, 4);
        let rules = fol_prenex::rules(&sig).unwrap();
        let engine = Engine::with_config(
            &sig,
            &rules,
            EngineConfig {
                max_steps: budget,
                ..EngineConfig::default()
            },
        );
        let out = engine.normalize(&fol::o(), &t).unwrap();
        prop_assert!(out.steps <= budget);
        prop_assert_eq!(out.applied.len(), out.steps);
        if !out.fixpoint {
            prop_assert_eq!(out.steps, budget);
        }
    }

    fn generated_projection_systems_terminate_and_preserve_typing(
        seed in seeds(), depth in 1u32..4
    ) {
        // Random signature, random orthogonal projection rules over it
        // (each `k X₁ … Xₙ → Xᵢ` strictly shrinks the term), and a random
        // well-typed subject: normalization must reach a fixpoint in at
        // most `size` steps and preserve typing throughout.
        let mut rng = SmallRng::seed_from_u64(seed);
        let sig = gen::signature(&mut rng, 2, 8);
        let specs = gen::rewrite_rules(&sig, &mut rng);
        let mut rules = RuleSet::new();
        for sp in &specs {
            let metas: Vec<(&str, &str)> =
                sp.vars.iter().map(|(v, t)| (v.as_str(), t.as_str())).collect();
            let ty = parse_ty(&sp.ty).unwrap();
            rules.push(Rule::parse(&sig, &sp.name, &ty, &metas, &sp.lhs, &sp.rhs).unwrap()).unwrap();
        }
        if rules.is_empty() {
            return Ok(());
        }
        let target = Ty::base("b0");
        let Some(t) = gen::closed_term(&sig, &mut rng, &target, depth) else {
            return Ok(());
        };
        let engine = Engine::new(&sig, &rules);
        let out = engine.normalize(&target, &t).unwrap();
        prop_assert!(out.fixpoint, "projection systems are terminating");
        prop_assert!(
            out.steps <= t.size(),
            "each projection strictly shrinks the subject"
        );
        typeck::check_closed(&sig, &out.term, &target).unwrap();
    }
}

/// Regression (from a historical proptest failure, shrunk to
/// `seed = 2241360097964532490, budget = 0`): with a zero step budget the
/// engine must report zero steps, an empty application list, and
/// `fixpoint` only when the input already is one — it used to take one
/// step before checking the budget.
#[test]
fn regression_zero_budget_takes_no_steps() {
    let (sig, t) = formula_term(2241360097964532490, 4);
    let rules = fol_prenex::rules(&sig).unwrap();
    let engine = Engine::with_config(
        &sig,
        &rules,
        EngineConfig {
            max_steps: 0,
            ..EngineConfig::default()
        },
    );
    let out = engine.normalize(&fol::o(), &t).unwrap();
    assert_eq!(out.steps, 0);
    assert!(out.applied.is_empty());
    assert!(out.trace.is_empty());
    if !out.fixpoint {
        // Not a fixpoint: the budget, not the ruleset, stopped us — the
        // subject must be returned canonically but otherwise untouched.
        let canon = normalize::canon_closed(&sig, &t, &fol::o()).unwrap();
        assert_eq!(out.term, canon);
    }
}
