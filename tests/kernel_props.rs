//! Property tests for the metalanguage kernel: substitution laws,
//! normalization, canonical forms, and the printer/parser round trip.
//!
//! Runs on the hermetic `hoas-testkit` harness: every property executes a
//! fixed number of deterministic cases under the workspace seed (see
//! `hoas_testkit::prop::DEFAULT_SEED`); failures report a case seed
//! replayable via `HOAS_PROP_CASE=<seed>`.

use hoas::core::prelude::*;
use hoas::langs::lambda;
use hoas_testkit::gen;
use hoas_testkit::prelude::*;

/// A random simple type over the kernel's standard bases (including
/// `int`/`unit`/type variables), from a seed and a depth bound. The depth
/// rides last in each strategy tuple so shrinking reduces it first.
fn random_ty(seed: u64, depth: u32) -> Ty {
    gen::ty(&mut SmallRng::seed_from_u64(seed), depth)
}

/// Well-typed closed terms of type `tm`, via the λ-calculus generator.
fn well_typed_term(seed: u64, size: usize) -> Term {
    let mut rng = SmallRng::seed_from_u64(seed);
    lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap()
}

props! {
    #![cases(128)]

    fn ty_display_parse_roundtrip(seed in seeds(), depth in 0u32..5) {
        let ty = random_ty(seed, depth);
        let printed = ty.to_string();
        let reparsed = parse_ty(&printed).unwrap();
        prop_assert_eq!(reparsed, ty);
    }

    fn ty_subst_deep_is_idempotent_on_ground(seed in seeds(), depth in 0u32..5) {
        let ty = random_ty(seed, depth);
        let map: std::collections::HashMap<u32, Ty> =
            [(0, Ty::Int), (1, Ty::Unit), (2, Ty::base("tm"))].into_iter().collect();
        let once = ty.subst_deep(&map);
        prop_assert!(once.is_ground());
        prop_assert_eq!(once.subst_deep(&map), once.clone());
        // Generalize/instantiate round-trips the ground structure.
        let sch = TyScheme::generalize(&once);
        prop_assert_eq!(sch.arity(), 0);
        prop_assert_eq!(sch.body(), &once);
    }

    fn shift_then_unshift_is_identity(seed in seeds(), size in 2usize..40, d in 0u32..5) {
        let t = well_typed_term(seed, size);
        let shifted = subst::shift(&t, d);
        prop_assert_eq!(subst::unshift_above(&shifted, d, 0), t);
    }

    fn shift_composes(seed in seeds(), size in 2usize..40, a in 0u32..4, b in 0u32..4) {
        let t = well_typed_term(seed, size);
        prop_assert_eq!(
            subst::shift(&subst::shift(&t, a), b),
            subst::shift(&t, a + b)
        );
    }

    fn nf_is_idempotent(seed in seeds(), size in 2usize..35) {
        // Well-typed closed encodings normalize, and nf is idempotent.
        let t = well_typed_term(seed, size);
        let n1 = normalize::nf(&t);
        prop_assert!(n1.is_beta_normal());
        prop_assert_eq!(normalize::nf(&n1), n1);
    }

    fn hereditary_apply_agrees_with_subst_then_nf(seed in seeds(), size in 2usize..30) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let body_src = lambda::gen_closed(&mut rng, size);
        let arg_src = lambda::gen_closed(&mut rng, size / 2 + 1);
        let f = Term::lam("x", {
            // Make the binder actually occur: apply x to the encoding.
            let b = lambda::encode(&body_src).unwrap();
            Term::apps(Term::cnst("app"), [Term::Var(0), subst::shift(&b, 1)])
        });
        let a = lambda::encode(&arg_src).unwrap();
        let hereditary = normalize::happly(f.clone(), a.clone());
        let naive = normalize::nf(&subst::instantiate(
            match &f { Term::Lam(_, b) => b, _ => unreachable!() },
            &a,
        ));
        prop_assert_eq!(hereditary, naive);
    }

    fn canon_is_idempotent_and_checked(seed in seeds(), size in 2usize..30) {
        let sig = lambda::signature();
        let t = well_typed_term(seed, size);
        let c1 = normalize::canon_closed(sig, &t, &lambda::tm()).unwrap();
        let c2 = normalize::canon_closed(sig, &c1, &lambda::tm()).unwrap();
        prop_assert_eq!(&c1, &c2);
        prop_assert!(normalize::is_canonical(
            sig, &MetaEnv::new(), &Ctx::new(), &c1, &lambda::tm()
        ));
        typeck::check_closed(sig, &c1, &lambda::tm()).unwrap();
    }

    fn printer_parser_roundtrip_on_terms(seed in seeds(), size in 2usize..40) {
        let sig = lambda::signature();
        let t = well_typed_term(seed, size);
        let printed = t.to_string();
        let reparsed = parse_term(sig, &printed).unwrap().term;
        prop_assert_eq!(reparsed, t, "printed as {}", printed);
    }

    fn eta_contract_preserves_beta_eta_class(seed in seeds(), size in 2usize..25) {
        let sig = lambda::signature();
        let t = well_typed_term(seed, size);
        let c = normalize::canon_closed(sig, &t, &lambda::tm()).unwrap();
        let contracted = normalize::eta_contract(&c);
        // Contracting and re-canonicalizing gets back to the same
        // canonical form.
        let again = normalize::canon_closed(sig, &contracted, &lambda::tm()).unwrap();
        prop_assert_eq!(again, c);
    }

    fn reconstruction_agrees_with_checking(seed in seeds(), size in 2usize..35) {
        let sig = lambda::signature();
        let t = well_typed_term(seed, size);
        let ty = infer::reconstruct(sig, &t).unwrap();
        prop_assert_eq!(&ty, &lambda::tm());
        typeck::check_closed(sig, &t, &ty).unwrap();
    }

    fn fueled_nf_agrees_with_nf(seed in seeds(), size in 2usize..30) {
        let t = well_typed_term(seed, size);
        // Closed well-typed encodings of type tm have no redexes at all,
        // so make one: ((λy. y) t).
        let redex = Term::app(Term::lam("y", Term::Var(0)), t);
        let a = normalize::nf(&redex);
        let b = normalize::nf_fuel(&redex, 1_000_000).unwrap();
        prop_assert_eq!(a, b);
    }
}

/// A random simultaneous substitution built from closed encodings plus
/// identity-like entries (exercising both the entry and tail paths).
fn random_sub(seed: u64) -> hoas::core::sub::Sub {
    use hoas::core::sub::Sub;
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(0..4);
    let entries: Vec<Term> = (0..n)
        .map(|i| {
            if rng.gen_bool(0.3) {
                Term::Var(rng.gen_range(0..4))
            } else {
                let _ = i;
                lambda::encode(&lambda::gen_closed(&mut rng, 6)).unwrap()
            }
        })
        .collect();
    let mut s = Sub::weaken(rng.gen_range(0..3));
    for e in entries.into_iter().rev() {
        s = Sub::cons(e, &s);
    }
    s
}

props! {
    #![cases(128)]

    fn sub_composition_law(sa in seeds(), sb in seeds(), st in seeds(), size in 2usize..25) {
        let a = random_sub(sa);
        let b = random_sub(sb);
        // An open-ish subject: a closed encoding applied to free variables.
        let mut rng = SmallRng::seed_from_u64(st);
        let closed = lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap();
        let t = Term::apps(
            Term::cnst("app"),
            [closed, Term::Var(2)],
        );
        prop_assert_eq!(
            a.compose(&b).apply(&t),
            a.apply(&b.apply(&t)),
            "a = {}, b = {}", a, b
        );
    }

    fn sub_single_agrees_with_instantiate(seed in seeds(), size in 2usize..25) {
        use hoas::core::sub::Sub;
        let mut rng = SmallRng::seed_from_u64(seed);
        let arg = lambda::encode(&lambda::gen_closed(&mut rng, size / 2 + 2)).unwrap();
        // A body using Var(0) and deeper vars.
        let body = Term::lam("y", Term::apps(Term::cnst("app"), [Term::Var(1), Term::Var(0)]));
        prop_assert_eq!(
            Sub::single(arg.clone()).apply(&body),
            subst::instantiate(&body, &arg)
        );
    }

    fn sub_lift_commutes_with_binder(sa in seeds(), st in seeds(), size in 2usize..20) {
        let s = random_sub(sa);
        let mut rng = SmallRng::seed_from_u64(st);
        let closed = lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap();
        let body = Term::apps(Term::cnst("app"), [closed, Term::Var(1)]);
        prop_assert_eq!(
            s.apply(&Term::lam("x", body.clone())),
            Term::lam("x", s.lift().apply(&body))
        );
    }

    // ------------------------- failure injection -------------------------

    fn parser_never_panics_on_garbage(src in ascii_string(80)) {
        let sig = lambda::signature();
        // Any outcome is fine; panicking is not.
        let _ = parse_term(sig, &src);
        let _ = parse_ty(&src);
        let _ = Signature::parse(&src);
    }

    fn parser_never_panics_on_structured_soup(
        toks in token_soup(
            &[
                "lam", "app", "(", ")", "\\",
                ".", "x", "?M", ",", "->",
                "fst", "snd", "123", "-", ":",
            ],
            24,
        ),
    ) {
        let sig = lambda::signature();
        let src = toks.join(" ");
        let _ = parse_term(sig, &src);
        let _ = parse_ty(&src);
    }

    fn decoder_never_panics_on_arbitrary_wellformed_terms(seed in seeds(), size in 2usize..25) {
        // Feed λ-calculus encodings to the *wrong* decoders: must error,
        // not panic.
        let t = well_typed_term(seed, size);
        let _ = hoas::langs::fol::decode(&t);
        let _ = hoas::langs::imp::decode(&t);
        let _ = hoas::langs::miniml::decode(&t);
    }
}
