//! Property tests for the binary codec (PR 7): `decode(encode(x)) = x`
//! up to `NodeId` remap, over all four object languages' encoders.
//!
//! * terms — decoding in the same store lands on the *same* node (ids
//!   equal), and the 128-bit content hash survives the round trip;
//! * signatures — declaration lists round-trip in order;
//! * rule sets — every rule's name, type, and canonical sides survive;
//! * λProlog programs — clause lists round-trip structurally;
//! * corruption — truncated or bit-flipped streams are *rejected*,
//!   never mis-loaded, and a version bump is reported as such.

use hoas::core::codec::{
    decode_signature, decode_term, encode_signature, encode_term, CodecError, Kind, VERSION,
};
use hoas::core::prelude::*;
use hoas::langs::{fol, imp, lambda, miniml};
use hoas::lp::codec::{decode_program, encode_program};
use hoas::lp::examples;
use hoas::rewrite::codec::{decode_rule_set, encode_rule_set};
use hoas::rewrite::rulesets::{fol_prenex, imp_opt, miniml_opt};
use hoas_testkit::prelude::*;

/// Round-trips one term and checks identity + content-hash stability:
/// decoding re-interns the skeleton, so in the writing store the result
/// must be the identical node, and the structural content hash — which
/// is store-independent — must agree bit for bit.
fn assert_term_round_trips(t: &Term) {
    let original = TermRef::new(t.clone());
    let bytes = encode_term(t);
    let decoded = decode_term(&bytes).expect("round trip decodes");
    assert_eq!(
        original.id(),
        decoded.id(),
        "decode(encode({t})) landed on a different node"
    );
    assert_eq!(
        original.content_hash(),
        decoded.content_hash(),
        "content hash of {t} changed across the round trip"
    );
}

/// Round-trips a signature and compares the declaration lists.
fn assert_signature_round_trips(sig: &Signature) {
    let bytes = encode_signature(sig);
    let decoded = decode_signature(&bytes).expect("signature decodes");
    assert_eq!(
        sig.types().collect::<Vec<_>>(),
        decoded.types().collect::<Vec<_>>()
    );
    assert_eq!(
        sig.consts().collect::<Vec<_>>(),
        decoded.consts().collect::<Vec<_>>()
    );
}

/// Round-trips a rule set against its signature: rule count, names,
/// subject types, and both canonical sides (compared as interned nodes,
/// hence up to α) must survive; native rules come back as names.
fn assert_rules_round_trip(sig: &Signature, rules: &hoas::rewrite::RuleSet) {
    let bytes = encode_rule_set(rules);
    let (decoded, native_names) = decode_rule_set(sig, &bytes).expect("rule set decodes");
    let before = rules.rules();
    let after = decoded.rules();
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(after) {
        assert_eq!(b.name(), a.name());
        assert_eq!(b.ty(), a.ty());
        assert_eq!(b.lhs(), a.lhs(), "lhs of `{}` changed", b.name());
        assert_eq!(b.rhs(), a.rhs(), "rhs of `{}` changed", b.name());
    }
    let native_before: Vec<&str> = rules.native_rules().iter().map(|n| n.name()).collect();
    assert_eq!(native_before, native_names);
}

/// Every truncation of `bytes` must be rejected.
fn assert_truncations_rejected(bytes: &[u8], decode: &dyn Fn(&[u8]) -> bool) {
    for len in 0..bytes.len() {
        assert!(
            !decode(&bytes[..len]),
            "truncation to {len}/{} bytes was accepted",
            bytes.len()
        );
    }
}

/// Every single-bit flip of `bytes` must be rejected.
fn assert_bit_flips_rejected(bytes: &[u8], decode: &dyn Fn(&[u8]) -> bool) {
    let mut work = bytes.to_vec();
    for i in 0..work.len() {
        for bit in 0..8 {
            work[i] ^= 1 << bit;
            assert!(!decode(&work), "flip of bit {bit} in byte {i} was accepted");
            work[i] ^= 1 << bit;
        }
    }
}

props! {
    #![cases(48)]

    fn lambda_terms_round_trip(seed in seeds(), size in 2usize..40) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap();
        assert_term_round_trips(&t);
    }

    fn fol_terms_round_trip(seed in seeds(), depth in 1u32..6) {
        let vocab = fol::Vocabulary::small();
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap();
        assert_term_round_trips(&t);
    }

    fn imp_terms_round_trip(seed in seeds(), depth in 1u32..5) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = imp::encode(&imp::gen_cmd(&mut rng, depth)).unwrap();
        assert_term_round_trips(&t);
    }
}

#[test]
fn miniml_terms_round_trip() {
    // Mini-ML has no random generator; sweep the structured corpus.
    for e in [
        miniml::add_fn(),
        miniml::mul_fn(),
        miniml::fact_fn(),
        miniml::Exp::app(
            miniml::Exp::app(miniml::add_fn(), miniml::Exp::num(4)),
            miniml::Exp::num(5),
        ),
    ] {
        assert_term_round_trips(&miniml::encode(&e).unwrap());
    }
}

#[test]
fn signatures_round_trip_over_all_languages() {
    assert_signature_round_trips(lambda::signature());
    assert_signature_round_trips(imp::signature());
    assert_signature_round_trips(miniml::signature());
    assert_signature_round_trips(&fol::Vocabulary::small().signature());
}

#[test]
fn bundled_rule_sets_round_trip() {
    let fol_sig = fol::Vocabulary::small().signature();
    assert_rules_round_trip(&fol_sig, &fol_prenex::rules(&fol_sig).unwrap());
    assert_rules_round_trip(imp::signature(), &imp_opt::rules(imp::signature()).unwrap());
    assert_rules_round_trip(
        miniml::signature(),
        &miniml_opt::rules(miniml::signature()).unwrap(),
    );
}

#[test]
fn lp_programs_round_trip() {
    for p in [examples::append_program(), examples::stlc_program()] {
        let bytes = encode_program(&p);
        let q = decode_program(&bytes).expect("program decodes");
        assert_eq!(p.clauses(), q.clauses());
        assert_eq!(
            p.sig().consts().collect::<Vec<_>>(),
            q.sig().consts().collect::<Vec<_>>()
        );
    }
}

#[test]
fn corrupt_streams_are_rejected_never_misloaded() {
    // One representative stream per codec kind; exhaustive truncation
    // and single-bit-flip sweeps over each.
    let term = fol::encode(&fol::gen_formula(
        &fol::Vocabulary::small(),
        &mut SmallRng::seed_from_u64(0xc0dec),
        3,
    ))
    .unwrap();
    let term_bytes = encode_term(&term);
    let term_ok = |b: &[u8]| decode_term(b).is_ok();
    assert_truncations_rejected(&term_bytes, &term_ok);
    assert_bit_flips_rejected(&term_bytes, &term_ok);

    let sig = fol::Vocabulary::small().signature();
    let sig_bytes = encode_signature(&sig);
    let sig_ok = |b: &[u8]| decode_signature(b).is_ok();
    assert_truncations_rejected(&sig_bytes, &sig_ok);
    assert_bit_flips_rejected(&sig_bytes, &sig_ok);

    let rules_bytes = encode_rule_set(&fol_prenex::rules(&sig).unwrap());
    let rules_ok = |b: &[u8]| decode_rule_set(&sig, b).is_ok();
    assert_truncations_rejected(&rules_bytes, &rules_ok);

    let prog_bytes = encode_program(&examples::append_program());
    let prog_ok = |b: &[u8]| decode_program(b).is_ok();
    assert_truncations_rejected(&prog_bytes, &prog_ok);
    assert_bit_flips_rejected(&prog_bytes, &prog_ok);
}

#[test]
fn future_versions_are_rejected_as_such() {
    let bytes = encode_term(
        &fol::encode(&fol::gen_formula(
            &fol::Vocabulary::small(),
            &mut SmallRng::seed_from_u64(7),
            2,
        ))
        .unwrap(),
    );
    let mut bumped = bytes.clone();
    let next = (VERSION + 1).to_le_bytes();
    bumped[4] = next[0];
    bumped[5] = next[1];
    // The version gate fires before the checksum is even consulted, so
    // the error names the version, not generic corruption.
    assert_eq!(
        decode_term(&bumped).unwrap_err(),
        CodecError::BadVersion { found: VERSION + 1 }
    );

    // Kind confusion is also caught by name.
    let sig_bytes = encode_signature(&fol::Vocabulary::small().signature());
    assert!(matches!(
        decode_term(&sig_bytes).unwrap_err(),
        CodecError::WrongKind { found, .. } if found == Kind::Signature as u8
    ));
}
