//! Property tests for **adequacy** (experiment E7): for every object
//! language, `decode ∘ encode = id` (up to α), encodings are well-typed
//! canonical terms, and exotic terms are rejected rather than decoded.
//!
//! Structured generation uses the languages' seeded generators driven by
//! harness-chosen seeds and sizes, so failures shrink over the seed
//! space.

use hoas::core::prelude::*;
use hoas::langs::{fol, imp, lambda, miniml};
use hoas_testkit::prelude::*;

props! {
    #![cases(96)]

    fn lambda_roundtrip(seed in seeds(), size in 2usize..60) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = lambda::gen_closed(&mut rng, size);
        let e = lambda::encode(&t).unwrap();
        // Well-typed at tm.
        prop_assert!(lambda::check_encoding(&e, 0));
        // Canonical already (encodings are in canonical form).
        let c = normalize::canon_closed(lambda::signature(), &e, &lambda::tm()).unwrap();
        prop_assert_eq!(&c, &e);
        // Round-trip up to α.
        let back = lambda::decode(&e).unwrap();
        prop_assert!(back.alpha_eq(&t));
    }

    fn fol_roundtrip(seed in seeds(), depth in 1u32..6) {
        let vocab = fol::Vocabulary::small();
        let sig = vocab.signature();
        let mut rng = SmallRng::seed_from_u64(seed);
        let f = fol::gen_formula(&vocab, &mut rng, depth);
        let e = fol::encode(&f).unwrap();
        typeck::check_closed(&sig, &e, &fol::o()).unwrap();
        // Adequacy round-trips hold up to α-equivalence — the hash-consed
        // store canonicalizes binder hints, so decode may pick fresh
        // names for bound variables; `Formula::alpha_eq` decides the
        // comparison through the kernel encoding.
        prop_assert!(fol::decode(&e).unwrap().alpha_eq(&f));
    }

    fn imp_roundtrip_and_trace(seed in seeds(), depth in 1u32..5) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let c = imp::gen_cmd(&mut rng, depth);
        let e = imp::encode(&c).unwrap();
        typeck::check_closed(imp::signature(), &e, &imp::cmd_ty()).unwrap();
        let back = imp::decode(&e).unwrap();
        // Binder names may be freshened; semantics must agree.
        match (imp::run(&c, 20_000), imp::run(&back, 20_000)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "disagreement: {:?}", other),
        }
    }

    fn encoding_is_compositional_for_lambda_subst(seed in seeds(), size in 2usize..30) {
        // encode(t[x:=s]) == object-level β on encodings — the adequacy
        // square for substitution (the paper's central theorem).
        let mut rng = SmallRng::seed_from_u64(seed);
        let body = lambda::gen_closed(&mut rng, size);
        let arg = lambda::gen_closed(&mut rng, size / 2 + 1);
        // Build (λx. body') where body' = body with a free x spliced in:
        // simplest adequate check: subst into `app x body`.
        let open = lambda::LTerm::app(lambda::LTerm::var("x"), body.clone());
        let native = lambda::subst_native(&open, "x", &arg);
        let encoded_lam = lambda::encode(&lambda::LTerm::lam("x", open)).unwrap();
        let encoded_arg = lambda::encode(&arg).unwrap();
        let via_hoas = lambda::subst_hoas(&encoded_lam, &encoded_arg).unwrap();
        prop_assert_eq!(via_hoas, lambda::encode(&native).unwrap());
    }

    fn exotic_lambda_terms_rejected(seed in seeds()) {
        // `lam` applied to things that are not λ-abstractions must not
        // decode. (We build ill-formed-but-plausible terms by hand.)
        let mut rng = SmallRng::seed_from_u64(seed);
        let inner = lambda::encode(&lambda::gen_closed(&mut rng, 6)).unwrap();
        // lam (app inner inner): scope is not a λ — exotic.
        let exotic = Term::app(
            Term::cnst("lam"),
            Term::apps(Term::cnst("app"), [inner.clone(), inner]),
        );
        prop_assert!(lambda::decode(&exotic).is_err());
    }
}

#[test]
fn miniml_roundtrip_on_program_corpus() {
    // Mini-ML has no random generator (well-typedness is nontrivial);
    // sweep a corpus of structured programs instead.
    let corpus = vec![
        miniml::add_fn(),
        miniml::mul_fn(),
        miniml::fact_fn(),
        miniml::Exp::app(
            miniml::Exp::app(miniml::add_fn(), miniml::Exp::num(7)),
            miniml::Exp::num(8),
        ),
        miniml::Exp::case(
            miniml::Exp::num(3),
            miniml::Exp::Z,
            "n",
            miniml::Exp::let_(
                "m",
                miniml::Exp::var("n"),
                miniml::Exp::s(miniml::Exp::var("m")),
            ),
        ),
        miniml::Exp::fix(
            "f",
            miniml::Exp::lam(
                "x",
                miniml::Exp::app(miniml::Exp::var("f"), miniml::Exp::var("x")),
            ),
        ),
    ];
    for p in corpus {
        let e = miniml::encode(&p).unwrap();
        typeck::check_closed(miniml::signature(), &e, &miniml::exp()).unwrap();
        assert!(miniml::decode(&e).unwrap().alpha_eq(&p));
        let c = normalize::canon_closed(miniml::signature(), &e, &miniml::exp()).unwrap();
        assert_eq!(c, e, "encodings are canonical");
    }
}

#[test]
fn exotic_terms_rejected_across_languages() {
    // A quantifier over a constant function built by η-trickery is fine,
    // but a quantifier over a non-λ neutral is exotic everywhere.
    let bad_fol = Term::app(Term::cnst("forall"), Term::cnst("p"));
    assert!(fol::decode(&bad_fol).is_err());
    let bad_local = Term::apps(
        Term::cnst("local"),
        [
            Term::app(Term::cnst("lit"), Term::Int(0)),
            Term::cnst("skip"),
        ],
    );
    assert!(imp::decode(&bad_local).is_err());
    let bad_fix = Term::app(Term::cnst("fix"), Term::cnst("z"));
    assert!(miniml::decode(&bad_fix).is_err());
    // Dangling de Bruijn indices are exotic too.
    assert!(lambda::decode(&Term::Var(0)).is_err());
    assert!(fol::decode(&Term::Var(3)).is_err());
}
