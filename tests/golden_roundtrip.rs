//! Golden printer/parser round-trip tests: `parse ∘ print = id` on
//! canonical (normal-form) encodings for the metalanguage core and every
//! object language in `crates/langs`, with the printed output pinned in
//! `tests/golden/*.golden`.
//!
//! The golden files catch printer drift (precedence, spacing, binder
//! hints); the reparse check proves the printed syntax stays readable by
//! the parser. Terms are generated from fixed seeds via the hermetic
//! testkit RNG, so the files are stable across machines.
//!
//! To regenerate after an intentional printer change:
//! `HOAS_UPDATE_GOLDEN=1 cargo test --test golden_roundtrip`.
//!
//! Each test body runs inside [`StoreHandle::isolated`]: binder hints are
//! canonicalized per α-class by whichever intern happens *first* in a
//! store, and since PR 6 the default store is process-global, so printed
//! hints would otherwise depend on which other tests in this binary ran
//! earlier. A private store makes the printed output a pure function of
//! the test's own seed again.

use hoas::core::prelude::*;
use hoas::langs::{fol, imp, lambda, miniml};
use hoas_testkit::prelude::*;
use std::path::PathBuf;

/// Runs `f` with a fresh private term store as the thread's current
/// store, so hint canonicalization can't leak across tests.
fn in_fresh_store<R>(f: impl FnOnce() -> R) -> R {
    StoreHandle::isolated().enter(f)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.golden"))
}

/// Asserts `parse ∘ print = id` for every term, then compares the joined
/// printed output against the checked-in golden file.
fn roundtrip_and_compare(name: &str, sig: &Signature, terms: &[Term]) {
    let printed: Vec<String> = terms.iter().map(|t| t.to_string()).collect();
    for (t, src) in terms.iter().zip(&printed) {
        let back = parse_term(sig, src)
            .unwrap_or_else(|e| panic!("[{name}] printed form does not reparse: {src}\n  {e}"))
            .term;
        assert_eq!(&back, t, "[{name}] parse ∘ print ≠ id on {src}");
    }
    compare_golden(name, &printed);
}

fn compare_golden(name: &str, lines: &[String]) {
    let path = golden_path(name);
    let body = lines.join("\n") + "\n";
    if std::env::var("HOAS_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &body).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); run with HOAS_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        body, want,
        "[{name}] golden mismatch — if the printer change is intentional, \
         re-run with HOAS_UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn core_types_roundtrip_golden() {
    in_fresh_store(|| {
        // Types exercise arrow/product precedence and grouping.
        let mut rng = SmallRng::seed_from_u64(0x7479);
        let mut tys: Vec<Ty> = (0..12)
            .map(|i| hoas_testkit::gen::ty(&mut rng, 1 + (i % 4)))
            .collect();
        tys.push(Ty::arrow(
            Ty::arrow(Ty::base("tm"), Ty::base("tm")),
            Ty::prod(Ty::Int, Ty::Unit),
        ));
        let printed: Vec<String> = tys.iter().map(|t| t.to_string()).collect();
        for (ty, src) in tys.iter().zip(&printed) {
            assert_eq!(&parse_ty(src).unwrap(), ty, "parse ∘ print ≠ id on {src}");
        }
        compare_golden("core_types", &printed);
    })
}

#[test]
fn core_terms_roundtrip_golden() {
    in_fresh_store(|| {
        // Canonical λ-calculus encodings exercise the core printer's binders,
        // application spines, and name freshening.
        let sig = lambda::signature();
        let mut rng = SmallRng::seed_from_u64(0x636f7265);
        let terms: Vec<Term> = (0..10)
            .map(|i| {
                let t = lambda::encode(&lambda::gen_closed(&mut rng, 6 + 3 * i)).unwrap();
                normalize::canon_closed(sig, &t, &lambda::tm()).unwrap()
            })
            .collect();
        roundtrip_and_compare("core_terms", sig, &terms);
    })
}

#[test]
fn lambda_encodings_roundtrip_golden() {
    in_fresh_store(|| {
        let sig = lambda::signature();
        let mut rng = SmallRng::seed_from_u64(0x6c616d);
        let terms: Vec<Term> = (0..10)
            .map(|_| lambda::encode(&lambda::gen_closed(&mut rng, 12)).unwrap())
            .collect();
        roundtrip_and_compare("lambda", sig, &terms);
    })
}

#[test]
fn fol_encodings_roundtrip_golden() {
    in_fresh_store(|| {
        let vocab = fol::Vocabulary::small();
        let sig = vocab.signature();
        let mut rng = SmallRng::seed_from_u64(0x666f6c);
        let terms: Vec<Term> = (0..10)
            .map(|i| fol::encode(&fol::gen_formula(&vocab, &mut rng, 1 + (i % 4))).unwrap())
            .collect();
        roundtrip_and_compare("fol", &sig, &terms);
    })
}

#[test]
fn imp_encodings_roundtrip_golden() {
    in_fresh_store(|| {
        let sig = imp::signature();
        let mut rng = SmallRng::seed_from_u64(0x696d70);
        let terms: Vec<Term> = (0..10)
            .map(|i| imp::encode(&imp::gen_cmd(&mut rng, 1 + (i % 3))).unwrap())
            .collect();
        roundtrip_and_compare("imp", sig, &terms);
    })
}

#[test]
fn miniml_encodings_roundtrip_golden() {
    in_fresh_store(|| {
        // Mini-ML has no random generator; pin the structured corpus.
        let sig = miniml::signature();
        let corpus = [
            miniml::add_fn(),
            miniml::mul_fn(),
            miniml::fact_fn(),
            miniml::Exp::app(
                miniml::Exp::app(miniml::add_fn(), miniml::Exp::num(2)),
                miniml::Exp::num(3),
            ),
            miniml::Exp::case(
                miniml::Exp::num(1),
                miniml::Exp::Z,
                "n",
                miniml::Exp::let_(
                    "m",
                    miniml::Exp::var("n"),
                    miniml::Exp::s(miniml::Exp::var("m")),
                ),
            ),
            miniml::Exp::fix(
                "f",
                miniml::Exp::lam(
                    "x",
                    miniml::Exp::app(miniml::Exp::var("f"), miniml::Exp::var("x")),
                ),
            ),
        ];
        let terms: Vec<Term> = corpus.iter().map(|p| miniml::encode(p).unwrap()).collect();
        roundtrip_and_compare("miniml", sig, &terms);
    })
}
