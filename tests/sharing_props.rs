//! Sharing-safety: α-equality and `Hash` must be insensitive to binder
//! hints *and* to how a term's nodes are shared.
//!
//! With the `Rc`-backed representation, two structurally equal terms can
//! have wildly different sharing (every node distinct vs. maximal
//! hash-consing-style sharing). Equality takes a pointer-identity fast
//! path and hashing never looks at pointers, so both must be pure
//! functions of the term's structure. Exercised across all four
//! object-language encoders.

use hoas::core::{Term, TermRef};
use hoas::langs::{fol, imp, lambda, miniml};
use hoas_testkit::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn hash_of(t: &Term) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Rebuilds `t` with every binder hint replaced by `h`.
fn rehint(t: &Term) -> Term {
    match t {
        Term::Lam(_, b) => Term::lam("h", rehint(b)),
        Term::App(f, a) => Term::app(rehint(f), rehint(a)),
        Term::Pair(a, b) => Term::pair(rehint(a), rehint(b)),
        Term::Fst(p) => Term::fst(rehint(p)),
        Term::Snd(p) => Term::snd(rehint(p)),
        Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
    }
}

/// Rebuilds `t` with *maximal* sharing: structurally equal subterms all
/// point at one node (a tiny hash-consing pass, quadratic but fine at
/// test sizes).
fn max_shared(t: &Term, pool: &mut Vec<TermRef>) -> Term {
    fn share(r: &TermRef, pool: &mut Vec<TermRef>) -> TermRef {
        let rebuilt = TermRef::new(max_shared(r, pool));
        if let Some(existing) = pool.iter().find(|p| **p == rebuilt) {
            existing.clone()
        } else {
            pool.push(rebuilt.clone());
            rebuilt
        }
    }
    match t {
        Term::Lam(h, b) => Term::Lam(h.clone(), share(b, pool)),
        Term::App(f, a) => Term::App(share(f, pool), share(a, pool)),
        Term::Pair(a, b) => Term::Pair(share(a, pool), share(b, pool)),
        Term::Fst(p) => Term::Fst(share(p, pool)),
        Term::Snd(p) => Term::Snd(share(p, pool)),
        Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
    }
}

/// The core assertion: a fresh unshared copy, a maximally shared copy,
/// and a hint-scrubbed copy of `t` all compare equal to `t` and hash
/// identically.
fn sharing_and_hints_are_invisible(t: &Term) {
    let shared = max_shared(t, &mut Vec::new());
    assert_eq!(&shared, t, "sharing must not affect equality");
    assert_eq!(hash_of(&shared), hash_of(t), "sharing must not affect hash");
    let hinted = rehint(t);
    assert_eq!(&hinted, t, "binder hints must not affect equality");
    assert_eq!(
        hash_of(&hinted),
        hash_of(t),
        "binder hints must not affect hash"
    );
    // And the combination: rehinted + reshared still equal and same hash.
    let both = max_shared(&hinted, &mut Vec::new());
    assert_eq!(&both, t);
    assert_eq!(hash_of(&both), hash_of(t));
}

props! {
    #![cases(64)]

    fn lambda_encodings_are_sharing_insensitive(seed in seeds(), size in 2usize..40) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap();
        sharing_and_hints_are_invisible(&t);
        // Two independent encodings of the same object term are equal
        // regardless of their (disjoint) allocations.
        let mut rng2 = SmallRng::seed_from_u64(seed);
        let t2 = lambda::encode(&lambda::gen_closed(&mut rng2, size)).unwrap();
        prop_assert_eq!(&t2, &t);
        prop_assert_eq!(hash_of(&t2), hash_of(&t));
    }

    fn fol_encodings_are_sharing_insensitive(seed in seeds(), depth in 1u32..5) {
        let vocab = fol::Vocabulary::small();
        let mut rng = SmallRng::seed_from_u64(seed);
        let f = fol::gen_formula(&vocab, &mut rng, depth);
        let t = fol::encode(&f).unwrap();
        sharing_and_hints_are_invisible(&t);
        let t2 = fol::encode(&f).unwrap();
        prop_assert_eq!(&t2, &t);
        prop_assert_eq!(hash_of(&t2), hash_of(&t));
    }

    fn imp_encodings_are_sharing_insensitive(seed in seeds(), depth in 1u32..5) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let c = imp::gen_cmd(&mut rng, depth);
        let t = imp::encode(&c).unwrap();
        sharing_and_hints_are_invisible(&t);
        let t2 = imp::encode(&c).unwrap();
        prop_assert_eq!(&t2, &t);
        prop_assert_eq!(hash_of(&t2), hash_of(&t));
    }
}

#[test]
fn miniml_encodings_are_sharing_insensitive() {
    for prog in [miniml::add_fn(), miniml::mul_fn(), miniml::fact_fn()] {
        let t = miniml::encode(&prog).unwrap();
        sharing_and_hints_are_invisible(&t);
        let t2 = miniml::encode(&prog).unwrap();
        assert_eq!(t2, t);
        assert_eq!(hash_of(&t2), hash_of(&t));
    }
}

/// A directly constructed example: `(c, c)` with the two components
/// sharing one node vs. two separate allocations.
#[test]
fn explicit_sharing_vs_copies() {
    let c = TermRef::new(Term::app(Term::cnst("f"), Term::cnst("a")));
    let shared = Term::Pair(c.clone(), c);
    let copies = Term::pair(
        Term::app(Term::cnst("f"), Term::cnst("a")),
        Term::app(Term::cnst("f"), Term::cnst("a")),
    );
    assert_eq!(shared, copies);
    assert_eq!(hash_of(&shared), hash_of(&copies));
}
