//! Integration tests for warm images (PR 7): a store + cache bundle
//! saved from one isolated store and reloaded into another must replay
//! the same workload with **zero rule-NF cache misses**, identical
//! results, and live persistence counters; corrupted images must be
//! rejected outright.

use hoas::core::prelude::*;
use hoas::langs::fol;
use hoas::rewrite::image::{inspect_warm_image, load_warm_image, save_warm_image};
use hoas::rewrite::rulesets::fol_prenex;
use hoas::rewrite::{Engine, EngineCaches, EngineConfig};
use hoas_bench::workloads;

/// Builds the shared workload inside the current store.
fn workload() -> (Signature, Vec<Term>) {
    let (vocab, fs) = workloads::formulas(workloads::SEED, 3, 6);
    let sig = vocab.signature();
    let encoded = fs.iter().map(|f| fol::encode(f).expect("closed")).collect();
    (sig, encoded)
}

/// Normalizes the workload against `caches`, returning printed results
/// (strings cross store boundaries; terms do not).
fn normalize_all(caches: EngineCaches) -> (Vec<String>, hoas::rewrite::EngineStats) {
    let (sig, encoded) = workload();
    let rules = fol_prenex::rules(&sig).expect("connectives present");
    let engine = Engine::with_caches(&sig, &rules, EngineConfig::default(), caches);
    let results = encoded
        .iter()
        .map(|e| {
            let out = engine.normalize(&fol::o(), e).expect("well-typed");
            assert!(out.fixpoint);
            out.term.to_string()
        })
        .collect();
    (results, engine.stats())
}

/// Saves a warm image (and the cold results) from an isolated store.
fn build_image() -> (Vec<u8>, Vec<String>) {
    StoreHandle::isolated().enter(|| {
        let caches = EngineCaches::new();
        let (results, _) = normalize_all(caches.clone());
        // The workload is rebuilt inside `normalize_all`, whose terms
        // die with it — but interned nodes persist until a sweep, so
        // the snapshot still carries every cache key.
        (save_warm_image(&caches), results)
    })
}

#[test]
fn warm_reload_replays_with_zero_misses() {
    let (image, cold_results) = build_image();

    StoreHandle::isolated().enter(|| {
        // Pre-intern a salt term so the loader's ids cannot all
        // coincide with the writer's; the remap path must do real work.
        let _salt = TermRef::new(Term::Int(0x1a6e));
        let caches = EngineCaches::new();
        let stats = load_warm_image(&image, &caches).expect("image loads");
        assert!(stats.pool_nodes > 0);
        assert!(stats.canon_entries > 0);
        assert!(stats.rule_nf_entries > 0);
        assert!(stats.root_memo_entries > 0);
        assert!(stats.entries_reloaded > 0);
        assert!(stats.remapped_ids > 0, "salted store must remap ids");

        let (warm_results, es) = normalize_all(caches);
        assert_eq!(warm_results, cold_results, "warm results differ from cold");
        assert_eq!(es.cache_misses, 0, "warm replay took rule-NF misses");
        assert!(es.memo_hits > 0, "root memo never hit on warm replay");
        // The persistence counters CI asserts on.
        assert!(es.image_bytes > 0);
        assert!(es.remapped_ids > 0);
        assert!(es.cache_entries_reloaded > 0);
        assert!(es.hashed_nodes > 0);
    });
}

#[test]
fn image_inspect_validates_without_caches() {
    let (image, _) = build_image();
    StoreHandle::isolated().enter(|| {
        let stats = inspect_warm_image(&image).expect("image inspects");
        assert_eq!(stats.bytes, image.len() as u64);
        assert!(stats.pool_nodes > 0 && stats.entries_reloaded > 0);
    });
}

#[test]
fn corrupt_images_are_rejected() {
    let (image, _) = build_image();
    StoreHandle::isolated().enter(|| {
        // Truncations at coarse strides (every byte would be slow on a
        // multi-KB image; codec_props covers the exhaustive sweep on
        // smaller streams of the same framing).
        for len in (0..image.len()).step_by(7) {
            assert!(
                load_warm_image(&image[..len], &EngineCaches::new()).is_err(),
                "truncation to {len} bytes was accepted"
            );
        }
        // Bit flips, one per stride.
        let mut work = image.clone();
        for i in (0..work.len()).step_by(5) {
            let bit = 1u8 << (i % 8);
            work[i] ^= bit;
            assert!(
                load_warm_image(&work, &EngineCaches::new()).is_err(),
                "bit flip in byte {i} was accepted"
            );
            work[i] ^= bit;
        }
    });
}
