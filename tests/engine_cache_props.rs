//! Property tests for the normal-form cache: a cached engine must be
//! observationally identical to a cache-disabled one — same normal form,
//! same step count, same applied-rule list, and the same full
//! [`RewriteStep`] trace — across all four bundled rule sets and both
//! strategies. Also checks the `EngineStats` bookkeeping invariants and
//! the strategy-confluence regression on the strategy-ablation workload.
//!
//! [`RewriteStep`]: hoas::rewrite::RewriteStep

use hoas::core::prelude::*;
use hoas::langs::{fol, imp, miniml};
use hoas::rewrite::rulesets::{fol_cnf, fol_prenex, imp_opt, miniml_opt};
use hoas::rewrite::{Engine, EngineConfig, RuleSet, Strategy};
use hoas_testkit::prelude::*;

const STRATEGIES: [Strategy; 2] = [Strategy::LeftmostOutermost, Strategy::LeftmostInnermost];

/// Runs the same normalization with the cache on and off and asserts the
/// two engines are indistinguishable through every observable of
/// `NormalizeResult`, plus the stats invariants.
fn assert_cache_transparent(
    sig: &Signature,
    rules: &RuleSet,
    ty: &Ty,
    subject: &Term,
    strategy: Strategy,
) {
    let cached = Engine::with_config(
        sig,
        rules,
        EngineConfig {
            strategy,
            ..EngineConfig::default()
        },
    );
    let uncached = Engine::with_config(
        sig,
        rules,
        EngineConfig {
            strategy,
            cache: false,
            ..EngineConfig::default()
        },
    );
    let a = cached.normalize(ty, subject).unwrap();
    let b = uncached.normalize(ty, subject).unwrap();
    assert_eq!(a.term, b.term, "normal forms differ ({strategy:?})");
    assert_eq!(a.steps, b.steps, "step counts differ ({strategy:?})");
    assert_eq!(a.applied, b.applied, "applied lists differ ({strategy:?})");
    assert_eq!(a.trace, b.trace, "traces differ ({strategy:?})");
    assert_eq!(a.fixpoint, b.fixpoint);
    // Stats bookkeeping: every lookup is a hit or a miss, and only the
    // cached engine performs lookups.
    assert_eq!(
        a.stats.cache_hits + a.stats.cache_misses,
        a.stats.cache_lookups
    );
    assert_eq!(b.stats.cache_lookups, 0);
    assert_eq!(b.stats.cache_hits, 0);
    let total = cached.stats();
    assert_eq!(total.cache_hits + total.cache_misses, total.cache_lookups);
    assert!(total.cache_lookups >= a.stats.cache_lookups);
}

props! {
    #![cases(48)]

    fn fol_rulesets_cache_transparent(seed in seeds(), depth in 2u32..5) {
        let vocab = fol::Vocabulary::small();
        let sig = vocab.signature();
        let mut rng = SmallRng::seed_from_u64(seed);
        let f = fol::gen_formula(&vocab, &mut rng, depth);
        let t = fol::encode(&f).unwrap();
        for rules in [fol_prenex::rules(&sig).unwrap(), fol_cnf::rules(&sig).unwrap()] {
            for strategy in STRATEGIES {
                assert_cache_transparent(&sig, &rules, &fol::o(), &t, strategy);
            }
        }
    }

    fn imp_ruleset_cache_transparent(seed in seeds(), depth in 2u32..5) {
        let sig = imp::signature();
        let rules = imp_opt::rules(sig).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let c = imp::gen_cmd(&mut rng, depth);
        let t = imp::encode(&c).unwrap();
        for strategy in STRATEGIES {
            assert_cache_transparent(sig, &rules, &imp::cmd_ty(), &t, strategy);
        }
    }
}

/// Mini-ML programs are structured (not generator-driven), so the fourth
/// rule set is exercised on the standard arithmetic workload.
#[test]
fn miniml_ruleset_cache_transparent() {
    let sig = miniml::signature();
    let rules = miniml_opt::rules(sig).unwrap();
    use hoas::langs::miniml::Exp;
    let programs = [
        Exp::app(Exp::app(miniml::add_fn(), Exp::num(6)), Exp::num(7)),
        Exp::app(Exp::app(miniml::mul_fn(), Exp::num(3)), Exp::num(4)),
        Exp::app(miniml::fact_fn(), Exp::num(3)),
        Exp::let_("x", Exp::num(2), Exp::var("x")),
        Exp::case(Exp::num(2), Exp::num(0), "n", Exp::var("n")),
    ];
    for p in &programs {
        let t = miniml::encode(p).unwrap();
        for strategy in STRATEGIES {
            assert_cache_transparent(sig, &rules, &miniml::exp(), &t, strategy);
        }
    }
}

/// The cache must actually fire on a realistic multi-pass workload: the
/// bench prenex instances restart from the root after every rewrite, so
/// already-proven subtrees are revisited and must hit.
#[test]
fn prenex_workload_has_cache_hits() {
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let rules = fol_prenex::rules(&sig).unwrap();
    let engine = Engine::new(&sig, &rules);
    let mut rng = SmallRng::seed_from_u64(0x4F_50_55_53);
    let mut hits = 0;
    for _ in 0..10 {
        let f = fol::gen_formula(&vocab, &mut rng, 5);
        let out = engine
            .normalize(&fol::o(), &fol::encode(&f).unwrap())
            .unwrap();
        assert!(out.fixpoint);
        hits += out.stats.cache_hits;
    }
    let total = engine.stats();
    assert!(hits > 0, "no cache hits on the prenex workload: {total:?}");
    assert!(total.cache_hit_rate() > 0.0);
}

/// Caches survive their engine: a second engine built over the first
/// engine's [`EngineCaches`] handle must replay an identical workload
/// from warm caches — same results, nonzero hit counters — even though
/// the first engine (and its result terms) have been dropped. Sound
/// because cache keys are store-scoped `NodeId`s that are never reused,
/// so a dead subject's entries are merely unreachable, never stale.
#[test]
fn caches_are_reusable_across_engine_instances() {
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let rules = fol_prenex::rules(&sig).unwrap();
    let mut rng = SmallRng::seed_from_u64(0x50_52_35);
    let subjects: Vec<Term> = (0..8)
        .map(|_| fol::encode(&fol::gen_formula(&vocab, &mut rng, 5)).unwrap())
        .collect();

    let first = Engine::new(&sig, &rules);
    let cold: Vec<_> = subjects
        .iter()
        .map(|t| first.normalize(&fol::o(), t).unwrap())
        .collect();
    let caches = first.caches();
    drop(first);

    let second = Engine::with_caches(&sig, &rules, EngineConfig::default(), caches);
    let mut warm_memo_hits = 0;
    let mut warm_visited = 0;
    let mut cold_visited = 0;
    for (t, a) in subjects.iter().zip(&cold) {
        let b = second.normalize(&fol::o(), t).unwrap();
        assert_eq!(a.term, b.term, "replay changed the normal form");
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.trace, b.trace);
        // Replay is pure cache: every step the cold run derived is
        // replayed from the root-step memo, so nothing falls through to
        // a traversal (no memo or rule-normal-form misses).
        assert_eq!(b.stats.memo_misses, 0, "replay re-derived a root step");
        assert_eq!(b.stats.cache_misses, 0, "replay re-proved a subtree");
        warm_memo_hits += b.stats.memo_hits;
        warm_visited += b.stats.nodes_visited;
        cold_visited += a.stats.nodes_visited;
    }
    assert!(
        warm_memo_hits > 0,
        "shared root-step memo never hit on replay"
    );
    assert!(
        warm_visited < cold_visited,
        "replay did not reduce traversal ({warm_visited} vs {cold_visited})"
    );
}

/// Strategy-confluence regression on the strategy-ablation bench
/// workload: leftmost-outermost and leftmost-innermost must reach α-equal
/// fixpoints on every instance (term equality is α-equality — binder
/// hints are ignored).
#[test]
fn strategy_ablation_workload_is_confluent() {
    let sig = imp::signature();
    let rules = imp_opt::rules(sig).unwrap();
    let mut rng = SmallRng::seed_from_u64(0x4F_50_55_53);
    let outer = Engine::new(sig, &rules);
    let inner = Engine::with_config(
        sig,
        &rules,
        EngineConfig {
            strategy: Strategy::LeftmostInnermost,
            ..EngineConfig::default()
        },
    );
    for _ in 0..10 {
        let c = imp::gen_cmd(&mut rng, 4);
        let t = imp::encode(&c).unwrap();
        let a = outer.normalize(&imp::cmd_ty(), &t).unwrap();
        let b = inner.normalize(&imp::cmd_ty(), &t).unwrap();
        assert!(a.fixpoint && b.fixpoint);
        assert_eq!(
            a.term, b.term,
            "strategies diverged on {c}: {} vs {}",
            a.term, b.term
        );
    }
}
