//! Property tests for the unification stack (experiment E6's correctness
//! side): soundness of pattern unification and Huet pre-unification, and
//! agreement between the two engines on the pattern fragment.

use hoas::core::prelude::*;
use hoas::langs::fol;
use hoas::unify::huet::{pre_unify_terms, HuetConfig};
use hoas::unify::matching::{match_term, MatchConfig};
use hoas::unify::pattern;
use hoas_testkit::prelude::*;

fn vocab() -> fol::Vocabulary {
    fol::Vocabulary::small()
}

/// Generates a ground formula encoding.
fn ground(seed: u64, depth: u32) -> Term {
    let v = vocab();
    let mut rng = SmallRng::seed_from_u64(seed);
    fol::encode(&fol::gen_formula(&v, &mut rng, depth)).unwrap()
}

/// Punches pattern-style holes into a ground term: replaces random
/// subformulas by fresh 0-ary metavariables. Returns the pattern and its
/// metavariable environment.
fn punch_holes(t: &Term, rng: &mut SmallRng, menv: &mut MetaEnv, next: &mut u32) -> Term {
    // `t` is a whole formula (type o). Either replace it by a hole, or
    // recurse into formula-typed argument positions (and/or/imp/not).
    // Quantifier bodies are left alone here — binder-crossing holes are
    // covered by the dedicated unit tests.
    if rng.gen_bool(0.25) {
        let m = MVar::new(*next, format!("H{next}"));
        *next += 1;
        menv.insert(m.clone(), Ty::base("o"));
        return Term::Meta(m);
    }
    let (head, args) = t.spine();
    match head {
        Term::Const(c) if matches!(c.as_str(), "and" | "or" | "imp" | "not") => Term::apps(
            head.clone(),
            args.iter()
                .map(|a| punch_holes(a, rng, menv, next))
                .collect::<Vec<_>>(),
        ),
        _ => t.clone(),
    }
}

props! {
    #![cases(64)]

    fn ground_unification_is_syntactic_equality(seed in seeds(), depth in 1u32..5) {
        let sig = vocab().signature();
        let t = ground(seed, depth);
        // t ≐ t succeeds with the empty substitution…
        let sol = pattern::unify(&sig, &MetaEnv::new(), &fol::o(), &t, &t).unwrap();
        prop_assert!(sol.subst.is_empty());
        // …and t ≐ (not t) fails as a refutation.
        let not_t = Term::app(Term::cnst("not"), t.clone());
        let err = pattern::unify(&sig, &MetaEnv::new(), &fol::o(), &t, &not_t).unwrap_err();
        let refuted = err.is_refutation()
            || matches!(err, hoas::unify::UnifyError::Escape { .. });
        prop_assert!(refuted);
    }

    fn pattern_solutions_equalize(seed in seeds(), hole_seed in seeds(), depth in 2u32..5) {
        let sig = vocab().signature();
        let target = ground(seed, depth);
        let mut rng = SmallRng::seed_from_u64(hole_seed);
        let mut menv = MetaEnv::new();
        let mut next = 0;
        let pat = punch_holes(&target, &mut rng, &mut menv, &mut next);
        let sol = pattern::unify(&sig, &menv, &fol::o(), &pat, &target)
            .expect("a hole-punched pattern always matches its origin");
        let applied = sol.subst.apply(&pat);
        prop_assert_eq!(applied, target);
    }

    fn matching_agrees_with_unification_on_ground_targets(
        seed in seeds(), hole_seed in seeds(), depth in 2u32..5
    ) {
        let sig = vocab().signature();
        let target = ground(seed, depth);
        let mut rng = SmallRng::seed_from_u64(hole_seed);
        let mut menv = MetaEnv::new();
        let mut next = 0;
        let pat = punch_holes(&target, &mut rng, &mut menv, &mut next);
        let m = match_term(
            &sig, &menv, &Ctx::new(), &fol::o(), &pat, &target, &MatchConfig::default(),
        ).unwrap();
        prop_assert!(m.is_some());
        prop_assert_eq!(m.unwrap().apply(&pat), target);
    }

    fn huet_finds_pattern_solutions_too(seed in seeds(), hole_seed in seeds(), depth in 2u32..4) {
        let sig = vocab().signature();
        let target = ground(seed, depth);
        let mut rng = SmallRng::seed_from_u64(hole_seed);
        let mut menv = MetaEnv::new();
        let mut next = 0;
        let pat = punch_holes(&target, &mut rng, &mut menv, &mut next);
        let out = pre_unify_terms(
            &sig, &menv, &fol::o(), &pat, &target, &HuetConfig::default(),
        ).unwrap();
        prop_assert!(!out.solutions.is_empty());
        let s = &out.solutions[0];
        prop_assert!(s.flex_flex.is_empty());
        prop_assert_eq!(s.subst.apply(&pat), target);
    }

    fn unifier_solutions_are_well_typed(seed in seeds(), hole_seed in seeds(), depth in 2u32..5) {
        let sig = vocab().signature();
        let target = ground(seed, depth);
        let mut rng = SmallRng::seed_from_u64(hole_seed);
        let mut menv = MetaEnv::new();
        let mut next = 0;
        let pat = punch_holes(&target, &mut rng, &mut menv, &mut next);
        let sol = pattern::unify(&sig, &menv, &fol::o(), &pat, &target).unwrap();
        for (m, t) in sol.subst.iter() {
            let ty = sol.menv.get(m).expect("solved metas keep their types");
            typeck::check_closed(&sig, t, ty).unwrap();
        }
    }
}

/// Regression (from a historical proptest failure, shrunk to
/// `seed = 13985094489678992364, hole_seed = 13428278277032749853,
/// depth = 2`): a hole-punched pattern must unify with, match against,
/// and Huet-pre-unify with its origin, and all three solutions must
/// equalize the pair. Pinned as a deterministic unit test so the exact
/// historical instance stays covered regardless of harness streams.
#[test]
fn regression_punched_pattern_unifies_with_origin() {
    let seed = 13985094489678992364u64;
    let hole_seed = 13428278277032749853u64;
    let depth = 2u32;
    let sig = vocab().signature();
    let target = ground(seed, depth);
    let mut rng = SmallRng::seed_from_u64(hole_seed);
    let mut menv = MetaEnv::new();
    let mut next = 0;
    let pat = punch_holes(&target, &mut rng, &mut menv, &mut next);
    // Pattern unification.
    let sol = pattern::unify(&sig, &menv, &fol::o(), &pat, &target)
        .expect("a hole-punched pattern always matches its origin");
    assert_eq!(sol.subst.apply(&pat), target);
    // Matching.
    let m = match_term(
        &sig,
        &menv,
        &Ctx::new(),
        &fol::o(),
        &pat,
        &target,
        &MatchConfig::default(),
    )
    .unwrap()
    .expect("matching finds the same instantiation");
    assert_eq!(m.apply(&pat), target);
    // Huet pre-unification.
    let out = pre_unify_terms(
        &sig,
        &menv,
        &fol::o(),
        &pat,
        &target,
        &HuetConfig::default(),
    )
    .unwrap();
    let s = out
        .solutions
        .first()
        .expect("Huet finds the pattern solution");
    assert!(s.flex_flex.is_empty());
    assert_eq!(s.subst.apply(&pat), target);
}

#[test]
fn non_pattern_problem_solved_by_huet_is_sound() {
    // ?F (f a) ≐ p (f (f a)) — a genuinely non-pattern matching problem.
    let sig = vocab().signature();
    let parsed = parse_term(&sig, "?F (f a)").unwrap();
    let mut menv = MetaEnv::new();
    menv.insert(
        parsed.metas.get("F").unwrap().clone(),
        parse_ty("i -> o").unwrap(),
    );
    let target = parse_term(&sig, "p (f (f a))").unwrap().term;
    let cfg = HuetConfig {
        max_solutions: 8,
        ..HuetConfig::default()
    };
    let out = pre_unify_terms(&sig, &menv, &fol::o(), &parsed.term, &target, &cfg).unwrap();
    assert!(!out.solutions.is_empty());
    for s in &out.solutions {
        if s.flex_flex.is_empty() {
            let applied = s.subst.apply(&parsed.term);
            let got = normalize::canon_closed(&sig, &applied, &fol::o()).unwrap();
            let want = normalize::canon_closed(&sig, &target, &fol::o()).unwrap();
            assert_eq!(got, want);
        }
    }
}
