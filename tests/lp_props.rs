//! Cross-validation of the λProlog-style STLC type inference (two
//! clauses + eigenvariables, `hoas-lp`) against the conventional
//! Hindley–Milner implementation (`hoas_langs::miniml_types`) on the pure
//! λ-fragment: both must agree on typability *and* on the principal type
//! up to renaming — two completely different implementations of the same
//! judgment, one of which has no context machinery at all.

use hoas::langs::lambda::{self, LTerm};
use hoas::langs::miniml::Exp;
use hoas::langs::miniml_types::{self, MlTy};
use hoas::lp::examples::stlc_program;
use hoas::lp::solve::{query_menv, solve, SolveConfig};
use hoas::lp::{Clause, Program};
use hoas_core::sig::Signature;
use hoas_core::Term;
use hoas_testkit::gen;
use hoas_testkit::prelude::*;
use std::collections::HashMap;

/// Renders an `MlTy` with variables densely renamed in first-occurrence
/// order.
fn canon_mlty(t: &MlTy) -> String {
    fn go(t: &MlTy, map: &mut HashMap<u32, usize>, out: &mut String) {
        match t {
            MlTy::Nat => out.push_str("nat"),
            MlTy::Var(v) => {
                let n = map.len();
                let id = *map.entry(*v).or_insert(n);
                out.push_str(&format!("v{id}"));
            }
            MlTy::Arrow(a, b) => {
                out.push('(');
                go(a, map, out);
                out.push_str("->");
                go(b, map, out);
                out.push(')');
            }
        }
    }
    let mut out = String::new();
    go(t, &mut HashMap::new(), &mut out);
    out
}

/// Renders an lp answer type (a `tp`-term over `arr`/metavariables) the
/// same way.
fn canon_tp(t: &Term) -> Option<String> {
    fn go(t: &Term, map: &mut HashMap<u32, usize>, out: &mut String) -> Option<()> {
        match t.spine() {
            (Term::Meta(m), args) if args.is_empty() => {
                let n = map.len();
                let id = *map.entry(m.id()).or_insert(n);
                out.push_str(&format!("v{id}"));
                Some(())
            }
            (Term::Const(c), args) if c.as_str() == "arr" && args.len() == 2 => {
                out.push('(');
                go(args[0], map, out)?;
                out.push_str("->");
                go(args[1], map, out)?;
                out.push(')');
                Some(())
            }
            (Term::Const(c), args) if c.as_str() == "base" && args.is_empty() => {
                out.push_str("base");
                Some(())
            }
            _ => None,
        }
    }
    let mut out = String::new();
    go(t, &mut HashMap::new(), &mut out)?;
    Some(out)
}

fn to_exp(t: &LTerm) -> Exp {
    match t {
        LTerm::Var(x) => Exp::var(x.clone()),
        LTerm::Lam(x, b) => Exp::lam(x.clone(), to_exp(b)),
        LTerm::App(f, a) => Exp::app(to_exp(f), to_exp(a)),
    }
}

fn to_lp_syntax(t: &LTerm) -> String {
    match t {
        LTerm::Var(x) => x.clone(),
        LTerm::Lam(x, b) => format!(r"lam (\{x}. {})", to_lp_syntax(b)),
        LTerm::App(f, a) => format!("app ({}) ({})", to_lp_syntax(f), to_lp_syntax(a)),
    }
}

props! {
    #![cases(64)]

    fn lp_inference_agrees_with_hindley_milner(seed in seeds(), size in 2usize..16) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let term = lambda::gen_closed(&mut rng, size);
        // HM via the conventional implementation.
        let hm = miniml_types::infer(&to_exp(&term));
        // The same judgment via two clauses of logic programming.
        let prog = stlc_program();
        let (goal, menv) = query_menv(
            prog.sig(),
            &format!("of ({}) ?T", to_lp_syntax(&term)),
            &[("T", "tp")],
        )
        .unwrap();
        let cfg = SolveConfig {
            max_depth: 256,
            fuel: 200_000,
            ..SolveConfig::default()
        };
        let out = solve(&prog, &menv, &goal, &cfg).unwrap();
        if out.exhausted || out.floundered {
            // Budget-limited instance: inconclusive, skip.
            return Ok(());
        }
        match (hm, out.answers.first()) {
            (Ok(hm_ty), Some(ans)) => {
                let lp_ty = ans.get("T").expect("T bound");
                let lp_canon = canon_tp(lp_ty)
                    .unwrap_or_else(|| panic!("unexpected answer shape: {lp_ty}"));
                prop_assert_eq!(
                    canon_mlty(&hm_ty),
                    lp_canon,
                    "principal types differ for {}", term
                );
            }
            (Err(_), None) => {} // both reject
            (Ok(t), None) => {
                return Err(format!("HM types {term} as {t} but lp finds no proof"));
            }
            (Err(e), Some(a)) => {
                return Err(format!("HM rejects {term} ({e}) but lp answers {a}"));
            }
        }
    }

    fn lp_reachability_agrees_with_bfs_oracle(
        seed in seeds(), n_nodes in 2usize..6, n_edges in 0usize..10
    ) {
        // A generated edge/path program over a random graph, checked
        // against the testkit's BFS oracle: every proved `path` is truly
        // reachable, and when the search terminates without budget cuts,
        // every unproved `path` is truly unreachable.
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = gen::lp_reachability(&mut rng, n_nodes, n_edges);
        let sig = Signature::parse(&spec.sig_src()).unwrap();
        let mut prog = Program::new(sig);
        for (vars, head, body) in spec.clause_srcs() {
            let vars: Vec<(&str, &str)> =
                vars.iter().map(|(v, t)| (v.as_str(), t.as_str())).collect();
            let body: Vec<&str> = body.iter().map(|g| g.as_str()).collect();
            let clause = Clause::parse(prog.sig(), &vars, &head, &body).unwrap();
            prog.push(clause);
        }
        let start = rng.gen_range(0..spec.n_nodes);
        let oracle = spec.reachable_from(start);
        // Cyclic graphs have infinitely many derivations, so the search
        // is depth-bounded; a cut branch makes a *negative* answer
        // inconclusive, but positives stay sound.
        let cfg = SolveConfig {
            max_depth: 2 * spec.n_nodes as u32 + 4,
            fuel: 200_000,
            ..SolveConfig::default()
        };
        for end in 0..spec.n_nodes {
            let (goal, menv) =
                query_menv(prog.sig(), &format!("path n{start} n{end}"), &[]).unwrap();
            let out = solve(&prog, &menv, &goal, &cfg).unwrap();
            prop_assert!(!out.floundered, "ground queries never flounder");
            if !out.answers.is_empty() {
                prop_assert!(
                    oracle.contains(&end),
                    "lp proves path n{} n{} but the oracle disagrees", start, end
                );
            } else if !out.exhausted {
                prop_assert!(
                    !oracle.contains(&end),
                    "exhaustive search misses path n{} n{}", start, end
                );
            }
        }
    }
}

#[test]
fn known_combinators_agree() {
    let cases = [
        (r"\x. x", true),
        (r"\x. \y. x", true),
        (r"\x. \y. \z. (x z) (y z)", true),
        (r"\x. x x", false),
        (r"\f. (\x. f (x x)) (\x. f (x x))", false), // Y combinator
    ];
    let prog = stlc_program();
    for (src, typable) in cases {
        // Build the LTerm by parsing its `lam`/`app` encoding with the
        // λ-calculus signature and decoding.
        let t = {
            let sig = lambda::signature();
            let meta = hoas_core::parse::parse_term(sig, &encode_src(src))
                .unwrap()
                .term;
            lambda::decode(&meta).unwrap()
        };
        let hm = miniml_types::infer(&to_exp(&t));
        let (goal, menv) = query_menv(
            prog.sig(),
            &format!("of ({}) ?T", to_lp_syntax(&t)),
            &[("T", "tp")],
        )
        .unwrap();
        let cfg = SolveConfig {
            max_depth: 256,
            ..SolveConfig::default()
        };
        let out = solve(&prog, &menv, &goal, &cfg).unwrap();
        assert_eq!(hm.is_ok(), typable, "HM on {src}");
        assert_eq!(!out.answers.is_empty(), typable, "lp on {src}");
    }
}

/// Turns a raw λ-source `\x. b` into the `lam`-encoded metalanguage
/// syntax by wrapping binders.
fn encode_src(src: &str) -> String {
    // The metalanguage parser reads `\x. t` as a raw λ; wrap every λ in
    // `lam` and every application in `app` by going through LTerm-free
    // textual substitution is fragile — instead parse the raw λ-term with
    // the kernel parser (it is exactly the metalanguage's syntax) and
    // decode... but raw λs are not `tm` encodings. Pragmatic approach:
    // hand-encode the few shapes used in `known_combinators_agree`.
    match src {
        r"\x. x" => r"lam (\x. x)".to_string(),
        r"\x. \y. x" => r"lam (\x. lam (\y. x))".to_string(),
        r"\x. \y. \z. (x z) (y z)" => {
            r"lam (\x. lam (\y. lam (\z. app (app x z) (app y z))))".to_string()
        }
        r"\x. x x" => r"lam (\x. app x x)".to_string(),
        r"\f. (\x. f (x x)) (\x. f (x x))" => {
            r"app (lam (\f. app (lam (\x. app f (app x x))) (lam (\x. app f (app x x))))) (lam (\y. y))"
                .to_string()
        }
        other => panic!("unknown combinator source: {other}"),
    }
}
