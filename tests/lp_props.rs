//! Cross-validation of the λProlog-style STLC type inference (two
//! clauses + eigenvariables, `hoas-lp`) against the conventional
//! Hindley–Milner implementation (`hoas_langs::miniml_types`) on the pure
//! λ-fragment: both must agree on typability *and* on the principal type
//! up to renaming — two completely different implementations of the same
//! judgment, one of which has no context machinery at all.

use hoas::langs::lambda::{self, LTerm};
use hoas::langs::miniml::Exp;
use hoas::langs::miniml_types::{self, MlTy};
use hoas::lp::examples::{self, stlc_program};
use hoas::lp::solve::{query_menv, solve, solve_certified, SolveConfig};
use hoas::lp::{Clause, CutBy, Goal, LpError, Program};
use hoas_core::sig::Signature;
use hoas_core::term::MetaEnv;
use hoas_core::{MVar, Term, Ty};
use hoas_testkit::gen;
use hoas_testkit::prelude::*;
use std::collections::HashMap;

/// Renders an `MlTy` with variables densely renamed in first-occurrence
/// order.
fn canon_mlty(t: &MlTy) -> String {
    fn go(t: &MlTy, map: &mut HashMap<u32, usize>, out: &mut String) {
        match t {
            MlTy::Nat => out.push_str("nat"),
            MlTy::Var(v) => {
                let n = map.len();
                let id = *map.entry(*v).or_insert(n);
                out.push_str(&format!("v{id}"));
            }
            MlTy::Arrow(a, b) => {
                out.push('(');
                go(a, map, out);
                out.push_str("->");
                go(b, map, out);
                out.push(')');
            }
        }
    }
    let mut out = String::new();
    go(t, &mut HashMap::new(), &mut out);
    out
}

/// Renders an lp answer type (a `tp`-term over `arr`/metavariables) the
/// same way.
fn canon_tp(t: &Term) -> Option<String> {
    fn go(t: &Term, map: &mut HashMap<u32, usize>, out: &mut String) -> Option<()> {
        match t.spine() {
            (Term::Meta(m), args) if args.is_empty() => {
                let n = map.len();
                let id = *map.entry(m.id()).or_insert(n);
                out.push_str(&format!("v{id}"));
                Some(())
            }
            (Term::Const(c), args) if c.as_str() == "arr" && args.len() == 2 => {
                out.push('(');
                go(args[0], map, out)?;
                out.push_str("->");
                go(args[1], map, out)?;
                out.push(')');
                Some(())
            }
            (Term::Const(c), args) if c.as_str() == "base" && args.is_empty() => {
                out.push_str("base");
                Some(())
            }
            _ => None,
        }
    }
    let mut out = String::new();
    go(t, &mut HashMap::new(), &mut out)?;
    Some(out)
}

fn to_exp(t: &LTerm) -> Exp {
    match t {
        LTerm::Var(x) => Exp::var(x.clone()),
        LTerm::Lam(x, b) => Exp::lam(x.clone(), to_exp(b)),
        LTerm::App(f, a) => Exp::app(to_exp(f), to_exp(a)),
    }
}

fn to_lp_syntax(t: &LTerm) -> String {
    match t {
        LTerm::Var(x) => x.clone(),
        LTerm::Lam(x, b) => format!(r"lam (\{x}. {})", to_lp_syntax(b)),
        LTerm::App(f, a) => format!("app ({}) ({})", to_lp_syntax(f), to_lp_syntax(a)),
    }
}

props! {
    #![cases(64)]

    fn lp_inference_agrees_with_hindley_milner(seed in seeds(), size in 2usize..16) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let term = lambda::gen_closed(&mut rng, size);
        // HM via the conventional implementation.
        let hm = miniml_types::infer(&to_exp(&term));
        // The same judgment via two clauses of logic programming.
        let prog = stlc_program();
        let (goal, menv) = query_menv(
            prog.sig(),
            &format!("of ({}) ?T", to_lp_syntax(&term)),
            &[("T", "tp")],
        )
        .unwrap();
        let cfg = SolveConfig {
            max_depth: 256,
            fuel: 200_000,
            ..SolveConfig::default()
        };
        let out = solve(&prog, &menv, &goal, &cfg).unwrap();
        if out.incomplete() || out.floundered {
            // Budget-limited instance: inconclusive, skip.
            return Ok(());
        }
        match (hm, out.answers.first()) {
            (Ok(hm_ty), Some(ans)) => {
                let lp_ty = ans.get("T").expect("T bound");
                let lp_canon = canon_tp(lp_ty)
                    .unwrap_or_else(|| panic!("unexpected answer shape: {lp_ty}"));
                prop_assert_eq!(
                    canon_mlty(&hm_ty),
                    lp_canon,
                    "principal types differ for {}", term
                );
            }
            (Err(_), None) => {} // both reject
            (Ok(t), None) => {
                return Err(format!("HM types {term} as {t} but lp finds no proof"));
            }
            (Err(e), Some(a)) => {
                return Err(format!("HM rejects {term} ({e}) but lp answers {a}"));
            }
        }
    }

    fn lp_reachability_agrees_with_bfs_oracle(
        seed in seeds(), n_nodes in 2usize..6, n_edges in 0usize..10
    ) {
        // A generated edge/path program over a random graph, checked
        // against the testkit's BFS oracle: every proved `path` is truly
        // reachable, and when the search terminates without budget cuts,
        // every unproved `path` is truly unreachable.
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = gen::lp_reachability(&mut rng, n_nodes, n_edges);
        let sig = Signature::parse(&spec.sig_src()).unwrap();
        let mut prog = Program::new(sig);
        for (vars, head, body) in spec.clause_srcs() {
            let vars: Vec<(&str, &str)> =
                vars.iter().map(|(v, t)| (v.as_str(), t.as_str())).collect();
            let body: Vec<&str> = body.iter().map(|g| g.as_str()).collect();
            let clause = Clause::parse(prog.sig(), &vars, &head, &body).unwrap();
            prog.push(clause);
        }
        let start = rng.gen_range(0..spec.n_nodes);
        let oracle = spec.reachable_from(start);
        // Cyclic graphs have infinitely many derivations, so the search
        // is depth-bounded; a cut branch makes a *negative* answer
        // inconclusive, but positives stay sound.
        let cfg = SolveConfig {
            max_depth: 2 * spec.n_nodes as u32 + 4,
            fuel: 200_000,
            ..SolveConfig::default()
        };
        for end in 0..spec.n_nodes {
            let (goal, menv) =
                query_menv(prog.sig(), &format!("path n{start} n{end}"), &[]).unwrap();
            let out = solve(&prog, &menv, &goal, &cfg).unwrap();
            prop_assert!(!out.floundered, "ground queries never flounder");
            if !out.answers.is_empty() {
                prop_assert!(
                    oracle.contains(&end),
                    "lp proves path n{} n{} but the oracle disagrees", start, end
                );
            } else if !out.incomplete() {
                prop_assert!(
                    !oracle.contains(&end),
                    "exhaustive search misses path n{} n{}", start, end
                );
            }
        }
    }
}

#[test]
fn known_combinators_agree() {
    let cases = [
        (r"\x. x", true),
        (r"\x. \y. x", true),
        (r"\x. \y. \z. (x z) (y z)", true),
        (r"\x. x x", false),
        (r"\f. (\x. f (x x)) (\x. f (x x))", false), // Y combinator
    ];
    let prog = stlc_program();
    for (src, typable) in cases {
        // Build the LTerm by parsing its `lam`/`app` encoding with the
        // λ-calculus signature and decoding.
        let t = {
            let sig = lambda::signature();
            let meta = hoas_core::parse::parse_term(sig, &encode_src(src))
                .unwrap()
                .term;
            lambda::decode(&meta).unwrap()
        };
        let hm = miniml_types::infer(&to_exp(&t));
        let (goal, menv) = query_menv(
            prog.sig(),
            &format!("of ({}) ?T", to_lp_syntax(&t)),
            &[("T", "tp")],
        )
        .unwrap();
        let cfg = SolveConfig {
            max_depth: 256,
            ..SolveConfig::default()
        };
        let out = solve(&prog, &menv, &goal, &cfg).unwrap();
        assert_eq!(hm.is_ok(), typable, "HM on {src}");
        assert_eq!(!out.answers.is_empty(), typable, "lp on {src}");
    }
}

/// Turns a raw λ-source `\x. b` into the `lam`-encoded metalanguage
/// syntax by wrapping binders.
fn encode_src(src: &str) -> String {
    // The metalanguage parser reads `\x. t` as a raw λ; wrap every λ in
    // `lam` and every application in `app` by going through LTerm-free
    // textual substitution is fragile — instead parse the raw λ-term with
    // the kernel parser (it is exactly the metalanguage's syntax) and
    // decode... but raw λs are not `tm` encodings. Pragmatic approach:
    // hand-encode the few shapes used in `known_combinators_agree`.
    match src {
        r"\x. x" => r"lam (\x. x)".to_string(),
        r"\x. \y. x" => r"lam (\x. lam (\y. x))".to_string(),
        r"\x. \y. \z. (x z) (y z)" => {
            r"lam (\x. lam (\y. lam (\z. app (app x z) (app y z))))".to_string()
        }
        r"\x. x x" => r"lam (\x. app x x)".to_string(),
        r"\f. (\x. f (x x)) (\x. f (x x))" => {
            r"app (lam (\f. app (lam (\x. app f (app x x))) (lam (\x. app f (app x x))))) (lam (\y. y))"
                .to_string()
        }
        other => panic!("unknown combinator source: {other}"),
    }
}

// ----------------------------------------------------------------------
// Unit tests migrated from `crates/lp/src/solve.rs` (the solver's
// behavioral contract — resolution, enumeration, scoping, floundering —
// plus the new machine-only regressions below).

#[test]
fn append_ground_query() {
    let prog = examples::append_program();
    let (goal, menv) = query_menv(
        prog.sig(),
        "append (cons a nil) (cons b nil) ?Z",
        &[("Z", "i")],
    )
    .unwrap();
    let out = solve(&prog, &menv, &goal, &SolveConfig::default()).unwrap();
    assert_eq!(out.answers.len(), 1);
    assert_eq!(
        out.answers[0].get("Z").unwrap().to_string(),
        "cons a (cons b nil)"
    );
}

#[test]
fn append_enumerates_splits() {
    let prog = examples::append_program();
    // append ?X ?Y (cons a (cons b nil)) — three ways to split.
    let (goal, menv) = query_menv(
        prog.sig(),
        "append ?X ?Y (cons a (cons b nil))",
        &[("X", "i"), ("Y", "i")],
    )
    .unwrap();
    let cfg = SolveConfig {
        max_solutions: 10,
        ..SolveConfig::default()
    };
    let out = solve(&prog, &menv, &goal, &cfg).unwrap();
    assert_eq!(out.answers.len(), 3);
    let xs: Vec<String> = out
        .answers
        .iter()
        .map(|a| a.get("X").unwrap().to_string())
        .collect();
    assert_eq!(xs, vec!["nil", "cons a nil", "cons a (cons b nil)"]);
}

#[test]
fn failing_query_is_empty_not_error() {
    let prog = examples::append_program();
    let (goal, menv) = query_menv(prog.sig(), "append (cons a nil) nil nil", &[]).unwrap();
    let out = solve(&prog, &menv, &goal, &SolveConfig::default()).unwrap();
    assert!(out.answers.is_empty());
    assert!(out.cut.is_none(), "search space was exhausted, not cut");
    assert!(!out.floundered);
}

#[test]
fn depth_bound_reported() {
    // A left-recursive loop: p :- p.
    let sig = Signature::parse("type o. const p : o.").unwrap();
    let mut prog = Program::new(sig);
    prog.push(Clause {
        vars: vec![],
        head: Term::cnst("p"),
        body: Goal::Atom(Term::cnst("p")),
    });
    let (goal, menv) = query_menv(prog.sig(), "p", &[]).unwrap();
    let cfg = SolveConfig {
        max_depth: 32,
        ..SolveConfig::default()
    };
    let out = solve(&prog, &menv, &goal, &cfg).unwrap();
    assert!(out.answers.is_empty());
    assert_eq!(out.cut, Some(CutBy::Depth), "the depth budget fired");
    assert!(out.incomplete());
}

#[test]
fn fuel_bound_reported() {
    // The same loop with a tight fuel budget cuts by fuel before depth.
    let sig = Signature::parse("type o. const p : o.").unwrap();
    let mut prog = Program::new(sig);
    prog.push(Clause {
        vars: vec![],
        head: Term::cnst("p"),
        body: Goal::Atom(Term::cnst("p")),
    });
    let (goal, menv) = query_menv(prog.sig(), "p", &[]).unwrap();
    let cfg = SolveConfig {
        max_depth: u32::MAX,
        fuel: 50,
        ..SolveConfig::default()
    };
    let out = solve(&prog, &menv, &goal, &cfg).unwrap();
    assert!(out.answers.is_empty());
    assert_eq!(out.cut, Some(CutBy::Fuel), "the fuel budget fired");
}

#[test]
fn hypothetical_clause_scoped_to_its_goal() {
    // (q => q) succeeds; q alone fails; and q is gone after the
    // implication: ((q => q), q) fails.
    let sig = Signature::parse("type o. const q : o. const r2 : o.").unwrap();
    let mut prog = Program::new(sig);
    prog.push(Clause {
        vars: vec![],
        head: Term::cnst("r2"),
        body: Goal::True,
    });
    let q = || Goal::Atom(Term::cnst("q"));
    let hypo = || {
        Goal::implies(
            Clause {
                vars: vec![],
                head: Term::cnst("q"),
                body: Goal::True,
            },
            q(),
        )
    };
    let cfg = SolveConfig::default();
    let menv = MetaEnv::new();
    assert_eq!(solve(&prog, &menv, &hypo(), &cfg).unwrap().answers.len(), 1);
    assert!(solve(&prog, &menv, &q(), &cfg).unwrap().answers.is_empty());
    let seq = Goal::and(hypo(), q());
    assert!(solve(&prog, &menv, &seq, &cfg).unwrap().answers.is_empty());
}

#[test]
fn universal_goal_introduces_fresh_constant() {
    // pi x. eq x x succeeds; pi x. eq x a fails (x ≠ a).
    let sig = Signature::parse("type i. type o. const a : i. const eq : i -> i -> o.").unwrap();
    let mut prog = Program::new(sig);
    prog.push(Clause::parse(prog.sig(), &[("X", "i")], "eq ?X ?X", &[]).unwrap());
    let i = Ty::base("i");
    let refl = Goal::pi(
        "x",
        i.clone(),
        Goal::Atom(Term::apps(Term::cnst("eq"), [Term::Var(0), Term::Var(0)])),
    );
    let cfg = SolveConfig::default();
    let menv = MetaEnv::new();
    assert_eq!(solve(&prog, &menv, &refl, &cfg).unwrap().answers.len(), 1);
    let bad = Goal::pi(
        "x",
        i,
        Goal::Atom(Term::apps(
            Term::cnst("eq"),
            [Term::Var(0), Term::cnst("a")],
        )),
    );
    assert!(solve(&prog, &menv, &bad, &cfg).unwrap().answers.is_empty());
}

#[test]
fn eigenvariable_scope_violation_rejected() {
    // pi x. eq ?Y x must FAIL: ?Y was created before x and must not
    // capture it (the essence of mixed-prefix unification).
    let sig = Signature::parse("type i. type o. const eq : i -> i -> o.").unwrap();
    let mut prog = Program::new(sig);
    prog.push(Clause::parse(prog.sig(), &[("X", "i")], "eq ?X ?X", &[]).unwrap());
    let y = MVar::new(0, "Y");
    let mut menv = MetaEnv::new();
    menv.insert(y.clone(), Ty::base("i"));
    let goal = Goal::pi(
        "x",
        Ty::base("i"),
        Goal::Atom(Term::apps(Term::cnst("eq"), [Term::Meta(y), Term::Var(0)])),
    );
    let out = solve(&prog, &menv, &goal, &SolveConfig::default()).unwrap();
    assert!(
        out.answers.is_empty(),
        "?Y := eigenvariable would escape its scope"
    );
}

#[test]
fn local_clause_with_vars_rejected() {
    let sig = Signature::parse("type o. const q : o.").unwrap();
    let prog = Program::new(sig);
    let bad = Goal::implies(
        Clause {
            vars: vec![(hoas_core::Sym::new("X"), Ty::base("o"))],
            head: Term::cnst("q"),
            body: Goal::True,
        },
        Goal::Atom(Term::cnst("q")),
    );
    assert!(matches!(
        solve(&prog, &MetaEnv::new(), &bad, &SolveConfig::default()),
        Err(LpError::LocalClauseWithVars(_))
    ));
}

#[test]
fn flexible_atom_flounders() {
    let sig = Signature::parse("type o. const q : o.").unwrap();
    let prog = Program::new(sig);
    let m = MVar::new(0, "G");
    let mut menv = MetaEnv::new();
    menv.insert(m.clone(), Ty::base("o"));
    let out = solve(
        &prog,
        &menv,
        &Goal::Atom(Term::Meta(m)),
        &SolveConfig::default(),
    )
    .unwrap();
    assert!(out.answers.is_empty());
    assert!(out.floundered);
}

// ----------------------------------------------------------------------
// Machine-only regressions: derivation depth is bounded by heap, not by
// the host call stack (the pre-PR-10 recursive solver overflowed the OS
// stack near 10⁴ on these).

/// The unary-numeral program. The base clause comes first so the
/// committed-choice path matches the recursive clause *last* (no
/// debug-build cross-check clones along the chain).
fn nat_program() -> Program {
    let sig =
        Signature::parse("type i. type o. const z : i. const s : i -> i. const nat : i -> o.")
            .unwrap();
    let mut prog = Program::new(sig);
    prog.push(Clause::parse(prog.sig(), &[], "nat z", &[]).unwrap());
    prog.push(Clause::parse(prog.sig(), &[("N", "i")], "nat (s ?N)", &["nat ?N"]).unwrap());
    prog
}

fn church(n: usize) -> Term {
    let mut t = Term::cnst("z");
    for _ in 0..n {
        t = Term::app(Term::cnst("s"), t);
    }
    t
}

#[test]
fn deep_right_recursion_solves_without_host_stack_overflow() {
    // A right-recursive chain of 10⁵ clauses: p0 :- p1. … p99999.
    // The derivation is 10⁵ resolution steps down one branch — the
    // recursive solver's host frames overflowed the OS stack near 10⁴;
    // the machine keeps 10⁵ choice points on the heap and walks back
    // out. (Terms stay shallow on purpose: kernel normalization is
    // recursive over *term* depth, which is a different budget.)
    const DEPTH: usize = 100_000;
    let mut sig = Signature::parse("type o.").unwrap();
    for i in 0..=DEPTH {
        sig.declare_const(
            format!("p{i}").as_str(),
            hoas_core::TyScheme::mono(Ty::base("o")),
        )
        .unwrap();
    }
    let mut prog = Program::new(sig);
    for i in 0..DEPTH {
        prog.push(Clause {
            vars: vec![],
            head: Term::cnst(format!("p{i}").as_str()),
            body: Goal::Atom(Term::cnst(format!("p{}", i + 1).as_str())),
        });
    }
    prog.push(Clause {
        vars: vec![],
        head: Term::cnst(format!("p{DEPTH}").as_str()),
        body: Goal::True,
    });
    let (goal, menv) = query_menv(prog.sig(), "p0", &[]).unwrap();
    let cfg = SolveConfig {
        max_depth: DEPTH as u32 + 8,
        fuel: 20_000_000,
        ..SolveConfig::default()
    };
    let out = solve(&prog, &menv, &goal, &cfg).unwrap();
    assert_eq!(out.answers.len(), 1, "p0 is provable through 10⁵ steps");
    assert!(out.cut.is_none());
}

#[test]
fn deep_committed_chain_threads_state_by_move() {
    // The certificate makes `nat` committed-choice, so the machine
    // threads one state by move the whole way down — no per-step
    // snapshot at all.
    const DEPTH: usize = 256;
    let prog = nat_program();
    let cert = hoas::analyze::modes::analyze_program(&prog).cert;
    let goal = Goal::Atom(Term::apps(Term::cnst("nat"), [church(DEPTH)]));
    let cfg = SolveConfig {
        max_depth: DEPTH as u32 + 8,
        fuel: 20_000_000,
        ..SolveConfig::default()
    };
    let out = solve_certified(&prog, &MetaEnv::new(), &goal, &cfg, &cert).unwrap();
    assert_eq!(out.answers.len(), 1, "nat (s^2048 z) is provable");
    assert!(out.cut.is_none());
}

#[test]
fn iterative_deepening_agrees_with_dfs() {
    use hoas::lp::SearchStrategy;
    let prog = examples::append_program();
    let (goal, menv) = query_menv(
        prog.sig(),
        "append ?X ?Y (cons a (cons b nil))",
        &[("X", "i"), ("Y", "i")],
    )
    .unwrap();
    let dfs = solve(
        &prog,
        &menv,
        &goal,
        &SolveConfig {
            max_solutions: 10,
            ..SolveConfig::default()
        },
    )
    .unwrap();
    let idfs = solve(
        &prog,
        &menv,
        &goal,
        &SolveConfig {
            max_solutions: 10,
            strategy: SearchStrategy::IterativeDeepening { start: 1, step: 1 },
            ..SolveConfig::default()
        },
    )
    .unwrap();
    let xs = |o: &hoas::lp::Outcome| {
        let mut v: Vec<String> = o
            .answers
            .iter()
            .map(|a| a.get("X").unwrap().to_string())
            .collect();
        v.sort();
        v
    };
    assert_eq!(xs(&dfs), xs(&idfs), "same answer set up to order");
}
