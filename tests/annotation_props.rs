//! Property tests for the shared-representation annotation invariants.
//!
//! Every term node caches `max_free` (one past the maximal free de Bruijn
//! index) and `has_meta`. Since `TermRef::new` is the only way to build a
//! node, these can never go stale — but the computation itself must agree
//! with a from-scratch traversal after every kernel operation: parsing,
//! shifting, substitution, normalization, and unification solutions.
//!
//! The pointer-identity unit tests at the bottom pin down the zero-copy
//! contract: `shift` on a closed term and `subst` into a term that does
//! not mention the substituted variable return the original nodes.

use hoas::core::prelude::*;
use hoas::core::TermRef;
use hoas::langs::{fol, lambda};
use hoas::unify::pattern;
use hoas_testkit::prelude::*;

/// `max_free` by full traversal, ignoring every cached annotation.
fn naive_max_free(t: &Term) -> u32 {
    match t {
        Term::Var(i) => i + 1,
        Term::Lam(_, b) => naive_max_free(b).saturating_sub(1),
        Term::App(a, b) | Term::Pair(a, b) => naive_max_free(a).max(naive_max_free(b)),
        Term::Fst(p) | Term::Snd(p) => naive_max_free(p),
        Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => 0,
    }
}

/// `has_meta` by full traversal.
fn naive_has_meta(t: &Term) -> bool {
    match t {
        Term::Meta(_) => true,
        Term::Lam(_, b) => naive_has_meta(b),
        Term::App(a, b) | Term::Pair(a, b) => naive_has_meta(a) || naive_has_meta(b),
        Term::Fst(p) | Term::Snd(p) => naive_has_meta(p),
        Term::Var(_) | Term::Const(_) | Term::Int(_) | Term::Unit => false,
    }
}

/// Checks the cached annotations of every node in `t` against the naive
/// recomputation.
fn annotations_ok(t: &Term) -> bool {
    fn node_ok(r: &TermRef) -> bool {
        r.max_free() == naive_max_free(r)
            && r.has_meta() == naive_has_meta(r)
            && annotations_ok_inner(r)
    }
    fn annotations_ok_inner(t: &Term) -> bool {
        match t {
            Term::Lam(_, b) => node_ok(b),
            Term::App(a, b) | Term::Pair(a, b) => node_ok(a) && node_ok(b),
            Term::Fst(p) | Term::Snd(p) => node_ok(p),
            Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => true,
        }
    }
    t.max_free() == naive_max_free(t)
        && t.has_metas() == naive_has_meta(t)
        && annotations_ok_inner(t)
}

/// Well-typed closed terms of type `tm`, via the λ-calculus generator.
fn well_typed_term(seed: u64, size: usize) -> Term {
    let mut rng = SmallRng::seed_from_u64(seed);
    lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap()
}

props! {
    #![cases(128)]

    fn annotations_agree_after_parse(seed in seeds(), size in 2usize..40) {
        let sig = lambda::signature();
        let t = well_typed_term(seed, size);
        let reparsed = parse_term(sig, &t.to_string()).unwrap().term;
        prop_assert!(annotations_ok(&reparsed));
    }

    fn annotations_agree_after_shift_and_subst(seed in seeds(), size in 2usize..30, d in 0u32..4) {
        let t = well_typed_term(seed, size);
        prop_assert!(annotations_ok(&subst::shift(&t, d)));
        // An open body that mentions Var(0) and a closed argument.
        let body = Term::apps(Term::cnst("app"), [Term::Var(0), subst::shift(&t, 1)]);
        let arg = well_typed_term(seed.wrapping_add(1), size / 2 + 2);
        prop_assert!(annotations_ok(&subst::instantiate(&body, &arg)));
        prop_assert!(annotations_ok(&subst::subst(&body, 0, &arg)));
    }

    fn annotations_agree_after_normalization(seed in seeds(), size in 2usize..30) {
        let sig = lambda::signature();
        let t = well_typed_term(seed, size);
        let redex = Term::app(Term::lam("y", Term::Var(0)), t);
        prop_assert!(annotations_ok(&normalize::nf(&redex)));
        prop_assert!(annotations_ok(&normalize::whnf(&redex)));
        let c = normalize::canon_closed(sig, &redex, &lambda::tm()).unwrap();
        prop_assert!(annotations_ok(&c));
    }

    fn annotations_agree_after_unification_solutions(seed in seeds(), depth in 1u32..4) {
        let vocab = fol::Vocabulary::small();
        let sig = vocab.signature();
        let mut rng = SmallRng::seed_from_u64(seed);
        let left = fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap();
        let right = fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap();
        // ?P ∧ left ≐ right ∧ left: the solution binds ?P to `right`.
        let m = MVar::new(0, "P");
        let mut menv = MetaEnv::new();
        menv.insert(m.clone(), Ty::base("o"));
        let pat = Term::apps(Term::cnst("and"), [Term::Meta(m), left.clone()]);
        let target = Term::apps(Term::cnst("and"), [right, left]);
        let sol = pattern::unify(&sig, &menv, &Ty::base("o"), &pat, &target).unwrap();
        for (_, t) in sol.subst.iter() {
            prop_assert!(annotations_ok(t));
        }
        prop_assert!(annotations_ok(&sol.subst.apply(&pat)));
    }
}

/// `shift` on a closed term returns the very same nodes (`Rc` pointer
/// identity below the root), i.e. performs zero node allocations.
#[test]
fn shift_on_closed_term_is_pointer_identical() {
    let t = well_typed_term(0xC0FFEE, 24);
    assert!(t.is_locally_closed());
    let shifted = subst::shift(&t, 7);
    assert_eq!(shifted, t);
    match (&t, &shifted) {
        (Term::App(f1, a1), Term::App(f2, a2)) => {
            assert!(TermRef::ptr_eq(f1, f2), "function child must be shared");
            assert!(TermRef::ptr_eq(a1, a2), "argument child must be shared");
        }
        (Term::Lam(_, b1), Term::Lam(_, b2)) => {
            assert!(TermRef::ptr_eq(b1, b2), "λ body must be shared");
        }
        _ => panic!("generator produced an unexpected shape"),
    }
}

/// `subst` into a term that does not mention the substituted variable
/// returns the original nodes unchanged.
#[test]
fn subst_without_occurrence_is_pointer_identical() {
    let t = well_typed_term(0xBEEF, 24);
    assert!(t.is_locally_closed());
    let arg = Term::cnst("lam");
    // t is closed, so no variable — in particular not Var(0) — occurs.
    let out = subst::subst(&t, 0, &arg);
    assert_eq!(out, t);
    match (&t, &out) {
        (Term::App(f1, a1), Term::App(f2, a2)) => {
            assert!(TermRef::ptr_eq(f1, f2));
            assert!(TermRef::ptr_eq(a1, a2));
        }
        (Term::Lam(_, b1), Term::Lam(_, b2)) => {
            assert!(TermRef::ptr_eq(b1, b2));
        }
        _ => panic!("generator produced an unexpected shape"),
    }
}

/// Substitution into an open term shares the untouched siblings: only the
/// spine from the root to the occurrence is rebuilt.
#[test]
fn subst_shares_untouched_siblings() {
    let closed = well_typed_term(0xABCD, 16);
    assert!(closed.is_locally_closed());
    let body = Term::apps(Term::cnst("app"), [subst::shift(&closed, 1), Term::Var(0)]);
    let arg = Term::cnst("lam");
    let out = subst::instantiate(&body, &arg);
    // The closed left branch survives by pointer.
    let (Term::App(l1, _), Term::App(l2, _)) = (&body, &out) else {
        panic!("expected applications");
    };
    let (Term::App(_, c1), Term::App(_, c2)) = (l1.as_ref(), l2.as_ref()) else {
        panic!("expected nested applications");
    };
    assert!(
        TermRef::ptr_eq(c1, c2),
        "closed sibling must be shared, not cloned"
    );
}
