//! Cross-thread property tests for the sharded term store (PR 6): N
//! worker threads intern *overlapping* randomly-generated term families
//! through one shared store, and the hash-consing contract must hold
//! **across** the threads, not just within each:
//!
//! * same `NodeId` ⇒ structurally α-equivalent (soundness of sharing);
//! * α-equivalent modulo hints ⇒ same `NodeId` (completeness — two
//!   threads independently building the same skeleton land on one node);
//! * per α-class, every thread observes the same cached annotations;
//! * `validate::check_term` passes on every thread's terms;
//! * `store::trim`'s eviction never disturbs a class some thread still
//!   holds live, even while other threads are mid-intern.
//!
//! Determinism: worker `i` draws from the SplitMix64-derived stream
//! `per_thread_seed(HOAS_PROP_SEED, i)`, so any failure replays exactly
//! under the same seed and the same `HOAS_STRESS_THREADS` count,
//! regardless of OS scheduling.

use hoas::core::prelude::*;
use hoas::core::{store, validate};
use hoas::langs::{fol, lambda};
use hoas_testkit::prelude::*;

/// Rebuilds `t` bottom-up with every binder hint replaced; the de Bruijn
/// skeleton is untouched, so the result is α-equivalent modulo hints by
/// construction (same helper as `tests/intern_props.rs`).
fn scramble_hints(t: &Term, counter: &mut u32) -> Term {
    match t {
        Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
        Term::Lam(_, b) => {
            *counter += 1;
            Term::lam(
                format!("scrambled{counter}"),
                scramble_hints(b.term(), counter),
            )
        }
        Term::App(f, a) => Term::app(
            scramble_hints(f.term(), counter),
            scramble_hints(a.term(), counter),
        ),
        Term::Pair(a, b) => Term::pair(
            scramble_hints(a.term(), counter),
            scramble_hints(b.term(), counter),
        ),
        Term::Fst(p) => Term::fst(scramble_hints(p.term(), counter)),
        Term::Snd(p) => Term::snd(scramble_hints(p.term(), counter)),
    }
}

/// One deterministic term family: a mix of λ-calculus and first-order
/// logic encodings, a pure function of `family_seed`. Two threads given
/// the same family seed build α-identical terms independently.
fn family(family_seed: u64) -> Vec<Term> {
    let mut rng = SmallRng::seed_from_u64(family_seed);
    let vocab = fol::Vocabulary::small();
    let mut terms = Vec::new();
    for size in [3usize, 8, 15, 24] {
        terms.push(lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap());
    }
    for depth in [1u32, 2, 3, 4] {
        terms.push(fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap());
    }
    terms
}

/// The tentpole invariant: N threads intern overlapping families (thread
/// `t` builds families `t` and `t+1 mod n`, so every family is built by
/// two distinct threads) into one shared store; afterwards, over *all*
/// terms from *all* threads, `same id ⇔ α-equivalent` must hold, with
/// annotation agreement per class.
#[test]
fn concurrent_interning_identifies_terms_up_to_alpha() {
    let cfg = Config::from_env(1);
    let n = stress_threads();
    let h = StoreHandle::isolated();
    let per_thread: Vec<Vec<(usize, TermRef)>> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..n)
            .map(|t| {
                let h = h.clone();
                s.spawn(move || {
                    h.enter(|| {
                        let mut out = Vec::new();
                        for fam in [t, (t + 1) % n] {
                            let mut counter = 0;
                            for e in family(per_thread_seed(cfg.seed, fam)) {
                                let r = TermRef::new(e.clone());
                                // Completeness across hint scrambling,
                                // concurrently with other threads
                                // interning the same skeletons.
                                let scrambled = TermRef::new(scramble_hints(&e, &mut counter));
                                assert_eq!(
                                    r.id(),
                                    scrambled.id(),
                                    "hint-scrambled rebuild changed the id on thread {t}"
                                );
                                // Annotation validation inside the store's
                                // scope (check_term re-interns through the
                                // thread's current store).
                                validate::check_term(r.term()).unwrap();
                                out.push((t, r));
                            }
                        }
                        out
                    })
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let all: Vec<(usize, TermRef)> = per_thread.into_iter().flatten().collect();
    assert!(!all.is_empty());
    // Both directions of the contract, across every cross-thread pair.
    // (Structural α-equivalence never consults the store, so the check is
    // independent of the machinery it verifies.)
    for (i, (ta, a)) in all.iter().enumerate() {
        for (tb, b) in &all[i + 1..] {
            let same_id = a.id() == b.id();
            let alpha = a.term().alpha_eq_structural(b.term());
            assert_eq!(
                same_id, alpha,
                "cross-thread id/α disagreement between thread {ta}'s {a} and thread {tb}'s {b}"
            );
            if same_id {
                // One class, one set of annotations, whichever thread
                // interned it first.
                assert_eq!(a.max_free(), b.max_free());
                assert_eq!(a.has_meta(), b.has_meta());
                assert_eq!(a.is_beta_normal(), b.is_beta_normal());
                assert!(TermRef::ptr_eq(a, b), "equal ids must be one node");
            }
        }
    }
}

/// Eviction-race regression on generated terms: workers intern families
/// (dropping most terms, holding some) while a dedicated thread runs
/// `store::trim` in a loop. Every class a worker still holds must keep
/// its node: rebuilding the skeleton afterwards lands on the same id, and
/// the held terms still validate.
#[test]
fn trim_under_contention_preserves_live_classes() {
    let cfg = Config::from_env(1);
    let n = stress_threads();
    let h = StoreHandle::isolated();
    std::thread::scope(|s| {
        for t in 0..n {
            let h = h.clone();
            s.spawn(move || {
                h.enter(|| {
                    let mut rng =
                        SmallRng::seed_from_u64(per_thread_seed(cfg.seed ^ 0x7261_6365, t));
                    let mut held = Vec::new();
                    for round in 0..120 {
                        let size = rng.gen_range(3usize..24);
                        let e = lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap();
                        let r = TermRef::new(e);
                        if round % 4 == 0 {
                            held.push(r);
                        } // other refs drop here: food for the trimmer
                    }
                    for r in &held {
                        let again = TermRef::new(r.term().clone());
                        assert_eq!(
                            again.id(),
                            r.id(),
                            "live class lost its node under concurrent trim"
                        );
                        validate::check_term(r.term()).unwrap();
                    }
                });
            });
        }
        let trimmer = h.clone();
        s.spawn(move || {
            trimmer.enter(|| {
                for _ in 0..400 {
                    store::trim();
                    std::thread::yield_now();
                }
            });
        });
    });
}

/// The global store gives the same cross-thread guarantee without any
/// handle plumbing: plain threads (no `enter`) interning one skeleton
/// share a node.
#[test]
fn global_store_shares_across_plain_threads() {
    let build = || {
        TermRef::new(Term::lam(
            "x",
            Term::app(Term::Var(0), Term::cnst("concurrent-global-probe")),
        ))
    };
    let ids: Vec<NodeId> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..4).map(|_| s.spawn(|| build().id())).collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let local = build().id();
    assert!(
        ids.iter().all(|&i| i == local),
        "global store diverged across threads: {ids:?} vs {local}"
    );
}
