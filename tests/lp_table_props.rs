//! Transparency properties for answer tabling (PR 10): the tabled
//! solver must be observationally equivalent to plain SLD search on the
//! answer *set* — tabling may change how answers are found (and may
//! terminate where plain search cannot), never *which* answers exist.
//!
//! Four families:
//!
//! 1. On generated reachability programs, `TableMode::Force` agrees
//!    with the untabled search whenever the untabled search is uncut,
//!    and agrees with the BFS oracle outright whenever the tabled
//!    search itself completes — even on cyclic graphs where plain
//!    search exhausts its depth budget.
//! 2. Table counters are live: a cold pass records variant misses and
//!    insertions, a warm pass over the same tables answers by replay
//!    (nonzero hits, zero generator runs), and both reach the
//!    process-wide `hoas_core::store` mirror.
//! 3. `TableMode::Certified` respects the certificate: a predicate the
//!    analysis marks ineligible (STLC `of`, whose derivations carry
//!    hypothetical clauses) never populates a table.
//! 4. Tables ride warm images: exported through
//!    `hoas_rewrite::image`'s neutral entry form, reloaded, and
//!    absorbed, they answer the same query with zero variant misses.

use hoas::analyze::modes;
use hoas::lp::examples::stlc_program;
use hoas::lp::solve::{query_menv, solve, solve_with, SolveConfig};
use hoas::lp::{Clause, EntryState, Program, SolveTables, TableAnswer, TableMode};
use hoas::rewrite::image::{
    load_warm_image_with_tables, save_warm_image_with_tables, SolverTableEntry,
};
use hoas::rewrite::EngineCaches;
use hoas_core::sig::Signature;
use hoas_core::store;
use hoas_testkit::gen;
use hoas_testkit::prelude::*;
use std::collections::BTreeSet;

/// Builds the `edge`/`path` program of a generated graph spec.
fn reach_program(spec: &gen::LpSpec) -> Program {
    let sig = Signature::parse(&spec.sig_src()).unwrap();
    let mut prog = Program::new(sig);
    for (vars, head, body) in spec.clause_srcs() {
        let vars: Vec<(&str, &str)> = vars.iter().map(|(v, t)| (v.as_str(), t.as_str())).collect();
        let body: Vec<&str> = body.iter().map(|g| g.as_str()).collect();
        prog.push(Clause::parse(prog.sig(), &vars, &head, &body).unwrap());
    }
    prog
}

/// The shared-subtree `opt` workload (the `solver-smoke` shape).
fn fold_program() -> Program {
    let sig = Signature::parse(
        "type e. type o.
         const zero : e. const one : e.
         const plus : e -> e -> e.
         const opt : e -> e -> o.",
    )
    .unwrap();
    let mut prog = Program::new(sig);
    prog.push(Clause::parse(prog.sig(), &[], "opt zero zero", &[]).unwrap());
    prog.push(Clause::parse(prog.sig(), &[], "opt one one", &[]).unwrap());
    prog.push(
        Clause::parse(
            prog.sig(),
            &[("X", "e"), ("Y", "e"), ("A", "e"), ("B", "e")],
            "opt (plus ?X ?Y) (plus ?A ?B)",
            &["opt ?X ?A", "opt ?Y ?B"],
        )
        .unwrap(),
    );
    prog
}

fn shared_tree(depth: usize) -> String {
    let mut tree = String::from("one");
    for _ in 0..depth {
        tree = format!("(plus {tree} {tree})");
    }
    tree
}

/// Renders the `Z`-bindings of an outcome as a canonical answer set.
fn answer_set(out: &hoas::lp::solve::Outcome) -> BTreeSet<String> {
    out.answers
        .iter()
        .map(|a| a.get("Z").expect("Z bound").to_string())
        .collect()
}

props! {
    #![cases(16)]

    fn tabled_search_is_transparent_on_reachability(
        seed in seeds(), n_nodes in 2usize..6, n_edges in 0usize..10
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = gen::lp_reachability(&mut rng, n_nodes, n_edges);
        let prog = reach_program(&spec);
        let start = rng.gen_range(0..spec.n_nodes);
        let oracle: BTreeSet<String> = spec
            .reachable_from(start)
            .into_iter()
            .map(|n| format!("n{n}"))
            .collect();
        let cfg = SolveConfig {
            max_depth: 16 * spec.n_nodes as u32,
            // Enumerate every derivation: the default cap of one answer
            // would hide set-level disagreements.
            max_solutions: 1_000,
            fuel: 200_000,
            ..SolveConfig::default()
        };
        let tabled_cfg = SolveConfig {
            table: TableMode::Force,
            ..cfg
        };
        let (goal, menv) =
            query_menv(prog.sig(), &format!("path n{start} ?Z"), &[("Z", "i")]).unwrap();

        let plain = solve(&prog, &menv, &goal, &cfg).unwrap();
        let mut tables = SolveTables::for_program(&prog);
        let tabled = solve_with(&prog, &menv, &goal, &tabled_cfg, None, &mut tables).unwrap();

        prop_assert!(!plain.floundered && !tabled.floundered, "ground-input queries never flounder");
        // Tabled positives are sound unconditionally, and when the
        // tabled search itself completes (which it does even on cyclic
        // graphs, where plain search is depth-cut), its answer set is
        // exactly the oracle's.
        let tabled_set = answer_set(&tabled);
        prop_assert!(
            tabled_set.is_subset(&oracle),
            "tabled search proved an unreachable node: {:?} ⊄ {:?}", tabled_set, oracle
        );
        if !tabled.incomplete() {
            prop_assert_eq!(
                &tabled_set, &oracle,
                "complete tabled search must enumerate exactly the reachable set"
            );
        }
        // Transparency proper: whenever the plain search is uncut, the
        // two solvers agree on the answer set.
        if !plain.incomplete() {
            prop_assert!(!tabled.incomplete(), "tabling never loses termination");
            prop_assert_eq!(
                answer_set(&plain), tabled_set,
                "tabled and untabled answer sets diverge"
            );
        }
        // Warm repeat over the same tables: identical answers, pure
        // replay for the root variant.
        let warm = solve_with(&prog, &menv, &goal, &tabled_cfg, None, &mut tables).unwrap();
        prop_assert_eq!(answer_set(&warm), answer_set(&tabled));
        if !tabled.incomplete() {
            prop_assert!(warm.tables.hits > 0, "warm repeat must hit the table");
            prop_assert_eq!(warm.tables.variant_misses, 0, "warm repeat re-ran a generator");
        }
    }

    fn table_counters_are_live(depth in 4usize..7) {
        let prog = fold_program();
        let (goal, menv) = query_menv(
            prog.sig(),
            &format!("opt {} ?Z", shared_tree(depth)),
            &[("Z", "e")],
        )
        .unwrap();
        let cfg = SolveConfig {
            max_depth: 1 << (depth + 3),
            fuel: 100_000_000,
            table: TableMode::Force,
            ..SolveConfig::default()
        };
        let before = store::stats();
        let mut tables = SolveTables::for_program(&prog);
        let cold = solve_with(&prog, &menv, &goal, &cfg, None, &mut tables).unwrap();
        let warm = solve_with(&prog, &menv, &goal, &cfg, None, &mut tables).unwrap();
        prop_assert_eq!(cold.answers.len(), 1);
        prop_assert_eq!(warm.answers.len(), 1);
        prop_assert_eq!(cold.answers[0].to_string(), warm.answers[0].to_string());
        prop_assert!(cold.tables.variant_misses > 0, "cold pass never ran a generator");
        prop_assert!(cold.tables.answers_inserted > 0, "cold pass never stored an answer");
        prop_assert!(warm.tables.hits > 0, "warm pass scored no table hit");
        prop_assert_eq!(warm.tables.variant_misses, 0, "warm pass re-ran a generator");
        let delta = store::stats().since(&before);
        prop_assert!(
            delta.table_hits > 0 && delta.table_answers_reused > 0,
            "table counters never reached the store-stats mirror"
        );
    }
}

/// `TableMode::Certified` defers to the certificate: STLC `of` carries
/// hypothetical clauses through every interesting derivation, the
/// analysis marks it ineligible (no HA021), and a certified solve must
/// therefore leave the tables untouched — while `Force` on the same
/// query still respects the locals guard (hypothetical-clause scopes
/// are never tabled), keeping both modes sound.
#[test]
fn certificate_gating_is_respected() {
    let prog = stlc_program();
    let outcome = modes::analyze_program(&prog);
    let verdict = outcome
        .cert
        .verdict(&hoas_core::Sym::new("of"))
        .expect("of analyzed");
    assert!(
        !verdict.table,
        "stlc `of` must not certify as table-eligible"
    );

    let (goal, menv) = query_menv(
        prog.sig(),
        "of (app (lam (\\x. x)) (lam (\\y. y))) ?T",
        &[("T", "tp")],
    )
    .unwrap();
    let cfg = SolveConfig {
        max_depth: 256,
        table: TableMode::Certified,
        ..SolveConfig::default()
    };
    let mut tables = SolveTables::for_program(&prog);
    let out = solve_with(&prog, &menv, &goal, &cfg, Some(&outcome.cert), &mut tables).unwrap();
    assert_eq!(out.answers.len(), 1, "the redex types");
    assert_eq!(tables.len(), 0, "ineligible predicate populated a table");
    assert_eq!(
        out.tables.variant_misses, 0,
        "ineligible predicate ran a generator"
    );
    assert_eq!(out.tables.hits, 0);

    // The fold program's `opt` IS certified eligible: the same Certified
    // mode must table it.
    let prog = fold_program();
    let outcome = modes::analyze_program(&prog);
    let verdict = outcome
        .cert
        .verdict(&hoas_core::Sym::new("opt"))
        .expect("opt analyzed");
    assert!(verdict.table, "`opt` must certify as table-eligible");
    let (goal, menv) = query_menv(
        prog.sig(),
        &format!("opt {} ?Z", shared_tree(6)),
        &[("Z", "e")],
    )
    .unwrap();
    let cfg = SolveConfig {
        max_depth: 1 << 9,
        table: TableMode::Certified,
        ..SolveConfig::default()
    };
    let mut tables = SolveTables::for_program(&prog);
    let out = solve_with(&prog, &menv, &goal, &cfg, Some(&outcome.cert), &mut tables).unwrap();
    assert_eq!(out.answers.len(), 1);
    assert!(
        out.tables.variant_misses > 0,
        "certified-eligible predicate was not tabled"
    );
    assert!(!tables.is_empty() && tables.answer_count() > 0);
}

/// Round-trips live solver tables through the warm-image codec and back
/// into a fresh `SolveTables`, then re-answers the query by pure replay.
#[test]
fn tables_survive_a_warm_image_round_trip() {
    let prog = fold_program();
    let (goal, menv) = query_menv(
        prog.sig(),
        &format!("opt {} ?Z", shared_tree(8)),
        &[("Z", "e")],
    )
    .unwrap();
    let cfg = SolveConfig {
        max_depth: 1 << 11,
        fuel: 100_000_000,
        table: TableMode::Force,
        ..SolveConfig::default()
    };
    let mut tables = SolveTables::for_program(&prog);
    let cold = solve_with(&prog, &menv, &goal, &cfg, None, &mut tables).unwrap();
    assert_eq!(cold.answers.len(), 1);

    // Export through the image's engine-neutral entry form.
    let exported: Vec<SolverTableEntry> = tables
        .entries()
        .map(|(_, e)| SolverTableEntry {
            pred: e.pred.clone(),
            call: e.call.clone(),
            call_tys: e.call_tys.clone(),
            answers: e
                .answers
                .iter()
                .map(|a| (a.term.clone(), a.meta_tys.clone()))
                .collect(),
            complete: e.state == EntryState::Complete,
        })
        .collect();
    assert!(!exported.is_empty());
    let caches = EngineCaches::new();
    let image = save_warm_image_with_tables(&caches, &exported);

    let (stats, reloaded) = load_warm_image_with_tables(&image, &EngineCaches::new()).unwrap();
    assert_eq!(stats.solver_table_entries as usize, exported.len());
    assert_eq!(
        stats.solver_answers as usize,
        exported.iter().map(|e| e.answers.len()).sum::<usize>()
    );

    let mut warm_tables = SolveTables::for_program(&prog);
    for e in reloaded {
        warm_tables.absorb(
            e.pred,
            e.call,
            e.call_tys,
            e.answers
                .into_iter()
                .map(|(term, meta_tys)| TableAnswer { term, meta_tys })
                .collect(),
            e.complete,
        );
    }
    assert_eq!(warm_tables.len(), tables.len());
    assert_eq!(warm_tables.answer_count(), tables.answer_count());

    let warm = solve_with(&prog, &menv, &goal, &cfg, None, &mut warm_tables).unwrap();
    assert_eq!(warm.answers.len(), 1);
    assert_eq!(warm.answers[0].to_string(), cold.answers[0].to_string());
    assert!(warm.tables.hits > 0, "reloaded tables scored no hit");
    assert_eq!(
        warm.tables.variant_misses, 0,
        "reloaded tables re-ran a generator"
    );
    assert_eq!(
        warm.tables.answers_inserted, 0,
        "replay must not re-insert answers"
    );
}
