//! Property tests for the static-analysis layer (PR 3).
//!
//! Three families of properties back the `hoas-analyze` checks:
//!
//! 1. *Generalization stays in the fragment*: replacing formula subterms
//!    of a random closed FOL formula with fresh metavariables applied to
//!    every enclosing binder yields a Miller pattern — the construction
//!    the analyzer's HA001 classification and the engine's fast path both
//!    rely on.
//! 2. *Matcher agreement*: on such patterns the deterministic pattern
//!    matcher and the general (Huet-capable) matcher agree on
//!    match/no-match and on the substitution, against both the formula
//!    the pattern was carved from and an unrelated formula.
//! 3. *Annotation validator*: `validate::check_term` accepts everything
//!    the kernel produces (parse, shift/subst, normalization) and rejects
//!    nodes whose cached annotations lie, built through the test-only
//!    backdoor.

use hoas::core::prelude::*;
use hoas::core::{validate, TermRef};
use hoas::langs::{fol, lambda};
use hoas::unify::classify::{classify, PatternClass};
use hoas::unify::matching::{match_pattern, match_term, MatchConfig};
use hoas_testkit::prelude::*;

/// Replaces formula-typed subterms of an encoded FOL formula with fresh
/// metavariables applied to every enclosing bound variable (outermost
/// first). The spine lists distinct variables, so the result is a Miller
/// pattern; because the spine is *complete*, matching the pattern against
/// the original formula can never fail on the vacuous-binder condition.
fn generalize(
    t: &Term,
    depth: u32,
    rng: &mut SmallRng,
    next_meta: &mut u32,
    menv: &mut MetaEnv,
) -> Term {
    if rng.gen_bool(0.3) {
        let id = *next_meta;
        *next_meta += 1;
        let m = MVar::new(id, format!("M{id}"));
        menv.insert(
            m.clone(),
            Ty::arrows((0..depth).map(|_| fol::i()), fol::o()),
        );
        return Term::apps(Term::Meta(m), (0..depth).rev().map(Term::Var));
    }
    match t {
        Term::App(f, a) => match f.as_ref() {
            Term::Const(c) if c.as_str() == "not" => Term::app(
                Term::cnst("not"),
                generalize(a, depth, rng, next_meta, menv),
            ),
            Term::Const(c) if c.as_str() == "forall" || c.as_str() == "exists" => {
                let Term::Lam(h, b) = a.as_ref() else {
                    return t.clone();
                };
                Term::app(
                    Term::cnst(c.as_str()),
                    Term::lam(h.clone(), generalize(b, depth + 1, rng, next_meta, menv)),
                )
            }
            Term::App(g, l) => match g.as_ref() {
                Term::Const(c) if matches!(c.as_str(), "and" | "or" | "imp") => Term::apps(
                    Term::cnst(c.as_str()),
                    [
                        generalize(l, depth, rng, next_meta, menv),
                        generalize(a, depth, rng, next_meta, menv),
                    ],
                ),
                // Binary predicate atom: individuals stay concrete.
                _ => t.clone(),
            },
            // Unary predicate atom.
            _ => t.clone(),
        },
        // Nullary predicate (`r`).
        _ => t.clone(),
    }
}

/// A random closed formula, its signature, and a generalized (Miller)
/// pattern carved out of it with the accompanying metavariable types.
fn generalized(seed: u64, depth: u32) -> (Signature, MetaEnv, Term, Term) {
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let mut rng = SmallRng::seed_from_u64(seed);
    let orig = fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap();
    let mut menv = MetaEnv::new();
    let mut next_meta = 0;
    let pat = generalize(&orig, 0, &mut rng, &mut next_meta, &mut menv);
    (sig, menv, orig, pat)
}

/// Well-typed closed terms of type `tm`, via the λ-calculus generator.
fn well_typed_term(seed: u64, size: usize) -> Term {
    let mut rng = SmallRng::seed_from_u64(seed);
    lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap()
}

props! {
    #![cases(128)]

    fn generalized_formulas_are_miller_patterns(seed in seeds(), depth in 1u32..5) {
        let (_, _, _, pat) = generalized(seed, depth);
        prop_assert_eq!(classify(&pat), PatternClass::Miller);
    }

    fn pattern_matcher_recovers_the_generalized_formula(seed in seeds(), depth in 1u32..5) {
        let (_, _, orig, pat) = generalized(seed, depth);
        let sub = match_pattern(&pat, &orig).unwrap();
        prop_assert!(sub.is_some(), "a pattern matches what it generalizes");
        prop_assert_eq!(sub.unwrap().apply(&pat), orig);
    }

    fn pattern_and_general_matcher_agree(seed in seeds(), depth in 1u32..5) {
        let (sig, menv, orig, pat) = generalized(seed, depth);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
        let vocab = fol::Vocabulary::small();
        let other = fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap();
        for target in [&orig, &other] {
            let fast = match_pattern(&pat, target).unwrap();
            let general = match_term(
                &sig,
                &menv,
                &Ctx::new(),
                &fol::o(),
                &pat,
                target,
                &MatchConfig::default(),
            )
            .unwrap();
            prop_assert_eq!(fast.is_some(), general.is_some());
            if let (Some(f), Some(g)) = (&fast, &general) {
                for (m, _) in menv.iter() {
                    prop_assert_eq!(f.get(m), g.get(m));
                }
                prop_assert_eq!(&f.apply(&pat), target);
            }
        }
    }

    fn validator_accepts_kernel_outputs(seed in seeds(), size in 2usize..30) {
        let sig = lambda::signature();
        let t = well_typed_term(seed, size);
        let reparsed = parse_term(sig, &t.to_string()).unwrap().term;
        prop_assert!(validate::check_term(&reparsed).is_ok());
        let body = Term::apps(Term::cnst("app"), [Term::Var(0), subst::shift(&t, 1)]);
        let arg = well_typed_term(seed.wrapping_add(1), size / 2 + 2);
        prop_assert!(validate::check_term(&subst::instantiate(&body, &arg)).is_ok());
        let redex = Term::app(Term::lam("y", Term::Var(0)), t);
        prop_assert!(validate::check_term(&normalize::nf(&redex)).is_ok());
    }

    fn validator_rejects_corrupted_annotations(seed in seeds(), size in 2usize..30) {
        let t = well_typed_term(seed, size);
        // A closed, meta-free, β-normal term annotated as open: the lie
        // is one field; the other two caches stay truthful.
        let lies = TermRef::new_with_annotations_for_tests(t.clone(), t.max_free() + 1, false, true);
        let err = validate::check_term(&Term::Fst(lies)).unwrap_err();
        prop_assert_eq!(err.field, "max_free");
        // The same term annotated as containing a metavariable.
        let lies = TermRef::new_with_annotations_for_tests(t.clone(), t.max_free(), true, true);
        let err = validate::check_term(&Term::Snd(lies)).unwrap_err();
        prop_assert_eq!(err.field, "has_meta");
        // A β-redex annotated as normal.
        let redex = Term::app(Term::lam("y", Term::Var(0)), t);
        let lies = TermRef::new_with_annotations_for_tests(redex, 0, false, true);
        let err = validate::check_term(&Term::Fst(lies)).unwrap_err();
        prop_assert_eq!(err.field, "beta_normal");
    }
}
