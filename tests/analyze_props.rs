//! Property tests for the static-analysis layer (PR 3).
//!
//! Three families of properties back the `hoas-analyze` checks:
//!
//! 1. *Generalization stays in the fragment*: replacing formula subterms
//!    of a random closed FOL formula with fresh metavariables applied to
//!    every enclosing binder yields a Miller pattern — the construction
//!    the analyzer's HA001 classification and the engine's fast path both
//!    rely on.
//! 2. *Matcher agreement*: on such patterns the deterministic pattern
//!    matcher and the general (Huet-capable) matcher agree on
//!    match/no-match and on the substitution, against both the formula
//!    the pattern was carved from and an unrelated formula.
//! 3. *Annotation validator*: `validate::check_term` accepts everything
//!    the kernel produces (parse, shift/subst, normalization) and rejects
//!    nodes whose cached annotations lie, built through the test-only
//!    backdoor.
//!
//! PR 8 adds three families over the second-generation verdicts:
//!
//! 4. *Sanitizer agreement*: randomly generated well-moded list-transform
//!    programs are inferred mode `(+,-)` and committed-choice, and the
//!    certified solver (whose debug-build dynamic mode sanitizer panics
//!    on any verdict violation) runs them without tripping it.
//! 5. *SCT-certified budget freedom*: a rule set the size-change analysis
//!    proved terminating normalizes random formulas to a fixpoint even
//!    when the configured step budget is far too small — the certificate
//!    drops the budget bookkeeping, and the result agrees with an
//!    uncertified engine given a generous budget.
//! 6. *Determinacy-pruning agreement*: on programs mixing committed and
//!    genuinely nondeterministic predicates, `solve_certified` returns
//!    exactly the answers `solve` does, in the same order.

use hoas::analyze::{modes, termination};
use hoas::core::prelude::*;
use hoas::core::{validate, TermRef};
use hoas::langs::{fol, lambda};
use hoas::lp::solve::{query_menv, solve, solve_certified};
use hoas::lp::{Clause, Program, SolveConfig};
use hoas::rewrite::rulesets::fol_cnf;
use hoas::rewrite::{Engine, EngineConfig, Rule, RuleSet};
use hoas::unify::classify::{classify, PatternClass};
use hoas::unify::matching::{match_pattern, match_term, MatchConfig};
use hoas_testkit::prelude::*;

/// Replaces formula-typed subterms of an encoded FOL formula with fresh
/// metavariables applied to every enclosing bound variable (outermost
/// first). The spine lists distinct variables, so the result is a Miller
/// pattern; because the spine is *complete*, matching the pattern against
/// the original formula can never fail on the vacuous-binder condition.
fn generalize(
    t: &Term,
    depth: u32,
    rng: &mut SmallRng,
    next_meta: &mut u32,
    menv: &mut MetaEnv,
) -> Term {
    if rng.gen_bool(0.3) {
        let id = *next_meta;
        *next_meta += 1;
        let m = MVar::new(id, format!("M{id}"));
        menv.insert(
            m.clone(),
            Ty::arrows((0..depth).map(|_| fol::i()), fol::o()),
        );
        return Term::apps(Term::Meta(m), (0..depth).rev().map(Term::Var));
    }
    match t {
        Term::App(f, a) => match f.as_ref() {
            Term::Const(c) if c.as_str() == "not" => Term::app(
                Term::cnst("not"),
                generalize(a, depth, rng, next_meta, menv),
            ),
            Term::Const(c) if c.as_str() == "forall" || c.as_str() == "exists" => {
                let Term::Lam(h, b) = a.as_ref() else {
                    return t.clone();
                };
                Term::app(
                    Term::cnst(c.as_str()),
                    Term::lam(h.clone(), generalize(b, depth + 1, rng, next_meta, menv)),
                )
            }
            Term::App(g, l) => match g.as_ref() {
                Term::Const(c) if matches!(c.as_str(), "and" | "or" | "imp") => Term::apps(
                    Term::cnst(c.as_str()),
                    [
                        generalize(l, depth, rng, next_meta, menv),
                        generalize(a, depth, rng, next_meta, menv),
                    ],
                ),
                // Binary predicate atom: individuals stay concrete.
                _ => t.clone(),
            },
            // Unary predicate atom.
            _ => t.clone(),
        },
        // Nullary predicate (`r`).
        _ => t.clone(),
    }
}

/// A random closed formula, its signature, and a generalized (Miller)
/// pattern carved out of it with the accompanying metavariable types.
fn generalized(seed: u64, depth: u32) -> (Signature, MetaEnv, Term, Term) {
    let vocab = fol::Vocabulary::small();
    let sig = vocab.signature();
    let mut rng = SmallRng::seed_from_u64(seed);
    let orig = fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap();
    let mut menv = MetaEnv::new();
    let mut next_meta = 0;
    let pat = generalize(&orig, 0, &mut rng, &mut next_meta, &mut menv);
    (sig, menv, orig, pat)
}

/// Well-typed closed terms of type `tm`, via the λ-calculus generator.
fn well_typed_term(seed: u64, size: usize) -> Term {
    let mut rng = SmallRng::seed_from_u64(seed);
    lambda::encode(&lambda::gen_closed(&mut rng, size)).unwrap()
}

/// A random well-moded, terminating list-transform program.
///
/// Predicates `t0..t{n-1} : i -> i -> o` are each either a structural
/// map (base clause plus a first-argument-indexed recursive clause) or a
/// single composition clause threading ground data left to right through
/// earlier predicates — so every `t_j` admits mode `(+,-)`, is
/// committed-choice by construction, and is functional (exactly one
/// answer per ground input). A deliberately nondeterministic
/// `mem : i -> i -> o` rides along so determinacy pruning has something
/// it must *not* prune.
fn moded_program(seed: u64) -> (Program, usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(2usize..5);
    let mut decls = String::from(
        "type i.
         type o.
         const nil : i.
         const cons : i -> i -> i.
         const a : i.
         const b : i.
         const c : i.
         const mem : i -> i -> o.",
    );
    for j in 0..n {
        decls.push_str(&format!("\nconst t{j} : i -> i -> o."));
    }
    let sig = Signature::parse(&decls).expect("generated signature");
    let mut prog = Program::new(sig);
    let c = |prog: &Program, vars: &[(&str, &str)], head: &str, body: &[&str]| {
        Clause::parse(prog.sig(), vars, head, body).expect("generated clause")
    };
    let mem1 = c(
        &prog,
        &[("X", "i"), ("YS", "i")],
        "mem ?X (cons ?X ?YS)",
        &[],
    );
    prog.push(mem1);
    let mem2 = c(
        &prog,
        &[("X", "i"), ("Y", "i"), ("YS", "i")],
        "mem ?X (cons ?Y ?YS)",
        &["mem ?X ?YS"],
    );
    prog.push(mem2);
    for j in 0..n {
        if j >= 2 && rng.gen_bool(0.4) {
            let p = rng.gen_range(0..j);
            let q = rng.gen_range(0..j);
            let (b1, b2) = (format!("t{p} ?XS ?ZS"), format!("t{q} ?ZS ?YS"));
            let comp = c(
                &prog,
                &[("XS", "i"), ("YS", "i"), ("ZS", "i")],
                &format!("t{j} ?XS ?YS"),
                &[&b1, &b2],
            );
            prog.push(comp);
        } else {
            let elem = ["?X", "a", "b", "c"][rng.gen_range(0..4)];
            let base = c(&prog, &[], &format!("t{j} nil nil"), &[]);
            prog.push(base);
            let body = format!("t{j} ?XS ?YS");
            let step = c(
                &prog,
                &[("X", "i"), ("XS", "i"), ("YS", "i")],
                &format!("t{j} (cons ?X ?XS) (cons {elem} ?YS)"),
                &[&body],
            );
            prog.push(step);
        }
    }
    (prog, n)
}

/// A random ground list literal like `cons a (cons c nil)`.
fn ground_list(rng: &mut SmallRng, len: usize) -> String {
    let mut s = String::from("nil");
    for _ in 0..len {
        let e = ["a", "b", "c"][rng.gen_range(0..3)];
        s = format!("cons {e} ({s})");
    }
    s
}

props! {
    #![cases(128)]

    fn generalized_formulas_are_miller_patterns(seed in seeds(), depth in 1u32..5) {
        let (_, _, _, pat) = generalized(seed, depth);
        prop_assert_eq!(classify(&pat), PatternClass::Miller);
    }

    fn pattern_matcher_recovers_the_generalized_formula(seed in seeds(), depth in 1u32..5) {
        let (_, _, orig, pat) = generalized(seed, depth);
        let sub = match_pattern(&pat, &orig).unwrap();
        prop_assert!(sub.is_some(), "a pattern matches what it generalizes");
        prop_assert_eq!(sub.unwrap().apply(&pat), orig);
    }

    fn pattern_and_general_matcher_agree(seed in seeds(), depth in 1u32..5) {
        let (sig, menv, orig, pat) = generalized(seed, depth);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
        let vocab = fol::Vocabulary::small();
        let other = fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap();
        for target in [&orig, &other] {
            let fast = match_pattern(&pat, target).unwrap();
            let general = match_term(
                &sig,
                &menv,
                &Ctx::new(),
                &fol::o(),
                &pat,
                target,
                &MatchConfig::default(),
            )
            .unwrap();
            prop_assert_eq!(fast.is_some(), general.is_some());
            if let (Some(f), Some(g)) = (&fast, &general) {
                for (m, _) in menv.iter() {
                    prop_assert_eq!(f.get(m), g.get(m));
                }
                prop_assert_eq!(&f.apply(&pat), target);
            }
        }
    }

    fn validator_accepts_kernel_outputs(seed in seeds(), size in 2usize..30) {
        let sig = lambda::signature();
        let t = well_typed_term(seed, size);
        let reparsed = parse_term(sig, &t.to_string()).unwrap().term;
        prop_assert!(validate::check_term(&reparsed).is_ok());
        let body = Term::apps(Term::cnst("app"), [Term::Var(0), subst::shift(&t, 1)]);
        let arg = well_typed_term(seed.wrapping_add(1), size / 2 + 2);
        prop_assert!(validate::check_term(&subst::instantiate(&body, &arg)).is_ok());
        let redex = Term::app(Term::lam("y", Term::Var(0)), t);
        prop_assert!(validate::check_term(&normalize::nf(&redex)).is_ok());
    }

    fn validator_rejects_corrupted_annotations(seed in seeds(), size in 2usize..30) {
        let t = well_typed_term(seed, size);
        // A closed, meta-free, β-normal term annotated as open: the lie
        // is one field; the other two caches stay truthful.
        let lies = TermRef::new_with_annotations_for_tests(t.clone(), t.max_free() + 1, false, true);
        let err = validate::check_term(&Term::Fst(lies)).unwrap_err();
        prop_assert_eq!(err.field, "max_free");
        // The same term annotated as containing a metavariable.
        let lies = TermRef::new_with_annotations_for_tests(t.clone(), t.max_free(), true, true);
        let err = validate::check_term(&Term::Snd(lies)).unwrap_err();
        prop_assert_eq!(err.field, "has_meta");
        // A β-redex annotated as normal.
        let redex = Term::app(Term::lam("y", Term::Var(0)), t);
        let lies = TermRef::new_with_annotations_for_tests(redex, 0, false, true);
        let err = validate::check_term(&Term::Fst(lies)).unwrap_err();
        prop_assert_eq!(err.field, "beta_normal");
    }

    fn sanitizer_agrees_with_the_static_mode_verdict(seed in seeds(), len in 1usize..6) {
        let (prog, n) = moded_program(seed);
        let outcome = modes::analyze_program(&prog);
        for j in 0..n {
            let report = outcome
                .preds
                .iter()
                .find(|(p, _)| p.as_str() == format!("t{j}"))
                .map(|(_, r)| r)
                .expect("every generated predicate is analyzed");
            prop_assert!(
                report.modes.iter().any(|m| m.render() == "(+,-)"),
                "t{} lost its construction mode; inferred {:?}",
                j,
                report.modes.iter().map(|m| m.render()).collect::<Vec<_>>()
            );
            prop_assert!(report.commit.is_some(), "t{} should be committed-choice", j);
        }
        // Tests run in a debug build, so the dynamic mode sanitizer is
        // live inside `solve_certified`: any divergence between the
        // static verdict and the search panics with the HA018 code.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1CE);
        let list = ground_list(&mut rng, len);
        let query = format!("t{} ({list}) ?Z", n - 1);
        let (goal, menv) = query_menv(prog.sig(), &query, &[("Z", "i")]).unwrap();
        let cfg = SolveConfig { max_solutions: 8, ..SolveConfig::default() };
        let out = solve_certified(&prog, &menv, &goal, &cfg, &outcome.cert).unwrap();
        prop_assert_eq!(out.answers.len(), 1, "generated transforms are functional");
        let z = out.answers[0].get("Z").expect("output is bound");
        prop_assert!(z.metas().is_empty(), "well-moded output must be ground: {}", z);
    }

    fn determinacy_pruning_preserves_all_solutions(seed in seeds(), len in 1usize..6) {
        let (prog, n) = moded_program(seed);
        let cert = modes::analyze_program(&prog).cert;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA11);
        let list = ground_list(&mut rng, len);
        let cfg = SolveConfig { max_solutions: 32, ..SolveConfig::default() };
        // A committed query (one answer) and a nondeterministic one
        // (`mem` enumerates every element occurrence): the pruned search
        // must return exactly the unpruned answers, in order.
        let committed = format!("t{} ({list}) ?Z", n - 1);
        let member = format!("mem ?Z ({list})");
        for query in [&committed, &member] {
            let (goal, menv) = query_menv(prog.sig(), query, &[("Z", "i")]).unwrap();
            let plain = solve(&prog, &menv, &goal, &cfg).unwrap();
            let pruned = solve_certified(&prog, &menv, &goal, &cfg, &cert).unwrap();
            prop_assert_eq!(
                plain.answers.len(),
                pruned.answers.len(),
                "answer counts differ on `{}`",
                query
            );
            for (a, b) in plain.answers.iter().zip(&pruned.answers) {
                prop_assert_eq!(&a.bindings, &b.bindings);
            }
        }
        let (goal, menv) = query_menv(prog.sig(), &member, &[("Z", "i")]).unwrap();
        let all = solve(&prog, &menv, &goal, &cfg).unwrap();
        prop_assert_eq!(all.answers.len(), len, "mem hits every occurrence");
    }

    fn sct_certified_sets_ignore_the_step_budget(seed in seeds(), depth in 1u32..4) {
        let vocab = fol::Vocabulary::small();
        let sig = vocab.signature();
        let rs = fol_cnf::rules(&sig).unwrap();
        let cert = termination::analyze_ruleset(&rs)
            .cert
            .expect("fol-cnf is SCT-proven");
        let mut rng = SmallRng::seed_from_u64(seed);
        let f = fol::encode(&fol::gen_formula(&vocab, &mut rng, depth)).unwrap();
        // A step budget far too small for CNF conversion: the certificate
        // drops the budget bookkeeping, so the certified engine still
        // reaches a genuine fixpoint...
        let cfg = EngineConfig { max_steps: 4, ..EngineConfig::default() };
        let mut certified = Engine::with_config(&sig, &rs, cfg.clone());
        prop_assert!(certified.attach_certificate(&cert), "certificate covers its own set");
        let got = certified.normalize(&fol::o(), &f).unwrap();
        prop_assert!(got.fixpoint, "certified run must not stop early");
        // ...agreeing with an uncertified engine under a generous budget,
        // while the same small budget does cut the uncertified engine off.
        let reference = Engine::new(&sig, &rs).normalize(&fol::o(), &f).unwrap();
        prop_assert!(reference.fixpoint);
        prop_assert_eq!(&got.term, &reference.term);
        prop_assert_eq!(got.steps, reference.steps);
        let budgeted = Engine::with_config(&sig, &rs, cfg).normalize(&fol::o(), &f).unwrap();
        prop_assert!(budgeted.steps <= 4);
        prop_assert_eq!(budgeted.fixpoint, budgeted.steps == got.steps);
    }
}

/// Promoted from the PR 8 scratch probe (`crates/analyze/tests/tmp_sct_probe.rs`):
/// the size-change analysis certifies the encoded-β rule only *vacuously* —
/// its right-hand side `?F ?X` mentions no ruleset constant, so there are
/// no call graphs to refute — yet Ω loops forever under that rule. The
/// probe pinned down that this combination is safe in practice because
/// certificates must be attached explicitly: a plain engine keeps its step
/// budget and stops Ω without ever claiming a fixpoint.
#[test]
fn encoded_beta_sct_proof_is_vacuous_and_omega_exhausts_the_budget() {
    let sig = Signature::parse(
        "type i.
         const app : i -> i -> i.
         const lam : (i -> i) -> i.",
    )
    .unwrap();
    let i = parse_ty("i").unwrap();
    let mut rs = RuleSet::new();
    rs.push(
        Rule::parse(
            &sig,
            "beta",
            &i,
            &[("F", "i -> i"), ("X", "i")],
            "app (lam ?F) ?X",
            "?F ?X",
        )
        .unwrap(),
    )
    .unwrap();
    let out = termination::analyze_ruleset(&rs);
    assert!(
        out.proven(),
        "the β RHS has no ruleset-constant calls, so SCT proves it vacuously: {}",
        out.reason
    );
    assert!(
        out.reason.contains("0 call graph"),
        "the proof must be the vacuous one: {}",
        out.reason
    );

    // Ω = app (lam x. app x x) (lam x. app x x) loops under the rule; a
    // budgeted engine must stop at the budget without claiming a fixpoint.
    let omega = parse_term(&sig, r"app (lam (\x. app x x)) (lam (\x. app x x))")
        .unwrap()
        .term;
    let cfg = EngineConfig {
        max_steps: 50,
        ..EngineConfig::default()
    };
    let eng = Engine::with_config(&sig, &rs, cfg);
    let res = eng.normalize(&i, &omega).unwrap();
    assert!(
        !res.fixpoint,
        "omega should exhaust the budget, never reach a fixpoint"
    );
    assert_eq!(res.steps, 50, "every budgeted step is a β step");
}
