//! Deterministic unit tests for kernel edge cases that random generation
//! rarely hits: η-long canonical forms at product and unit type,
//! capture-avoiding substitution under nested binders, and the identity /
//! composition laws of the explicit-substitution calculus.

use hoas::core::prelude::*;
use hoas::core::sub::Sub;

fn sig() -> Signature {
    Signature::parse(
        "type b.
         const c : b.
         const f : b -> b.
         const g : (b -> b) -> b.
         const h : b * b -> b.
         const u : unit -> b.",
    )
    .unwrap()
}

// ------------------------------------------- η-long canonical forms --

#[test]
fn eta_long_at_unit_type_is_the_unit_value() {
    let s = sig();
    // λx:unit. x is β-normal but not η-long: at type unit everything is ().
    let ty = parse_ty("unit -> unit").unwrap();
    let t = Term::lam("x", Term::Var(0));
    let c = normalize::canon_closed(&s, &t, &ty).unwrap();
    assert_eq!(c, Term::lam("x", Term::Unit));
    assert!(normalize::is_canonical(
        &s,
        &MetaEnv::new(),
        &Ctx::new(),
        &c,
        &ty
    ));
    // A constant applied at unit argument type: the argument canonicalizes
    // to () too.
    let app_ty = Ty::base("b");
    let t2 = Term::app(Term::cnst("u"), Term::Unit);
    let c2 = normalize::canon_closed(&s, &t2, &app_ty).unwrap();
    assert_eq!(c2, t2);
}

#[test]
fn eta_long_at_product_type_is_a_pair_of_projections() {
    let s = sig();
    // λp. p at b*b -> b*b η-expands the body to ⟨fst p, snd p⟩.
    let ty = parse_ty("b * b -> b * b").unwrap();
    let t = Term::lam("p", Term::Var(0));
    let c = normalize::canon_closed(&s, &t, &ty).unwrap();
    assert_eq!(
        c,
        Term::lam(
            "p",
            Term::pair(Term::fst(Term::Var(0)), Term::snd(Term::Var(0)))
        )
    );
    assert!(normalize::is_canonical(
        &s,
        &MetaEnv::new(),
        &Ctx::new(),
        &c,
        &ty
    ));
    // Canonicalization is idempotent on the expanded form.
    assert_eq!(normalize::canon_closed(&s, &c, &ty).unwrap(), c);
}

#[test]
fn eta_long_under_nested_products_and_arrows() {
    let s = sig();
    // A function argument position: h takes a pair, g takes a function;
    // λq. h q must η-expand q to a pair, and λk. g k must η-expand k to
    // λx. k x.
    let pair_ty = parse_ty("b * b -> b").unwrap();
    let cp = normalize::canon_closed(
        &s,
        &Term::lam("q", Term::app(Term::cnst("h"), Term::Var(0))),
        &pair_ty,
    )
    .unwrap();
    assert_eq!(
        cp,
        Term::lam(
            "q",
            Term::app(
                Term::cnst("h"),
                Term::pair(Term::fst(Term::Var(0)), Term::snd(Term::Var(0)))
            )
        )
    );
    let fun_ty = parse_ty("(b -> b) -> b").unwrap();
    let cf = normalize::canon_closed(
        &s,
        &Term::lam("k", Term::app(Term::cnst("g"), Term::Var(0))),
        &fun_ty,
    )
    .unwrap();
    assert_eq!(
        cf,
        Term::lam(
            "k",
            Term::app(
                Term::cnst("g"),
                Term::lam("x", Term::app(Term::Var(1), Term::Var(0)))
            )
        )
    );
    // η-contraction undoes exactly the function expansion…
    let contracted = normalize::eta_contract(&cf);
    // …and re-canonicalization restores it.
    assert_eq!(
        normalize::canon_closed(&s, &contracted, &fun_ty).unwrap(),
        cf
    );
}

// --------------------------- capture avoidance under nested binders --

#[test]
fn instantiate_shifts_open_arguments_under_binders() {
    // body = λy. x₁ y  (de Bruijn: λ. (Var 1) (Var 0)); instantiating the
    // *outer* variable with the free Var(0) must shift it to Var(1)
    // inside the binder — a naive textual substitution would capture it.
    let body = Term::lam("y", Term::app(Term::Var(1), Term::Var(0)));
    let arg = Term::Var(0);
    let got = subst::instantiate(&body, &arg);
    assert_eq!(got, Term::lam("y", Term::app(Term::Var(1), Term::Var(0))));
    // Two binders deep: λy. λz. x₂ is instantiated to λy. λz. (arg + 2).
    let body2 = Term::lam("y", Term::lam("z", Term::Var(2)));
    let got2 = subst::instantiate(&body2, &arg);
    assert_eq!(got2, Term::lam("y", Term::lam("z", Term::Var(2))));
}

#[test]
fn instantiate_with_closed_argument_under_nested_binders() {
    // β-reducing (λx. λy. λz. x) c keeps c closed at every depth.
    let c = Term::app(Term::cnst("f"), Term::cnst("c"));
    let body = Term::lam("y", Term::lam("z", Term::Var(2)));
    let got = subst::instantiate(&body, &c);
    assert_eq!(got, Term::lam("y", Term::lam("z", c.clone())));
    // And an argument that itself binds: no renaming or index slippage.
    let lam_arg = Term::lam("w", Term::app(Term::cnst("f"), Term::Var(0)));
    let got2 = subst::instantiate(&body, &lam_arg);
    assert_eq!(got2, Term::lam("y", Term::lam("z", lam_arg.clone())));
}

#[test]
fn hoas_beta_is_capture_avoiding_by_construction() {
    // The paper's point, as a kernel fact: applying λx. λy. x to the open
    // term Var(0) (an ambient "y") yields λy. Var(1) — the ambient
    // variable is *not* captured by the inner binder.
    let two = Term::lam("x", Term::lam("y", Term::Var(1)));
    let Term::Lam(_, body) = &two else {
        unreachable!()
    };
    let r = subst::instantiate(body, &Term::Var(0));
    assert_eq!(r, Term::lam("y", Term::Var(1)));
    assert_ne!(r, Term::lam("y", Term::Var(0)), "capture would give λy. y");
}

// ------------------------------- substitution calculus (sub.rs) laws --

#[test]
fn sub_identity_laws() {
    let s = sig();
    let subject = Term::lam(
        "x",
        Term::apps(
            Term::cnst("h"),
            [Term::pair(
                Term::Var(0),
                Term::app(Term::cnst("f"), Term::Var(1)),
            )],
        ),
    );
    let _ = &s;
    // id is a left and right unit for composition, and acts trivially.
    let id = Sub::id();
    assert!(id.is_empty());
    assert_eq!(id.apply(&subject), subject);
    let some = Sub::cons(Term::cnst("c"), &Sub::weaken(1));
    assert_eq!(id.compose(&some), some);
    assert_eq!(some.compose(&id), some);
    // lift(id) = id observationally.
    assert_eq!(Sub::id().lift().apply(&subject), subject);
}

#[test]
fn sub_composition_is_associative_on_subjects() {
    let a = Sub::cons(Term::cnst("c"), &Sub::weaken(2));
    let b = Sub::cons(Term::app(Term::cnst("f"), Term::Var(0)), &Sub::weaken(1));
    let c = Sub::cons(Term::Var(3), &Sub::id());
    let subject = Term::apps(Term::cnst("h"), [Term::pair(Term::Var(0), Term::Var(2))]);
    // (a ∘ b) ∘ c and a ∘ (b ∘ c) agree as substitutions.
    let left = a.compose(&b).compose(&c);
    let right = a.compose(&b.compose(&c));
    assert_eq!(left, right);
    // And composition means "apply in sequence".
    assert_eq!(left.apply(&subject), a.apply(&b.apply(&c.apply(&subject))));
}

#[test]
fn weaken_composes_additively() {
    let subject = Term::app(Term::Var(0), Term::Var(3));
    let ab = Sub::weaken(2).compose(&Sub::weaken(3));
    assert_eq!(ab, Sub::weaken(5));
    assert_eq!(ab.apply(&subject), Term::app(Term::Var(5), Term::Var(8)));
    // single(t) ∘ ↑1 cancels observationally: weakening first, then
    // substituting for the (now unused) Var(0) maps every Var(i) to
    // itself.
    let t = Term::cnst("c");
    let cancel = Sub::single(t).compose(&Sub::weaken(1));
    assert_eq!(cancel.apply(&subject), subject);
}

#[test]
fn beta_is_cons_on_id() {
    // β-contraction of (λx. x c x) f·c is exactly single(arg).
    let arg = Term::app(Term::cnst("f"), Term::cnst("c"));
    let body = Term::apps(Term::Var(0), [Term::cnst("c"), Term::Var(0)]);
    assert_eq!(
        Sub::single(arg.clone()).apply(&body),
        subst::instantiate(&body, &arg)
    );
}
