//! Unification problems: constraints, scope discipline, and shared
//! machinery (canonicalization, head typing, pattern-spine analysis).

use crate::error::UnifyError;
use crate::msubst::MetaSubst;
use hoas_core::ctx::Ctx;
use hoas_core::sig::Signature;
use hoas_core::term::{Head, MetaEnv};
use hoas_core::{normalize, MVar, Sym, Term, Ty};

/// One equation `left ≐ right : ty` in context `ctx`.
///
/// The innermost `local` entries of `ctx` are *constraint-local* (bound by
/// λs decomposed during solving, or by binders enclosing a rewrite
/// position that the pattern itself binds); the remaining outer entries
/// are *ambient* and may appear in solutions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Constraint {
    /// Typing context for both sides (ambient entries first).
    pub ctx: Ctx,
    /// How many innermost entries of `ctx` are constraint-local.
    pub local: u32,
    /// The common type of both sides.
    pub ty: Ty,
    /// Left-hand side.
    pub left: Term,
    /// Right-hand side.
    pub right: Term,
}

impl Constraint {
    /// A top-level constraint with no ambient context.
    pub fn closed(ty: Ty, left: Term, right: Term) -> Constraint {
        Constraint {
            ctx: Ctx::new(),
            local: 0,
            ty,
            left,
            right,
        }
    }

    /// A constraint posed under an ambient context (e.g. at a rewrite
    /// position under binders); all of `ctx` is ambient.
    pub fn in_ambient(ctx: Ctx, ty: Ty, left: Term, right: Term) -> Constraint {
        Constraint {
            ctx,
            local: 0,
            ty,
            left,
            right,
        }
    }
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ⊢ {} ≐ {} : {}",
            self.ctx, self.left, self.right, self.ty
        )
    }
}

/// Supplies fresh metavariables and tracks their types alongside the
/// problem's original [`MetaEnv`].
#[derive(Clone, Debug)]
pub struct MetaGen {
    /// Types for all metavariables, original and generated.
    pub menv: MetaEnv,
    next: u32,
}

impl MetaGen {
    /// Builds a generator whose fresh ids start above everything in
    /// `menv`.
    pub fn new(menv: MetaEnv) -> MetaGen {
        let next = menv.keys().map(|m| m.id() + 1).max().unwrap_or(0);
        MetaGen { menv, next }
    }

    /// Allocates a fresh metavariable of the given type.
    pub fn fresh(&mut self, hint: &str, ty: Ty) -> MVar {
        let m = MVar::new(self.next, hint);
        self.next += 1;
        self.menv.insert(m.clone(), ty);
        m
    }

    /// The type of a metavariable.
    ///
    /// # Errors
    ///
    /// [`UnifyError::IllTyped`] if unknown.
    pub fn ty_of(&self, m: &MVar) -> Result<&Ty, UnifyError> {
        self.menv
            .get(m)
            .ok_or_else(|| UnifyError::IllTyped(hoas_core::Error::UnknownMeta { mvar: m.clone() }))
    }
}

/// Checks that every metavariable type is within the supported fragment
/// (arrows over base types and `int`; no products, no unit, no type
/// variables).
///
/// # Errors
///
/// [`UnifyError::UnsupportedMetaType`] on the first violation.
pub fn validate_meta_types(menv: &MetaEnv) -> Result<(), UnifyError> {
    fn ok(ty: &Ty) -> bool {
        match ty {
            Ty::Base(_) | Ty::Int => true,
            Ty::Arrow(a, b) => ok(a) && ok(b),
            Ty::Prod(..) | Ty::Unit | Ty::Var(_) => false,
        }
    }
    for (m, ty) in menv {
        if !ok(ty) {
            return Err(UnifyError::UnsupportedMetaType {
                mvar: m.clone(),
                ty: ty.clone(),
            });
        }
    }
    Ok(())
}

/// Applies the current solution and brings a side to canonical form at the
/// constraint's type.
///
/// # Errors
///
/// [`UnifyError::IllTyped`] if canonicalization fails.
pub fn resolve_side(
    sig: &Signature,
    gen: &MetaGen,
    sol: &MetaSubst,
    ctx: &Ctx,
    ty: &Ty,
    t: &Term,
) -> Result<Term, UnifyError> {
    let t = sol.apply(t);
    normalize::canon(sig, &gen.menv, ctx, &t, ty).map_err(UnifyError::IllTyped)
}

/// Synthesizes the (monomorphic) type of a neutral head.
///
/// # Errors
///
/// Unknown constants/variables/metas, and [`UnifyError::PolyConst`] for
/// polymorphic constants.
pub fn head_ty(sig: &Signature, gen: &MetaGen, ctx: &Ctx, head: &Head) -> Result<Ty, UnifyError> {
    match head {
        Head::Var(i) => ctx
            .lookup(*i)
            .map(|(_, ty)| ty.clone())
            .ok_or(UnifyError::IllTyped(hoas_core::Error::UnboundVar {
                index: *i,
            })),
        Head::Const(c) => {
            let scheme = sig.const_ty(c.as_str()).ok_or_else(|| {
                UnifyError::IllTyped(hoas_core::Error::UnknownConst { name: c.clone() })
            })?;
            scheme
                .as_mono()
                .cloned()
                .ok_or_else(|| UnifyError::PolyConst { name: c.clone() })
        }
        Head::Meta(m) => gen.ty_of(m).cloned(),
    }
}

/// Analyzes a flexible term `?M a₁ … aₙ`: returns the metavariable and,
/// when every argument η-contracts to a **distinct constraint-local**
/// variable, the spine as variable indices (as seen at the constraint
/// root).
///
/// Returns `Ok(None)` spine when outside the pattern fragment.
pub struct FlexView {
    /// The flexible head.
    pub mvar: MVar,
    /// `Some(indices)` iff the spine is a Miller pattern.
    pub pattern_spine: Option<Vec<u32>>,
    /// Number of spine arguments (pattern or not).
    pub arity: usize,
}

/// Inspects a term for a flexible (metavariable) head.
pub fn flex_view(t: &Term, local: u32) -> Option<FlexView> {
    let (head, args) = t.head_spine()?;
    let Head::Meta(m) = head else { return None };
    let mut spine = Vec::with_capacity(args.len());
    let mut is_pattern = true;
    for a in &args {
        let contracted = normalize::eta_contract(a);
        match contracted {
            Term::Var(i) if i < local && !spine.contains(&i) => spine.push(i),
            _ => {
                is_pattern = false;
                break;
            }
        }
    }
    Some(FlexView {
        mvar: m,
        pattern_spine: if is_pattern { Some(spine) } else { None },
        arity: args.len(),
    })
}

/// Builds the η-long variable `xᵢ` of type `ty` at binder depth — i.e. a
/// bound variable η-expanded so it can stand as a canonical argument.
/// Used when constructing imitation/projection bindings and solution
/// bodies.
pub fn eta_expand_var(index: u32, ty: &Ty) -> Term {
    eta_expand_term(Term::Var(index), ty)
}

/// η-expands an arbitrary neutral term at the given (product-free) type.
pub fn eta_expand_term(t: Term, ty: &Ty) -> Term {
    match ty {
        Ty::Arrow(a, b) => {
            let shifted = hoas_core::subst::shift(&t, 1);
            let arg = eta_expand_var(0, a);
            Term::lam(Sym::new("x"), eta_expand_term(Term::app(shifted, arg), b))
        }
        _ => t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tm() -> Ty {
        Ty::base("tm")
    }

    #[test]
    fn metagen_fresh_ids_start_above_existing() {
        let mut menv = MetaEnv::new();
        menv.insert(MVar::new(7, "P"), tm());
        let mut g = MetaGen::new(menv);
        let m = g.fresh("H", tm());
        assert_eq!(m.id(), 8);
        assert_eq!(g.ty_of(&m).unwrap(), &tm());
    }

    #[test]
    fn validate_rejects_products() {
        let mut menv = MetaEnv::new();
        menv.insert(MVar::new(0, "P"), Ty::prod(tm(), tm()));
        assert!(matches!(
            validate_meta_types(&menv),
            Err(UnifyError::UnsupportedMetaType { .. })
        ));
        let mut ok = MetaEnv::new();
        ok.insert(MVar::new(0, "P"), Ty::arrow(tm(), Ty::Int));
        validate_meta_types(&ok).unwrap();
    }

    #[test]
    fn flex_view_detects_patterns() {
        let m = MVar::new(0, "Q");
        // ?Q 1 0 with local = 2: a pattern.
        let t = Term::apps(Term::Meta(m.clone()), [Term::Var(1), Term::Var(0)]);
        let v = flex_view(&t, 2).unwrap();
        assert_eq!(v.mvar, m);
        assert_eq!(v.pattern_spine, Some(vec![1, 0]));
        // Repeated variable: not a pattern.
        let t = Term::apps(Term::Meta(m.clone()), [Term::Var(0), Term::Var(0)]);
        assert!(flex_view(&t, 2).unwrap().pattern_spine.is_none());
        // Non-variable argument: not a pattern.
        let t = Term::app(Term::Meta(m.clone()), Term::cnst("c"));
        assert!(flex_view(&t, 2).unwrap().pattern_spine.is_none());
        // Ambient variable (index ≥ local): not a pattern.
        let t = Term::app(Term::Meta(m), Term::Var(5));
        assert!(flex_view(&t, 2).unwrap().pattern_spine.is_none());
        // Rigid head: not flexible at all.
        assert!(flex_view(&Term::cnst("c"), 0).is_none());
    }

    #[test]
    fn flex_view_eta_contracts_arguments() {
        // ?F (λy. x y) where x is local var 0 outside, i.e. arg is η-expansion of Var 0.
        let m = MVar::new(0, "F");
        let arg = Term::lam("y", Term::app(Term::Var(1), Term::Var(0)));
        let t = Term::app(Term::Meta(m), arg);
        let v = flex_view(&t, 1).unwrap();
        assert_eq!(v.pattern_spine, Some(vec![0]));
    }

    #[test]
    fn eta_expand_var_at_function_type() {
        // x : tm -> tm η-expands to λy. x y.
        let t = eta_expand_var(3, &Ty::arrow(tm(), tm()));
        assert_eq!(t, Term::lam("y", Term::app(Term::Var(4), Term::Var(0))));
    }

    #[test]
    fn eta_expand_var_second_order() {
        // x : (tm -> tm) -> tm η-expands to λf. x (λy. f y).
        let t = eta_expand_var(0, &Ty::arrow(Ty::arrow(tm(), tm()), tm()));
        let expected = Term::lam(
            "f",
            Term::app(
                Term::Var(1),
                Term::lam("y", Term::app(Term::Var(1), Term::Var(0))),
            ),
        );
        assert_eq!(t, expected);
    }
}
