//! Pattern-fragment classification and metavariable renaming/freezing.
//!
//! These helpers back the `hoas-analyze` static analyzer and the rewrite
//! engine's fast path:
//!
//! * [`classify`] decides whether a term lies in Miller's **pattern
//!   fragment** — every metavariable occurrence applied to a spine of
//!   distinct λ-bound variables — where unification and matching are
//!   decidable with most general solutions;
//! * [`shift_metas`]/[`shift_menv`] rename a term's metavariables apart
//!   from another term's, as needed before unifying two rule LHSs for
//!   overlap (critical-pair) detection;
//! * [`freeze_metas`] turns metavariables into fresh constants, producing
//!   a ground instance suitable as a *matching target* (matching requires
//!   meta-free subjects), as needed for shadowing and self-application
//!   checks.

use crate::problem::flex_view;
use hoas_core::sig::Signature;
use hoas_core::term::MetaEnv;
use hoas_core::{Error as CoreError, MVar, Sym, Term, TyScheme};
use std::collections::HashMap;

/// The verdict of [`classify`]: which matching machinery a term admits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PatternClass {
    /// Within Miller's pattern fragment: every metavariable occurrence is
    /// applied to distinct λ-bound variables. Unification/matching against
    /// ground terms is decidable and deterministic.
    Miller,
    /// At least one metavariable occurrence falls outside the fragment
    /// (applied to a non-variable, a repeated variable, or a variable
    /// bound outside the term). General higher-order machinery is needed.
    General,
}

impl std::fmt::Display for PatternClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternClass::Miller => write!(f, "miller-pattern"),
            PatternClass::General => write!(f, "general-higher-order"),
        }
    }
}

/// Classifies a closed term (e.g. a rewrite-rule LHS).
pub fn classify(t: &Term) -> PatternClass {
    classify_at(t, 0)
}

/// Classifies a term with `local` enclosing binders already counted as
/// bound (e.g. a λProlog clause atom under `local` universal goals).
pub fn classify_at(t: &Term, local: u32) -> PatternClass {
    if is_pattern_at(t, local) {
        PatternClass::Miller
    } else {
        PatternClass::General
    }
}

fn is_pattern_at(t: &Term, local: u32) -> bool {
    // Meta-free subterms are vacuously inside the fragment.
    if !t.has_metas() {
        return true;
    }
    // A flexible spine is judged as a whole: `?M a₁ … aₙ` is in the
    // fragment iff the aᵢ η-contract to distinct bound variables. The
    // check must happen at the spine root — decomposing the applications
    // pairwise would misjudge the head.
    if let Some(view) = flex_view(t, local) {
        return view.pattern_spine.is_some();
    }
    match t {
        Term::Lam(_, b) => is_pattern_at(b, local + 1),
        Term::App(f, a) => is_pattern_at(f, local) && is_pattern_at(a, local),
        Term::Pair(a, b) => is_pattern_at(a, local) && is_pattern_at(b, local),
        Term::Fst(p) | Term::Snd(p) => is_pattern_at(p, local),
        // `head_spine` returns None on β-redex heads; their components are
        // covered by the App case above. Leaves are meta-free (the Meta
        // leaf is a flexible spine of arity 0, handled by `flex_view`).
        Term::Var(_) | Term::Const(_) | Term::Int(_) | Term::Unit => true,
        Term::Meta(_) => unreachable!("flexible heads handled by flex_view"),
    }
}

/// Renames every metavariable id in `t` upward by `offset`, preserving
/// hints. Together with [`shift_menv`] this renames one rule's
/// metavariables apart from another's before unifying their LHSs.
pub fn shift_metas(t: &Term, offset: u32) -> Term {
    if !t.has_metas() {
        return t.clone();
    }
    match t {
        Term::Meta(m) => Term::Meta(MVar::new(m.id() + offset, m.hint().clone())),
        Term::Lam(h, b) => Term::lam(h.clone(), shift_metas(b, offset)),
        Term::App(f, a) => Term::app(shift_metas(f, offset), shift_metas(a, offset)),
        Term::Pair(a, b) => Term::pair(shift_metas(a, offset), shift_metas(b, offset)),
        Term::Fst(p) => Term::fst(shift_metas(p, offset)),
        Term::Snd(p) => Term::snd(shift_metas(p, offset)),
        Term::Var(_) | Term::Const(_) | Term::Int(_) | Term::Unit => t.clone(),
    }
}

/// The [`MetaEnv`] counterpart of [`shift_metas`].
pub fn shift_menv(menv: &MetaEnv, offset: u32) -> MetaEnv {
    menv.iter()
        .map(|(m, ty)| (MVar::new(m.id() + offset, m.hint().clone()), ty.clone()))
        .collect()
}

/// Replaces every metavariable of `t` by a fresh constant of the same
/// type, declared in a clone of `sig`. The result is a most-general
/// ground instance of `t`: matching some pattern against it succeeds iff
/// the pattern matches *every* instance of `t`. Canonicity is preserved —
/// constants are neutral heads exactly like the metavariables they
/// replace.
///
/// # Errors
///
/// [`CoreError::UnknownMeta`] if `t` mentions a metavariable absent from
/// `menv`; [`CoreError::Redeclared`] if a frozen name collides (the names
/// contain `#`, which the signature parser never produces).
pub fn freeze_metas(
    sig: &Signature,
    menv: &MetaEnv,
    t: &Term,
) -> Result<(Signature, Term), CoreError> {
    let mut frozen_sig = sig.clone();
    let mut names: HashMap<MVar, Sym> = HashMap::new();
    for m in t.metas() {
        let ty = menv
            .get(&m)
            .ok_or_else(|| CoreError::UnknownMeta { mvar: m.clone() })?;
        let name = format!("{}#{}", m.hint(), m.id());
        frozen_sig.declare_const(name.as_str(), TyScheme::mono(ty.clone()))?;
        names.insert(m, Sym::new(name));
    }
    let frozen = substitute_metas(t, &names);
    Ok((frozen_sig, frozen))
}

fn substitute_metas(t: &Term, names: &HashMap<MVar, Sym>) -> Term {
    if !t.has_metas() {
        return t.clone();
    }
    match t {
        Term::Meta(m) => match names.get(m) {
            Some(name) => Term::Const(name.clone()),
            None => t.clone(),
        },
        Term::Lam(h, b) => Term::lam(h.clone(), substitute_metas(b, names)),
        Term::App(f, a) => Term::app(substitute_metas(f, names), substitute_metas(a, names)),
        Term::Pair(a, b) => Term::pair(substitute_metas(a, names), substitute_metas(b, names)),
        Term::Fst(p) => Term::fst(substitute_metas(p, names)),
        Term::Snd(p) => Term::snd(substitute_metas(p, names)),
        Term::Var(_) | Term::Const(_) | Term::Int(_) | Term::Unit => t.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::Ty;

    fn meta(id: u32, hint: &str) -> Term {
        Term::Meta(MVar::new(id, hint))
    }

    #[test]
    fn classify_miller_patterns() {
        // and ?P (forall (λx. ?Q x))
        let t = Term::apps(
            Term::cnst("and"),
            [
                meta(0, "P"),
                Term::app(
                    Term::cnst("forall"),
                    Term::lam("x", Term::app(meta(1, "Q"), Term::Var(0))),
                ),
            ],
        );
        assert_eq!(classify(&t), PatternClass::Miller);
        // Ground terms are vacuously patterns.
        assert_eq!(classify(&Term::cnst("c")), PatternClass::Miller);
        // A bare meta is a pattern spine of arity 0.
        assert_eq!(classify(&meta(0, "P")), PatternClass::Miller);
    }

    #[test]
    fn classify_general_occurrences() {
        // ?F ?U — meta applied to a non-variable.
        let t = Term::app(meta(0, "F"), meta(1, "U"));
        assert_eq!(classify(&t), PatternClass::General);
        // λx. ?Q x x — repeated spine variable.
        let t = Term::lam("x", Term::apps(meta(0, "Q"), [Term::Var(0), Term::Var(0)]));
        assert_eq!(classify(&t), PatternClass::General);
        // ?Q c — meta applied to a constant.
        let t = Term::app(meta(0, "Q"), Term::cnst("c"));
        assert_eq!(classify(&t), PatternClass::General);
        // The verdict is judged at the spine root, so the bad occurrence
        // is found under a rigid head too.
        let t = Term::app(Term::cnst("not"), Term::app(meta(0, "F"), meta(1, "U")));
        assert_eq!(classify(&t), PatternClass::General);
    }

    #[test]
    fn classify_counts_enclosing_binders() {
        // ?Q x with x bound *outside* the term: general at local = 0,
        // pattern with one enclosing binder counted.
        let t = Term::app(meta(0, "Q"), Term::Var(0));
        assert_eq!(classify_at(&t, 0), PatternClass::General);
        assert_eq!(classify_at(&t, 1), PatternClass::Miller);
    }

    #[test]
    fn shift_renames_apart() {
        let t = Term::app(meta(0, "P"), Term::app(meta(1, "Q"), Term::cnst("c")));
        let shifted = shift_metas(&t, 10);
        assert_eq!(
            shifted.metas().iter().map(MVar::id).collect::<Vec<_>>(),
            vec![10, 11]
        );
        let mut menv = MetaEnv::new();
        menv.insert(MVar::new(0, "P"), Ty::base("o"));
        let shifted_menv = shift_menv(&menv, 10);
        assert_eq!(shifted_menv.keys().next().unwrap().id(), 10);
    }

    #[test]
    fn freeze_produces_ground_instance() {
        hoas_core::StoreHandle::isolated().enter(|| {
            // Isolated store: this test matches metavariables by printing
            // hint, and hints are canonical per α-class per store.
            let mut sig = Signature::new();
            sig.declare_type("o").unwrap();
            sig.declare_const(
                "and",
                Ty::arrows([Ty::base("o"), Ty::base("o")], Ty::base("o")),
            )
            .unwrap();
            let mut menv = MetaEnv::new();
            menv.insert(MVar::new(0, "P"), Ty::base("o"));
            menv.insert(MVar::new(1, "Q"), Ty::base("o"));
            let t = Term::apps(Term::cnst("and"), [meta(0, "P"), meta(1, "Q")]);
            let (fsig, frozen) = freeze_metas(&sig, &menv, &t).unwrap();
            assert!(!frozen.has_metas());
            assert!(fsig.has_const("P#0") && fsig.has_const("Q#1"));
            // Unknown metas are reported.
            assert!(freeze_metas(&sig, &MetaEnv::new(), &t).is_err());
        })
    }
}
