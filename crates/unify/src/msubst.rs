//! Metavariable substitutions.
//!
//! A [`MetaSubst`] maps metavariables to solution terms. Solutions live in
//! the **ambient scope** of the problem: their free de Bruijn variables
//! refer to the ambient context in which the unification problem was
//! posed. Applying a substitution therefore shifts each solution by the
//! binder depth of the occurrence it replaces, then β-normalizes so that
//! a solution `λx̄. b` grafted onto a spine `?M a₁ … aₙ` contracts.

use hoas_core::{normalize, subst, MVar, Term, TermRef};
use std::collections::HashMap;

/// A finite map from metavariables to solution terms (in ambient scope).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MetaSubst {
    map: HashMap<MVar, Term>,
}

impl MetaSubst {
    /// The empty substitution.
    pub fn new() -> MetaSubst {
        MetaSubst::default()
    }

    /// Number of solved metavariables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no metavariable is solved.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The solution for `m`, if any.
    pub fn get(&self, m: &MVar) -> Option<&Term> {
        self.map.get(m)
    }

    /// Whether `m` is solved.
    pub fn contains(&self, m: &MVar) -> bool {
        self.map.contains_key(m)
    }

    /// Iterates `(mvar, solution)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&MVar, &Term)> {
        self.map.iter()
    }

    /// Records a solution for `m`, first **self-applying**: the new
    /// solution is normalized against the existing substitution, and `m`
    /// is eliminated from existing solutions, keeping the substitution
    /// idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `m` is already solved (unifiers never re-solve) or if the
    /// solution mentions `m` itself after normalization (occurs-checked by
    /// callers).
    pub fn bind(&mut self, m: MVar, solution: Term) {
        assert!(
            !self.map.contains_key(&m),
            "MetaSubst::bind: {m} already solved"
        );
        let solution = self.apply(&solution);
        assert!(
            !solution.metas().contains(&m),
            "MetaSubst::bind: solution for {m} mentions itself"
        );
        let mut single = MetaSubst::new();
        single.map.insert(m.clone(), solution.clone());
        for v in self.map.values_mut() {
            *v = single.apply(v);
        }
        self.map.insert(m, solution);
    }

    /// Applies the substitution to a term and β-normalizes the result.
    ///
    /// Metavariables without a solution are left in place. Solutions are
    /// shifted by the binder depth at each occurrence (solutions live in
    /// ambient scope).
    pub fn apply(&self, t: &Term) -> Term {
        // A term without metavariables is untouched by grafting, and if it
        // is already β-normal the trailing normalization is the identity
        // too — O(1) thanks to the cached annotations.
        if self.map.is_empty() || (!t.has_metas() && t.is_beta_normal()) {
            return t.clone();
        }
        // Graft, then β-normalize. The trailing `nf` is the kernel's
        // session-threaded, memoized normalizer: contractions created by
        // grafting a solution `λx̄. b` onto a spine `?M a₁ … aₙ` replay
        // from the operation memo when the same (body, argument) pairs
        // recur — the signature pattern of resolution and rewriting. (A
        // fused graft+normalize over the scratch arena was measured here
        // and lost: it forfeits the cached `max_free`/`beta_normal`
        // guards and the memo, which beat avoided interning of the
        // transient spine — see DESIGN §7.)
        let grafted = self.graft(t, 0);
        normalize::nf(&grafted)
    }

    fn graft(&self, t: &Term, depth: u32) -> Term {
        if !t.has_metas() {
            return t.clone();
        }
        match t {
            Term::Meta(m) => match self.map.get(m) {
                Some(sol) => subst::shift(sol, depth),
                None => t.clone(),
            },
            Term::Var(_) | Term::Const(_) | Term::Int(_) | Term::Unit => t.clone(),
            Term::Lam(h, b) => Term::lam(h.clone(), self.graft_ref(b, depth + 1)),
            Term::App(f, a) => Term::app(self.graft_ref(f, depth), self.graft_ref(a, depth)),
            Term::Pair(a, b) => Term::pair(self.graft_ref(a, depth), self.graft_ref(b, depth)),
            Term::Fst(p) => Term::fst(self.graft_ref(p, depth)),
            Term::Snd(p) => Term::snd(self.graft_ref(p, depth)),
        }
    }

    /// Grafts into a shared subterm, preserving the `Arc` when meta-free.
    fn graft_ref(&self, t: &TermRef, depth: u32) -> TermRef {
        if !t.has_meta() {
            t.clone()
        } else {
            TermRef::new(self.graft(t.term(), depth))
        }
    }

    /// Restricts the substitution to the given metavariables (e.g. the
    /// ones a rule's right-hand side mentions).
    #[must_use]
    pub fn restricted_to(&self, mvars: &[MVar]) -> MetaSubst {
        MetaSubst {
            map: self
                .map
                .iter()
                .filter(|(m, _)| mvars.contains(m))
                .map(|(m, t)| (m.clone(), t.clone()))
                .collect(),
        }
    }
}

impl FromIterator<(MVar, Term)> for MetaSubst {
    fn from_iter<I: IntoIterator<Item = (MVar, Term)>>(iter: I) -> Self {
        let mut s = MetaSubst::new();
        for (m, t) in iter {
            s.bind(m, t);
        }
        s
    }
}

impl std::fmt::Display for MetaSubst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by_key(|(m, _)| m.id());
        f.write_str("{")?;
        for (i, (m, t)) in entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{m} := {t}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: u32, hint: &str) -> MVar {
        MVar::new(id, hint)
    }

    #[test]
    fn apply_grafts_and_reduces() {
        // ?F := λx. c x;  apply to (?F a) gives (c a).
        let mut s = MetaSubst::new();
        s.bind(
            m(0, "F"),
            Term::lam("x", Term::app(Term::cnst("c"), Term::Var(0))),
        );
        let t = Term::app(Term::Meta(m(0, "F")), Term::cnst("a"));
        assert_eq!(s.apply(&t), Term::app(Term::cnst("c"), Term::cnst("a")));
    }

    #[test]
    fn apply_shifts_under_binders() {
        // Solution mentions ambient var 0; under a λ it must appear as 1.
        let mut s = MetaSubst::new();
        s.bind(m(0, "P"), Term::Var(0));
        let t = Term::lam("x", Term::Meta(m(0, "P")));
        assert_eq!(s.apply(&t), Term::lam("x", Term::Var(1)));
    }

    #[test]
    fn bind_keeps_idempotence() {
        // First solve ?A := ?B, then ?B := c. ?A's stored solution becomes c.
        let mut s = MetaSubst::new();
        s.bind(m(0, "A"), Term::Meta(m(1, "B")));
        s.bind(m(1, "B"), Term::cnst("c"));
        assert_eq!(s.get(&m(0, "A")).unwrap(), &Term::cnst("c"));
        // And a new solution is normalized against existing entries.
        let mut s2 = MetaSubst::new();
        s2.bind(m(1, "B"), Term::cnst("c"));
        s2.bind(m(0, "A"), Term::Meta(m(1, "B")));
        assert_eq!(s2.get(&m(0, "A")).unwrap(), &Term::cnst("c"));
    }

    #[test]
    #[should_panic(expected = "already solved")]
    fn bind_rejects_resolving() {
        let mut s = MetaSubst::new();
        s.bind(m(0, "A"), Term::Unit);
        s.bind(m(0, "A"), Term::Unit);
    }

    #[test]
    fn unsolved_metas_left_in_place() {
        let mut s = MetaSubst::new();
        s.bind(m(0, "A"), Term::Int(1));
        let t = Term::pair(Term::Meta(m(0, "A")), Term::Meta(m(1, "B")));
        assert_eq!(s.apply(&t), Term::pair(Term::Int(1), Term::Meta(m(1, "B"))));
    }

    #[test]
    fn restriction_filters() {
        let mut s = MetaSubst::new();
        s.bind(m(0, "A"), Term::Int(1));
        s.bind(m(1, "B"), Term::Int(2));
        let r = s.restricted_to(&[m(1, "B")]);
        assert_eq!(r.len(), 1);
        assert!(r.get(&m(1, "B")).is_some());
        assert!(r.get(&m(0, "A")).is_none());
    }

    #[test]
    fn display_is_sorted_by_id() {
        let mut s = MetaSubst::new();
        s.bind(m(1, "B"), Term::Int(2));
        s.bind(m(0, "A"), Term::Int(1));
        assert_eq!(s.to_string(), "{?A := 1, ?B := 2}");
    }
}
