//! **Anti-unification** (least general generalization) in the pattern
//! fragment.
//!
//! The dual of unification: given two terms, find the most specific
//! pattern that matches both. Program-manipulation systems in the
//! paper's tradition use it to *synthesize* rewrite rules from example
//! pairs (Pfenning, "Unification and anti-unification in the Calculus of
//! Constructions", LICS 1991, is the contemporaneous higher-order
//! treatment).
//!
//! At a disagreement position under binders `x̄`, the generalization
//! inserts `?H x̄` — a metavariable applied to all locally bound
//! variables, so each side's residual may use them (the higher-order
//! analogue of Plotkin's first-order lgg). Identical disagreement pairs
//! reuse the same metavariable, which is what makes the result *least*
//! general.

use crate::error::UnifyError;
use crate::msubst::MetaSubst;
use crate::problem::{eta_expand_var, head_ty, MetaGen};
use hoas_core::ctx::Ctx;
use hoas_core::sig::Signature;
use hoas_core::term::MetaEnv;
use hoas_core::{normalize, MVar, Sym, Term, Ty};
use std::collections::HashMap;

/// The result of anti-unifying two terms.
#[derive(Clone, Debug)]
pub struct Generalization {
    /// The least general generalization (a pattern).
    pub term: Term,
    /// Types of the introduced metavariables.
    pub menv: MetaEnv,
    /// Substitution recovering the left input: `left.apply(&term) == l`.
    pub left: MetaSubst,
    /// Substitution recovering the right input.
    pub right: MetaSubst,
}

impl Generalization {
    /// Number of distinct disagreement positions (introduced
    /// metavariables).
    pub fn holes(&self) -> usize {
        self.menv.len()
    }
}

/// Anti-unifies two closed, well-typed terms at `ty`.
///
/// The result satisfies `left.apply(&term) == canon(l)` and
/// `right.apply(&term) == canon(r)` — property-tested and checked by the
/// examples.
///
/// # Errors
///
/// [`UnifyError::IllTyped`] if either term fails to canonicalize at `ty`,
/// or the inputs contain metavariables.
pub fn anti_unify(
    sig: &Signature,
    ty: &Ty,
    left: &Term,
    right: &Term,
) -> Result<Generalization, UnifyError> {
    anti_unify_in(sig, &Ctx::new(), ty, left, right)
}

/// Anti-unifies under an ambient context (the generalization may mention
/// its variables directly; only binders *introduced during the descent*
/// are routed through metavariable spines).
///
/// # Errors
///
/// As for [`anti_unify`].
pub fn anti_unify_in(
    sig: &Signature,
    ctx: &Ctx,
    ty: &Ty,
    left: &Term,
    right: &Term,
) -> Result<Generalization, UnifyError> {
    if left.has_metas() || right.has_metas() {
        let m = left
            .metas()
            .into_iter()
            .chain(right.metas())
            .next()
            .expect("has_metas");
        return Err(UnifyError::IllTyped(hoas_core::Error::UnknownMeta {
            mvar: m,
        }));
    }
    let empty = MetaEnv::new();
    let l = normalize::canon(sig, &empty, ctx, left, ty).map_err(UnifyError::IllTyped)?;
    let r = normalize::canon(sig, &empty, ctx, right, ty).map_err(UnifyError::IllTyped)?;
    let mut st = AntiUnifier {
        sig,
        gen: MetaGen::new(MetaEnv::new()),
        left: MetaSubst::new(),
        right: MetaSubst::new(),
        memo: HashMap::new(),
    };
    let term = st.go(ctx, 0, ty, &l, &r)?;
    Ok(Generalization {
        term,
        menv: st.gen.menv,
        left: st.left,
        right: st.right,
    })
}

struct AntiUnifier<'s> {
    sig: &'s Signature,
    gen: MetaGen,
    left: MetaSubst,
    right: MetaSubst,
    /// Disagreement pairs already generalized, keyed by the pair and the
    /// local binder types it was seen under.
    memo: HashMap<(Term, Term, Vec<Ty>), MVar>,
}

impl AntiUnifier<'_> {
    fn go(
        &mut self,
        ctx: &Ctx,
        local: u32,
        ty: &Ty,
        l: &Term,
        r: &Term,
    ) -> Result<Term, UnifyError> {
        if l == r {
            return Ok(l.clone());
        }
        match ty {
            Ty::Arrow(dom, cod) => match (l, r) {
                (Term::Lam(h, bl), Term::Lam(_, br)) => {
                    let ctx2 = ctx.push(h.clone(), dom.as_ref().clone());
                    Ok(Term::lam(
                        h.clone(),
                        self.go(&ctx2, local + 1, cod, bl, br)?,
                    ))
                }
                _ => Err(UnifyError::IllTyped(hoas_core::Error::CheckShape {
                    form: "non-λ canonical term",
                    ty: ty.clone(),
                })),
            },
            Ty::Prod(a, b) => match (l, r) {
                (Term::Pair(l1, l2), Term::Pair(r1, r2)) => Ok(Term::pair(
                    self.go(ctx, local, a, l1, r1)?,
                    self.go(ctx, local, b, l2, r2)?,
                )),
                _ => Err(UnifyError::IllTyped(hoas_core::Error::CheckShape {
                    form: "non-pair canonical term",
                    ty: ty.clone(),
                })),
            },
            Ty::Unit => Ok(Term::Unit),
            _ => self.go_base(ctx, local, ty, l, r),
        }
    }

    fn go_base(
        &mut self,
        ctx: &Ctx,
        local: u32,
        ty: &Ty,
        l: &Term,
        r: &Term,
    ) -> Result<Term, UnifyError> {
        // Agreeing rigid heads decompose; anything else is a disagreement.
        if let (Some((hl, al)), Some((hr, ar))) = (l.head_spine(), r.head_spine()) {
            if hl == hr && al.len() == ar.len() {
                let hty = head_ty(self.sig, &self.gen, ctx, &hl)?;
                let (arg_tys, _) = hty.uncurry();
                if arg_tys.len() >= al.len() {
                    let mut args = Vec::with_capacity(al.len());
                    for ((la, ra), aty) in al.iter().zip(ar.iter()).zip(arg_tys) {
                        args.push(self.go(ctx, local, aty, la, ra)?);
                    }
                    return Ok(Term::apps(head_term(&hl), args));
                }
            }
        }
        self.disagree(ctx, local, ty, l, r)
    }

    fn disagree(
        &mut self,
        ctx: &Ctx,
        local: u32,
        ty: &Ty,
        l: &Term,
        r: &Term,
    ) -> Result<Term, UnifyError> {
        let local_tys: Vec<Ty> = (0..local)
            .map(|i| {
                ctx.lookup(i)
                    .map(|(_, t)| t.clone())
                    .expect("local binders are in the context")
            })
            .collect(); // innermost first
        let key = (l.clone(), r.clone(), local_tys.clone());
        let m = match self.memo.get(&key) {
            Some(m) => m.clone(),
            None => {
                // ?H : T_{n-1} -> … -> T_0 -> ty, applied outermost-first,
                // so that the solution `λ^n. side` lines up index-for-index
                // with the constraint-local variables.
                let hty = Ty::arrows(
                    (0..local).rev().map(|i| local_tys[i as usize].clone()),
                    ty.clone(),
                );
                let m = self.gen.fresh(&format!("H{}", self.memo.len()), hty);
                let hints: Vec<Sym> = (0..local).map(|i| Sym::new(format!("x{i}"))).collect();
                // Solutions live in ambient scope: wrapping each side in
                // λ^n binds exactly the constraint-local variables (their
                // indices already match), and ambient indices stay put.
                self.left
                    .bind(m.clone(), Term::lams(hints.clone(), l.clone()));
                self.right.bind(m.clone(), Term::lams(hints, r.clone()));
                self.memo.insert(key, m.clone());
                m
            }
        };
        Ok(Term::apps(
            Term::Meta(m),
            (0..local)
                .rev()
                .map(|i| eta_expand_var(i, &local_tys[i as usize])),
        ))
    }
}

fn head_term(h: &hoas_core::term::Head) -> Term {
    match h {
        hoas_core::term::Head::Var(i) => Term::Var(*i),
        hoas_core::term::Head::Const(c) => Term::Const(c.clone()),
        hoas_core::term::Head::Meta(m) => Term::Meta(m.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::prelude::*;

    fn sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const not : o -> o.
             const forall : (i -> o) -> o.
             const p : i -> o.
             const q : i -> i -> o.
             const a : i.
             const b : i.
             const r : o.",
        )
        .unwrap()
    }

    fn o() -> Ty {
        Ty::base("o")
    }

    fn check(g: &Generalization, sig: &Signature, ty: &Ty, l: &Term, r: &Term) {
        let cl = normalize::canon_closed(sig, l, ty).unwrap();
        let cr = normalize::canon_closed(sig, r, ty).unwrap();
        assert_eq!(g.left.apply(&g.term), cl, "left substitution broken");
        assert_eq!(g.right.apply(&g.term), cr, "right substitution broken");
        // The generalization itself is well-typed with its menv.
        hoas_core::infer::check_poly(sig, &g.menv, &Ctx::new(), &g.term, ty).unwrap();
    }

    fn t(s: &Signature, src: &str) -> Term {
        parse_term(s, src).unwrap().term
    }

    #[test]
    fn identical_terms_have_no_holes() {
        let s = sig();
        let x = t(&s, "and r (p a)");
        let g = anti_unify(&s, &o(), &x, &x).unwrap();
        assert_eq!(g.holes(), 0);
        assert_eq!(g.term, x);
    }

    #[test]
    fn first_order_disagreement() {
        hoas_core::StoreHandle::isolated().enter(|| {
            // Isolated store: this test asserts printed hints, which are
            // canonical per α-class per store (first intern wins).
            let s = sig();
            let l = t(&s, "and r (p a)");
            let r = t(&s, "and r (p b)");
            let g = anti_unify(&s, &o(), &l, &r).unwrap();
            assert_eq!(g.holes(), 1);
            assert_eq!(g.term.to_string(), "and r (p ?H0)");
            check(&g, &s, &o(), &l, &r);
        })
    }

    #[test]
    fn repeated_disagreements_share_a_hole() {
        // (p a ∧ p a) vs (p b ∧ p b): the lgg is and (p ?H) (p ?H), with
        // ONE hole — two holes would be more general than necessary.
        let s = sig();
        let l = t(&s, "and (p a) (p a)");
        let r = t(&s, "and (p b) (p b)");
        let g = anti_unify(&s, &o(), &l, &r).unwrap();
        assert_eq!(g.holes(), 1);
        check(&g, &s, &o(), &l, &r);
    }

    #[test]
    fn distinct_disagreements_get_distinct_holes() {
        let s = sig();
        let l = t(&s, "and (p a) (p a)");
        let r = t(&s, "and (p b) (p a)");
        let g = anti_unify(&s, &o(), &l, &r).unwrap();
        // First position disagrees (a vs b), second agrees.
        assert_eq!(g.holes(), 1);
        let l2 = t(&s, "and (p a) r");
        let r2 = t(&s, "and (p b) (or r r)");
        let g2 = anti_unify(&s, &o(), &l2, &r2).unwrap();
        assert_eq!(g2.holes(), 2);
        check(&g2, &s, &o(), &l2, &r2);
    }

    #[test]
    fn generalizes_under_binders_with_spines() {
        hoas_core::StoreHandle::isolated().enter(|| {
            // Isolated store: this test asserts printed hints, which are
            // canonical per α-class per store (first intern wins).
            // ∀x. p x  vs  ∀x. q x x: the hole must capture x via its spine.
            let s = sig();
            let l = t(&s, r"forall (\x. p x)");
            let r = t(&s, r"forall (\x. q x x)");
            let g = anti_unify(&s, &o(), &l, &r).unwrap();
            assert_eq!(g.holes(), 1);
            assert_eq!(g.term.to_string(), r"forall (\x. ?H0 x)");
            check(&g, &s, &o(), &l, &r);
            // The hole's type records the binder.
            let (m, hty) = g.menv.iter().next().unwrap();
            assert_eq!(hty.to_string(), "i -> o");
            assert_eq!(m.hint().as_str(), "H0");
        })
    }

    #[test]
    fn rule_synthesis_shape() {
        hoas_core::StoreHandle::isolated().enter(|| {
            // Isolated store: this test asserts printed hints, which are
            // canonical per α-class per store (first intern wins).
            // The motivating use: two before/after examples of the same
            // transformation generalize to the rule's lhs.
            // Examples: and r (forall (\x. p x)) and and (p a) (forall (\x. q x x)).
            let s = sig();
            let ex1 = t(&s, r"and r (forall (\x. p x))");
            let ex2 = t(&s, r"and (p a) (forall (\x. q x x))");
            let g = anti_unify(&s, &o(), &ex1, &ex2).unwrap();
            // Shape: and ?H0 (forall (\x. ?H1 x)) — exactly the lhs of the
            // quantifier-extraction rule.
            assert_eq!(g.term.to_string(), r"and ?H0 (forall (\x. ?H1 x))");
            check(&g, &s, &o(), &ex1, &ex2);
        })
    }

    #[test]
    fn nested_binders_spine_order() {
        hoas_core::StoreHandle::isolated().enter(|| {
            // Isolated store: this test asserts printed hints, which are
            // canonical per α-class per store (first intern wins).
            // q x y vs q y x: the heads agree, so decomposition reaches the
            // arguments and each disagreeing argument gets its own hole —
            // which is *more specific* (hence "least" general) than a single
            // formula-level hole would be.
            let s = sig();
            let l = t(&s, r"forall (\x. forall (\y. q x y))");
            let r = t(&s, r"forall (\x. forall (\y. q y x))");
            let g = anti_unify(&s, &o(), &l, &r).unwrap();
            assert_eq!(g.holes(), 2);
            check(&g, &s, &o(), &l, &r);
            // Spines are outermost-first: ?H x y.
            assert_eq!(
                g.term.to_string(),
                r"forall (\x. forall (\y. q (?H0 x y) (?H1 x y)))"
            );
        })
    }

    #[test]
    fn clashing_heads_under_binders_get_one_spined_hole() {
        hoas_core::StoreHandle::isolated().enter(|| {
            // Isolated store: this test asserts printed hints, which are
            // canonical per α-class per store (first intern wins).
            // p x vs r (different heads): one hole over the binder.
            let s = sig();
            let l = t(&s, r"forall (\x. and (p x) r)");
            let r = t(&s, r"forall (\x. and r r)");
            let g = anti_unify(&s, &o(), &l, &r).unwrap();
            assert_eq!(g.holes(), 1);
            assert_eq!(g.term.to_string(), r"forall (\x. and (?H0 x) r)");
            check(&g, &s, &o(), &l, &r);
        })
    }

    #[test]
    fn lgg_matches_both_inputs() {
        // The generalization, used as a rewrite pattern, matches both
        // inputs — closing the loop with the matcher.
        let s = sig();
        let l = t(&s, r"and r (forall (\x. p x))");
        let r = t(&s, r"and (p a) (forall (\x. q x x))");
        let g = anti_unify(&s, &o(), &l, &r).unwrap();
        for target in [&l, &r] {
            let m = crate::matching::match_term(
                &s,
                &g.menv,
                &Ctx::new(),
                &o(),
                &g.term,
                target,
                &crate::matching::MatchConfig::default(),
            )
            .unwrap();
            assert!(m.is_some(), "lgg must match {target}");
        }
    }

    #[test]
    fn rejects_meta_inputs() {
        let s = sig();
        let l = Term::Meta(MVar::new(0, "X"));
        assert!(anti_unify(&s, &o(), &l, &Term::cnst("r")).is_err());
    }

    #[test]
    fn eta_variants_agree_after_canonicalization() {
        // forall p (η-short) vs forall (\x. p x): identical after canon,
        // so no holes.
        let s = sig();
        let l = t(&s, "forall p");
        let r = t(&s, r"forall (\x. p x)");
        let g = anti_unify(&s, &o(), &l, &r).unwrap();
        assert_eq!(g.holes(), 0);
    }
}
