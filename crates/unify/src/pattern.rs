//! Miller **pattern unification**: the decidable fragment of higher-order
//! unification in which every metavariable occurrence is applied to a
//! spine of *distinct constraint-local variables*.
//!
//! Within this fragment unification is unitary: a solvable problem has a
//! most general unifier, computed here by spine inversion with *pruning*
//! of nested metavariable arguments (Miller 1991, as used by λProlog,
//! Twelf, and Beluga — all descendants of the paper under reproduction).
//!
//! Outside the fragment the solver reports [`UnifyError::NotPattern`]
//! (not a refutation!); callers fall back to [`crate::huet`].
//!
//! The individual solving steps (flex-rigid inversion and the two
//! flex-flex cases) are shared with the Huet engine, which uses them to
//! dispatch pattern-shaped pairs deterministically before searching.

use crate::error::UnifyError;
use crate::msubst::MetaSubst;
use crate::problem::{
    eta_expand_var, flex_view, head_ty, resolve_side, validate_meta_types, Constraint, MetaGen,
};
use hoas_core::term::{Head, MetaEnv};
use hoas_core::{normalize, MVar, Sym, Term, TermRef, Ty};

/// A successful pattern unification: the most general unifier plus the
/// extended metavariable environment (pruning and flex-flex steps allocate
/// fresh metavariables).
#[derive(Clone, Debug)]
pub struct PatternSolution {
    /// The most general unifier.
    pub subst: MetaSubst,
    /// Types for all metavariables, including freshly allocated ones.
    pub menv: MetaEnv,
}

/// Default step budget; generously above anything a rewrite rule needs.
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// Unifies a set of constraints in the pattern fragment.
///
/// # Errors
///
/// * Refutations: [`UnifyError::Clash`], [`UnifyError::Occurs`],
///   [`UnifyError::IntClash`], [`UnifyError::Escape`].
/// * Fragment/budget limits: [`UnifyError::NotPattern`],
///   [`UnifyError::BudgetExhausted`], [`UnifyError::UnsupportedMetaType`].
/// * [`UnifyError::IllTyped`] if the constraints are not well-typed.
pub fn unify_constraints(
    sig: &hoas_core::sig::Signature,
    menv: &MetaEnv,
    constraints: Vec<Constraint>,
) -> Result<PatternSolution, UnifyError> {
    validate_meta_types(menv)?;
    let mut solver = Solver {
        sig,
        gen: MetaGen::new(menv.clone()),
        sol: MetaSubst::new(),
        work: constraints,
        fuel: DEFAULT_FUEL,
    };
    solver.run()?;
    Ok(PatternSolution {
        subst: solver.sol,
        menv: solver.gen.menv,
    })
}

/// Unifies two closed terms at a type.
///
/// # Errors
///
/// As for [`unify_constraints`].
pub fn unify(
    sig: &hoas_core::sig::Signature,
    menv: &MetaEnv,
    ty: &Ty,
    left: &Term,
    right: &Term,
) -> Result<PatternSolution, UnifyError> {
    unify_constraints(
        sig,
        menv,
        vec![Constraint::closed(ty.clone(), left.clone(), right.clone())],
    )
}

// -------------------------------------------------- shared solving steps --

/// Solves `?M x̄ ≐ rhs` by inversion: `?M := λx̄. rhs⁻¹`. Prunes nested
/// metavariable arguments where necessary (allocating fresh metas in
/// `gen` and binding the pruned ones in `sol`).
///
/// # Errors
///
/// [`UnifyError::Occurs`], [`UnifyError::Escape`] (refutations within the
/// pattern fragment), or [`UnifyError::NotPattern`] if a nested flexible
/// occurrence cannot be pruned.
pub(crate) fn solve_flex_rigid(
    gen: &mut MetaGen,
    sol: &mut MetaSubst,
    m: &MVar,
    spine: &[u32],
    local: u32,
    rhs: &Term,
) -> Result<(), UnifyError> {
    let body = invert(gen, sol, m, spine, local, rhs, 0)?;
    let hints: Vec<Sym> = (0..spine.len())
        .map(|i| Sym::new(format!("x{i}")))
        .collect();
    sol.bind(m.clone(), Term::lams(hints, body));
    Ok(())
}

/// Converts `t` (a term at constraint-local depth `local`, under `under`
/// additional binders traversed inside `t`) into the body of a solution
/// `λ^n. body` for `m` with pattern spine `spine`.
///
/// Variable mapping (see crate docs for the scope discipline):
/// * inner (< `under`): unchanged;
/// * constraint-local (`under ≤ i < under + local`): must be in the spine,
///   mapped to the corresponding λ-binder — otherwise the variable would
///   escape (prunable only under a flexible head);
/// * ambient (`≥ under + local`): renumbered past the λ-binders.
fn invert(
    gen: &mut MetaGen,
    sol: &mut MetaSubst,
    m: &MVar,
    spine: &[u32],
    local: u32,
    t: &Term,
    under: u32,
) -> Result<Term, UnifyError> {
    let n = spine.len() as u32;
    // Subterms below the traversed binders with no metavariables are fixed
    // points of the inversion: share them (O(1) occurs/escape handling).
    if t.max_free() <= under && !t.has_metas() {
        return Ok(t.clone());
    }
    if let Some((Head::Meta(inner), args)) = t.head_spine() {
        if &inner == m {
            return Err(UnifyError::Occurs { mvar: m.clone() });
        }
        return invert_flex(gen, sol, m, spine, local, &inner, &args, under);
    }
    match t {
        Term::Var(i) => {
            let i = *i;
            if i < under {
                Ok(Term::Var(i))
            } else {
                let j = i - under;
                if j < local {
                    match spine.iter().position(|&s| s == j) {
                        Some(k) => Ok(Term::Var(under + (n - 1 - k as u32))),
                        None => Err(UnifyError::Escape { mvar: m.clone() }),
                    }
                } else {
                    Ok(Term::Var(under + n + (j - local)))
                }
            }
        }
        Term::Lam(h, b) => Ok(Term::lam(
            h.clone(),
            invert_ref(gen, sol, m, spine, local, b, under + 1)?,
        )),
        Term::App(f, a) => Ok(Term::app(
            invert_ref(gen, sol, m, spine, local, f, under)?,
            invert_ref(gen, sol, m, spine, local, a, under)?,
        )),
        Term::Pair(a, b) => Ok(Term::pair(
            invert_ref(gen, sol, m, spine, local, a, under)?,
            invert_ref(gen, sol, m, spine, local, b, under)?,
        )),
        Term::Fst(p) => Ok(Term::fst(invert_ref(gen, sol, m, spine, local, p, under)?)),
        Term::Snd(p) => Ok(Term::snd(invert_ref(gen, sol, m, spine, local, p, under)?)),
        Term::Const(_) | Term::Int(_) | Term::Unit => Ok(t.clone()),
        Term::Meta(_) => unreachable!("meta heads handled above"),
    }
}

/// [`invert`] on a shared subterm, preserving the `Arc` when the subterm is
/// a fixed point of the inversion.
#[allow(clippy::too_many_arguments)]
fn invert_ref(
    gen: &mut MetaGen,
    sol: &mut MetaSubst,
    m: &MVar,
    spine: &[u32],
    local: u32,
    t: &TermRef,
    under: u32,
) -> Result<TermRef, UnifyError> {
    if t.max_free() <= under && !t.has_meta() {
        Ok(t.clone())
    } else {
        Ok(TermRef::new(invert(gen, sol, m, spine, local, t, under)?))
    }
}

/// Inverts an occurrence `?N ā` inside the prospective solution of `?M`,
/// pruning arguments of `?N` that mention unmappable local variables.
#[allow(clippy::too_many_arguments)]
fn invert_flex(
    gen: &mut MetaGen,
    sol: &mut MetaSubst,
    m: &MVar,
    spine: &[u32],
    local: u32,
    inner: &MVar,
    args: &[&Term],
    under: u32,
) -> Result<Term, UnifyError> {
    #[derive(Clone, Copy)]
    enum Arg {
        Keep,
        Prune,
    }
    let mut classes = Vec::with_capacity(args.len());
    let mut seen = Vec::new();
    let mut all_pattern = true;
    for a in args {
        match normalize::eta_contract(a) {
            Term::Var(i) => {
                if seen.contains(&i) {
                    all_pattern = false;
                    break;
                }
                seen.push(i);
                if i < under {
                    classes.push(Arg::Keep);
                } else {
                    let j = i - under;
                    if j < local && !spine.contains(&j) {
                        classes.push(Arg::Prune);
                    } else {
                        classes.push(Arg::Keep);
                    }
                }
            }
            _ => {
                all_pattern = false;
                break;
            }
        }
    }
    if !all_pattern || classes.iter().all(|c| matches!(c, Arg::Keep)) {
        // No pruning possible/needed: invert the arguments structurally
        // (a needed-but-impossible pruning will surface as Escape).
        let mut inv_args = Vec::with_capacity(args.len());
        for a in args {
            inv_args.push(invert(gen, sol, m, spine, local, a, under)?);
        }
        return Ok(Term::apps(Term::Meta(inner.clone()), inv_args));
    }
    // Prune: ?N := λy₁…yₖ. ?N' (kept ys).
    let inner_ty = gen.ty_of(inner)?.clone();
    let (arg_tys, target) = inner_ty.uncurry();
    if arg_tys.len() != args.len() {
        return Err(UnifyError::not_pattern(&Term::Meta(inner.clone())));
    }
    let kept: Vec<usize> = classes
        .iter()
        .enumerate()
        .filter_map(|(k, c)| matches!(c, Arg::Keep).then_some(k))
        .collect();
    let pruned_ty = Ty::arrows(kept.iter().map(|&k| arg_tys[k].clone()), target.clone());
    let pruned = gen.fresh(&format!("{}'", inner.hint()), pruned_ty);
    let k_all = args.len() as u32;
    let body = Term::apps(
        Term::Meta(pruned.clone()),
        kept.iter()
            .map(|&k| eta_expand_var(k_all - 1 - k as u32, arg_tys[k])),
    );
    let hints: Vec<Sym> = (0..args.len()).map(|i| Sym::new(format!("y{i}"))).collect();
    sol.bind(inner.clone(), Term::lams(hints, body));
    let mut inv_args = Vec::with_capacity(kept.len());
    for &k in &kept {
        inv_args.push(invert(gen, sol, m, spine, local, args[k], under)?);
    }
    Ok(Term::apps(Term::Meta(pruned), inv_args))
}

/// `?M x̄ ≐ ?M ȳ`: keep positions where the spines agree.
pub(crate) fn flex_flex_same(
    gen: &mut MetaGen,
    sol: &mut MetaSubst,
    m: &MVar,
    s1: &[u32],
    s2: &[u32],
) -> Result<(), UnifyError> {
    if s1 == s2 {
        return Ok(());
    }
    let mty = gen.ty_of(m)?.clone();
    let (arg_tys, target) = mty.uncurry();
    let n = s1.len();
    debug_assert_eq!(s1.len(), s2.len());
    let kept: Vec<usize> = (0..n).filter(|&k| s1[k] == s2[k]).collect();
    let new_ty = Ty::arrows(kept.iter().map(|&k| arg_tys[k].clone()), target.clone());
    let fresh = gen.fresh(&format!("{}'", m.hint()), new_ty);
    let body = Term::apps(
        Term::Meta(fresh),
        kept.iter()
            .map(|&k| eta_expand_var((n - 1 - k) as u32, arg_tys[k])),
    );
    let hints: Vec<Sym> = (0..n).map(|i| Sym::new(format!("z{i}"))).collect();
    sol.bind(m.clone(), Term::lams(hints, body));
    Ok(())
}

/// `?M x̄ ≐ ?N ȳ` with `M ≠ N`: both become a fresh metavariable over the
/// variables common to both spines.
pub(crate) fn flex_flex_diff(
    gen: &mut MetaGen,
    sol: &mut MetaSubst,
    m: &MVar,
    s1: &[u32],
    n_var: &MVar,
    s2: &[u32],
) -> Result<(), UnifyError> {
    let mty = gen.ty_of(m)?.clone();
    let nty = gen.ty_of(n_var)?.clone();
    let (m_args, target) = mty.uncurry();
    let (n_args, _) = nty.uncurry();
    let mut pairs = Vec::new();
    for (k1, v) in s1.iter().enumerate() {
        if let Some(k2) = s2.iter().position(|w| w == v) {
            pairs.push((k1, k2));
        }
    }
    let common_ty = Ty::arrows(
        pairs.iter().map(|&(k1, _)| m_args[k1].clone()),
        target.clone(),
    );
    let fresh = gen.fresh(&format!("{}''", m.hint()), common_ty);
    let n1 = s1.len();
    let n2 = s2.len();
    let m_body = Term::apps(
        Term::Meta(fresh.clone()),
        pairs
            .iter()
            .map(|&(k1, _)| eta_expand_var((n1 - 1 - k1) as u32, m_args[k1])),
    );
    let n_body = Term::apps(
        Term::Meta(fresh),
        pairs
            .iter()
            .map(|&(_, k2)| eta_expand_var((n2 - 1 - k2) as u32, n_args[k2])),
    );
    let m_hints: Vec<Sym> = (0..n1).map(|i| Sym::new(format!("z{i}"))).collect();
    let n_hints: Vec<Sym> = (0..n2).map(|i| Sym::new(format!("z{i}"))).collect();
    sol.bind(m.clone(), Term::lams(m_hints, m_body));
    sol.bind(n_var.clone(), Term::lams(n_hints, n_body));
    Ok(())
}

/// Decomposes a constraint one step given already-resolved (canonical)
/// sides, pushing subconstraints onto `work`.
///
/// This is shared between the pattern solver (which *requires* flexible
/// pairs to be patterns) and the Huet engine (which collects non-pattern
/// pairs for search); the `on_stuck` callback receives pairs the pattern
/// steps cannot decide.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decompose_step(
    sig: &hoas_core::sig::Signature,
    gen: &mut MetaGen,
    sol: &mut MetaSubst,
    work: &mut Vec<Constraint>,
    ctx: hoas_core::ctx::Ctx,
    local: u32,
    ty: Ty,
    left: Term,
    right: Term,
    on_stuck: &mut dyn FnMut(Constraint) -> Result<(), UnifyError>,
) -> Result<(), UnifyError> {
    match &ty {
        Ty::Arrow(dom, cod) => {
            let (hl, bl) = match left {
                Term::Lam(h, b) => (h, b.into_term()),
                other => {
                    return Err(UnifyError::IllTyped(hoas_core::Error::CheckShape {
                        form: "non-λ canonical term",
                        ty: other_ty(&other, &ty),
                    }))
                }
            };
            let br = match right {
                Term::Lam(_, b) => b.into_term(),
                other => {
                    return Err(UnifyError::IllTyped(hoas_core::Error::CheckShape {
                        form: "non-λ canonical term",
                        ty: other_ty(&other, &ty),
                    }))
                }
            };
            work.push(Constraint {
                ctx: ctx.push(hl, dom.as_ref().clone()),
                local: local + 1,
                ty: cod.as_ref().clone(),
                left: bl,
                right: br,
            });
            Ok(())
        }
        Ty::Prod(a, b) => match (left, right) {
            (Term::Pair(l1, l2), Term::Pair(r1, r2)) => {
                work.push(Constraint {
                    ctx: ctx.clone(),
                    local,
                    ty: a.as_ref().clone(),
                    left: l1.into_term(),
                    right: r1.into_term(),
                });
                work.push(Constraint {
                    ctx,
                    local,
                    ty: b.as_ref().clone(),
                    left: l2.into_term(),
                    right: r2.into_term(),
                });
                Ok(())
            }
            (l, r) => Err(UnifyError::clash(&l, &r)),
        },
        Ty::Unit => Ok(()),
        Ty::Base(_) | Ty::Int | Ty::Var(_) => {
            decompose_base(sig, gen, sol, work, ctx, local, ty, left, right, on_stuck)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn decompose_base(
    sig: &hoas_core::sig::Signature,
    gen: &mut MetaGen,
    sol: &mut MetaSubst,
    work: &mut Vec<Constraint>,
    ctx: hoas_core::ctx::Ctx,
    local: u32,
    ty: Ty,
    left: Term,
    right: Term,
    on_stuck: &mut dyn FnMut(Constraint) -> Result<(), UnifyError>,
) -> Result<(), UnifyError> {
    if left == right {
        return Ok(());
    }
    if let (Term::Int(a), Term::Int(b)) = (&left, &right) {
        return Err(UnifyError::IntClash {
            left: *a,
            right: *b,
        });
    }
    let fl = flex_view(&left, local);
    let fr = flex_view(&right, local);
    match (fl, fr) {
        (Some(vl), Some(vr)) => match (vl.pattern_spine, vr.pattern_spine) {
            (Some(sl), Some(sr)) => {
                if vl.mvar == vr.mvar {
                    flex_flex_same(gen, sol, &vl.mvar, &sl, &sr)
                } else {
                    flex_flex_diff(gen, sol, &vl.mvar, &sl, &vr.mvar, &sr)
                }
            }
            _ => on_stuck(Constraint {
                ctx,
                local,
                ty,
                left,
                right,
            }),
        },
        (Some(vl), None) => match vl.pattern_spine {
            Some(spine) => solve_flex_rigid(gen, sol, &vl.mvar, &spine, local, &right),
            None => on_stuck(Constraint {
                ctx,
                local,
                ty,
                left,
                right,
            }),
        },
        (None, Some(vr)) => match vr.pattern_spine {
            Some(spine) => solve_flex_rigid(gen, sol, &vr.mvar, &spine, local, &left),
            None => on_stuck(Constraint {
                ctx,
                local,
                ty,
                left,
                right,
            }),
        },
        (None, None) => rigid_rigid(sig, gen, work, ctx, local, left, right),
    }
}

fn rigid_rigid(
    sig: &hoas_core::sig::Signature,
    gen: &MetaGen,
    work: &mut Vec<Constraint>,
    ctx: hoas_core::ctx::Ctx,
    local: u32,
    left: Term,
    right: Term,
) -> Result<(), UnifyError> {
    match (left.head_spine(), right.head_spine()) {
        (Some((hl, al)), Some((hr, ar))) => {
            if hl != hr || al.len() != ar.len() {
                return Err(UnifyError::clash(&left, &right));
            }
            let hty = head_ty(sig, gen, &ctx, &hl)?;
            let (arg_tys, _) = hty.uncurry();
            if arg_tys.len() < al.len() {
                return Err(UnifyError::IllTyped(hoas_core::Error::NotAFunction {
                    ty: hty.clone(),
                }));
            }
            for ((l, r), t) in al.iter().zip(ar.iter()).zip(arg_tys) {
                work.push(Constraint {
                    ctx: ctx.clone(),
                    local,
                    ty: t.clone(),
                    left: (*l).clone(),
                    right: (*r).clone(),
                });
            }
            Ok(())
        }
        _ => match (&left, &right) {
            (Term::Fst(p), Term::Fst(q)) | (Term::Snd(p), Term::Snd(q)) => {
                let pty = hoas_core::typeck::synth(sig, &gen.menv, &ctx, p)
                    .map_err(UnifyError::IllTyped)?;
                work.push(Constraint {
                    ctx,
                    local,
                    ty: pty,
                    left: p.as_ref().clone(),
                    right: q.as_ref().clone(),
                });
                Ok(())
            }
            _ => Err(UnifyError::clash(&left, &right)),
        },
    }
}

// ------------------------------------------------------- pattern driver --

struct Solver<'s> {
    sig: &'s hoas_core::sig::Signature,
    gen: MetaGen,
    sol: MetaSubst,
    work: Vec<Constraint>,
    fuel: u64,
}

impl Solver<'_> {
    fn run(&mut self) -> Result<(), UnifyError> {
        while let Some(c) = self.work.pop() {
            if self.fuel == 0 {
                return Err(UnifyError::BudgetExhausted);
            }
            self.fuel -= 1;
            let left = resolve_side(self.sig, &self.gen, &self.sol, &c.ctx, &c.ty, &c.left)?;
            let right = resolve_side(self.sig, &self.gen, &self.sol, &c.ctx, &c.ty, &c.right)?;
            // In the pure pattern solver, any stuck pair is a NotPattern
            // failure.
            let mut stuck = |c: Constraint| {
                Err(UnifyError::not_pattern(if c.left.has_metas() {
                    &c.left
                } else {
                    &c.right
                }))
            };
            decompose_step(
                self.sig,
                &mut self.gen,
                &mut self.sol,
                &mut self.work,
                c.ctx,
                c.local,
                c.ty,
                left,
                right,
                &mut stuck,
            )?;
        }
        Ok(())
    }
}

/// Recovers a plausible "found type" for error reporting.
fn other_ty(_t: &Term, expected: &Ty) -> Ty {
    expected.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::parse::parse_term_with;
    use hoas_core::prelude::*;

    fn fol_sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const not : o -> o.
             const forall : (i -> o) -> o.
             const exists : (i -> o) -> o.
             const p : i -> o.
             const q : i -> i -> o.
             const r : o.
             const f : i -> i.
             const a : i.
             const b : i.",
        )
        .unwrap()
    }

    fn o() -> Ty {
        Ty::base("o")
    }

    /// Unify `l ≐ r : o` with the given metavariable types.
    fn go_typed(
        metas: &[(&str, &str)],
        l: &str,
        r: &str,
    ) -> Result<(PatternSolution, Term, Term), UnifyError> {
        let sig = fol_sig();
        let pl = parse_term(&sig, l).unwrap();
        let pr = parse_term_with(&sig, r, pl.metas.clone()).unwrap();
        let mut menv = MetaEnv::new();
        for (name, ty) in metas {
            let m = pr
                .metas
                .get(name)
                .unwrap_or_else(|| panic!("metavariable ?{name} not used"))
                .clone();
            menv.insert(m, parse_ty(ty).unwrap());
        }
        let solution = unify(&sig, &menv, &o(), &pl.term, &pr.term)?;
        Ok((solution, pl.term, pr.term))
    }

    /// Asserts both sides are syntactically equal after applying the
    /// unifier (the soundness property).
    fn assert_unifies(metas: &[(&str, &str)], l: &str, r: &str) -> PatternSolution {
        let (sol, tl, tr) = go_typed(metas, l, r).unwrap();
        let al = sol.subst.apply(&tl);
        let ar = sol.subst.apply(&tr);
        assert_eq!(al, ar, "unifier does not equalize: {al} vs {ar}");
        sol
    }

    #[test]
    fn rigid_rigid_decomposition() {
        assert_unifies(&[("P", "o")], "and r ?P", "and r (or r r)");
    }

    #[test]
    fn rigid_clash() {
        let err = go_typed(&[("P", "o")], "and ?P ?P", "or r r").unwrap_err();
        assert!(matches!(err, UnifyError::Clash { .. }));
        assert!(err.is_refutation());
    }

    #[test]
    fn simple_flex_rigid() {
        let sol = assert_unifies(&[("P", "o")], "?P", "and r r");
        let m = sol.subst.iter().next().map(|(m, _)| m.clone()).unwrap();
        assert_eq!(sol.subst.get(&m).unwrap().to_string(), "and r r");
    }

    #[test]
    fn flex_rigid_under_binder_with_spine() {
        // forall (\x. ?Q x) ≐ forall (\x. p x) solves ?Q := λx. p x.
        let sol = assert_unifies(
            &[("Q", "i -> o")],
            r"forall (\x. ?Q x)",
            r"forall (\x. p x)",
        );
        assert_eq!(sol.subst.len(), 1);
    }

    #[test]
    fn escape_check_rejects_unscoped_solution() {
        // forall (\x. ?P) ≐ forall (\x. p x): ?P cannot mention x.
        let err = go_typed(&[("P", "o")], r"forall (\x. ?P)", r"forall (\x. p x)").unwrap_err();
        assert!(matches!(err, UnifyError::Escape { .. }));
    }

    #[test]
    fn vacuous_binder_succeeds() {
        // forall (\x. ?P) ≐ forall (\x. r) is fine: ?P := r.
        let sol = assert_unifies(&[("P", "o")], r"forall (\x. ?P)", r"forall (\x. r)");
        let (_, t) = sol.subst.iter().next().unwrap();
        assert_eq!(t, &Term::cnst("r"));
    }

    #[test]
    fn occurs_check() {
        let err = go_typed(&[("P", "o")], "?P", "and ?P r").unwrap_err();
        assert!(matches!(err, UnifyError::Occurs { .. }));
    }

    #[test]
    fn spine_inversion_renames() {
        // exists (\x. forall (\y. ?Q y x)) ≐ exists (\x. forall (\y. q x y))
        // solves ?Q := λy. λx. q x y (arguments swapped).
        let sol = assert_unifies(
            &[("Q", "i -> i -> o")],
            r"exists (\x. forall (\y. ?Q y x))",
            r"exists (\x. forall (\y. q x y))",
        );
        let (_, t) = sol.subst.iter().next().unwrap();
        assert_eq!(t.to_string(), r"\x0. \x1. q x1 x0");
    }

    #[test]
    fn non_pattern_repeated_vars_reported() {
        let err = go_typed(
            &[("Q", "i -> i -> o")],
            r"forall (\x. ?Q x x)",
            r"forall (\x. p x)",
        )
        .unwrap_err();
        assert!(matches!(err, UnifyError::NotPattern { .. }));
        assert!(!err.is_refutation());
    }

    #[test]
    fn non_pattern_constant_arg_reported() {
        let err = go_typed(&[("Q", "i -> o")], "?Q a", "p a").unwrap_err();
        assert!(matches!(err, UnifyError::NotPattern { .. }));
    }

    #[test]
    fn flex_flex_same_meta_intersects() {
        // forall (\x. forall (\y. ?Q x y)) ≐ forall (\x. forall (\y. ?Q y x))
        // keeps no position (the spines disagree everywhere), so ?Q becomes
        // a constant function of a fresh metavariable.
        let (sol, tl, tr) = go_typed(
            &[("Q", "i -> i -> o")],
            r"forall (\x. forall (\y. ?Q x y))",
            r"forall (\x. forall (\y. ?Q y x))",
        )
        .unwrap();
        let al = sol.subst.apply(&tl);
        let ar = sol.subst.apply(&tr);
        assert_eq!(al, ar);
        assert_eq!(sol.subst.len(), 1);
    }

    #[test]
    fn flex_flex_different_metas_common_vars() {
        // forall (\x. forall (\y. ?Q x y)) ≐ forall (\x. forall (\y. ?R y))
        let (sol, tl, tr) = go_typed(
            &[("Q", "i -> i -> o"), ("R", "i -> o")],
            r"forall (\x. forall (\y. ?Q x y))",
            r"forall (\x. forall (\y. ?R y))",
        )
        .unwrap();
        let al = sol.subst.apply(&tl);
        let ar = sol.subst.apply(&tr);
        assert_eq!(al, ar);
        assert_eq!(sol.subst.len(), 2);
    }

    #[test]
    fn pruning_nested_meta() {
        hoas_core::StoreHandle::isolated().enter(|| {
            // Isolated store: this test matches metavariables by printing
            // hint, and hints are canonical per α-class per store.
            // forall (\x. ?P) ≐ forall (\x. and r (?R x)) — ?R's argument x must
            // be pruned for ?P's solution to be well-scoped: ?R := λx. ?R'.
            let (sol, tl, tr) = go_typed(
                &[("P", "o"), ("R", "i -> o")],
                r"forall (\x. ?P)",
                r"forall (\x. and r (?R x))",
            )
            .unwrap();
            let al = sol.subst.apply(&tl);
            let ar = sol.subst.apply(&tr);
            assert_eq!(al, ar);
            // ?R must have been pruned to a constant function.
            let r_sol = sol
                .subst
                .iter()
                .find(|(m, _)| m.hint().as_str() == "R")
                .map(|(_, t)| t.clone())
                .expect("R was pruned");
            match r_sol {
                Term::Lam(_, body) => assert!(!body.occurs_free(0), "R still uses its argument"),
                other => panic!("expected λ, got {other}"),
            }
        })
    }

    #[test]
    fn eta_long_spines_recognized() {
        // Second-order spine argument: ?F applied to an η-expanded bound
        // function variable. Metavariable of type ((i -> o) -> o).
        let sig = fol_sig();
        let mut menv = MetaEnv::new();
        let pl = parse_term(&sig, r"?F").unwrap();
        let m = pl.metas.get("F").unwrap().clone();
        menv.insert(m.clone(), parse_ty("(i -> o) -> o").unwrap());
        let rhs = parse_term(&sig, r"\g. forall (\x. g x)").unwrap().term;
        let ty = parse_ty("(i -> o) -> o").unwrap();
        let sol = unify(&sig, &menv, &ty, &pl.term, &rhs).unwrap();
        let applied = sol.subst.apply(&pl.term);
        let want = normalize::canon_closed(&sig, &rhs, &ty).unwrap();
        let got = normalize::canon_closed(&sig, &applied, &ty).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn int_literals() {
        let sig = Signature::parse("type e. const lit : int -> e.").unwrap();
        let mut menv = MetaEnv::new();
        let pl = parse_term(&sig, "lit ?N").unwrap();
        menv.insert(pl.metas.get("N").unwrap().clone(), Ty::Int);
        let target = parse_term(&sig, "lit 42").unwrap().term;
        let sol = unify(&sig, &menv, &Ty::base("e"), &pl.term, &target).unwrap();
        assert_eq!(sol.subst.apply(&pl.term), target);
        let l2 = parse_term(&sig, "lit 1").unwrap().term;
        let r2 = parse_term(&sig, "lit 2").unwrap().term;
        let err = unify(&sig, &MetaEnv::new(), &Ty::base("e"), &l2, &r2).unwrap_err();
        assert!(matches!(err, UnifyError::IntClash { .. }));
    }

    #[test]
    fn ill_typed_problem_reported() {
        let sig = fol_sig();
        let l = parse_term(&sig, "and r").unwrap().term; // o -> o, not o
        let r = parse_term(&sig, "r").unwrap().term;
        assert!(unify(&sig, &MetaEnv::new(), &o(), &l, &r).is_err());
    }

    #[test]
    fn unsupported_meta_type_rejected_up_front() {
        let sig = fol_sig();
        let mut menv = MetaEnv::new();
        menv.insert(MVar::new(0, "P"), Ty::prod(o(), o()));
        let err = unify(&sig, &menv, &o(), &Term::cnst("r"), &Term::cnst("r")).unwrap_err();
        assert!(matches!(err, UnifyError::UnsupportedMetaType { .. }));
    }

    #[test]
    fn solution_is_most_general_leaves_free_metas() {
        // ?P ≐ and ?R ?R: ?P is solved in terms of ?R, which stays free.
        let (sol, tl, tr) = go_typed(&[("P", "o"), ("R", "o")], "?P", "and ?R ?R").unwrap();
        assert_eq!(sol.subst.apply(&tl), sol.subst.apply(&tr));
        assert_eq!(sol.subst.len(), 1);
        let (_, p_sol) = sol.subst.iter().next().unwrap();
        assert_eq!(p_sol.metas().len(), 1, "?R should remain in ?P's solution");
    }

    #[test]
    fn ambient_variables_allowed_in_solutions() {
        // Pose ?P ≐ p x under an *ambient* binder x : i. The solution may
        // mention x (this is what rewriting under binders needs).
        let sig = fol_sig();
        let mut menv = MetaEnv::new();
        let m = MVar::new(0, "P");
        menv.insert(m.clone(), o());
        let ctx = Ctx::new().push(Sym::new("x"), Ty::base("i"));
        let c = Constraint::in_ambient(
            ctx,
            o(),
            Term::Meta(m.clone()),
            Term::app(Term::cnst("p"), Term::Var(0)),
        );
        let sol = unify_constraints(&sig, &menv, vec![c]).unwrap();
        assert_eq!(
            sol.subst.get(&m).unwrap(),
            &Term::app(Term::cnst("p"), Term::Var(0))
        );
    }
}
