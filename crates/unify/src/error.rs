//! Unification errors.

use hoas_core::{Error as CoreError, MVar, Term, Ty};
use std::fmt;

/// Why a unification or matching attempt failed (or could not proceed).
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum UnifyError {
    /// Two rigid heads disagree; the problem has no solution.
    Clash {
        /// Rendered left head.
        left: String,
        /// Rendered right head.
        right: String,
    },
    /// The metavariable occurs rigidly in its own prospective solution.
    Occurs {
        /// The cyclic metavariable.
        mvar: MVar,
    },
    /// A constraint-local variable would escape into a solution (and could
    /// not be pruned).
    Escape {
        /// The metavariable whose solution would capture the variable.
        mvar: MVar,
    },
    /// The problem falls outside the Miller pattern fragment (a
    /// metavariable applied to something other than distinct local
    /// variables). Not a refutation — retry with [`crate::huet`].
    NotPattern {
        /// The offending flexible term, rendered.
        term: String,
    },
    /// A metavariable's type uses products or unit, which the unifier does
    /// not support (see crate docs).
    UnsupportedMetaType {
        /// The metavariable.
        mvar: MVar,
        /// Its unsupported type.
        ty: Ty,
    },
    /// A constraint's sides are not well-typed at the constraint type.
    IllTyped(CoreError),
    /// A polymorphic constant occurred in a unification problem; the
    /// unifier handles only monomorphic signatures.
    PolyConst {
        /// The constant's name.
        name: hoas_core::Sym,
    },
    /// Two distinct integer literals.
    IntClash {
        /// Left literal.
        left: i64,
        /// Right literal.
        right: i64,
    },
    /// The search budget (depth or fuel) was exhausted before an answer.
    BudgetExhausted,
}

impl UnifyError {
    pub(crate) fn clash(l: &Term, r: &Term) -> UnifyError {
        UnifyError::Clash {
            left: l.to_string(),
            right: r.to_string(),
        }
    }

    pub(crate) fn not_pattern(t: &Term) -> UnifyError {
        UnifyError::NotPattern {
            term: t.to_string(),
        }
    }

    /// Whether the failure is a definite refutation (no solution exists),
    /// as opposed to a fragment/budget limitation.
    pub fn is_refutation(&self) -> bool {
        matches!(
            self,
            UnifyError::Clash { .. } | UnifyError::Occurs { .. } | UnifyError::IntClash { .. }
        )
    }
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyError::Clash { left, right } => {
                write!(f, "rigid heads clash: `{left}` vs `{right}`")
            }
            UnifyError::Occurs { mvar } => {
                write!(f, "occurs check: {mvar} appears in its own solution")
            }
            UnifyError::Escape { mvar } => write!(
                f,
                "a local variable would escape into the solution of {mvar}"
            ),
            UnifyError::NotPattern { term } => {
                write!(f, "`{term}` is outside the pattern fragment")
            }
            UnifyError::UnsupportedMetaType { mvar, ty } => write!(
                f,
                "metavariable {mvar} has unsupported type `{ty}` (products/unit not allowed)"
            ),
            UnifyError::IllTyped(e) => write!(f, "ill-typed unification problem: {e}"),
            UnifyError::PolyConst { name } => {
                write!(f, "polymorphic constant `{name}` in unification problem")
            }
            UnifyError::IntClash { left, right } => {
                write!(f, "integer literals differ: {left} vs {right}")
            }
            UnifyError::BudgetExhausted => write!(f, "unification search budget exhausted"),
        }
    }
}

impl std::error::Error for UnifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UnifyError::IllTyped(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for UnifyError {
    fn from(e: CoreError) -> Self {
        UnifyError::IllTyped(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refutation_classification() {
        assert!(UnifyError::IntClash { left: 1, right: 2 }.is_refutation());
        assert!(!UnifyError::BudgetExhausted.is_refutation());
        assert!(!UnifyError::NotPattern {
            term: "?F x x".into()
        }
        .is_refutation());
    }

    #[test]
    fn display_messages() {
        let e = UnifyError::Clash {
            left: "and".into(),
            right: "or".into(),
        };
        assert_eq!(e.to_string(), "rigid heads clash: `and` vs `or`");
    }
}
