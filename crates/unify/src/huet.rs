//! Huet's **pre-unification** procedure for full higher-order unification
//! (the algorithm the paper's Ergo implementation used).
//!
//! The procedure alternates two phases:
//!
//! * **SIMPL** — decompose rigid-rigid pairs structurally (failing on
//!   clashes) and dispatch pattern-shaped flexible pairs deterministically
//!   via the Miller steps from [`crate::pattern`];
//! * **MATCH** — for a stuck flex-rigid pair `?M x̄ ≐ @ ā`, branch over
//!   *imitation* (copy the rigid head) and *projection* (return one of
//!   `?M`'s arguments) bindings, searching depth-first.
//!
//! Full higher-order unification is only semi-decidable; the search is
//! bounded by [`HuetConfig::max_depth`] and [`HuetConfig::fuel`], and the
//! outcome records whether any branch was truncated
//! ([`SearchOutcome::exhausted`]) so callers can distinguish "no solution"
//! from "ran out of budget".
//!
//! Following Huet, states whose remaining constraints are all flex-flex
//! are **solved** (pre-unifiers): flex-flex pairs always have solutions,
//! and enumerating them is pointless.

use crate::error::UnifyError;
use crate::msubst::MetaSubst;
use crate::pattern;
use crate::problem::{
    eta_expand_var, flex_view, resolve_side, validate_meta_types, Constraint, MetaGen,
};
use hoas_core::ctx::Ctx;
use hoas_core::sig::Signature;
use hoas_core::term::{Head, MetaEnv};
use hoas_core::{MVar, Sym, Term, Ty};

/// Search budgets for pre-unification.
#[derive(Clone, Copy, Debug)]
pub struct HuetConfig {
    /// Maximum number of MATCH (imitation/projection) choices along one
    /// branch.
    pub max_depth: u32,
    /// Stop after this many solutions.
    pub max_solutions: usize,
    /// Total constraint-processing steps across the whole search.
    pub fuel: u64,
}

impl Default for HuetConfig {
    fn default() -> Self {
        HuetConfig {
            max_depth: 8,
            max_solutions: 4,
            fuel: 200_000,
        }
    }
}

/// One pre-unifier.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The computed substitution.
    pub subst: MetaSubst,
    /// Types of all metavariables including fresh ones.
    pub menv: MetaEnv,
    /// Remaining (always-solvable) flex-flex constraints.
    pub flex_flex: Vec<Constraint>,
}

/// The result of a bounded search.
#[derive(Clone, Debug, Default)]
pub struct SearchOutcome {
    /// Solutions found, in discovery order.
    pub solutions: Vec<Solution>,
    /// Whether some branch was cut off by depth or fuel — if `true` and
    /// `solutions` is empty, the problem is *undetermined*, not refuted.
    pub exhausted: bool,
}

/// Pre-unifies a constraint set.
///
/// # Errors
///
/// Returns an error only for malformed inputs
/// ([`UnifyError::UnsupportedMetaType`], [`UnifyError::IllTyped`],
/// [`UnifyError::PolyConst`]). Unsolvability is reported through an empty
/// [`SearchOutcome`], not an error.
pub fn pre_unify(
    sig: &Signature,
    menv: &MetaEnv,
    constraints: Vec<Constraint>,
    cfg: &HuetConfig,
) -> Result<SearchOutcome, UnifyError> {
    validate_meta_types(menv)?;
    let mut out = SearchOutcome::default();
    let mut fuel = cfg.fuel;
    let state = State {
        gen: MetaGen::new(menv.clone()),
        sol: MetaSubst::new(),
        work: constraints,
    };
    dfs(sig, state, cfg.max_depth, cfg, &mut out, &mut fuel)?;
    Ok(out)
}

/// Pre-unifies two closed terms at a type.
///
/// # Errors
///
/// As for [`pre_unify`].
pub fn pre_unify_terms(
    sig: &Signature,
    menv: &MetaEnv,
    ty: &Ty,
    left: &Term,
    right: &Term,
    cfg: &HuetConfig,
) -> Result<SearchOutcome, UnifyError> {
    pre_unify(
        sig,
        menv,
        vec![Constraint::closed(ty.clone(), left.clone(), right.clone())],
        cfg,
    )
}

#[derive(Clone)]
struct State {
    gen: MetaGen,
    sol: MetaSubst,
    work: Vec<Constraint>,
}

fn dfs(
    sig: &Signature,
    mut st: State,
    depth: u32,
    cfg: &HuetConfig,
    out: &mut SearchOutcome,
    fuel: &mut u64,
) -> Result<(), UnifyError> {
    let stuck = match simpl(sig, &mut st, fuel) {
        Ok(stuck) => stuck,
        Err(e) if e.is_refutation() => return Ok(()), // dead branch
        Err(UnifyError::Escape { .. }) => return Ok(()), // dead branch
        Err(UnifyError::BudgetExhausted) => {
            out.exhausted = true;
            return Ok(());
        }
        Err(e) => return Err(e), // malformed problem
    };
    // Find a stuck pair with a rigid side to MATCH on.
    let pick = stuck.iter().position(|c| {
        let lf = flex_view(&c.left, c.local).is_some();
        let rf = flex_view(&c.right, c.local).is_some();
        lf != rf
    });
    let Some(idx) = pick else {
        // All flex-flex (or nothing): a pre-unifier.
        out.solutions.push(Solution {
            subst: st.sol,
            menv: st.gen.menv,
            flex_flex: stuck,
        });
        return Ok(());
    };
    if depth == 0 {
        out.exhausted = true;
        return Ok(());
    }
    let c = &stuck[idx];
    let (flex, rigid) = if flex_view(&c.left, c.local).is_some() {
        (&c.left, &c.right)
    } else {
        (&c.right, &c.left)
    };
    let Some(view) = flex_view(flex, c.local) else {
        unreachable!("picked constraint has a flexible side")
    };
    let m = view.mvar;
    let kinds = candidate_kinds(sig, &st.gen, &c.ctx, c.local, &m, rigid)?;
    if kinds.is_empty() {
        return Ok(()); // no binding can solve this pair: dead branch
    }
    for kind in kinds {
        if out.solutions.len() >= cfg.max_solutions {
            return Ok(());
        }
        let mut st2 = st.clone();
        let binding = build_binding(&mut st2.gen, &m, &kind)?;
        st2.sol.bind(m.clone(), binding);
        st2.work.extend(stuck.iter().cloned());
        dfs(sig, st2, depth - 1, cfg, out, fuel)?;
    }
    Ok(())
}

/// SIMPL: decompose until only non-pattern flexible pairs remain.
fn simpl(sig: &Signature, st: &mut State, fuel: &mut u64) -> Result<Vec<Constraint>, UnifyError> {
    let mut stuck: Vec<Constraint> = Vec::new();
    while let Some(c) = st.work.pop() {
        if *fuel == 0 {
            return Err(UnifyError::BudgetExhausted);
        }
        *fuel -= 1;
        let left = resolve_side(sig, &st.gen, &st.sol, &c.ctx, &c.ty, &c.left)?;
        let right = resolve_side(sig, &st.gen, &st.sol, &c.ctx, &c.ty, &c.right)?;
        // Snapshot so that a partially-performed pattern step (pruning)
        // can be rolled back when the pair turns out to be non-pattern.
        let saved_sol = st.sol.clone();
        let saved_gen = st.gen.clone();
        let solved_before = st.sol.len();
        let mut stuck_hit: Option<Constraint> = None;
        let result = pattern::decompose_step(
            sig,
            &mut st.gen,
            &mut st.sol,
            &mut st.work,
            c.ctx.clone(),
            c.local,
            c.ty.clone(),
            left,
            right,
            &mut |c| {
                stuck_hit = Some(c);
                Err(UnifyError::BudgetExhausted) // sentinel, remapped below
            },
        );
        match result {
            Ok(()) => {
                // If a metavariable got solved, previously stuck pairs may
                // now decompose: move them back to the worklist.
                if st.sol.len() != solved_before && !stuck.is_empty() {
                    st.work.append(&mut stuck);
                }
            }
            Err(_) if stuck_hit.is_some() => {
                st.sol = saved_sol;
                st.gen = saved_gen;
                stuck.push(stuck_hit.take().expect("just checked"));
            }
            Err(UnifyError::NotPattern { .. }) => {
                // A nested non-pattern occurrence inside a pattern step:
                // keep the pair for the search phase.
                st.sol = saved_sol;
                st.gen = saved_gen;
                stuck.push(c);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(stuck)
}

/// A MATCH binding candidate for `?M : A₁→…→Aₙ→B`.
enum BindingKind {
    /// Copy the rigid head (a constant, an ambient variable rendered in
    /// solution scope, or an integer literal).
    Imitate { head: Term, head_ty: Ty },
    /// Return the k-th argument of `?M` (0-based, outermost first).
    Project { k: usize },
}

/// Enumerates binding kinds for the stuck pair `?M x̄ ≐ rigid`.
///
/// Imitation is offered when the rigid head is a constant, an *ambient*
/// variable (in solution scope — constraint-local heads cannot be
/// imitated, only projected at), or an integer literal. A projection at
/// argument `k` is offered when `Aₖ`'s target type equals `?M`'s target
/// type (simple types admit no other way for `xₖ ā` to land in `B`).
fn candidate_kinds(
    sig: &Signature,
    gen: &MetaGen,
    ctx: &Ctx,
    local: u32,
    m: &MVar,
    rigid: &Term,
) -> Result<Vec<BindingKind>, UnifyError> {
    let mty = gen.ty_of(m)?.clone();
    let (arg_tys, target) = mty.uncurry();
    let n = arg_tys.len();
    let mut kinds = Vec::new();
    match rigid.head_spine() {
        Some((Head::Const(cname), _)) => {
            let hty = crate::problem::head_ty(sig, gen, ctx, &Head::Const(cname.clone()))?;
            kinds.push(BindingKind::Imitate {
                head: Term::Const(cname),
                head_ty: hty,
            });
        }
        Some((Head::Var(i), _)) if i >= local => {
            // Ambient variable: in solution scope its index drops by
            // `local` (solutions are closed under the λ^n binders, which
            // `build_binding` accounts for by shifting ambient indices
            // past n).
            let hty = crate::problem::head_ty(sig, gen, ctx, &Head::Var(i))?;
            kinds.push(BindingKind::Imitate {
                head: Term::Var(i - local + n as u32),
                head_ty: hty,
            });
        }
        _ => {
            if let Term::Int(j) = rigid {
                if target == &Ty::Int {
                    kinds.push(BindingKind::Imitate {
                        head: Term::Int(*j),
                        head_ty: Ty::Int,
                    });
                }
            }
            // Constraint-local head or projection-rooted neutral: no
            // imitation, projections only.
        }
    }
    for (k, ak) in arg_tys.iter().enumerate() {
        let (_, ak_target) = ak.uncurry();
        if ak_target == target {
            kinds.push(BindingKind::Project { k });
        }
    }
    Ok(kinds)
}

/// Builds the solution term for a binding kind.
fn build_binding(gen: &mut MetaGen, m: &MVar, kind: &BindingKind) -> Result<Term, UnifyError> {
    let mty = gen.ty_of(m)?.clone();
    let (arg_tys, _target) = mty.uncurry();
    let arg_tys: Vec<Ty> = arg_tys.into_iter().cloned().collect();
    let n = arg_tys.len();
    // η-expanded binder variables x̄, usable as arguments to fresh metas.
    let spine_args: Vec<Term> = (0..n)
        .map(|i| eta_expand_var((n - 1 - i) as u32, &arg_tys[i]))
        .collect();
    let body = match kind {
        BindingKind::Imitate { head, head_ty } => {
            let (h_args, _) = head_ty.uncurry();
            let fresh_apps: Vec<Term> = h_args
                .iter()
                .map(|ci| {
                    let hty = Ty::arrows(arg_tys.iter().cloned(), (*ci).clone());
                    let h = gen.fresh("H", hty);
                    Term::apps(Term::Meta(h), spine_args.iter().cloned())
                })
                .collect();
            Term::apps(head.clone(), fresh_apps)
        }
        BindingKind::Project { k } => {
            let ak = &arg_tys[*k];
            let (k_args, _) = ak.uncurry();
            let fresh_apps: Vec<Term> = k_args
                .iter()
                .map(|ci| {
                    let hty = Ty::arrows(arg_tys.iter().cloned(), (*ci).clone());
                    let h = gen.fresh("H", hty);
                    Term::apps(Term::Meta(h), spine_args.iter().cloned())
                })
                .collect();
            Term::apps(Term::Var((n - 1 - *k) as u32), fresh_apps)
        }
    };
    let hints: Vec<Sym> = (0..n).map(|i| Sym::new(format!("x{i}"))).collect();
    Ok(Term::lams(hints, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::parse::parse_term_with;
    use hoas_core::prelude::*;

    fn fol_sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const forall : (i -> o) -> o.
             const p : i -> o.
             const q : i -> i -> o.
             const f : i -> i.
             const a : i.
             const b : i.
             const r : o.",
        )
        .unwrap()
    }

    fn o() -> Ty {
        Ty::base("o")
    }

    fn solve(
        metas: &[(&str, &str)],
        ty: &str,
        l: &str,
        r: &str,
        cfg: &HuetConfig,
    ) -> (SearchOutcome, Term, Term) {
        let sig = fol_sig();
        let pl = parse_term(&sig, l).unwrap();
        let pr = parse_term_with(&sig, r, pl.metas.clone()).unwrap();
        let mut menv = MetaEnv::new();
        for (name, t) in metas {
            let m = pr
                .metas
                .get(name)
                .unwrap_or_else(|| panic!("?{name} unused"))
                .clone();
            menv.insert(m, parse_ty(t).unwrap());
        }
        let out =
            pre_unify_terms(&sig, &menv, &parse_ty(ty).unwrap(), &pl.term, &pr.term, cfg).unwrap();
        (out, pl.term, pr.term)
    }

    fn assert_sound(out: &SearchOutcome, l: &Term, r: &Term, sig: &Signature, ty: &Ty) {
        for s in &out.solutions {
            if !s.flex_flex.is_empty() {
                continue; // pre-unifier: sides equal only modulo flex-flex
            }
            let al = normalize::canon_closed(sig, &s.subst.apply(l), ty).unwrap();
            let ar = normalize::canon_closed(sig, &s.subst.apply(r), ty).unwrap();
            assert_eq!(al, ar, "solution does not equalize");
        }
    }

    #[test]
    fn pattern_problems_solved_without_search() {
        let cfg = HuetConfig::default();
        let (out, l, r) = solve(&[("P", "o")], "o", "and ?P r", "and (or r r) r", &cfg);
        assert_eq!(out.solutions.len(), 1);
        assert!(!out.exhausted);
        assert_sound(&out, &l, &r, &fol_sig(), &o());
    }

    #[test]
    fn clash_refuted_without_exhaustion() {
        let cfg = HuetConfig::default();
        let (out, _, _) = solve(&[("P", "o")], "o", "and ?P r", "or r r", &cfg);
        assert!(out.solutions.is_empty());
        assert!(!out.exhausted, "refutation must not look like a budget cut");
    }

    #[test]
    fn non_pattern_solved_by_imitation() {
        hoas_core::StoreHandle::isolated().enter(|| {
            // Isolated store: this test matches metavariables by printing
            // hint, and hints are canonical per α-class per store.
            // ?F a ≐ p a — outside the pattern fragment. Solutions include
            // ?F := λx. p x and ?F := λx. p a.
            let cfg = HuetConfig {
                max_solutions: 8,
                ..HuetConfig::default()
            };
            let (out, l, r) = solve(&[("F", "i -> o")], "o", "?F a", "p a", &cfg);
            assert!(out.solutions.len() >= 2, "found {}", out.solutions.len());
            assert_sound(&out, &l, &r, &fol_sig(), &o());
            // Check the two classic solutions appear.
            let sig = fol_sig();
            let rendered: Vec<String> = out
                .solutions
                .iter()
                .filter_map(|s| {
                    let m = s.subst.iter().find(|(m, _)| m.hint().as_str() == "F")?;
                    Some(
                        normalize::canon_closed(&sig, m.1, &parse_ty("i -> o").unwrap())
                            .unwrap()
                            .to_string(),
                    )
                })
                .collect();
            assert!(
                rendered.iter().any(|s| s == r"\x0. p x0"),
                "missing projection-based solution in {rendered:?}"
            );
            assert!(
                rendered.iter().any(|s| s == r"\x0. p a"),
                "missing constant solution in {rendered:?}"
            );
        })
    }

    #[test]
    fn projection_solution_found() {
        // ?F a ≐ a at type i: ?F := λx. x and ?F := λx. a.
        let cfg = HuetConfig {
            max_solutions: 8,
            ..HuetConfig::default()
        };
        let (out, l, r) = solve(&[("F", "i -> i")], "i", "?F a", "a", &cfg);
        assert!(out.solutions.len() >= 2);
        assert_sound(&out, &l, &r, &fol_sig(), &Ty::base("i"));
    }

    #[test]
    fn second_order_matching_with_repeated_variable() {
        // ?F a ≐ q a a: famous multi-solution problem (4 solutions).
        let cfg = HuetConfig {
            max_solutions: 16,
            ..HuetConfig::default()
        };
        let (out, l, r) = solve(&[("F", "i -> o")], "o", "?F a", "q a a", &cfg);
        assert_sound(&out, &l, &r, &fol_sig(), &o());
        assert!(
            out.solutions.len() >= 4,
            "expected ≥4 solutions, got {}",
            out.solutions.len()
        );
    }

    #[test]
    fn unsolvable_flex_rigid_with_local_head() {
        // forall (\x. ?P) ≐ forall (\x. p x): pattern refutation inside
        // Huet (escape) — dead branch, no solutions, not exhausted.
        let cfg = HuetConfig::default();
        let (out, _, _) = solve(
            &[("P", "o")],
            "o",
            r"forall (\x. ?P)",
            r"forall (\x. p x)",
            &cfg,
        );
        assert!(out.solutions.is_empty());
        assert!(!out.exhausted);
    }

    #[test]
    fn flex_flex_reported_as_pre_unifier() {
        let cfg = HuetConfig::default();
        let (out, _, _) = solve(
            &[("F", "i -> o"), ("G", "i -> o")],
            "o",
            "?F a",
            "?G b",
            &cfg,
        );
        assert_eq!(out.solutions.len(), 1);
        assert_eq!(out.solutions[0].flex_flex.len(), 1);
        assert!(out.solutions[0].subst.is_empty());
    }

    #[test]
    fn depth_zero_reports_exhaustion() {
        let cfg = HuetConfig {
            max_depth: 0,
            ..HuetConfig::default()
        };
        let (out, _, _) = solve(&[("F", "i -> o")], "o", "?F a", "p a", &cfg);
        assert!(out.solutions.is_empty());
        assert!(out.exhausted);
    }

    #[test]
    fn max_solutions_respected() {
        let cfg = HuetConfig {
            max_solutions: 1,
            ..HuetConfig::default()
        };
        let (out, _, _) = solve(&[("F", "i -> o")], "o", "?F a", "q a a", &cfg);
        assert_eq!(out.solutions.len(), 1);
    }

    #[test]
    fn deep_imitation_chain() {
        // ?F a ≐ p (f (f a)) requires nested imitations.
        let cfg = HuetConfig {
            max_solutions: 1,
            ..HuetConfig::default()
        };
        let (out, l, r) = solve(&[("F", "i -> o")], "o", "?F a", "p (f (f a))", &cfg);
        assert!(!out.solutions.is_empty());
        assert_sound(&out, &l, &r, &fol_sig(), &o());
    }
}
