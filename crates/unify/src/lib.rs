//! # hoas-unify — higher-order unification and matching
//!
//! The HOAS paper (Pfenning & Elliott, PLDI 1988) proposes higher-order
//! *matching and unification* as the mechanism for syntactic analysis of
//! binding structure: a transformation rule like
//!
//! ```text
//! forall (\x. and ?P (?Q x))  ~>  and ?P (forall (\x. ?Q x))
//! ```
//!
//! uses the metavariable `?P` *not applied to* `x` to express "a subformula
//! in which `x` does not occur" — the side condition that makes quantifier
//! movement sound comes for free from unification. This crate provides:
//!
//! * [`pattern`] — **Miller pattern unification**: the decidable,
//!   most-general-unifier fragment where metavariables are applied to
//!   distinct bound variables. All rules in the paper's figures live here.
//! * [`huet`] — **Huet's pre-unification** procedure with imitation and
//!   projection bindings and bounded search, for problems outside the
//!   pattern fragment (the algorithm the paper's Ergo implementation used).
//! * [`matching`] — higher-order matching (pattern-first with Huet
//!   fallback), the operation driving the `hoas-rewrite` engine.
//! * [`msubst`] — metavariable substitutions and their (normalizing)
//!   application;
//! * [`antiunify`] — the dual operation, least general generalization,
//!   with which program-manipulation systems synthesize rule patterns
//!   from example pairs.
//!
//! ## Scope discipline
//!
//! A [`problem::Constraint`] distinguishes *ambient* variables
//! (in scope where the problem was posed — e.g. binders enclosing a rewrite
//! position; solutions may mention them freely) from *constraint-local*
//! variables (introduced by decomposing λs during solving; solutions may
//! only access them through a metavariable's argument spine). This is what
//! makes rewriting under binders sound.
//!
//! ## Restrictions
//!
//! Metavariable types must be built from base types, `int`, and arrows —
//! no products or unit (mirroring LF-family implementations, which have no
//! products in the unification fragment). Rigid pairs and units in
//! *constraints* are fine; they decompose structurally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antiunify;
pub mod classify;
pub mod error;
pub mod huet;
pub mod matching;
pub mod msubst;
pub mod pattern;
pub mod problem;

pub use error::UnifyError;
pub use msubst::MetaSubst;
pub use problem::Constraint;
