//! Higher-order **matching**: unification where one side (the target) is
//! ground. This is the operation that drives the rewrite engine — exactly
//! the use the paper proposes for its transformation rules.
//!
//! Matching tries the fast decidable pattern path first and falls back to
//! a bounded Huet search for non-pattern rules (e.g. a rule whose
//! left-hand side applies a metavariable to a non-variable argument).

use crate::error::UnifyError;
use crate::huet::{self, HuetConfig};
use crate::msubst::MetaSubst;
use crate::pattern;
use crate::problem::{flex_view, Constraint};
use hoas_core::ctx::Ctx;
use hoas_core::sig::Signature;
use hoas_core::term::MetaEnv;
use hoas_core::{MVar, Sym, Term, Ty};

/// Configuration for matching.
#[derive(Clone, Copy, Debug)]
pub struct MatchConfig {
    /// Whether to fall back to Huet search when the pattern unifier
    /// reports the problem is outside its fragment.
    pub huet_fallback: bool,
    /// Budgets for the fallback search.
    pub huet: HuetConfig,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            huet_fallback: true,
            huet: HuetConfig {
                max_depth: 6,
                max_solutions: 1,
                fuel: 50_000,
            },
        }
    }
}

/// Matches `pattern` against the ground `target` at type `ty`, in the
/// ambient context `ctx` (binder types enclosing the match position; the
/// resulting substitution may mention those variables).
///
/// Returns `Ok(None)` if the terms do not match, `Ok(Some(subst))` on
/// success.
///
/// # Errors
///
/// Returns an error only for malformed inputs: a target containing
/// metavariables, unsupported metavariable types, or ill-typed terms.
pub fn match_term(
    sig: &Signature,
    menv: &MetaEnv,
    ctx: &Ctx,
    ty: &Ty,
    pattern: &Term,
    target: &Term,
    cfg: &MatchConfig,
) -> Result<Option<MetaSubst>, UnifyError> {
    if target.has_metas() {
        return Err(UnifyError::IllTyped(hoas_core::Error::UnknownMeta {
            mvar: target.metas()[0].clone(),
        }));
    }
    // Ground pattern (cached `has_meta` is false): matching degenerates to
    // α-equality, which the hash-consed store decides in O(1) by node id.
    if !pattern.has_metas() && pattern == target {
        return Ok(Some(MetaSubst::new()));
    }
    let constraint =
        Constraint::in_ambient(ctx.clone(), ty.clone(), pattern.clone(), target.clone());
    match pattern::unify_constraints(sig, menv, vec![constraint.clone()]) {
        Ok(solution) => Ok(Some(solution.subst)),
        Err(e) if e.is_refutation() || matches!(e, UnifyError::Escape { .. }) => Ok(None),
        Err(UnifyError::NotPattern { .. }) if cfg.huet_fallback => {
            let out = huet::pre_unify(sig, menv, vec![constraint], &cfg.huet)?;
            // In matching, one side is ground, so a solution with leftover
            // flex-flex pairs would be under-determined; take the first
            // fully-determined one.
            Ok(out
                .solutions
                .into_iter()
                .find(|s| s.flex_flex.is_empty())
                .map(|s| s.subst))
        }
        Err(UnifyError::NotPattern { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Deterministic matching for **Miller-pattern** left-hand sides: a
/// single lockstep descent over canonical `pattern` and ground `target`,
/// solving each flexible spine by inversion on the spot. No signature,
/// context, type, or metavariable environment is consulted — which is the
/// point: unlike [`match_term`], no constraint canonicalization or
/// environment cloning happens per attempt, so the rewrite engine can
/// afford to call this on every subterm.
///
/// Both inputs must be canonical (η-long β-normal) at a common type, as
/// rewrite-rule LHSs and rewrite subjects always are; `pattern` must be in
/// the pattern fragment relative to its own binders (see
/// [`crate::classify::classify`]). For such inputs the result agrees with
/// [`match_term`] on match/no-match and on the substitution.
///
/// Returns `Ok(None)` if the terms do not match (including the
/// vacuous-binder side condition: a spine omitting a bound variable that
/// occurs in the target).
///
/// # Errors
///
/// [`UnifyError::IllTyped`] if `target` contains metavariables;
/// [`UnifyError::NotPattern`] if `pattern` leaves the fragment.
pub fn match_pattern(pattern: &Term, target: &Term) -> Result<Option<MetaSubst>, UnifyError> {
    if target.has_metas() {
        return Err(UnifyError::IllTyped(hoas_core::Error::UnknownMeta {
            mvar: target.metas()[0].clone(),
        }));
    }
    let mut binds: Vec<(MVar, Term)> = Vec::new();
    if walk_pattern(pattern, target, 0, &mut binds)? {
        let mut subst = MetaSubst::new();
        for (m, sol) in binds {
            subst.bind(m, sol);
        }
        Ok(Some(subst))
    } else {
        Ok(None)
    }
}

/// Lockstep descent at `depth` binders below the match root. Returns
/// whether the subterms match, accumulating metavariable solutions.
fn walk_pattern(
    p: &Term,
    t: &Term,
    depth: u32,
    binds: &mut Vec<(MVar, Term)>,
) -> Result<bool, UnifyError> {
    // Ground pattern subtree: matching is α-equality, an O(1) interned
    // node-id comparison per child.
    if !p.has_metas() {
        return Ok(p == t);
    }
    // A flexible spine must be solved as a whole, *before* decomposing
    // applications — `?Q x ≐ p c` matches (with `?Q := λx. p c`) even
    // though a pairwise descent through the `App` nodes would refute it.
    if let Some(view) = flex_view(p, depth) {
        let Some(spine) = view.pattern_spine else {
            return Err(UnifyError::not_pattern(p));
        };
        return solve_spine(&view.mvar, &spine, depth, t, binds);
    }
    match (p, t) {
        (Term::Lam(_, pb), Term::Lam(_, tb)) => walk_pattern(pb, tb, depth + 1, binds),
        (Term::App(pf, pa), Term::App(tf, ta)) => {
            Ok(walk_pattern(pf, tf, depth, binds)? && walk_pattern(pa, ta, depth, binds)?)
        }
        (Term::Pair(pa, pb), Term::Pair(ta, tb)) => {
            Ok(walk_pattern(pa, ta, depth, binds)? && walk_pattern(pb, tb, depth, binds)?)
        }
        (Term::Fst(pp), Term::Fst(tp)) | (Term::Snd(pp), Term::Snd(tp)) => {
            walk_pattern(pp, tp, depth, binds)
        }
        // Shape mismatch (the pattern side has metas, so it is not a leaf).
        _ => Ok(false),
    }
}

/// Solves `?M x̄ ≐ t` at `local` binders by inverting `t` along the spine.
/// A repeated occurrence of a bound metavariable must invert to the same
/// solution (non-left-linear patterns compare ground solutions).
fn solve_spine(
    m: &MVar,
    spine: &[u32],
    local: u32,
    t: &Term,
    binds: &mut Vec<(MVar, Term)>,
) -> Result<bool, UnifyError> {
    let Some(body) = invert_ground(spine, local, t, 0) else {
        // A constraint-local variable outside the spine occurs in `t`:
        // the vacuous-binder side condition refutes the match.
        return Ok(false);
    };
    let hints: Vec<Sym> = (0..spine.len())
        .map(|i| Sym::new(format!("x{i}")))
        .collect();
    let sol = Term::lams(hints, body);
    if let Some((_, prev)) = binds.iter().find(|(bm, _)| bm == m) {
        Ok(*prev == sol)
    } else {
        binds.push((m.clone(), sol));
        Ok(true)
    }
}

/// [`pattern`]-style inversion specialized to ground targets: no pruning
/// and no occurs check can be needed, so the only failure is a
/// constraint-local variable escaping the spine (`None`). The variable
/// mapping mirrors the pattern unifier's `invert`.
fn invert_ground(spine: &[u32], local: u32, t: &Term, under: u32) -> Option<Term> {
    let n = spine.len() as u32;
    // Subterms closed under the traversed binders are fixed points of the
    // inversion: share them.
    if t.max_free() <= under {
        return Some(t.clone());
    }
    match t {
        Term::Var(i) => {
            let i = *i;
            if i < under {
                Some(Term::Var(i))
            } else {
                let j = i - under;
                if j < local {
                    spine
                        .iter()
                        .position(|&s| s == j)
                        .map(|k| Term::Var(under + (n - 1 - k as u32)))
                } else {
                    Some(Term::Var(under + n + (j - local)))
                }
            }
        }
        Term::Lam(h, b) => Some(Term::lam(
            h.clone(),
            invert_ground(spine, local, b, under + 1)?,
        )),
        Term::App(f, a) => Some(Term::app(
            invert_ground(spine, local, f, under)?,
            invert_ground(spine, local, a, under)?,
        )),
        Term::Pair(a, b) => Some(Term::pair(
            invert_ground(spine, local, a, under)?,
            invert_ground(spine, local, b, under)?,
        )),
        Term::Fst(p) => Some(Term::fst(invert_ground(spine, local, p, under)?)),
        Term::Snd(p) => Some(Term::snd(invert_ground(spine, local, p, under)?)),
        Term::Const(_) | Term::Int(_) | Term::Unit => Some(t.clone()),
        Term::Meta(_) => unreachable!("targets are ground"),
    }
}

/// All matches of `pattern` against `target` (higher-order matching can
/// have several), up to the Huet budget when outside the pattern
/// fragment.
///
/// # Errors
///
/// As for [`match_term`].
pub fn match_all(
    sig: &Signature,
    menv: &MetaEnv,
    ctx: &Ctx,
    ty: &Ty,
    pattern: &Term,
    target: &Term,
    cfg: &MatchConfig,
) -> Result<Vec<MetaSubst>, UnifyError> {
    if target.has_metas() {
        return Err(UnifyError::IllTyped(hoas_core::Error::UnknownMeta {
            mvar: target.metas()[0].clone(),
        }));
    }
    if !pattern.has_metas() && pattern == target {
        return Ok(vec![MetaSubst::new()]);
    }
    let constraint =
        Constraint::in_ambient(ctx.clone(), ty.clone(), pattern.clone(), target.clone());
    match pattern::unify_constraints(sig, menv, vec![constraint.clone()]) {
        Ok(solution) => Ok(vec![solution.subst]),
        Err(e) if e.is_refutation() || matches!(e, UnifyError::Escape { .. }) => Ok(Vec::new()),
        Err(UnifyError::NotPattern { .. }) => {
            let out = huet::pre_unify(sig, menv, vec![constraint], &cfg.huet)?;
            Ok(out
                .solutions
                .into_iter()
                .filter(|s| s.flex_flex.is_empty())
                .map(|s| s.subst)
                .collect())
        }
        Err(e) => Err(e),
    }
}

/// Whether `pattern` matches `target` (closed, top-level convenience).
///
/// # Errors
///
/// As for [`match_term`].
pub fn matches(
    sig: &Signature,
    menv: &MetaEnv,
    ty: &Ty,
    pattern: &Term,
    target: &Term,
) -> Result<bool, UnifyError> {
    match_term(
        sig,
        menv,
        &Ctx::new(),
        ty,
        pattern,
        target,
        &MatchConfig::default(),
    )
    .map(|o| o.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::prelude::*;

    fn sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const forall : (i -> o) -> o.
             const p : i -> o.
             const q : i -> i -> o.
             const a : i.
             const r : o.",
        )
        .unwrap()
    }

    fn setup(metas: &[(&str, &str)], pat: &str) -> (Signature, MetaEnv, Term) {
        let s = sig();
        let parsed = parse_term(&s, pat).unwrap();
        let mut menv = MetaEnv::new();
        for (name, ty) in metas {
            menv.insert(
                parsed.metas.get(name).unwrap().clone(),
                parse_ty(ty).unwrap(),
            );
        }
        (s, menv, parsed.term)
    }

    fn o() -> Ty {
        Ty::base("o")
    }

    #[test]
    fn matches_instance() {
        let (s, menv, pat) = setup(
            &[("P", "o"), ("Q", "i -> o")],
            r"and ?P (forall (\x. ?Q x))",
        );
        let target = parse_term(&s, r"and r (forall (\x. p x))").unwrap().term;
        let m = match_term(
            &s,
            &menv,
            &Ctx::new(),
            &o(),
            &pat,
            &target,
            &MatchConfig::default(),
        )
        .unwrap()
        .expect("should match");
        assert_eq!(
            m.apply(&pat),
            normalize::canon_closed(&s, &target, &o()).unwrap()
        );
    }

    #[test]
    fn rejects_non_instance() {
        let (s, menv, pat) = setup(&[("P", "o")], "and ?P ?P");
        // Both arguments must be equal for the non-linear pattern to match.
        let bad = parse_term(&s, "and r (or r r)").unwrap().term;
        assert!(match_term(
            &s,
            &menv,
            &Ctx::new(),
            &o(),
            &pat,
            &bad,
            &MatchConfig::default()
        )
        .unwrap()
        .is_none());
        let good = parse_term(&s, "and (or r r) (or r r)").unwrap().term;
        assert!(matches(&s, &menv, &o(), &pat, &good).unwrap());
    }

    #[test]
    fn vacuity_side_condition() {
        // Pattern forall (\x. ?P) only matches when the body ignores x.
        let (s, menv, pat) = setup(&[("P", "o")], r"forall (\x. ?P)");
        let dependent = parse_term(&s, r"forall (\x. p x)").unwrap().term;
        assert!(!matches(&s, &menv, &o(), &pat, &dependent).unwrap());
        let vacuous = parse_term(&s, r"forall (\x. r)").unwrap().term;
        assert!(matches(&s, &menv, &o(), &pat, &vacuous).unwrap());
    }

    #[test]
    fn matching_under_ambient_binders() {
        // Match `and ?P ?P` against `and x x` where x is an ambient binder
        // (as happens when rewriting under a λ). The solution mentions x.
        let (s, menv, pat) = setup(&[("P", "o")], "and ?P ?P");
        let ctx = Ctx::new().push(Sym::new("x"), o());
        let target = Term::apps(Term::cnst("and"), [Term::Var(0), Term::Var(0)]);
        let m = match_term(
            &s,
            &menv,
            &ctx,
            &o(),
            &pat,
            &target,
            &MatchConfig::default(),
        )
        .unwrap()
        .expect("should match");
        let (_, sol) = m.iter().next().unwrap();
        assert_eq!(sol, &Term::Var(0));
    }

    #[test]
    fn huet_fallback_for_non_pattern() {
        // ?F a is not a pattern; matching against p a needs the fallback.
        let (s, menv, pat) = setup(&[("F", "i -> o")], "?F a");
        let target = parse_term(&s, "p a").unwrap().term;
        let got = match_term(
            &s,
            &menv,
            &Ctx::new(),
            &o(),
            &pat,
            &target,
            &MatchConfig::default(),
        )
        .unwrap();
        assert!(got.is_some(), "Huet fallback should find a match");
        // With the fallback disabled, the same problem is inconclusive.
        let cfg = MatchConfig {
            huet_fallback: false,
            ..MatchConfig::default()
        };
        assert!(
            match_term(&s, &menv, &Ctx::new(), &o(), &pat, &target, &cfg)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn match_all_enumerates() {
        let (s, menv, pat) = setup(&[("F", "i -> o")], "?F a");
        let target = parse_term(&s, "q a a").unwrap().term;
        let cfg = MatchConfig {
            huet: HuetConfig {
                max_solutions: 16,
                ..HuetConfig::default()
            },
            ..MatchConfig::default()
        };
        let all = match_all(&s, &menv, &Ctx::new(), &o(), &pat, &target, &cfg).unwrap();
        assert!(all.len() >= 4, "got {}", all.len());
        // Every reported match is sound.
        for m in &all {
            let inst = normalize::canon_closed(&s, &m.apply(&pat), &o()).unwrap();
            let want = normalize::canon_closed(&s, &target, &o()).unwrap();
            assert_eq!(inst, want);
        }
    }

    type AgreementCase = (
        &'static [(&'static str, &'static str)],
        &'static str,
        &'static str,
        bool,
    );

    #[test]
    fn fast_path_agrees_with_general_matching() {
        let cases: &[AgreementCase] = &[
            (
                &[("P", "o"), ("Q", "i -> o")],
                r"and ?P (forall (\x. ?Q x))",
                r"and r (forall (\x. p x))",
                true,
            ),
            // Flexible spine must be solved at its root, not through the
            // App nodes: ?Q x ≐ p a with x unused in the solution.
            (
                &[("Q", "i -> o")],
                r"forall (\x. ?Q x)",
                r"forall (\x. p a)",
                true,
            ),
            // Vacuous-binder side condition.
            (
                &[("P", "o")],
                r"forall (\x. ?P)",
                r"forall (\x. p x)",
                false,
            ),
            (&[("P", "o")], r"forall (\x. ?P)", r"forall (\x. r)", true),
            // Non-linear pattern: equal vs unequal arguments.
            (&[("P", "o")], "and ?P ?P", "and (or r r) (or r r)", true),
            (&[("P", "o")], "and ?P ?P", "and r (or r r)", false),
            // Head clash.
            (&[("P", "o")], "and ?P r", "or r r", false),
        ];
        for (metas, pat, tgt, want) in cases {
            let (s, menv, pat) = setup(metas, pat);
            let target = parse_term(&s, tgt).unwrap().term;
            let target = normalize::canon_closed(&s, &target, &o()).unwrap();
            let pat = normalize::canon(&s, &menv, &Ctx::new(), &pat, &o()).unwrap();
            let fast = match_pattern(&pat, &target).unwrap();
            let general = match_term(
                &s,
                &menv,
                &Ctx::new(),
                &o(),
                &pat,
                &target,
                &MatchConfig::default(),
            )
            .unwrap();
            assert_eq!(fast.is_some(), *want, "fast path on {pat} ≐ {target}");
            assert_eq!(
                fast.is_some(),
                general.is_some(),
                "agreement on {pat} ≐ {target}"
            );
            if let (Some(f), Some(_)) = (&fast, &general) {
                // The fast path's substitution is a genuine matcher: it
                // instantiates the pattern to the target.
                let inst = normalize::canon_closed(&s, &f.apply(&pat), &o()).unwrap();
                assert_eq!(inst, target);
            }
        }
    }

    #[test]
    fn fast_path_under_ambient_binders() {
        // The target may mention variables bound outside the match root;
        // solutions carry them through unchanged.
        let (s, menv, pat) = setup(&[("P", "o")], "and ?P ?P");
        let target = Term::apps(Term::cnst("and"), [Term::Var(0), Term::Var(0)]);
        let m = match_pattern(&pat, &target).unwrap().expect("should match");
        let (_, sol) = m.iter().next().unwrap();
        assert_eq!(sol, &Term::Var(0));
        // And it agrees with the general matcher posed in that context.
        let ctx = Ctx::new().push(Sym::new("x"), o());
        let g = match_term(
            &s,
            &menv,
            &ctx,
            &o(),
            &pat,
            &target,
            &MatchConfig::default(),
        )
        .unwrap()
        .expect("should match");
        assert_eq!(g.get(&pat.metas()[0]), m.get(&pat.metas()[0]));
    }

    #[test]
    fn fast_path_rejects_bad_inputs() {
        let (_, _, pat) = setup(&[("F", "i -> o")], "?F a");
        // Outside the fragment: an explicit error, not a silent miss.
        assert!(matches!(
            match_pattern(&pat, &Term::cnst("r")),
            Err(UnifyError::NotPattern { .. })
        ));
        // Targets must be ground.
        let (_, _, pat2) = setup(&[("P", "o")], "?P");
        assert!(matches!(
            match_pattern(&pat2, &Term::Meta(MVar::new(9, "X"))),
            Err(UnifyError::IllTyped(_))
        ));
    }

    #[test]
    fn target_with_metas_is_an_error() {
        let (s, menv, pat) = setup(&[("P", "o")], "?P");
        let err = match_term(
            &s,
            &menv,
            &Ctx::new(),
            &o(),
            &pat,
            &Term::Meta(MVar::new(9, "X")),
            &MatchConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, UnifyError::IllTyped(_)));
    }
}
