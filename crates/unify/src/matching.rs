//! Higher-order **matching**: unification where one side (the target) is
//! ground. This is the operation that drives the rewrite engine — exactly
//! the use the paper proposes for its transformation rules.
//!
//! Matching tries the fast decidable pattern path first and falls back to
//! a bounded Huet search for non-pattern rules (e.g. a rule whose
//! left-hand side applies a metavariable to a non-variable argument).

use crate::error::UnifyError;
use crate::huet::{self, HuetConfig};
use crate::msubst::MetaSubst;
use crate::pattern;
use crate::problem::Constraint;
use hoas_core::ctx::Ctx;
use hoas_core::sig::Signature;
use hoas_core::term::MetaEnv;
use hoas_core::{Term, Ty};

/// Configuration for matching.
#[derive(Clone, Copy, Debug)]
pub struct MatchConfig {
    /// Whether to fall back to Huet search when the pattern unifier
    /// reports the problem is outside its fragment.
    pub huet_fallback: bool,
    /// Budgets for the fallback search.
    pub huet: HuetConfig,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            huet_fallback: true,
            huet: HuetConfig {
                max_depth: 6,
                max_solutions: 1,
                fuel: 50_000,
            },
        }
    }
}

/// Matches `pattern` against the ground `target` at type `ty`, in the
/// ambient context `ctx` (binder types enclosing the match position; the
/// resulting substitution may mention those variables).
///
/// Returns `Ok(None)` if the terms do not match, `Ok(Some(subst))` on
/// success.
///
/// # Errors
///
/// Returns an error only for malformed inputs: a target containing
/// metavariables, unsupported metavariable types, or ill-typed terms.
pub fn match_term(
    sig: &Signature,
    menv: &MetaEnv,
    ctx: &Ctx,
    ty: &Ty,
    pattern: &Term,
    target: &Term,
    cfg: &MatchConfig,
) -> Result<Option<MetaSubst>, UnifyError> {
    if target.has_metas() {
        return Err(UnifyError::IllTyped(hoas_core::Error::UnknownMeta {
            mvar: target.metas()[0].clone(),
        }));
    }
    // Ground pattern (cached `has_meta` is false): matching degenerates to
    // syntactic equality, which shared subterms decide by pointer identity.
    if !pattern.has_metas() && pattern == target {
        return Ok(Some(MetaSubst::new()));
    }
    let constraint =
        Constraint::in_ambient(ctx.clone(), ty.clone(), pattern.clone(), target.clone());
    match pattern::unify_constraints(sig, menv, vec![constraint.clone()]) {
        Ok(solution) => Ok(Some(solution.subst)),
        Err(e) if e.is_refutation() || matches!(e, UnifyError::Escape { .. }) => Ok(None),
        Err(UnifyError::NotPattern { .. }) if cfg.huet_fallback => {
            let out = huet::pre_unify(sig, menv, vec![constraint], &cfg.huet)?;
            // In matching, one side is ground, so a solution with leftover
            // flex-flex pairs would be under-determined; take the first
            // fully-determined one.
            Ok(out
                .solutions
                .into_iter()
                .find(|s| s.flex_flex.is_empty())
                .map(|s| s.subst))
        }
        Err(UnifyError::NotPattern { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// All matches of `pattern` against `target` (higher-order matching can
/// have several), up to the Huet budget when outside the pattern
/// fragment.
///
/// # Errors
///
/// As for [`match_term`].
pub fn match_all(
    sig: &Signature,
    menv: &MetaEnv,
    ctx: &Ctx,
    ty: &Ty,
    pattern: &Term,
    target: &Term,
    cfg: &MatchConfig,
) -> Result<Vec<MetaSubst>, UnifyError> {
    if target.has_metas() {
        return Err(UnifyError::IllTyped(hoas_core::Error::UnknownMeta {
            mvar: target.metas()[0].clone(),
        }));
    }
    if !pattern.has_metas() && pattern == target {
        return Ok(vec![MetaSubst::new()]);
    }
    let constraint =
        Constraint::in_ambient(ctx.clone(), ty.clone(), pattern.clone(), target.clone());
    match pattern::unify_constraints(sig, menv, vec![constraint.clone()]) {
        Ok(solution) => Ok(vec![solution.subst]),
        Err(e) if e.is_refutation() || matches!(e, UnifyError::Escape { .. }) => Ok(Vec::new()),
        Err(UnifyError::NotPattern { .. }) => {
            let out = huet::pre_unify(sig, menv, vec![constraint], &cfg.huet)?;
            Ok(out
                .solutions
                .into_iter()
                .filter(|s| s.flex_flex.is_empty())
                .map(|s| s.subst)
                .collect())
        }
        Err(e) => Err(e),
    }
}

/// Whether `pattern` matches `target` (closed, top-level convenience).
///
/// # Errors
///
/// As for [`match_term`].
pub fn matches(
    sig: &Signature,
    menv: &MetaEnv,
    ty: &Ty,
    pattern: &Term,
    target: &Term,
) -> Result<bool, UnifyError> {
    match_term(
        sig,
        menv,
        &Ctx::new(),
        ty,
        pattern,
        target,
        &MatchConfig::default(),
    )
    .map(|o| o.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::prelude::*;

    fn sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const forall : (i -> o) -> o.
             const p : i -> o.
             const q : i -> i -> o.
             const a : i.
             const r : o.",
        )
        .unwrap()
    }

    fn setup(metas: &[(&str, &str)], pat: &str) -> (Signature, MetaEnv, Term) {
        let s = sig();
        let parsed = parse_term(&s, pat).unwrap();
        let mut menv = MetaEnv::new();
        for (name, ty) in metas {
            menv.insert(
                parsed.metas.get(name).unwrap().clone(),
                parse_ty(ty).unwrap(),
            );
        }
        (s, menv, parsed.term)
    }

    fn o() -> Ty {
        Ty::base("o")
    }

    #[test]
    fn matches_instance() {
        let (s, menv, pat) = setup(
            &[("P", "o"), ("Q", "i -> o")],
            r"and ?P (forall (\x. ?Q x))",
        );
        let target = parse_term(&s, r"and r (forall (\x. p x))").unwrap().term;
        let m = match_term(
            &s,
            &menv,
            &Ctx::new(),
            &o(),
            &pat,
            &target,
            &MatchConfig::default(),
        )
        .unwrap()
        .expect("should match");
        assert_eq!(
            m.apply(&pat),
            normalize::canon_closed(&s, &target, &o()).unwrap()
        );
    }

    #[test]
    fn rejects_non_instance() {
        let (s, menv, pat) = setup(&[("P", "o")], "and ?P ?P");
        // Both arguments must be equal for the non-linear pattern to match.
        let bad = parse_term(&s, "and r (or r r)").unwrap().term;
        assert!(match_term(
            &s,
            &menv,
            &Ctx::new(),
            &o(),
            &pat,
            &bad,
            &MatchConfig::default()
        )
        .unwrap()
        .is_none());
        let good = parse_term(&s, "and (or r r) (or r r)").unwrap().term;
        assert!(matches(&s, &menv, &o(), &pat, &good).unwrap());
    }

    #[test]
    fn vacuity_side_condition() {
        // Pattern forall (\x. ?P) only matches when the body ignores x.
        let (s, menv, pat) = setup(&[("P", "o")], r"forall (\x. ?P)");
        let dependent = parse_term(&s, r"forall (\x. p x)").unwrap().term;
        assert!(!matches(&s, &menv, &o(), &pat, &dependent).unwrap());
        let vacuous = parse_term(&s, r"forall (\x. r)").unwrap().term;
        assert!(matches(&s, &menv, &o(), &pat, &vacuous).unwrap());
    }

    #[test]
    fn matching_under_ambient_binders() {
        // Match `and ?P ?P` against `and x x` where x is an ambient binder
        // (as happens when rewriting under a λ). The solution mentions x.
        let (s, menv, pat) = setup(&[("P", "o")], "and ?P ?P");
        let ctx = Ctx::new().push(Sym::new("x"), o());
        let target = Term::apps(Term::cnst("and"), [Term::Var(0), Term::Var(0)]);
        let m = match_term(
            &s,
            &menv,
            &ctx,
            &o(),
            &pat,
            &target,
            &MatchConfig::default(),
        )
        .unwrap()
        .expect("should match");
        let (_, sol) = m.iter().next().unwrap();
        assert_eq!(sol, &Term::Var(0));
    }

    #[test]
    fn huet_fallback_for_non_pattern() {
        // ?F a is not a pattern; matching against p a needs the fallback.
        let (s, menv, pat) = setup(&[("F", "i -> o")], "?F a");
        let target = parse_term(&s, "p a").unwrap().term;
        let got = match_term(
            &s,
            &menv,
            &Ctx::new(),
            &o(),
            &pat,
            &target,
            &MatchConfig::default(),
        )
        .unwrap();
        assert!(got.is_some(), "Huet fallback should find a match");
        // With the fallback disabled, the same problem is inconclusive.
        let cfg = MatchConfig {
            huet_fallback: false,
            ..MatchConfig::default()
        };
        assert!(
            match_term(&s, &menv, &Ctx::new(), &o(), &pat, &target, &cfg)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn match_all_enumerates() {
        let (s, menv, pat) = setup(&[("F", "i -> o")], "?F a");
        let target = parse_term(&s, "q a a").unwrap().term;
        let cfg = MatchConfig {
            huet: HuetConfig {
                max_solutions: 16,
                ..HuetConfig::default()
            },
            ..MatchConfig::default()
        };
        let all = match_all(&s, &menv, &Ctx::new(), &o(), &pat, &target, &cfg).unwrap();
        assert!(all.len() >= 4, "got {}", all.len());
        // Every reported match is sound.
        for m in &all {
            let inst = normalize::canon_closed(&s, &m.apply(&pat), &o()).unwrap();
            let want = normalize::canon_closed(&s, &target, &o()).unwrap();
            assert_eq!(inst, want);
        }
    }

    #[test]
    fn target_with_metas_is_an_error() {
        let (s, menv, pat) = setup(&[("P", "o")], "?P");
        let err = match_term(
            &s,
            &menv,
            &Ctx::new(),
            &o(),
            &pat,
            &Term::Meta(MVar::new(9, "X")),
            &MatchConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, UnifyError::IllTyped(_)));
    }
}
