//! Object-language type inference for Mini-ML: Hindley–Milner with
//! let-polymorphism.
//!
//! The paper's setting is a program-manipulation system for ML-family
//! programs; a realistic substrate therefore needs the object language's
//! own type discipline, not just the metalanguage's. Types are
//!
//! ```text
//! τ ::= nat | τ → τ | 'a
//! ```
//!
//! with `let` generalizing over the variables not free in the
//! environment (Milner's algorithm W, in substitution-map form).

use crate::miniml::Exp;
use crate::LangError;
use std::collections::HashMap;
use std::fmt;

/// A Mini-ML object-language type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MlTy {
    /// Natural numbers.
    Nat,
    /// Functions.
    Arrow(Box<MlTy>, Box<MlTy>),
    /// A type variable (inference unknown or schema-bound).
    Var(u32),
}

impl MlTy {
    /// Convenience constructor for `a -> b`.
    pub fn arrow(a: MlTy, b: MlTy) -> MlTy {
        MlTy::Arrow(Box::new(a), Box::new(b))
    }

    fn occurs(&self, v: u32) -> bool {
        match self {
            MlTy::Nat => false,
            MlTy::Var(w) => *w == v,
            MlTy::Arrow(a, b) => a.occurs(v) || b.occurs(v),
        }
    }

    fn free_vars_into(&self, acc: &mut Vec<u32>) {
        match self {
            MlTy::Nat => {}
            MlTy::Var(v) => {
                if !acc.contains(v) {
                    acc.push(*v);
                }
            }
            MlTy::Arrow(a, b) => {
                a.free_vars_into(acc);
                b.free_vars_into(acc);
            }
        }
    }
}

impl fmt::Display for MlTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &MlTy, f: &mut fmt::Formatter<'_>, atom: bool) -> fmt::Result {
            match t {
                MlTy::Nat => f.write_str("nat"),
                MlTy::Var(v) => {
                    if *v < 26 {
                        write!(f, "'{}", (b'a' + *v as u8) as char)
                    } else {
                        write!(f, "'t{v}")
                    }
                }
                MlTy::Arrow(a, b) => {
                    if atom {
                        f.write_str("(")?;
                    }
                    go(a, f, true)?;
                    f.write_str(" -> ")?;
                    go(b, f, false)?;
                    if atom {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, false)
    }
}

/// A type scheme `∀ vars. ty`.
#[derive(Clone, Debug)]
struct Scheme {
    vars: Vec<u32>,
    ty: MlTy,
}

/// A type error in the object language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MlTyError(pub String);

impl fmt::Display for MlTyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mini-ml type error: {}", self.0)
    }
}

impl std::error::Error for MlTyError {}

impl From<MlTyError> for LangError {
    fn from(e: MlTyError) -> Self {
        LangError::NotCanonical(e.to_string())
    }
}

#[derive(Default)]
struct Infer {
    next: u32,
    sol: HashMap<u32, MlTy>,
}

impl Infer {
    fn fresh(&mut self) -> MlTy {
        let v = self.next;
        self.next += 1;
        MlTy::Var(v)
    }

    fn zonk(&self, t: &MlTy) -> MlTy {
        match t {
            MlTy::Nat => MlTy::Nat,
            MlTy::Var(v) => match self.sol.get(v) {
                Some(u) => self.zonk(u),
                None => t.clone(),
            },
            MlTy::Arrow(a, b) => MlTy::arrow(self.zonk(a), self.zonk(b)),
        }
    }

    fn unify(&mut self, a: &MlTy, b: &MlTy) -> Result<(), MlTyError> {
        let a = self.zonk(a);
        let b = self.zonk(b);
        match (&a, &b) {
            (MlTy::Var(v), MlTy::Var(w)) if v == w => Ok(()),
            (MlTy::Var(v), _) => {
                if b.occurs(*v) {
                    Err(MlTyError(format!("occurs check: 'a{v} in {b}")))
                } else {
                    self.sol.insert(*v, b);
                    Ok(())
                }
            }
            (_, MlTy::Var(w)) => {
                if a.occurs(*w) {
                    Err(MlTyError(format!("occurs check: 'a{w} in {a}")))
                } else {
                    self.sol.insert(*w, a);
                    Ok(())
                }
            }
            (MlTy::Nat, MlTy::Nat) => Ok(()),
            (MlTy::Arrow(a1, a2), MlTy::Arrow(b1, b2)) => {
                self.unify(a1, b1)?;
                self.unify(a2, b2)
            }
            _ => Err(MlTyError(format!("cannot unify `{a}` with `{b}`"))),
        }
    }

    fn instantiate(&mut self, s: &Scheme) -> MlTy {
        if s.vars.is_empty() {
            return s.ty.clone();
        }
        let map: HashMap<u32, MlTy> = s.vars.iter().map(|&v| (v, self.fresh())).collect();
        fn apply(t: &MlTy, map: &HashMap<u32, MlTy>) -> MlTy {
            match t {
                MlTy::Nat => MlTy::Nat,
                MlTy::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
                MlTy::Arrow(a, b) => MlTy::arrow(apply(a, map), apply(b, map)),
            }
        }
        apply(&s.ty, &map)
    }

    fn generalize(&self, env: &[(String, Scheme)], ty: &MlTy) -> Scheme {
        let ty = self.zonk(ty);
        let mut ty_vars = Vec::new();
        ty.free_vars_into(&mut ty_vars);
        let mut env_vars = Vec::new();
        for (_, s) in env {
            let zonked = self.zonk(&s.ty);
            zonked.free_vars_into(&mut env_vars);
            // Scheme-bound vars are not free.
            env_vars.retain(|v| !s.vars.contains(v));
        }
        let vars = ty_vars
            .into_iter()
            .filter(|v| !env_vars.contains(v))
            .collect();
        Scheme { vars, ty }
    }

    fn infer(&mut self, env: &mut Vec<(String, Scheme)>, e: &Exp) -> Result<MlTy, MlTyError> {
        match e {
            Exp::Var(x) => {
                let s = env
                    .iter()
                    .rev()
                    .find(|(n, _)| n == x)
                    .map(|(_, s)| s.clone())
                    .ok_or_else(|| MlTyError(format!("unbound variable `{x}`")))?;
                Ok(self.instantiate(&s))
            }
            Exp::Z => Ok(MlTy::Nat),
            Exp::S(inner) => {
                let t = self.infer(env, inner)?;
                self.unify(&t, &MlTy::Nat)?;
                Ok(MlTy::Nat)
            }
            Exp::Case(s, z, x, sc) => {
                let st = self.infer(env, s)?;
                self.unify(&st, &MlTy::Nat)?;
                let zt = self.infer(env, z)?;
                env.push((
                    x.clone(),
                    Scheme {
                        vars: Vec::new(),
                        ty: MlTy::Nat,
                    },
                ));
                let sct = self.infer(env, sc);
                env.pop();
                let sct = sct?;
                self.unify(&zt, &sct)?;
                Ok(self.zonk(&zt))
            }
            Exp::Lam(x, body) => {
                let dom = self.fresh();
                env.push((
                    x.clone(),
                    Scheme {
                        vars: Vec::new(),
                        ty: dom.clone(),
                    },
                ));
                let cod = self.infer(env, body);
                env.pop();
                Ok(MlTy::arrow(dom, cod?))
            }
            Exp::App(f, a) => {
                let ft = self.infer(env, f)?;
                let at = self.infer(env, a)?;
                let cod = self.fresh();
                self.unify(&ft, &MlTy::arrow(at, cod.clone()))?;
                Ok(self.zonk(&cod))
            }
            Exp::Let(x, e1, e2) => {
                let t1 = self.infer(env, e1)?;
                let scheme = self.generalize(env, &t1);
                env.push((x.clone(), scheme));
                let t2 = self.infer(env, e2);
                env.pop();
                t2
            }
            Exp::Fix(x, body) => {
                let t = self.fresh();
                env.push((
                    x.clone(),
                    Scheme {
                        vars: Vec::new(),
                        ty: t.clone(),
                    },
                ));
                let bt = self.infer(env, body);
                env.pop();
                self.unify(&t, &bt?)?;
                Ok(self.zonk(&t))
            }
        }
    }
}

/// Infers the principal type of a closed expression, with type variables
/// renumbered densely from `'a`.
///
/// # Errors
///
/// [`MlTyError`] on unbound variables, clashes, or cyclic types.
///
/// ```
/// use hoas_langs::{miniml, miniml_types};
/// let ty = miniml_types::infer(&miniml::add_fn())?;
/// assert_eq!(ty.to_string(), "nat -> nat -> nat");
/// # Ok::<(), hoas_langs::miniml_types::MlTyError>(())
/// ```
pub fn infer(e: &Exp) -> Result<MlTy, MlTyError> {
    let mut inf = Infer::default();
    let mut env = Vec::new();
    let ty = inf.infer(&mut env, e)?;
    let ty = inf.zonk(&ty);
    // Renumber free variables densely for stable display.
    let mut fvs = Vec::new();
    ty.free_vars_into(&mut fvs);
    let map: HashMap<u32, MlTy> = fvs
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, MlTy::Var(i as u32)))
        .collect();
    fn apply(t: &MlTy, map: &HashMap<u32, MlTy>) -> MlTy {
        match t {
            MlTy::Nat => MlTy::Nat,
            MlTy::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
            MlTy::Arrow(a, b) => MlTy::arrow(apply(a, map), apply(b, map)),
        }
    }
    Ok(apply(&ty, &map))
}

/// Whether a closed expression is well-typed.
pub fn well_typed(e: &Exp) -> bool {
    infer(e).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miniml;

    #[test]
    fn numerals_are_nat() {
        assert_eq!(infer(&Exp::num(7)).unwrap(), MlTy::Nat);
        assert_eq!(infer(&Exp::s(Exp::num(0))).unwrap(), MlTy::Nat);
    }

    #[test]
    fn library_functions_have_expected_types() {
        assert_eq!(
            infer(&miniml::add_fn()).unwrap().to_string(),
            "nat -> nat -> nat"
        );
        assert_eq!(
            infer(&miniml::mul_fn()).unwrap().to_string(),
            "nat -> nat -> nat"
        );
        assert_eq!(infer(&miniml::fact_fn()).unwrap().to_string(), "nat -> nat");
    }

    #[test]
    fn identity_is_polymorphic() {
        let id = Exp::lam("x", Exp::var("x"));
        assert_eq!(infer(&id).unwrap().to_string(), "'a -> 'a");
    }

    #[test]
    fn let_polymorphism() {
        // let f = fn x => x in (f (fn y => s y)) (f z)
        // f is used at (nat -> nat) -> nat -> nat and at nat -> nat:
        // requires generalization at let.
        let e = Exp::let_(
            "f",
            Exp::lam("x", Exp::var("x")),
            Exp::app(
                Exp::app(Exp::var("f"), Exp::lam("y", Exp::s(Exp::var("y")))),
                Exp::app(Exp::var("f"), Exp::Z),
            ),
        );
        assert_eq!(infer(&e).unwrap(), MlTy::Nat);
        // The λ-bound version of the same program must be rejected
        // (λ-bound variables stay monomorphic).
        let bad = Exp::app(
            Exp::lam(
                "f",
                Exp::app(
                    Exp::app(Exp::var("f"), Exp::lam("y", Exp::s(Exp::var("y")))),
                    Exp::app(Exp::var("f"), Exp::Z),
                ),
            ),
            Exp::lam("x", Exp::var("x")),
        );
        assert!(infer(&bad).is_err());
    }

    #[test]
    fn rejects_ill_typed_programs() {
        // z z — applying a number.
        assert!(!well_typed(&Exp::app(Exp::Z, Exp::Z)));
        // s (fn x => x) — successor of a function.
        assert!(!well_typed(&Exp::s(Exp::lam("x", Exp::var("x")))));
        // case (fn x => x) ...
        assert!(!well_typed(&Exp::case(
            Exp::lam("x", Exp::var("x")),
            Exp::Z,
            "y",
            Exp::var("y"),
        )));
        // branches disagree: case n of z => z | s x => (fn y => y)
        assert!(!well_typed(&Exp::case(
            Exp::Z,
            Exp::Z,
            "x",
            Exp::lam("y", Exp::var("y")),
        )));
        // unbound variable.
        assert!(!well_typed(&Exp::var("ghost")));
    }

    #[test]
    fn occurs_check() {
        // fix f. f f  — f : 'a with 'a = 'a -> 'b.
        let e = Exp::fix("f", Exp::app(Exp::var("f"), Exp::var("f")));
        let err = infer(&e).unwrap_err();
        assert!(err.to_string().contains("occurs"));
    }

    #[test]
    fn shadowing_uses_innermost() {
        // fn x => let x = z in s x : 'a -> nat
        let e = Exp::lam("x", Exp::let_("x", Exp::Z, Exp::s(Exp::var("x"))));
        assert_eq!(infer(&e).unwrap().to_string(), "'a -> nat");
    }

    #[test]
    fn fix_types_recursive_functions() {
        // fix f. fn n => case n of z => z | s m => f m : nat -> nat
        let e = Exp::fix(
            "f",
            Exp::lam(
                "n",
                Exp::case(
                    Exp::var("n"),
                    Exp::Z,
                    "m",
                    Exp::app(Exp::var("f"), Exp::var("m")),
                ),
            ),
        );
        assert_eq!(infer(&e).unwrap().to_string(), "nat -> nat");
    }

    #[test]
    fn display_precedence() {
        let t = MlTy::arrow(MlTy::arrow(MlTy::Nat, MlTy::Nat), MlTy::Nat);
        assert_eq!(t.to_string(), "(nat -> nat) -> nat");
        let t = MlTy::arrow(MlTy::Nat, MlTy::arrow(MlTy::Nat, MlTy::Nat));
        assert_eq!(t.to_string(), "nat -> nat -> nat");
    }
}
