//! First-order logic — the paper's quantifier-rule figures.
//!
//! The HOAS representation uses one base type per syntactic category:
//!
//! ```text
//! type i.                              % individuals
//! type o.                              % formulas
//! const and, or, imp : o -> o -> o.
//! const not : o -> o.
//! const forall, exists : (i -> o) -> o.
//! ```
//!
//! plus one constant per function/predicate symbol of the
//! [`Vocabulary`]. The quantifier rules of experiment E3 (prenex normal
//! form) live in `hoas-rewrite`; this module supplies the syntax, the
//! encoding, a random formula generator, and a finite-model semantics used
//! to verify that transformations preserve truth.

use crate::LangError;
use hoas_core::sig::Signature;
use hoas_core::{Term, Ty};
use hoas_testkit::rng::Rng;
use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;

/// A first-order term over a vocabulary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FoTerm {
    /// An individual variable.
    Var(String),
    /// A function application (constants are 0-ary functions).
    Fun(String, Vec<FoTerm>),
}

/// A first-order formula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// Predicate application.
    Pred(String, Vec<FoTerm>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Imp(Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Universal quantification.
    Forall(String, Box<Formula>),
    /// Existential quantification.
    Exists(String, Box<Formula>),
}

impl Formula {
    /// Conjunction constructor.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }
    /// Disjunction constructor.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }
    /// Implication constructor.
    pub fn imp(a: Formula, b: Formula) -> Formula {
        Formula::Imp(Box::new(a), Box::new(b))
    }
    /// Negation constructor.
    // Not `impl Not`: these are by-value associated constructors, uniform
    // with `and`/`or`/`imp`, not operators on `&self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Formula) -> Formula {
        Formula::Not(Box::new(a))
    }
    /// Universal quantification constructor.
    pub fn forall(x: impl Into<String>, a: Formula) -> Formula {
        Formula::Forall(x.into(), Box::new(a))
    }
    /// Existential quantification constructor.
    pub fn exists(x: impl Into<String>, a: Formula) -> Formula {
        Formula::Exists(x.into(), Box::new(a))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Formula::Pred(_, args) => 1 + args.iter().map(FoTerm::size).sum::<usize>(),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Imp(a, b) => 1 + a.size() + b.size(),
            Formula::Not(a) => 1 + a.size(),
            Formula::Forall(_, a) | Formula::Exists(_, a) => 1 + a.size(),
        }
    }

    /// Whether the formula is in prenex normal form: a (possibly empty)
    /// string of quantifiers over a quantifier-free matrix.
    pub fn is_prenex(&self) -> bool {
        fn quantifier_free(f: &Formula) -> bool {
            match f {
                Formula::Pred(..) => true,
                Formula::And(a, b) | Formula::Or(a, b) | Formula::Imp(a, b) => {
                    quantifier_free(a) && quantifier_free(b)
                }
                Formula::Not(a) => quantifier_free(a),
                Formula::Forall(..) | Formula::Exists(..) => false,
            }
        }
        match self {
            Formula::Forall(_, a) | Formula::Exists(_, a) => a.is_prenex(),
            other => quantifier_free(other),
        }
    }

    /// Number of quantifier nodes.
    pub fn quantifier_count(&self) -> usize {
        match self {
            Formula::Pred(..) => 0,
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Imp(a, b) => {
                a.quantifier_count() + b.quantifier_count()
            }
            Formula::Not(a) => a.quantifier_count(),
            Formula::Forall(_, a) | Formula::Exists(_, a) => 1 + a.quantifier_count(),
        }
    }

    /// α-equivalence: equality up to consistent renaming of quantified
    /// variables. Decided *through the HOAS encoding* — binding structure
    /// lives in metalanguage λs there, so kernel term equality (itself
    /// O(1) id comparison in the hash-consed store) is exactly
    /// object-language α-equivalence; this is the paper's adequacy claim
    /// used as an algorithm. Encode/decode round-trips are stable up to
    /// `alpha_eq` (the store canonicalizes binder-name hints, so decode
    /// may resurface different names). Formulas the encoder rejects
    /// (unbound variables) fall back to the name-sensitive derived
    /// equality.
    pub fn alpha_eq(&self, other: &Formula) -> bool {
        match (encode(self), encode(other)) {
            (Ok(a), Ok(b)) => a == b,
            _ => self == other,
        }
    }
}

impl FoTerm {
    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            FoTerm::Var(_) => 1,
            FoTerm::Fun(_, args) => 1 + args.iter().map(FoTerm::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for FoTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoTerm::Var(x) => f.write_str(x),
            FoTerm::Fun(g, args) => {
                f.write_str(g)?;
                if !args.is_empty() {
                    f.write_str("(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Pred(p, args) => {
                f.write_str(p)?;
                if !args.is_empty() {
                    f.write_str("(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Imp(a, b) => write!(f, "({a} → {b})"),
            Formula::Not(a) => write!(f, "¬{a}"),
            Formula::Forall(x, a) => write!(f, "∀{x}. {a}"),
            Formula::Exists(x, a) => write!(f, "∃{x}. {a}"),
        }
    }
}

/// Function and predicate symbols with arities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vocabulary {
    /// Function symbols `(name, arity)`; arity 0 gives constants.
    pub functions: Vec<(String, usize)>,
    /// Predicate symbols `(name, arity)`.
    pub predicates: Vec<(String, usize)>,
}

impl Vocabulary {
    /// A small default vocabulary used by examples and benches:
    /// constants `a, b`, unary `f`, binary `g`; predicates `p/1`, `q/2`,
    /// `r/0`.
    pub fn small() -> Vocabulary {
        Vocabulary {
            functions: vec![
                ("a".into(), 0),
                ("b".into(), 0),
                ("f".into(), 1),
                ("g".into(), 2),
            ],
            predicates: vec![("p".into(), 1), ("q".into(), 2), ("r".into(), 0)],
        }
    }

    /// Builds the HOAS signature for this vocabulary (connectives,
    /// quantifiers, and one constant per symbol).
    ///
    /// # Panics
    ///
    /// Panics if a symbol name collides with a connective name — callers
    /// control the vocabulary, so this indicates a programming error.
    pub fn signature(&self) -> Signature {
        let mut sig = Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const imp : o -> o -> o.
             const not : o -> o.
             const forall : (i -> o) -> o.
             const exists : (i -> o) -> o.",
        )
        .expect("FOL core signature is well-formed");
        let i = Ty::base("i");
        let o = Ty::base("o");
        for (name, arity) in &self.functions {
            sig.declare_const(
                name.as_str(),
                Ty::arrows(std::iter::repeat_n(i.clone(), *arity), i.clone()),
            )
            .expect("function symbol collides with a connective");
        }
        for (name, arity) in &self.predicates {
            sig.declare_const(
                name.as_str(),
                Ty::arrows(std::iter::repeat_n(i.clone(), *arity), o.clone()),
            )
            .expect("predicate symbol collides with a connective");
        }
        sig
    }
}

/// The representation type of formulas.
pub fn o() -> Ty {
    Ty::base("o")
}

/// The representation type of individuals.
pub fn i() -> Ty {
    Ty::base("i")
}

/// Encodes a closed formula.
///
/// # Errors
///
/// [`LangError::UnboundVar`] on free individual variables.
pub fn encode(f: &Formula) -> Result<Term, LangError> {
    let mut env = Vec::new();
    encode_formula(f, &mut env)
}

fn encode_term(t: &FoTerm, env: &mut Vec<String>) -> Result<Term, LangError> {
    match t {
        FoTerm::Var(x) => match env.iter().rposition(|b| b == x) {
            Some(pos) => Ok(Term::Var((env.len() - 1 - pos) as u32)),
            None => Err(LangError::UnboundVar(x.clone())),
        },
        FoTerm::Fun(g, args) => {
            let mut acc = Term::cnst(g.as_str());
            for a in args {
                acc = Term::app(acc, encode_term(a, env)?);
            }
            Ok(acc)
        }
    }
}

fn encode_formula(f: &Formula, env: &mut Vec<String>) -> Result<Term, LangError> {
    match f {
        Formula::Pred(p, args) => {
            let mut acc = Term::cnst(p.as_str());
            for a in args {
                acc = Term::app(acc, encode_term(a, env)?);
            }
            Ok(acc)
        }
        Formula::And(a, b) => Ok(Term::apps(
            Term::cnst("and"),
            [encode_formula(a, env)?, encode_formula(b, env)?],
        )),
        Formula::Or(a, b) => Ok(Term::apps(
            Term::cnst("or"),
            [encode_formula(a, env)?, encode_formula(b, env)?],
        )),
        Formula::Imp(a, b) => Ok(Term::apps(
            Term::cnst("imp"),
            [encode_formula(a, env)?, encode_formula(b, env)?],
        )),
        Formula::Not(a) => Ok(Term::app(Term::cnst("not"), encode_formula(a, env)?)),
        Formula::Forall(x, a) => {
            env.push(x.clone());
            let body = encode_formula(a, env)?;
            env.pop();
            Ok(Term::app(Term::cnst("forall"), Term::lam(x.as_str(), body)))
        }
        Formula::Exists(x, a) => {
            env.push(x.clone());
            let body = encode_formula(a, env)?;
            env.pop();
            Ok(Term::app(Term::cnst("exists"), Term::lam(x.as_str(), body)))
        }
    }
}

/// Decodes a canonical term of type `o` back to a formula. Symbols not
/// among the connectives are treated as predicate/function constants.
///
/// # Errors
///
/// [`LangError::NotCanonical`] on exotic or ill-formed terms.
pub fn decode(t: &Term) -> Result<Formula, LangError> {
    let mut env = Vec::new();
    decode_formula(t, &mut env)
}

fn decode_term(t: &Term, env: &mut Vec<String>) -> Result<FoTerm, LangError> {
    match t {
        Term::Var(idx) => {
            let n = env.len();
            n.checked_sub(1 + *idx as usize)
                .and_then(|k| env.get(k))
                .map(|name| FoTerm::Var(name.clone()))
                .ok_or_else(|| LangError::NotCanonical(format!("dangling index {idx}")))
        }
        _ => {
            let (head, args) = t.spine();
            match head {
                Term::Const(c) => {
                    let mut out = Vec::with_capacity(args.len());
                    for a in args {
                        out.push(decode_term(a, env)?);
                    }
                    Ok(FoTerm::Fun(c.to_string(), out))
                }
                other => Err(LangError::NotCanonical(format!(
                    "individual with head `{other}`"
                ))),
            }
        }
    }
}

fn decode_formula(t: &Term, env: &mut Vec<String>) -> Result<Formula, LangError> {
    let (head, args) = t.spine();
    let cname = match head {
        Term::Const(c) => c.as_str().to_string(),
        other => {
            return Err(LangError::NotCanonical(format!(
                "formula with head `{other}`"
            )))
        }
    };
    match (cname.as_str(), args.as_slice()) {
        ("and", [a, b]) => Ok(Formula::and(
            decode_formula(a, env)?,
            decode_formula(b, env)?,
        )),
        ("or", [a, b]) => Ok(Formula::or(
            decode_formula(a, env)?,
            decode_formula(b, env)?,
        )),
        ("imp", [a, b]) => Ok(Formula::imp(
            decode_formula(a, env)?,
            decode_formula(b, env)?,
        )),
        ("not", [a]) => Ok(Formula::not(decode_formula(a, env)?)),
        ("forall", [abs]) | ("exists", [abs]) => match abs {
            Term::Lam(hint, body) => {
                let used: HashSet<String> = env.iter().cloned().collect();
                let name = hoas_firstorder::named::fresh_name(hint.as_str(), &used);
                env.push(name.clone());
                let inner = decode_formula(body, env)?;
                env.pop();
                Ok(if cname == "forall" {
                    Formula::forall(name, inner)
                } else {
                    Formula::exists(name, inner)
                })
            }
            other => Err(LangError::NotCanonical(format!(
                "quantifier over non-λ `{other}` (exotic term)"
            ))),
        },
        ("and" | "or" | "imp" | "not" | "forall" | "exists", _) => Err(LangError::NotCanonical(
            format!("connective `{cname}` applied to {} arguments", args.len()),
        )),
        (p, _) => {
            let mut out = Vec::with_capacity(args.len());
            for a in &args {
                out.push(decode_term(a, env)?);
            }
            Ok(Formula::Pred(p.to_string(), out))
        }
    }
}

// ------------------------------------------------------------ semantics --

/// A finite model: universe `{0, …, size-1}` with tabulated functions and
/// predicates.
#[derive(Clone, Debug)]
pub struct Model {
    /// Universe size (≥ 1).
    pub size: usize,
    /// Function tables, keyed by name: flat row-major tables of length
    /// `size^arity`.
    pub functions: HashMap<String, (usize, Vec<usize>)>,
    /// Predicate tables, keyed by name.
    pub predicates: HashMap<String, (usize, Vec<bool>)>,
}

impl Model {
    /// Generates a random model for the vocabulary.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0.
    pub fn random(vocab: &Vocabulary, size: usize, rng: &mut impl Rng) -> Model {
        assert!(size >= 1, "model universe must be non-empty");
        let mut functions = HashMap::new();
        for (name, arity) in &vocab.functions {
            let rows = size.pow(*arity as u32);
            let table = (0..rows).map(|_| rng.gen_range(0..size)).collect();
            functions.insert(name.clone(), (*arity, table));
        }
        let mut predicates = HashMap::new();
        for (name, arity) in &vocab.predicates {
            let rows = size.pow(*arity as u32);
            let table = (0..rows).map(|_| rng.gen_bool(0.5)).collect();
            predicates.insert(name.clone(), (*arity, table));
        }
        Model {
            size,
            functions,
            predicates,
        }
    }

    fn index(&self, args: &[usize]) -> usize {
        args.iter().fold(0, |acc, &a| acc * self.size + a)
    }

    fn eval_term(&self, t: &FoTerm, env: &HashMap<String, usize>) -> Result<usize, LangError> {
        match t {
            FoTerm::Var(x) => env
                .get(x)
                .copied()
                .ok_or_else(|| LangError::UnboundVar(x.clone())),
            FoTerm::Fun(g, args) => {
                let vals: Result<Vec<usize>, _> =
                    args.iter().map(|a| self.eval_term(a, env)).collect();
                let vals = vals?;
                let (arity, table) = self
                    .functions
                    .get(g)
                    .ok_or_else(|| LangError::NotCanonical(format!("unknown function `{g}`")))?;
                if *arity != vals.len() {
                    return Err(LangError::NotCanonical(format!(
                        "function `{g}` used with arity {}",
                        vals.len()
                    )));
                }
                Ok(table[self.index(&vals)])
            }
        }
    }

    /// Evaluates a formula under a variable assignment.
    ///
    /// # Errors
    ///
    /// [`LangError::UnboundVar`] / [`LangError::NotCanonical`] for symbols
    /// missing from the model.
    pub fn eval(&self, f: &Formula, env: &mut HashMap<String, usize>) -> Result<bool, LangError> {
        match f {
            Formula::Pred(p, args) => {
                let vals: Result<Vec<usize>, _> =
                    args.iter().map(|a| self.eval_term(a, env)).collect();
                let vals = vals?;
                let (arity, table) = self
                    .predicates
                    .get(p)
                    .ok_or_else(|| LangError::NotCanonical(format!("unknown predicate `{p}`")))?;
                if *arity != vals.len() {
                    return Err(LangError::NotCanonical(format!(
                        "predicate `{p}` used with arity {}",
                        vals.len()
                    )));
                }
                Ok(table[self.index(&vals)])
            }
            Formula::And(a, b) => Ok(self.eval(a, env)? && self.eval(b, env)?),
            Formula::Or(a, b) => Ok(self.eval(a, env)? || self.eval(b, env)?),
            Formula::Imp(a, b) => Ok(!self.eval(a, env)? || self.eval(b, env)?),
            Formula::Not(a) => Ok(!self.eval(a, env)?),
            Formula::Forall(x, a) => {
                let saved = env.get(x).copied();
                for v in 0..self.size {
                    env.insert(x.clone(), v);
                    let holds = self.eval(a, env)?;
                    if !holds {
                        restore(env, x, saved);
                        return Ok(false);
                    }
                }
                restore(env, x, saved);
                Ok(true)
            }
            Formula::Exists(x, a) => {
                let saved = env.get(x).copied();
                for v in 0..self.size {
                    env.insert(x.clone(), v);
                    let holds = self.eval(a, env)?;
                    if holds {
                        restore(env, x, saved);
                        return Ok(true);
                    }
                }
                restore(env, x, saved);
                Ok(false)
            }
        }
    }

    /// Evaluates a closed formula.
    ///
    /// # Errors
    ///
    /// As for [`Model::eval`].
    pub fn eval_closed(&self, f: &Formula) -> Result<bool, LangError> {
        self.eval(f, &mut HashMap::new())
    }
}

fn restore(env: &mut HashMap<String, usize>, x: &str, saved: Option<usize>) {
    match saved {
        Some(v) => {
            env.insert(x.to_string(), v);
        }
        None => {
            env.remove(x);
        }
    }
}

// ------------------------------------------------------------ generator --

/// Generates a random closed formula of roughly the given depth.
pub fn gen_formula(vocab: &Vocabulary, rng: &mut impl Rng, depth: u32) -> Formula {
    let mut bound = Vec::new();
    gen_f(vocab, rng, depth, &mut bound)
}

fn gen_t(vocab: &Vocabulary, rng: &mut impl Rng, depth: u32, bound: &[String]) -> FoTerm {
    if !bound.is_empty() && (depth == 0 || rng.gen_bool(0.5)) {
        return FoTerm::Var(bound[rng.gen_range(0..bound.len())].clone());
    }
    // Pick a function symbol; prefer constants at depth 0.
    let candidates: Vec<&(String, usize)> = vocab
        .functions
        .iter()
        .filter(|(_, a)| depth > 0 || *a == 0)
        .collect();
    if candidates.is_empty() {
        // No constants and no bound vars: fall back to any symbol.
        let (name, arity) = &vocab.functions[rng.gen_range(0..vocab.functions.len())];
        let args = (0..*arity).map(|_| gen_t(vocab, rng, 0, bound)).collect();
        return FoTerm::Fun(name.clone(), args);
    }
    let (name, arity) = candidates[rng.gen_range(0..candidates.len())];
    let args = (0..*arity)
        .map(|_| gen_t(vocab, rng, depth.saturating_sub(1), bound))
        .collect();
    FoTerm::Fun(name.clone(), args)
}

fn gen_f(vocab: &Vocabulary, rng: &mut impl Rng, depth: u32, bound: &mut Vec<String>) -> Formula {
    if depth == 0 {
        let (name, arity) = &vocab.predicates[rng.gen_range(0..vocab.predicates.len())];
        let args = (0..*arity).map(|_| gen_t(vocab, rng, 1, bound)).collect();
        return Formula::Pred(name.clone(), args);
    }
    match rng.gen_range(0..10) {
        0 | 1 => Formula::and(
            gen_f(vocab, rng, depth - 1, bound),
            gen_f(vocab, rng, depth - 1, bound),
        ),
        2 | 3 => Formula::or(
            gen_f(vocab, rng, depth - 1, bound),
            gen_f(vocab, rng, depth - 1, bound),
        ),
        4 => Formula::imp(
            gen_f(vocab, rng, depth - 1, bound),
            gen_f(vocab, rng, depth - 1, bound),
        ),
        5 => Formula::not(gen_f(vocab, rng, depth - 1, bound)),
        6 | 7 => {
            let x = format!("x{}", bound.len());
            bound.push(x.clone());
            let inner = gen_f(vocab, rng, depth - 1, bound);
            bound.pop();
            Formula::forall(x, inner)
        }
        8 => {
            let x = format!("x{}", bound.len());
            bound.push(x.clone());
            let inner = gen_f(vocab, rng, depth - 1, bound);
            bound.pop();
            Formula::exists(x, inner)
        }
        _ => {
            let (name, arity) = &vocab.predicates[rng.gen_range(0..vocab.predicates.len())];
            let args = (0..*arity).map(|_| gen_t(vocab, rng, 1, bound)).collect();
            Formula::Pred(name.clone(), args)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::normalize;
    use hoas_testkit::rng::SmallRng;

    fn vocab() -> Vocabulary {
        Vocabulary::small()
    }

    fn sample() -> Formula {
        // ∀x. (p(x) ∧ ∃y. q(x, y)) → r
        Formula::forall(
            "x",
            Formula::imp(
                Formula::and(
                    Formula::Pred("p".into(), vec![FoTerm::Var("x".into())]),
                    Formula::exists(
                        "y",
                        Formula::Pred(
                            "q".into(),
                            vec![FoTerm::Var("x".into()), FoTerm::Var("y".into())],
                        ),
                    ),
                ),
                Formula::Pred("r".into(), vec![]),
            ),
        )
    }

    #[test]
    fn encode_produces_expected_syntax() {
        let sig = vocab().signature();
        let e = encode(&sample()).unwrap();
        hoas_core::typeck::check_closed(&sig, &e, &o()).unwrap();
        assert_eq!(
            e.to_string(),
            r"forall (\x. imp (and (p x) (exists (\y. q x y))) r)"
        );
    }

    #[test]
    fn decode_roundtrip() {
        let f = sample();
        let e = encode(&f).unwrap();
        // Round-trips hold up to α-equivalence: the interned store
        // canonicalizes binder hints, so decode may pick fresh names.
        assert!(decode(&e).unwrap().alpha_eq(&f));
    }

    #[test]
    fn decode_rejects_exotic_quantifier() {
        // forall applied to a non-λ.
        let exotic = Term::app(Term::cnst("forall"), Term::cnst("p"));
        assert!(matches!(decode(&exotic), Err(LangError::NotCanonical(_))));
    }

    #[test]
    fn decode_rejects_partial_connective() {
        let partial = Term::app(Term::cnst("and"), Term::cnst("r"));
        assert!(decode(&partial).is_err());
    }

    #[test]
    fn encode_rejects_free_vars() {
        let f = Formula::Pred("p".into(), vec![FoTerm::Var("loose".into())]);
        assert!(matches!(encode(&f), Err(LangError::UnboundVar(_))));
    }

    #[test]
    fn generated_formulas_roundtrip_and_typecheck() {
        let v = vocab();
        let sig = v.signature();
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..100 {
            let f = gen_formula(&v, &mut rng, 5);
            let e = encode(&f).unwrap();
            hoas_core::typeck::check_closed(&sig, &e, &o()).unwrap();
            assert!(decode(&e).unwrap().alpha_eq(&f));
            // Canonicalization is the identity on encodings (they are
            // already canonical).
            let c = normalize::canon_closed(&sig, &e, &o()).unwrap();
            assert_eq!(c, e);
        }
    }

    #[test]
    fn model_evaluation_sanity() {
        // p(a) ∨ ¬p(a) is valid in every model.
        let v = vocab();
        let f = Formula::or(
            Formula::Pred("p".into(), vec![FoTerm::Fun("a".into(), vec![])]),
            Formula::not(Formula::Pred(
                "p".into(),
                vec![FoTerm::Fun("a".into(), vec![])],
            )),
        );
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let m = Model::random(&v, 3, &mut rng);
            assert!(m.eval_closed(&f).unwrap());
        }
        // p(a) ∧ ¬p(a) is unsatisfiable.
        let g = Formula::and(
            Formula::Pred("p".into(), vec![FoTerm::Fun("a".into(), vec![])]),
            Formula::not(Formula::Pred(
                "p".into(),
                vec![FoTerm::Fun("a".into(), vec![])],
            )),
        );
        for _ in 0..20 {
            let m = Model::random(&v, 3, &mut rng);
            assert!(!m.eval_closed(&g).unwrap());
        }
    }

    #[test]
    fn quantifier_semantics() {
        // ∀x. p(x) ↔ no countermodel in the table.
        let _v = Vocabulary {
            functions: vec![],
            predicates: vec![("p".into(), 1)],
        };
        let all_true = Model {
            size: 3,
            functions: HashMap::new(),
            predicates: [("p".to_string(), (1, vec![true, true, true]))]
                .into_iter()
                .collect(),
        };
        let one_false = Model {
            size: 3,
            functions: HashMap::new(),
            predicates: [("p".to_string(), (1, vec![true, false, true]))]
                .into_iter()
                .collect(),
        };
        let forall_p = Formula::forall(
            "x",
            Formula::Pred("p".into(), vec![FoTerm::Var("x".into())]),
        );
        let exists_p = Formula::exists(
            "x",
            Formula::Pred("p".into(), vec![FoTerm::Var("x".into())]),
        );
        assert!(all_true.eval_closed(&forall_p).unwrap());
        assert!(!one_false.eval_closed(&forall_p).unwrap());
        assert!(one_false.eval_closed(&exists_p).unwrap());
    }

    #[test]
    fn shadowed_quantifier_scoping() {
        // ∀x. ∃x. p(x): inner x shadows outer; semantics = ∃x. p(x).
        let _v = Vocabulary {
            functions: vec![],
            predicates: vec![("p".into(), 1)],
        };
        let m = Model {
            size: 2,
            functions: HashMap::new(),
            predicates: [("p".to_string(), (1, vec![false, true]))]
                .into_iter()
                .collect(),
        };
        let f = Formula::forall(
            "x",
            Formula::exists(
                "x",
                Formula::Pred("p".into(), vec![FoTerm::Var("x".into())]),
            ),
        );
        assert!(m.eval_closed(&f).unwrap());
        // And the encoding respects shadowing: decode gives fresh names.
        let e = encode(&f).unwrap();
        let back = decode(&e).unwrap();
        let mut env = HashMap::new();
        assert!(m.eval(&back, &mut env).unwrap());
    }

    #[test]
    fn is_prenex_detection() {
        assert!(!sample().is_prenex());
        let prenex = Formula::forall(
            "x",
            Formula::exists(
                "y",
                Formula::and(
                    Formula::Pred("p".into(), vec![FoTerm::Var("x".into())]),
                    Formula::Pred("p".into(), vec![FoTerm::Var("y".into())]),
                ),
            ),
        );
        assert!(prenex.is_prenex());
        assert_eq!(prenex.quantifier_count(), 2);
    }
}
