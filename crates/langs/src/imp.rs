//! A small imperative language with local declarations — the paper's
//! extended program-transformation example.
//!
//! Variable declarations are the binding construct: `local x := e in c`
//! introduces a mutable variable scoped to `c`. In HOAS, the declared
//! variable is a metalanguage binder of type `loc`:
//!
//! ```text
//! type loc.  type aexp.  type bexp.  type cmd.
//! const lit    : int -> aexp.
//! const deref  : loc -> aexp.
//! const add, sub, mul : aexp -> aexp -> aexp.
//! const le, eqb : aexp -> aexp -> bexp.
//! const notb   : bexp -> bexp.
//! const andb   : bexp -> bexp -> bexp.
//! const skip   : cmd.
//! const assign : loc -> aexp -> cmd.
//! const seq    : cmd -> cmd -> cmd.
//! const ifc    : bexp -> cmd -> cmd -> cmd.
//! const while  : bexp -> cmd -> cmd.
//! const print  : aexp -> cmd.
//! const local  : aexp -> (loc -> cmd) -> cmd.
//! ```
//!
//! Optimizations like dead-declaration elimination — `local e (\x. c)`
//! where `c` does not use `x` — become *vacuous-binder patterns* for the
//! rewrite engine (see `hoas-rewrite`), with no occurs-check code written
//! per transformation. Programs observe the world through `print`, so
//! semantic preservation is checked by comparing output traces.

use crate::LangError;
use hoas_core::sig::Signature;
use hoas_core::{Term, Ty};
use hoas_testkit::rng::Rng;
use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;

/// Arithmetic expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Aexp {
    /// Integer literal.
    Num(i64),
    /// Variable read.
    Var(String),
    /// Addition.
    Add(Box<Aexp>, Box<Aexp>),
    /// Subtraction.
    Sub(Box<Aexp>, Box<Aexp>),
    /// Multiplication.
    Mul(Box<Aexp>, Box<Aexp>),
}

/// Boolean expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Bexp {
    /// Less-or-equal comparison.
    Le(Box<Aexp>, Box<Aexp>),
    /// Equality comparison.
    Eq(Box<Aexp>, Box<Aexp>),
    /// Negation.
    Not(Box<Bexp>),
    /// Conjunction.
    And(Box<Bexp>, Box<Bexp>),
}

/// Commands.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cmd {
    /// No-op.
    Skip,
    /// Assignment `x := e`.
    Assign(String, Aexp),
    /// Sequencing.
    Seq(Box<Cmd>, Box<Cmd>),
    /// Conditional.
    If(Bexp, Box<Cmd>, Box<Cmd>),
    /// Loop.
    While(Bexp, Box<Cmd>),
    /// Output.
    Print(Aexp),
    /// Declaration `local x := e in c` — the binding construct.
    Local(String, Aexp, Box<Cmd>),
}

// Not the std ops traits: these are by-value associated constructors
// mirroring the grammar, not operators on `&self`.
#[allow(clippy::should_implement_trait)]
impl Aexp {
    /// Addition constructor.
    pub fn add(a: Aexp, b: Aexp) -> Aexp {
        Aexp::Add(Box::new(a), Box::new(b))
    }
    /// Subtraction constructor.
    pub fn sub(a: Aexp, b: Aexp) -> Aexp {
        Aexp::Sub(Box::new(a), Box::new(b))
    }
    /// Multiplication constructor.
    pub fn mul(a: Aexp, b: Aexp) -> Aexp {
        Aexp::Mul(Box::new(a), Box::new(b))
    }
    /// Variable constructor.
    pub fn var(x: impl Into<String>) -> Aexp {
        Aexp::Var(x.into())
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Aexp::Num(_) | Aexp::Var(_) => 1,
            Aexp::Add(a, b) | Aexp::Sub(a, b) | Aexp::Mul(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl Bexp {
    /// `a <= b`.
    pub fn le(a: Aexp, b: Aexp) -> Bexp {
        Bexp::Le(Box::new(a), Box::new(b))
    }
    /// `a == b`.
    pub fn eq(a: Aexp, b: Aexp) -> Bexp {
        Bexp::Eq(Box::new(a), Box::new(b))
    }
    /// Negation.
    // Same rationale as `Aexp`: a grammar constructor, not `impl Not`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(b: Bexp) -> Bexp {
        Bexp::Not(Box::new(b))
    }
    /// Conjunction.
    pub fn and(a: Bexp, b: Bexp) -> Bexp {
        Bexp::And(Box::new(a), Box::new(b))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Bexp::Le(a, b) | Bexp::Eq(a, b) => 1 + a.size() + b.size(),
            Bexp::Not(b) => 1 + b.size(),
            Bexp::And(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl Cmd {
    /// Sequencing constructor.
    pub fn seq(a: Cmd, b: Cmd) -> Cmd {
        Cmd::Seq(Box::new(a), Box::new(b))
    }
    /// Conditional constructor.
    pub fn if_(b: Bexp, t: Cmd, e: Cmd) -> Cmd {
        Cmd::If(b, Box::new(t), Box::new(e))
    }
    /// Loop constructor.
    pub fn while_(b: Bexp, c: Cmd) -> Cmd {
        Cmd::While(b, Box::new(c))
    }
    /// Declaration constructor.
    pub fn local(x: impl Into<String>, init: Aexp, c: Cmd) -> Cmd {
        Cmd::Local(x.into(), init, Box::new(c))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Cmd::Skip => 1,
            Cmd::Assign(_, e) | Cmd::Print(e) => 1 + e.size(),
            Cmd::Seq(a, b) => 1 + a.size() + b.size(),
            Cmd::If(b, t, e) => 1 + b.size() + t.size() + e.size(),
            Cmd::While(b, c) => 1 + b.size() + c.size(),
            Cmd::Local(_, e, c) => 1 + e.size() + c.size(),
        }
    }

    /// α-equivalence: equality up to consistent renaming of
    /// `local`-bound variables, decided through the HOAS encoding (kernel
    /// term equality is α-equivalence — an O(1) id comparison in the
    /// hash-consed store). Encode/decode round-trips are stable up to
    /// `alpha_eq`, not derived `==` (the store canonicalizes binder-name
    /// hints). Commands the encoder rejects (globals read before
    /// assignment, which `encode` cannot scope) fall back to the
    /// name-sensitive derived equality.
    pub fn alpha_eq(&self, other: &Cmd) -> bool {
        match (encode(self), encode(other)) {
            (Ok(a), Ok(b)) => a == b,
            _ => self == other,
        }
    }

    /// Variables read or written, excluding locally declared ones.
    pub fn free_vars(&self) -> HashSet<String> {
        fn aexp(e: &Aexp, acc: &mut HashSet<String>, bound: &[String]) {
            match e {
                Aexp::Num(_) => {}
                Aexp::Var(x) => {
                    if !bound.iter().any(|b| b == x) {
                        acc.insert(x.clone());
                    }
                }
                Aexp::Add(a, b) | Aexp::Sub(a, b) | Aexp::Mul(a, b) => {
                    aexp(a, acc, bound);
                    aexp(b, acc, bound);
                }
            }
        }
        fn bexp(e: &Bexp, acc: &mut HashSet<String>, bound: &[String]) {
            match e {
                Bexp::Le(a, b) | Bexp::Eq(a, b) => {
                    aexp(a, acc, bound);
                    aexp(b, acc, bound);
                }
                Bexp::Not(b) => bexp(b, acc, bound),
                Bexp::And(a, b) => {
                    bexp(a, acc, bound);
                    bexp(b, acc, bound);
                }
            }
        }
        fn cmd(c: &Cmd, acc: &mut HashSet<String>, bound: &mut Vec<String>) {
            match c {
                Cmd::Skip => {}
                Cmd::Assign(x, e) => {
                    if !bound.iter().any(|b| b == x) {
                        acc.insert(x.clone());
                    }
                    aexp(e, acc, bound);
                }
                Cmd::Print(e) => aexp(e, acc, bound),
                Cmd::Seq(a, b) => {
                    cmd(a, acc, bound);
                    cmd(b, acc, bound);
                }
                Cmd::If(b, t, e) => {
                    bexp(b, acc, bound);
                    cmd(t, acc, bound);
                    cmd(e, acc, bound);
                }
                Cmd::While(b, body) => {
                    bexp(b, acc, bound);
                    cmd(body, acc, bound);
                }
                Cmd::Local(x, init, body) => {
                    aexp(init, acc, bound);
                    bound.push(x.clone());
                    cmd(body, acc, bound);
                    bound.pop();
                }
            }
        }
        let mut acc = HashSet::new();
        cmd(self, &mut acc, &mut Vec::new());
        acc
    }

    /// Does `x` occur free in this command? Equivalent to
    /// `free_vars().contains(x)` without materializing the set, so
    /// single-binder queries (dead-`local` elimination) stay
    /// allocation-free and can short-circuit on the first occurrence.
    pub fn mentions(&self, x: &str) -> bool {
        fn aexp(e: &Aexp, x: &str) -> bool {
            match e {
                Aexp::Num(_) => false,
                Aexp::Var(y) => y == x,
                Aexp::Add(a, b) | Aexp::Sub(a, b) | Aexp::Mul(a, b) => aexp(a, x) || aexp(b, x),
            }
        }
        fn bexp(e: &Bexp, x: &str) -> bool {
            match e {
                Bexp::Le(a, b) | Bexp::Eq(a, b) => aexp(a, x) || aexp(b, x),
                Bexp::Not(b) => bexp(b, x),
                Bexp::And(a, b) => bexp(a, x) || bexp(b, x),
            }
        }
        fn cmd(c: &Cmd, x: &str) -> bool {
            match c {
                Cmd::Skip => false,
                Cmd::Assign(y, e) => y == x || aexp(e, x),
                Cmd::Print(e) => aexp(e, x),
                Cmd::Seq(a, b) => cmd(a, x) || cmd(b, x),
                Cmd::If(b, t, e) => bexp(b, x) || cmd(t, x) || cmd(e, x),
                Cmd::While(b, body) => bexp(b, x) || cmd(body, x),
                Cmd::Local(y, init, body) => aexp(init, x) || (y != x && cmd(body, x)),
            }
        }
        cmd(self, x)
    }
}

impl fmt::Display for Aexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aexp::Num(n) => write!(f, "{n}"),
            Aexp::Var(x) => f.write_str(x),
            Aexp::Add(a, b) => write!(f, "({a} + {b})"),
            Aexp::Sub(a, b) => write!(f, "({a} - {b})"),
            Aexp::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

impl fmt::Display for Bexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bexp::Le(a, b) => write!(f, "{a} <= {b}"),
            Bexp::Eq(a, b) => write!(f, "{a} == {b}"),
            Bexp::Not(b) => write!(f, "!({b})"),
            Bexp::And(a, b) => write!(f, "({a}) && ({b})"),
        }
    }
}

impl fmt::Display for Cmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmd::Skip => f.write_str("skip"),
            Cmd::Assign(x, e) => write!(f, "{x} := {e}"),
            Cmd::Seq(a, b) => write!(f, "{a}; {b}"),
            Cmd::If(b, t, e) => write!(f, "if {b} {{ {t} }} else {{ {e} }}"),
            Cmd::While(b, c) => write!(f, "while {b} {{ {c} }}"),
            Cmd::Print(e) => write!(f, "print {e}"),
            Cmd::Local(x, init, c) => write!(f, "local {x} := {init} in {{ {c} }}"),
        }
    }
}

/// The HOAS signature for the imperative language.
pub fn signature() -> &'static Signature {
    static SIG: OnceLock<Signature> = OnceLock::new();
    SIG.get_or_init(|| {
        Signature::parse(
            "type loc.
             type aexp.
             type bexp.
             type cmd.
             const lit : int -> aexp.
             const deref : loc -> aexp.
             const add : aexp -> aexp -> aexp.
             const sub : aexp -> aexp -> aexp.
             const mul : aexp -> aexp -> aexp.
             const le : aexp -> aexp -> bexp.
             const eqb : aexp -> aexp -> bexp.
             const notb : bexp -> bexp.
             const andb : bexp -> bexp -> bexp.
             const skip : cmd.
             const assign : loc -> aexp -> cmd.
             const seq : cmd -> cmd -> cmd.
             const ifc : bexp -> cmd -> cmd -> cmd.
             const while : bexp -> cmd -> cmd.
             const print : aexp -> cmd.
             const local : aexp -> (loc -> cmd) -> cmd.",
        )
        .expect("imperative-language signature is well-formed")
    })
}

/// The representation type `cmd`.
pub fn cmd_ty() -> Ty {
    Ty::base("cmd")
}

/// Encodes a command all of whose variables are `local`-bound.
///
/// # Errors
///
/// [`LangError::UnboundVar`] on variables not bound by an enclosing
/// `local`.
pub fn encode(c: &Cmd) -> Result<Term, LangError> {
    fn avar(x: &str, env: &[String]) -> Result<Term, LangError> {
        match env.iter().rposition(|b| b == x) {
            Some(pos) => Ok(Term::Var((env.len() - 1 - pos) as u32)),
            None => Err(LangError::UnboundVar(x.to_string())),
        }
    }
    fn aexp(e: &Aexp, env: &[String]) -> Result<Term, LangError> {
        match e {
            Aexp::Num(n) => Ok(Term::app(Term::cnst("lit"), Term::Int(*n))),
            Aexp::Var(x) => Ok(Term::app(Term::cnst("deref"), avar(x, env)?)),
            Aexp::Add(a, b) => Ok(Term::apps(
                Term::cnst("add"),
                [aexp(a, env)?, aexp(b, env)?],
            )),
            Aexp::Sub(a, b) => Ok(Term::apps(
                Term::cnst("sub"),
                [aexp(a, env)?, aexp(b, env)?],
            )),
            Aexp::Mul(a, b) => Ok(Term::apps(
                Term::cnst("mul"),
                [aexp(a, env)?, aexp(b, env)?],
            )),
        }
    }
    fn bexp(e: &Bexp, env: &[String]) -> Result<Term, LangError> {
        match e {
            Bexp::Le(a, b) => Ok(Term::apps(Term::cnst("le"), [aexp(a, env)?, aexp(b, env)?])),
            Bexp::Eq(a, b) => Ok(Term::apps(
                Term::cnst("eqb"),
                [aexp(a, env)?, aexp(b, env)?],
            )),
            Bexp::Not(b) => Ok(Term::app(Term::cnst("notb"), bexp(b, env)?)),
            Bexp::And(a, b) => Ok(Term::apps(
                Term::cnst("andb"),
                [bexp(a, env)?, bexp(b, env)?],
            )),
        }
    }
    fn cmd(c: &Cmd, env: &mut Vec<String>) -> Result<Term, LangError> {
        match c {
            Cmd::Skip => Ok(Term::cnst("skip")),
            Cmd::Assign(x, e) => Ok(Term::apps(
                Term::cnst("assign"),
                [avar(x, env)?, aexp(e, env)?],
            )),
            Cmd::Seq(a, b) => Ok(Term::apps(Term::cnst("seq"), [cmd(a, env)?, cmd(b, env)?])),
            Cmd::If(b, t, e) => Ok(Term::apps(
                Term::cnst("ifc"),
                [bexp(b, env)?, cmd(t, env)?, cmd(e, env)?],
            )),
            Cmd::While(b, body) => Ok(Term::apps(
                Term::cnst("while"),
                [bexp(b, env)?, cmd(body, env)?],
            )),
            Cmd::Print(e) => Ok(Term::app(Term::cnst("print"), aexp(e, env)?)),
            Cmd::Local(x, init, body) => {
                let i = aexp(init, env)?;
                env.push(x.clone());
                let b = cmd(body, env)?;
                env.pop();
                Ok(Term::apps(
                    Term::cnst("local"),
                    [i, Term::lam(x.as_str(), b)],
                ))
            }
        }
    }
    cmd(c, &mut Vec::new())
}

/// Decodes a canonical term of type `cmd`.
///
/// # Errors
///
/// [`LangError::NotCanonical`] on exotic or ill-formed terms.
pub fn decode(t: &Term) -> Result<Cmd, LangError> {
    fn var_name(t: &Term, env: &[String]) -> Result<String, LangError> {
        match t {
            Term::Var(i) => env
                .len()
                .checked_sub(1 + *i as usize)
                .and_then(|k| env.get(k))
                .cloned()
                .ok_or_else(|| LangError::NotCanonical(format!("dangling index {i}"))),
            other => Err(LangError::NotCanonical(format!(
                "expected a location variable, got `{other}`"
            ))),
        }
    }
    fn aexp(t: &Term, env: &[String]) -> Result<Aexp, LangError> {
        let (head, args) = t.spine();
        let c = match head {
            Term::Const(c) => c.as_str().to_string(),
            other => return Err(LangError::NotCanonical(format!("aexp with head `{other}`"))),
        };
        match (c.as_str(), args.as_slice()) {
            ("lit", [Term::Int(n)]) => Ok(Aexp::Num(*n)),
            ("deref", [v]) => Ok(Aexp::Var(var_name(v, env)?)),
            ("add", [a, b]) => Ok(Aexp::add(aexp(a, env)?, aexp(b, env)?)),
            ("sub", [a, b]) => Ok(Aexp::sub(aexp(a, env)?, aexp(b, env)?)),
            ("mul", [a, b]) => Ok(Aexp::mul(aexp(a, env)?, aexp(b, env)?)),
            _ => Err(LangError::NotCanonical(format!("not an aexp: `{t}`"))),
        }
    }
    fn bexp(t: &Term, env: &[String]) -> Result<Bexp, LangError> {
        let (head, args) = t.spine();
        let c = match head {
            Term::Const(c) => c.as_str().to_string(),
            other => return Err(LangError::NotCanonical(format!("bexp with head `{other}`"))),
        };
        match (c.as_str(), args.as_slice()) {
            ("le", [a, b]) => Ok(Bexp::le(aexp(a, env)?, aexp(b, env)?)),
            ("eqb", [a, b]) => Ok(Bexp::eq(aexp(a, env)?, aexp(b, env)?)),
            ("notb", [b]) => Ok(Bexp::not(bexp(b, env)?)),
            ("andb", [a, b]) => Ok(Bexp::and(bexp(a, env)?, bexp(b, env)?)),
            _ => Err(LangError::NotCanonical(format!("not a bexp: `{t}`"))),
        }
    }
    fn cmd(t: &Term, env: &mut Vec<String>) -> Result<Cmd, LangError> {
        let (head, args) = t.spine();
        let c = match head {
            Term::Const(c) => c.as_str().to_string(),
            other => return Err(LangError::NotCanonical(format!("cmd with head `{other}`"))),
        };
        match (c.as_str(), args.as_slice()) {
            ("skip", []) => Ok(Cmd::Skip),
            ("assign", [v, e]) => Ok(Cmd::Assign(var_name(v, env)?, aexp(e, env)?)),
            ("seq", [a, b]) => Ok(Cmd::seq(cmd(a, env)?, cmd(b, env)?)),
            ("ifc", [b, th, el]) => Ok(Cmd::if_(bexp(b, env)?, cmd(th, env)?, cmd(el, env)?)),
            ("while", [b, body]) => Ok(Cmd::while_(bexp(b, env)?, cmd(body, env)?)),
            ("print", [e]) => Ok(Cmd::Print(aexp(e, env)?)),
            ("local", [init, abs]) => {
                let i = aexp(init, env)?;
                match abs {
                    Term::Lam(hint, body) => {
                        let used: HashSet<String> = env.iter().cloned().collect();
                        let name = hoas_firstorder::named::fresh_name(hint.as_str(), &used);
                        env.push(name.clone());
                        let b = cmd(body, env)?;
                        env.pop();
                        Ok(Cmd::local(name, i, b))
                    }
                    other => Err(LangError::NotCanonical(format!(
                        "local over non-λ `{other}` (exotic term)"
                    ))),
                }
            }
            _ => Err(LangError::NotCanonical(format!("not a cmd: `{t}`"))),
        }
    }
    cmd(t, &mut Vec::new())
}

// ----------------------------------------------------------- interpreter --

/// Result of running a command: its output trace.
pub type Trace = Vec<i64>;

/// Runs a command (all variables `local`-bound), collecting `print`
/// output.
///
/// # Errors
///
/// [`LangError::UnboundVar`] on undeclared variables,
/// [`LangError::OutOfFuel`] when loop iterations exceed `fuel`.
pub fn run(c: &Cmd, fuel: u64) -> Result<Trace, LangError> {
    let mut store: Vec<(String, i64)> = Vec::new();
    let mut out = Vec::new();
    let mut budget = fuel;
    exec(c, &mut store, &mut out, &mut budget)?;
    Ok(out)
}

fn lookup(store: &[(String, i64)], x: &str) -> Result<i64, LangError> {
    store
        .iter()
        .rev()
        .find(|(n, _)| n == x)
        .map(|(_, v)| *v)
        .ok_or_else(|| LangError::UnboundVar(x.to_string()))
}

fn assign(store: &mut [(String, i64)], x: &str, v: i64) -> Result<(), LangError> {
    for (n, slot) in store.iter_mut().rev() {
        if n == x {
            *slot = v;
            return Ok(());
        }
    }
    Err(LangError::UnboundVar(x.to_string()))
}

fn eval_a(e: &Aexp, store: &[(String, i64)]) -> Result<i64, LangError> {
    Ok(match e {
        Aexp::Num(n) => *n,
        Aexp::Var(x) => lookup(store, x)?,
        Aexp::Add(a, b) => eval_a(a, store)?.wrapping_add(eval_a(b, store)?),
        Aexp::Sub(a, b) => eval_a(a, store)?.wrapping_sub(eval_a(b, store)?),
        Aexp::Mul(a, b) => eval_a(a, store)?.wrapping_mul(eval_a(b, store)?),
    })
}

fn eval_b(e: &Bexp, store: &[(String, i64)]) -> Result<bool, LangError> {
    Ok(match e {
        Bexp::Le(a, b) => eval_a(a, store)? <= eval_a(b, store)?,
        Bexp::Eq(a, b) => eval_a(a, store)? == eval_a(b, store)?,
        Bexp::Not(b) => !eval_b(b, store)?,
        Bexp::And(a, b) => eval_b(a, store)? && eval_b(b, store)?,
    })
}

fn exec(
    c: &Cmd,
    store: &mut Vec<(String, i64)>,
    out: &mut Trace,
    fuel: &mut u64,
) -> Result<(), LangError> {
    match c {
        Cmd::Skip => Ok(()),
        Cmd::Assign(x, e) => {
            let v = eval_a(e, store)?;
            assign(store, x, v)
        }
        Cmd::Seq(a, b) => {
            exec(a, store, out, fuel)?;
            exec(b, store, out, fuel)
        }
        Cmd::If(b, t, e) => {
            if eval_b(b, store)? {
                exec(t, store, out, fuel)
            } else {
                exec(e, store, out, fuel)
            }
        }
        Cmd::While(b, body) => {
            while eval_b(b, store)? {
                if *fuel == 0 {
                    return Err(LangError::OutOfFuel);
                }
                *fuel -= 1;
                exec(body, store, out, fuel)?;
            }
            Ok(())
        }
        Cmd::Print(e) => {
            out.push(eval_a(e, store)?);
            Ok(())
        }
        Cmd::Local(x, init, body) => {
            let v = eval_a(init, store)?;
            store.push((x.clone(), v));
            let r = exec(body, store, out, fuel);
            store.pop();
            r
        }
    }
}

// ------------------------------------------------------------- generator --

/// Generates a random command whose variables are all `local`-bound, with
/// folding opportunities (literal arithmetic) and dead declarations mixed
/// in.
pub fn gen_cmd(rng: &mut impl Rng, depth: u32) -> Cmd {
    let mut bound = Vec::new();
    Cmd::local("v0", Aexp::Num(0), {
        let x = "v0".to_string();
        bound.push(x);
        gen_c(rng, depth, &mut bound)
    })
}

fn gen_a(rng: &mut impl Rng, depth: u32, bound: &[String]) -> Aexp {
    if depth == 0 || rng.gen_bool(0.4) {
        if !bound.is_empty() && rng.gen_bool(0.5) {
            return Aexp::var(bound[rng.gen_range(0..bound.len())].clone());
        }
        return Aexp::Num(rng.gen_range(-9..10));
    }
    let a = gen_a(rng, depth - 1, bound);
    let b = gen_a(rng, depth - 1, bound);
    match rng.gen_range(0..3) {
        0 => Aexp::add(a, b),
        1 => Aexp::sub(a, b),
        _ => Aexp::mul(a, b),
    }
}

fn gen_b(rng: &mut impl Rng, depth: u32, bound: &[String]) -> Bexp {
    match rng.gen_range(0..4) {
        0 => Bexp::le(gen_a(rng, depth, bound), gen_a(rng, depth, bound)),
        1 => Bexp::eq(gen_a(rng, depth, bound), gen_a(rng, depth, bound)),
        2 if depth > 0 => Bexp::not(gen_b(rng, depth - 1, bound)),
        _ => Bexp::le(gen_a(rng, depth, bound), gen_a(rng, depth, bound)),
    }
}

fn gen_c(rng: &mut impl Rng, depth: u32, bound: &mut Vec<String>) -> Cmd {
    if depth == 0 {
        return match rng.gen_range(0..3) {
            0 => Cmd::Skip,
            1 => Cmd::Print(gen_a(rng, 1, bound)),
            _ => Cmd::Assign(
                bound[rng.gen_range(0..bound.len())].clone(),
                gen_a(rng, 1, bound),
            ),
        };
    }
    match rng.gen_range(0..10) {
        0 | 1 => Cmd::seq(gen_c(rng, depth - 1, bound), gen_c(rng, depth - 1, bound)),
        2 | 3 => Cmd::if_(
            gen_b(rng, 1, bound),
            gen_c(rng, depth - 1, bound),
            gen_c(rng, depth - 1, bound),
        ),
        4 => {
            // A bounded loop: local counter counting down to 0.
            let x = format!("v{}", bound.len());
            bound.push(x.clone());
            let body = Cmd::seq(
                gen_c(rng, depth.saturating_sub(2), bound),
                Cmd::Assign(x.clone(), Aexp::sub(Aexp::var(x.clone()), Aexp::Num(1))),
            );
            bound.pop();
            Cmd::local(
                x.clone(),
                Aexp::Num(rng.gen_range(0..4)),
                Cmd::while_(Bexp::le(Aexp::Num(1), Aexp::var(x)), body),
            )
        }
        5 | 6 => {
            let x = format!("v{}", bound.len());
            let init = gen_a(rng, 1, bound);
            bound.push(x.clone());
            let body = gen_c(rng, depth - 1, bound);
            bound.pop();
            Cmd::local(x, init, body)
        }
        7 => Cmd::Print(gen_a(rng, 2, bound)),
        _ => Cmd::Assign(
            bound[rng.gen_range(0..bound.len())].clone(),
            gen_a(rng, 2, bound),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_testkit::rng::SmallRng;

    fn sample() -> Cmd {
        // local x := 3 in { local y := (1 + 2) in { x := x * y; print x } }
        Cmd::local(
            "x",
            Aexp::Num(3),
            Cmd::local(
                "y",
                Aexp::add(Aexp::Num(1), Aexp::Num(2)),
                Cmd::seq(
                    Cmd::Assign("x".into(), Aexp::mul(Aexp::var("x"), Aexp::var("y"))),
                    Cmd::Print(Aexp::var("x")),
                ),
            ),
        )
    }

    #[test]
    fn interpreter_runs_sample() {
        assert_eq!(run(&sample(), 1000).unwrap(), vec![9]);
    }

    #[test]
    fn encode_typechecks_and_roundtrips() {
        let c = sample();
        let t = encode(&c).unwrap();
        hoas_core::typeck::check_closed(signature(), &t, &cmd_ty()).unwrap();
        // Round-trips hold up to α-equivalence (binder hints are
        // canonicalized by the interned store).
        assert!(decode(&t).unwrap().alpha_eq(&c));
    }

    #[test]
    fn encoding_shape() {
        let c = Cmd::local("x", Aexp::Num(1), Cmd::Print(Aexp::var("x")));
        let t = encode(&c).unwrap();
        assert_eq!(t.to_string(), r"local (lit 1) (\x. print (deref x))");
    }

    #[test]
    fn encode_rejects_unbound() {
        let c = Cmd::Print(Aexp::var("ghost"));
        assert!(matches!(encode(&c), Err(LangError::UnboundVar(_))));
    }

    #[test]
    fn decode_rejects_exotic_local() {
        // local (lit 1) skip — the scope is not a λ.
        let t = Term::apps(
            Term::cnst("local"),
            [
                Term::app(Term::cnst("lit"), Term::Int(1)),
                Term::cnst("skip"),
            ],
        );
        assert!(matches!(decode(&t), Err(LangError::NotCanonical(_))));
    }

    #[test]
    fn while_loop_and_fuel() {
        // local i := 5 in while 1 <= i { print i; i := i - 1 }
        let c = Cmd::local(
            "i",
            Aexp::Num(5),
            Cmd::while_(
                Bexp::le(Aexp::Num(1), Aexp::var("i")),
                Cmd::seq(
                    Cmd::Print(Aexp::var("i")),
                    Cmd::Assign("i".into(), Aexp::sub(Aexp::var("i"), Aexp::Num(1))),
                ),
            ),
        );
        assert_eq!(run(&c, 1000).unwrap(), vec![5, 4, 3, 2, 1]);
        // Infinite loop hits the fuel limit.
        let inf = Cmd::local(
            "i",
            Aexp::Num(0),
            Cmd::while_(Bexp::eq(Aexp::Num(0), Aexp::Num(0)), Cmd::Skip),
        );
        assert!(matches!(run(&inf, 100), Err(LangError::OutOfFuel)));
    }

    #[test]
    fn shadowing_locals() {
        // local x := 1 in { local x := 2 in print x; print x }
        let c = Cmd::local(
            "x",
            Aexp::Num(1),
            Cmd::seq(
                Cmd::local("x", Aexp::Num(2), Cmd::Print(Aexp::var("x"))),
                Cmd::Print(Aexp::var("x")),
            ),
        );
        assert_eq!(run(&c, 100).unwrap(), vec![2, 1]);
        // Round-trip through the encoding freshens the inner binder but
        // preserves the trace.
        let back = decode(&encode(&c).unwrap()).unwrap();
        assert_eq!(run(&back, 100).unwrap(), vec![2, 1]);
    }

    #[test]
    fn generated_programs_roundtrip_and_run() {
        let mut rng = SmallRng::seed_from_u64(2024);
        for _ in 0..60 {
            let c = gen_cmd(&mut rng, 4);
            let t = encode(&c).expect("generated programs are well-bound");
            hoas_core::typeck::check_closed(signature(), &t, &cmd_ty()).unwrap();
            let back = decode(&t).unwrap();
            // Traces agree (names may have been freshened).
            let t1 = run(&c, 10_000);
            let t2 = run(&back, 10_000);
            match (t1, t2) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(LangError::OutOfFuel), Err(LangError::OutOfFuel)) => {}
                other => panic!("disagreement: {other:?}"),
            }
        }
    }

    #[test]
    fn free_vars_excludes_locals() {
        let c = sample();
        assert!(c.free_vars().is_empty());
        let open = Cmd::Assign("x".into(), Aexp::var("y"));
        let fv = open.free_vars();
        assert!(fv.contains("x") && fv.contains("y"));
    }

    #[test]
    fn mentions_agrees_with_free_vars() {
        let mut rng = SmallRng::seed_from_u64(4025);
        for _ in 0..60 {
            let c = gen_cmd(&mut rng, 4);
            let fv = c.free_vars();
            for x in ["x", "y", "z", "w", "i0", "nope"] {
                assert_eq!(c.mentions(x), fv.contains(x), "var {x} in {c}");
            }
        }
        // Shadowing: the outer binder's body occurrence is captured by the
        // inner rebinding, but the inner init still sees the outer `x`.
        let c = Cmd::local(
            "x",
            Aexp::Num(1),
            Cmd::local("x", Aexp::var("x"), Cmd::Print(Aexp::var("x"))),
        );
        assert!(!c.mentions("x"));
        let inner = Cmd::local("x", Aexp::var("x"), Cmd::Print(Aexp::var("x")));
        assert!(inner.mentions("x"));
        assert!(inner.free_vars().contains("x"));
    }
}
