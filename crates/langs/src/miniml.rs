//! A Mini-ML fragment — the program-manipulation setting that motivated
//! the paper (the Ergo Support System manipulated ML-family programs).
//!
//! Syntax: natural numbers (`z`, `s e`), case analysis, functions,
//! `let`, and general recursion (`fix`). The HOAS representation:
//!
//! ```text
//! type exp.
//! const z    : exp.
//! const s    : exp -> exp.
//! const case : exp -> exp -> (exp -> exp) -> exp.   % case e of z => e0 | s x => e1
//! const lam  : (exp -> exp) -> exp.
//! const app  : exp -> exp -> exp.
//! const letv : exp -> (exp -> exp) -> exp.          % let x = e1 in e2
//! const fix  : (exp -> exp) -> exp.
//! ```
//!
//! Two call-by-value evaluators are provided: [`eval_native`] on the named
//! AST (with hand-written substitution) and [`eval_hoas`] directly on
//! encodings, where every object-level substitution is a metalanguage
//! β-step ([`hoas_core::normalize::happly`]) — experiment E8.

use crate::LangError;
use hoas_core::sig::Signature;
use hoas_core::{normalize, Term, Ty};
use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;

/// A Mini-ML expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Exp {
    /// Variable.
    Var(String),
    /// Zero.
    Z,
    /// Successor.
    S(Box<Exp>),
    /// `case e of z => e0 | s x => e1`.
    Case(Box<Exp>, Box<Exp>, String, Box<Exp>),
    /// Function abstraction.
    Lam(String, Box<Exp>),
    /// Application.
    App(Box<Exp>, Box<Exp>),
    /// `let x = e1 in e2`.
    Let(String, Box<Exp>, Box<Exp>),
    /// General recursion `fix x. e` (x bound to the whole expression).
    Fix(String, Box<Exp>),
}

impl Exp {
    /// Convenience constructor for a variable.
    pub fn var(x: impl Into<String>) -> Exp {
        Exp::Var(x.into())
    }
    /// Successor constructor.
    pub fn s(e: Exp) -> Exp {
        Exp::S(Box::new(e))
    }
    /// Case constructor.
    pub fn case(scrut: Exp, zero: Exp, x: impl Into<String>, succ: Exp) -> Exp {
        Exp::Case(Box::new(scrut), Box::new(zero), x.into(), Box::new(succ))
    }
    /// Abstraction constructor.
    pub fn lam(x: impl Into<String>, body: Exp) -> Exp {
        Exp::Lam(x.into(), Box::new(body))
    }
    /// Application constructor.
    pub fn app(f: Exp, a: Exp) -> Exp {
        Exp::App(Box::new(f), Box::new(a))
    }
    /// Let constructor.
    pub fn let_(x: impl Into<String>, e1: Exp, e2: Exp) -> Exp {
        Exp::Let(x.into(), Box::new(e1), Box::new(e2))
    }
    /// Fix constructor.
    pub fn fix(x: impl Into<String>, body: Exp) -> Exp {
        Exp::Fix(x.into(), Box::new(body))
    }

    /// The numeral `n` as `s (s … z)`.
    pub fn num(n: u64) -> Exp {
        let mut e = Exp::Z;
        for _ in 0..n {
            e = Exp::s(e);
        }
        e
    }

    /// Reads back a numeral value; `None` if the expression is not a
    /// numeral.
    pub fn as_num(&self) -> Option<u64> {
        let mut cur = self;
        let mut n = 0;
        loop {
            match cur {
                Exp::Z => return Some(n),
                Exp::S(e) => {
                    n += 1;
                    cur = e;
                }
                _ => return None,
            }
        }
    }

    /// α-equivalence: equality up to consistent renaming of `lam`-,
    /// `let`-, `fix`-, and `case`-bound variables, decided through the
    /// HOAS encoding (kernel term equality is α-equivalence — an O(1) id
    /// comparison in the hash-consed store). Encode/decode round-trips
    /// are stable up to `alpha_eq`, not derived `==` (the store
    /// canonicalizes binder-name hints). Expressions the encoder rejects
    /// (unbound variables) fall back to the name-sensitive derived
    /// equality.
    pub fn alpha_eq(&self, other: &Exp) -> bool {
        match (encode(self), encode(other)) {
            (Ok(a), Ok(b)) => a == b,
            _ => self == other,
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Exp::Var(_) | Exp::Z => 1,
            Exp::S(e) | Exp::Lam(_, e) | Exp::Fix(_, e) => 1 + e.size(),
            Exp::App(a, b) | Exp::Let(_, a, b) => 1 + a.size() + b.size(),
            Exp::Case(a, b, _, c) => 1 + a.size() + b.size() + c.size(),
        }
    }

    /// Free variables.
    pub fn free_vars(&self) -> HashSet<String> {
        match self {
            Exp::Var(x) => std::iter::once(x.clone()).collect(),
            Exp::Z => HashSet::new(),
            Exp::S(e) => e.free_vars(),
            Exp::Lam(x, e) | Exp::Fix(x, e) => {
                let mut fv = e.free_vars();
                fv.remove(x);
                fv
            }
            Exp::App(a, b) => {
                let mut fv = a.free_vars();
                fv.extend(b.free_vars());
                fv
            }
            Exp::Let(x, a, b) => {
                let mut fv = b.free_vars();
                fv.remove(x);
                fv.extend(a.free_vars());
                fv
            }
            Exp::Case(s, z, x, sc) => {
                let mut fv = s.free_vars();
                fv.extend(z.free_vars());
                let mut fs = sc.free_vars();
                fs.remove(x);
                fv.extend(fs);
                fv
            }
        }
    }
}

impl fmt::Display for Exp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exp::Var(x) => f.write_str(x),
            Exp::Z => f.write_str("z"),
            Exp::S(e) => {
                if let Some(n) = self.as_num() {
                    write!(f, "{n}")
                } else {
                    write!(f, "s({e})")
                }
            }
            Exp::Case(s, z, x, sc) => {
                write!(f, "case {s} of z => {z} | s {x} => {sc}")
            }
            Exp::Lam(x, e) => write!(f, "fn {x} => {e}"),
            Exp::App(a, b) => {
                match a.as_ref() {
                    Exp::Lam(..) | Exp::Fix(..) | Exp::Let(..) | Exp::Case(..) => {
                        write!(f, "({a}) ")?
                    }
                    _ => write!(f, "{a} ")?,
                }
                match b.as_ref() {
                    Exp::Var(_) | Exp::Z => write!(f, "{b}"),
                    _ => write!(f, "({b})"),
                }
            }
            Exp::Let(x, a, b) => write!(f, "let {x} = {a} in {b}"),
            Exp::Fix(x, e) => write!(f, "fix {x}. {e}"),
        }
    }
}

/// The HOAS signature for Mini-ML.
pub fn signature() -> &'static Signature {
    static SIG: OnceLock<Signature> = OnceLock::new();
    SIG.get_or_init(|| {
        Signature::parse(
            "type exp.
             const z : exp.
             const s : exp -> exp.
             const case : exp -> exp -> (exp -> exp) -> exp.
             const lam : (exp -> exp) -> exp.
             const app : exp -> exp -> exp.
             const letv : exp -> (exp -> exp) -> exp.
             const fix : (exp -> exp) -> exp.",
        )
        .expect("Mini-ML signature is well-formed")
    })
}

/// The representation type `exp`.
pub fn exp() -> Ty {
    Ty::base("exp")
}

/// Encodes a closed expression.
///
/// # Errors
///
/// [`LangError::UnboundVar`] on free variables.
pub fn encode(e: &Exp) -> Result<Term, LangError> {
    fn go(e: &Exp, env: &mut Vec<String>) -> Result<Term, LangError> {
        match e {
            Exp::Var(x) => match env.iter().rposition(|b| b == x) {
                Some(pos) => Ok(Term::Var((env.len() - 1 - pos) as u32)),
                None => Err(LangError::UnboundVar(x.clone())),
            },
            Exp::Z => Ok(Term::cnst("z")),
            Exp::S(inner) => Ok(Term::app(Term::cnst("s"), go(inner, env)?)),
            Exp::Case(scrut, zero, x, succ) => {
                let sc = go(scrut, env)?;
                let zc = go(zero, env)?;
                env.push(x.clone());
                let body = go(succ, env)?;
                env.pop();
                Ok(Term::apps(
                    Term::cnst("case"),
                    [sc, zc, Term::lam(x.as_str(), body)],
                ))
            }
            Exp::Lam(x, body) => {
                env.push(x.clone());
                let b = go(body, env)?;
                env.pop();
                Ok(Term::app(Term::cnst("lam"), Term::lam(x.as_str(), b)))
            }
            Exp::App(f, a) => Ok(Term::apps(Term::cnst("app"), [go(f, env)?, go(a, env)?])),
            Exp::Let(x, e1, e2) => {
                let c1 = go(e1, env)?;
                env.push(x.clone());
                let c2 = go(e2, env)?;
                env.pop();
                Ok(Term::apps(
                    Term::cnst("letv"),
                    [c1, Term::lam(x.as_str(), c2)],
                ))
            }
            Exp::Fix(x, body) => {
                env.push(x.clone());
                let b = go(body, env)?;
                env.pop();
                Ok(Term::app(Term::cnst("fix"), Term::lam(x.as_str(), b)))
            }
        }
    }
    go(e, &mut Vec::new())
}

/// Decodes a canonical term of type `exp`.
///
/// # Errors
///
/// [`LangError::NotCanonical`] on exotic or ill-formed terms.
pub fn decode(t: &Term) -> Result<Exp, LangError> {
    fn binder<'t>(t: &'t Term, what: &str) -> Result<(&'t hoas_core::Sym, &'t Term), LangError> {
        match t {
            Term::Lam(h, b) => Ok((h, b)),
            other => Err(LangError::NotCanonical(format!(
                "{what} over non-λ `{other}` (exotic term)"
            ))),
        }
    }
    fn go(t: &Term, env: &mut Vec<String>) -> Result<Exp, LangError> {
        if let Term::Var(i) = t {
            let n = env.len();
            return n
                .checked_sub(1 + *i as usize)
                .and_then(|k| env.get(k))
                .map(|name| Exp::var(name.clone()))
                .ok_or_else(|| LangError::NotCanonical(format!("dangling index {i}")));
        }
        let (head, args) = t.spine();
        let cname = match head {
            Term::Const(c) => c.as_str().to_string(),
            other => return Err(LangError::NotCanonical(format!("exp with head `{other}`"))),
        };
        let fresh = |hint: &hoas_core::Sym, env: &[String]| {
            let used: HashSet<String> = env.iter().cloned().collect();
            hoas_firstorder::named::fresh_name(hint.as_str(), &used)
        };
        match (cname.as_str(), args.as_slice()) {
            ("z", []) => Ok(Exp::Z),
            ("s", [e]) => Ok(Exp::s(go(e, env)?)),
            ("case", [scrut, zero, succ]) => {
                let s = go(scrut, env)?;
                let zc = go(zero, env)?;
                let (hint, body) = binder(succ, "case branch")?;
                let name = fresh(hint, env);
                env.push(name.clone());
                let sc = go(body, env)?;
                env.pop();
                Ok(Exp::case(s, zc, name, sc))
            }
            ("lam", [abs]) => {
                let (hint, body) = binder(abs, "lam")?;
                let name = fresh(hint, env);
                env.push(name.clone());
                let b = go(body, env)?;
                env.pop();
                Ok(Exp::lam(name, b))
            }
            ("app", [f, a]) => Ok(Exp::app(go(f, env)?, go(a, env)?)),
            ("letv", [e1, abs]) => {
                let c1 = go(e1, env)?;
                let (hint, body) = binder(abs, "let")?;
                let name = fresh(hint, env);
                env.push(name.clone());
                let c2 = go(body, env)?;
                env.pop();
                Ok(Exp::let_(name, c1, c2))
            }
            ("fix", [abs]) => {
                let (hint, body) = binder(abs, "fix")?;
                let name = fresh(hint, env);
                env.push(name.clone());
                let b = go(body, env)?;
                env.pop();
                Ok(Exp::fix(name, b))
            }
            (c, _) => Err(LangError::NotCanonical(format!(
                "`{c}` applied to {} arguments is not an exp constructor",
                args.len()
            ))),
        }
    }
    go(t, &mut Vec::new())
}

// ----------------------------------------------------------- evaluators --

/// Capture-avoiding substitution on the named AST (via the generic
/// first-order machinery would also work; written directly for a fair
/// native baseline).
pub fn subst(e: &Exp, x: &str, v: &Exp) -> Exp {
    let fvs = v.free_vars();
    fn all_names(e: &Exp, acc: &mut HashSet<String>) {
        match e {
            Exp::Var(y) => {
                acc.insert(y.clone());
            }
            Exp::Z => {}
            Exp::S(inner) => all_names(inner, acc),
            Exp::App(f, a) => {
                all_names(f, acc);
                all_names(a, acc);
            }
            Exp::Lam(y, b) | Exp::Fix(y, b) => {
                acc.insert(y.clone());
                all_names(b, acc);
            }
            Exp::Let(y, a, b) => {
                acc.insert(y.clone());
                all_names(a, acc);
                all_names(b, acc);
            }
            Exp::Case(s, z, y, sc) => {
                acc.insert(y.clone());
                all_names(s, acc);
                all_names(z, acc);
                all_names(sc, acc);
            }
        }
    }
    // The fresh name must avoid every name in the body — including nested
    // binder names, which the plain rename below would not freshen.
    fn freshen(y: &str, body: &Exp, fvs: &HashSet<String>, x: &str) -> String {
        let mut avoid: HashSet<String> = fvs.clone();
        all_names(body, &mut avoid);
        avoid.insert(x.to_string());
        hoas_firstorder::named::fresh_name(y, &avoid)
    }
    fn go(e: &Exp, x: &str, v: &Exp, fvs: &HashSet<String>) -> Exp {
        match e {
            Exp::Var(y) => {
                if y == x {
                    v.clone()
                } else {
                    e.clone()
                }
            }
            Exp::Z => Exp::Z,
            Exp::S(inner) => Exp::s(go(inner, x, v, fvs)),
            Exp::App(f, a) => Exp::app(go(f, x, v, fvs), go(a, x, v, fvs)),
            Exp::Lam(y, b) => {
                if y == x {
                    e.clone()
                } else if fvs.contains(y.as_str()) {
                    let ny = freshen(y, b, fvs, x);
                    let renamed = go(b, y, &Exp::var(ny.clone()), &HashSet::new());
                    Exp::lam(ny, go(&renamed, x, v, fvs))
                } else {
                    Exp::lam(y.clone(), go(b, x, v, fvs))
                }
            }
            Exp::Fix(y, b) => {
                if y == x {
                    e.clone()
                } else if fvs.contains(y.as_str()) {
                    let ny = freshen(y, b, fvs, x);
                    let renamed = go(b, y, &Exp::var(ny.clone()), &HashSet::new());
                    Exp::fix(ny, go(&renamed, x, v, fvs))
                } else {
                    Exp::fix(y.clone(), go(b, x, v, fvs))
                }
            }
            Exp::Let(y, e1, e2) => {
                let n1 = go(e1, x, v, fvs);
                if y == x {
                    Exp::let_(y.clone(), n1, e2.as_ref().clone())
                } else if fvs.contains(y.as_str()) {
                    let ny = freshen(y, e2, fvs, x);
                    let renamed = go(e2, y, &Exp::var(ny.clone()), &HashSet::new());
                    Exp::let_(ny, n1, go(&renamed, x, v, fvs))
                } else {
                    Exp::let_(y.clone(), n1, go(e2, x, v, fvs))
                }
            }
            Exp::Case(s, z, y, sc) => {
                let ns = go(s, x, v, fvs);
                let nz = go(z, x, v, fvs);
                if y == x {
                    Exp::case(ns, nz, y.clone(), sc.as_ref().clone())
                } else if fvs.contains(y.as_str()) {
                    let ny = freshen(y, sc, fvs, x);
                    let renamed = go(sc, y, &Exp::var(ny.clone()), &HashSet::new());
                    Exp::case(ns, nz, ny, go(&renamed, x, v, fvs))
                } else {
                    Exp::case(ns, nz, y.clone(), go(sc, x, v, fvs))
                }
            }
        }
    }
    go(e, x, v, &fvs)
}

/// Call-by-value big-step evaluation on the named AST.
///
/// # Errors
///
/// [`LangError::OutOfFuel`] on divergence (each β/δ step costs one unit),
/// [`LangError::NotCanonical`] on stuck terms (e.g. applying a numeral).
pub fn eval_native(e: &Exp, fuel: &mut u64) -> Result<Exp, LangError> {
    fn spend(fuel: &mut u64) -> Result<(), LangError> {
        if *fuel == 0 {
            Err(LangError::OutOfFuel)
        } else {
            *fuel -= 1;
            Ok(())
        }
    }
    // Tail positions (β/let/fix/case continuations) iterate via `cur`
    // instead of recursing, so divergent programs exhaust fuel rather
    // than the stack.
    let mut cur = e.clone();
    loop {
        match cur {
            Exp::Var(x) => return Err(LangError::UnboundVar(x)),
            Exp::Z | Exp::Lam(..) => return Ok(cur),
            Exp::S(inner) => return Ok(Exp::s(eval_native(&inner, fuel)?)),
            Exp::App(f, a) => {
                let fv = eval_native(&f, fuel)?;
                let av = eval_native(&a, fuel)?;
                match fv {
                    Exp::Lam(x, body) => {
                        spend(fuel)?;
                        cur = subst(&body, &x, &av);
                    }
                    other => {
                        return Err(LangError::NotCanonical(format!(
                            "application of non-function `{other}`"
                        )))
                    }
                }
            }
            Exp::Let(x, e1, e2) => {
                let v1 = eval_native(&e1, fuel)?;
                spend(fuel)?;
                cur = subst(&e2, &x, &v1);
            }
            Exp::Fix(x, body) => {
                spend(fuel)?;
                let whole = Exp::Fix(x.clone(), body.clone());
                cur = subst(&body, &x, &whole);
            }
            Exp::Case(s, z, x, sc) => {
                let sv = eval_native(&s, fuel)?;
                match sv {
                    Exp::Z => {
                        spend(fuel)?;
                        cur = *z;
                    }
                    Exp::S(pred) => {
                        spend(fuel)?;
                        cur = subst(&sc, &x, &pred);
                    }
                    other => {
                        return Err(LangError::NotCanonical(format!(
                            "case on non-numeral `{other}`"
                        )))
                    }
                }
            }
        }
    }
}

/// Call-by-value big-step evaluation **directly on encodings**: every
/// object-level substitution is [`normalize::happly`]. Returns the
/// encoded value.
///
/// # Errors
///
/// As for [`eval_native`].
pub fn eval_hoas(t: &Term, fuel: &mut u64) -> Result<Term, LangError> {
    fn spend(fuel: &mut u64) -> Result<(), LangError> {
        if *fuel == 0 {
            Err(LangError::OutOfFuel)
        } else {
            *fuel -= 1;
            Ok(())
        }
    }
    // As in `eval_native`, continuation positions iterate via `cur`.
    let mut cur = t.clone();
    loop {
        let (head, args) = cur.spine();
        let cname = match head {
            Term::Const(c) => c.as_str().to_string(),
            other => {
                return Err(LangError::NotCanonical(format!(
                    "evaluating open/exotic term with head `{other}`"
                )))
            }
        };
        let next = match (cname.as_str(), args.as_slice()) {
            ("z", []) => return Ok(cur.clone()),
            ("lam", [_]) => return Ok(cur.clone()),
            ("s", [e]) => return Ok(Term::app(Term::cnst("s"), eval_hoas(e, fuel)?)),
            ("app", [f, a]) => {
                let fv = eval_hoas(f, fuel)?;
                let av = eval_hoas(a, fuel)?;
                match fv.spine() {
                    (Term::Const(c), fargs) if c.as_str() == "lam" && fargs.len() == 1 => {
                        spend(fuel)?;
                        // Object-level substitution = metalanguage β.
                        normalize::happly(fargs[0].clone(), av)
                    }
                    _ => {
                        return Err(LangError::NotCanonical(format!(
                            "application of non-function `{fv}`"
                        )))
                    }
                }
            }
            ("letv", [e1, abs]) => {
                let v1 = eval_hoas(e1, fuel)?;
                spend(fuel)?;
                normalize::happly((*abs).clone(), v1)
            }
            ("fix", [abs]) => {
                spend(fuel)?;
                normalize::happly((*abs).clone(), cur.clone())
            }
            ("case", [s, z, sc]) => {
                let sv = eval_hoas(s, fuel)?;
                match sv.spine() {
                    (Term::Const(c), sargs) if c.as_str() == "z" && sargs.is_empty() => {
                        spend(fuel)?;
                        (*z).clone()
                    }
                    (Term::Const(c), sargs) if c.as_str() == "s" && sargs.len() == 1 => {
                        spend(fuel)?;
                        normalize::happly((*sc).clone(), sargs[0].clone())
                    }
                    _ => {
                        return Err(LangError::NotCanonical(format!(
                            "case on non-numeral `{sv}`"
                        )))
                    }
                }
            }
            (c, _) => {
                return Err(LangError::NotCanonical(format!(
                    "`{c}` applied to {} arguments is not an exp constructor",
                    args.len()
                )))
            }
        };
        cur = next;
    }
}

// ------------------------------------------------- environment machine --

/// Runtime values of the environment-machine evaluator ([`eval_env`]):
/// the evaluator a production interpreter would use, with closures
/// instead of substitution. Included as the performance yardstick for
/// experiment E8 — both substitution-based evaluators (native and HOAS)
/// are compared against it.
#[derive(Clone, Debug)]
pub enum Value {
    /// A (fully evaluated) natural number.
    Num(u64),
    /// A function closure.
    Closure {
        /// Parameter name.
        param: String,
        /// Unevaluated body.
        body: Exp,
        /// Captured environment.
        env: Env,
    },
    /// A recursive closure (`fix f. fn param => body`); applying it binds
    /// both `fname` (to itself) and `param`.
    RecClosure {
        /// The recursive binder.
        fname: String,
        /// Parameter name.
        param: String,
        /// Unevaluated body.
        body: Exp,
        /// Captured environment.
        env: Env,
    },
}

impl Value {
    /// Reads back a numeral; `None` for closures.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A persistent environment (shared-tail linked list).
pub type Env = Option<std::rc::Rc<EnvNode>>;

/// One environment binding.
#[derive(Clone, Debug)]
pub struct EnvNode {
    name: String,
    value: Value,
    rest: Env,
}

fn env_push(env: &Env, name: String, value: Value) -> Env {
    Some(std::rc::Rc::new(EnvNode {
        name,
        value,
        rest: env.clone(),
    }))
}

fn env_lookup(env: &Env, x: &str) -> Option<Value> {
    let mut cur = env;
    while let Some(node) = cur {
        if node.name == x {
            return Some(node.value.clone());
        }
        cur = &node.rest;
    }
    None
}

/// Call-by-value evaluation with an environment machine (closures, no
/// substitution at all).
///
/// # Errors
///
/// [`LangError::OutOfFuel`] on divergence; [`LangError::NotCanonical`]
/// on stuck terms and on `fix` whose body is not a λ (the environment
/// machine, unlike the substitution evaluators, supports only function
/// recursion — the standard restriction).
pub fn eval_env(e: &Exp, fuel: &mut u64) -> Result<Value, LangError> {
    fn spend(fuel: &mut u64) -> Result<(), LangError> {
        if *fuel == 0 {
            Err(LangError::OutOfFuel)
        } else {
            *fuel -= 1;
            Ok(())
        }
    }
    // Tail positions (application bodies, let bodies, case branches)
    // iterate via `cur`/`env` so recursion stays bounded by program
    // nesting, not by evaluation length.
    fn go(e: &Exp, env: &Env, fuel: &mut u64) -> Result<Value, LangError> {
        let mut cur = e.clone();
        let mut env = env.clone();
        loop {
            match cur {
                Exp::Var(x) => {
                    return env_lookup(&env, &x).ok_or(LangError::UnboundVar(x));
                }
                Exp::Z => return Ok(Value::Num(0)),
                Exp::S(inner) => {
                    return match go(&inner, &env, fuel)? {
                        Value::Num(n) => Ok(Value::Num(n + 1)),
                        other => Err(LangError::NotCanonical(format!(
                            "successor of non-number {other:?}"
                        ))),
                    }
                }
                Exp::Case(s, z, x, sc) => match go(&s, &env, fuel)? {
                    Value::Num(0) => {
                        spend(fuel)?;
                        cur = *z;
                    }
                    Value::Num(n) => {
                        spend(fuel)?;
                        env = env_push(&env, x, Value::Num(n - 1));
                        cur = *sc;
                    }
                    other => {
                        return Err(LangError::NotCanonical(format!(
                            "case on non-number {other:?}"
                        )))
                    }
                },
                Exp::Lam(x, body) => {
                    return Ok(Value::Closure {
                        param: x,
                        body: *body,
                        env,
                    })
                }
                Exp::App(f, a) => {
                    let fv = go(&f, &env, fuel)?;
                    let av = go(&a, &env, fuel)?;
                    spend(fuel)?;
                    match fv {
                        Value::Closure {
                            param,
                            body,
                            env: cenv,
                        } => {
                            env = env_push(&cenv, param, av);
                            cur = body;
                        }
                        Value::RecClosure {
                            fname,
                            param,
                            body,
                            env: cenv,
                        } => {
                            let rec = Value::RecClosure {
                                fname: fname.clone(),
                                param: param.clone(),
                                body: body.clone(),
                                env: cenv.clone(),
                            };
                            env = env_push(&env_push(&cenv, fname, rec), param, av);
                            cur = body;
                        }
                        other => {
                            return Err(LangError::NotCanonical(format!(
                                "application of non-function {other:?}"
                            )))
                        }
                    }
                }
                Exp::Let(x, e1, e2) => {
                    let v1 = go(&e1, &env, fuel)?;
                    spend(fuel)?;
                    env = env_push(&env, x, v1);
                    cur = *e2;
                }
                Exp::Fix(f, body) => {
                    return match *body {
                        Exp::Lam(param, b) => Ok(Value::RecClosure {
                            fname: f,
                            param,
                            body: *b,
                            env,
                        }),
                        other => Err(LangError::NotCanonical(format!(
                            "environment machine supports only `fix f. fn x => …`, got `{other}`"
                        ))),
                    }
                }
            }
        }
    }
    go(e, &None, fuel)
}

// --------------------------------------------------------- sample programs --

/// `add = fix add. fn m => fn n => case m of z => n | s m' => s (add m' n)`.
pub fn add_fn() -> Exp {
    Exp::fix(
        "add",
        Exp::lam(
            "m",
            Exp::lam(
                "n",
                Exp::case(
                    Exp::var("m"),
                    Exp::var("n"),
                    "m'",
                    Exp::s(Exp::app(
                        Exp::app(Exp::var("add"), Exp::var("m'")),
                        Exp::var("n"),
                    )),
                ),
            ),
        ),
    )
}

/// `mul`, defined with [`add_fn`] bound by a `let`.
pub fn mul_fn() -> Exp {
    Exp::let_(
        "add",
        add_fn(),
        Exp::fix(
            "mul",
            Exp::lam(
                "m",
                Exp::lam(
                    "n",
                    Exp::case(
                        Exp::var("m"),
                        Exp::Z,
                        "m'",
                        Exp::app(
                            Exp::app(Exp::var("add"), Exp::var("n")),
                            Exp::app(Exp::app(Exp::var("mul"), Exp::var("m'")), Exp::var("n")),
                        ),
                    ),
                ),
            ),
        ),
    )
}

/// `fact`, via [`mul_fn`].
pub fn fact_fn() -> Exp {
    Exp::let_(
        "mul",
        mul_fn(),
        Exp::fix(
            "fact",
            Exp::lam(
                "n",
                Exp::case(
                    Exp::var("n"),
                    Exp::num(1),
                    "n'",
                    Exp::app(
                        Exp::app(Exp::var("mul"), Exp::var("n")),
                        Exp::app(Exp::var("fact"), Exp::var("n'")),
                    ),
                ),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_native(e: &Exp) -> Exp {
        let mut fuel = 1_000_000;
        eval_native(e, &mut fuel).unwrap()
    }

    fn run_hoas(e: &Exp) -> Exp {
        let t = encode(e).unwrap();
        let mut fuel = 1_000_000;
        decode(&eval_hoas(&t, &mut fuel).unwrap()).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = Exp::let_(
            "f",
            Exp::lam("x", Exp::s(Exp::var("x"))),
            Exp::app(Exp::var("f"), Exp::num(2)),
        );
        let t = encode(&e).unwrap();
        hoas_core::typeck::check_closed(signature(), &t, &exp()).unwrap();
        // Round-trips hold up to α-equivalence (binder hints are
        // canonicalized by the interned store).
        assert!(decode(&t).unwrap().alpha_eq(&e));
    }

    #[test]
    fn numerals() {
        assert_eq!(Exp::num(3).as_num(), Some(3));
        assert_eq!(Exp::num(0), Exp::Z);
        assert_eq!(Exp::var("x").as_num(), None);
        assert_eq!(Exp::num(3).to_string(), "3");
    }

    #[test]
    fn addition_both_evaluators() {
        let prog = Exp::app(Exp::app(add_fn(), Exp::num(3)), Exp::num(4));
        assert_eq!(run_native(&prog).as_num(), Some(7));
        assert_eq!(run_hoas(&prog).as_num(), Some(7));
    }

    #[test]
    fn multiplication_both_evaluators() {
        let prog = Exp::app(Exp::app(mul_fn(), Exp::num(3)), Exp::num(5));
        assert_eq!(run_native(&prog).as_num(), Some(15));
        assert_eq!(run_hoas(&prog).as_num(), Some(15));
    }

    #[test]
    fn factorial_both_evaluators() {
        let prog = Exp::app(fact_fn(), Exp::num(5));
        assert_eq!(run_native(&prog).as_num(), Some(120));
        assert_eq!(run_hoas(&prog).as_num(), Some(120));
    }

    #[test]
    fn case_zero_branch() {
        let prog = Exp::case(Exp::Z, Exp::num(9), "x", Exp::var("x"));
        assert_eq!(run_native(&prog).as_num(), Some(9));
        assert_eq!(run_hoas(&prog).as_num(), Some(9));
    }

    #[test]
    fn shadowing_respected() {
        // let x = 1 in let x = 2 in x  ==>  2
        let prog = Exp::let_("x", Exp::num(1), Exp::let_("x", Exp::num(2), Exp::var("x")));
        assert_eq!(run_native(&prog).as_num(), Some(2));
        assert_eq!(run_hoas(&prog).as_num(), Some(2));
    }

    #[test]
    fn capture_avoidance_in_native_subst() {
        // (fn x => fn y => x) y — substituting y for x under λy must rename.
        let inner = Exp::lam("y", Exp::var("x"));
        let substituted = subst(&inner, "x", &Exp::var("y"));
        match &substituted {
            Exp::Lam(b, body) => {
                assert_ne!(b, "y");
                assert_eq!(body.as_ref(), &Exp::var("y"));
            }
            other => panic!("expected λ, got {other}"),
        }
    }

    #[test]
    fn divergence_is_fuel_limited() {
        let omega = Exp::fix("x", Exp::var("x"));
        let mut fuel = 1000;
        assert!(matches!(
            eval_native(&omega, &mut fuel),
            Err(LangError::OutOfFuel)
        ));
        let t = encode(&omega).unwrap();
        let mut fuel = 1000;
        assert!(matches!(
            eval_hoas(&t, &mut fuel),
            Err(LangError::OutOfFuel)
        ));
    }

    #[test]
    fn stuck_terms_reported() {
        let bad = Exp::app(Exp::Z, Exp::Z);
        let mut fuel = 100;
        assert!(matches!(
            eval_native(&bad, &mut fuel),
            Err(LangError::NotCanonical(_))
        ));
        let t = encode(&bad).unwrap();
        let mut fuel = 100;
        assert!(matches!(
            eval_hoas(&t, &mut fuel),
            Err(LangError::NotCanonical(_))
        ));
    }

    #[test]
    fn decode_rejects_exotic_case_branch() {
        // case z z (s) — branch is the constant s, not a λ: exotic.
        let exotic = Term::apps(
            Term::cnst("case"),
            [Term::cnst("z"), Term::cnst("z"), Term::cnst("s")],
        );
        assert!(matches!(decode(&exotic), Err(LangError::NotCanonical(_))));
    }

    #[test]
    fn evaluators_agree_on_open_failure() {
        let mut fuel = 10;
        assert!(matches!(
            eval_native(&Exp::var("ghost"), &mut fuel),
            Err(LangError::UnboundVar(_))
        ));
    }
}

#[cfg(test)]
mod env_tests {
    use super::*;

    fn run_env(e: &Exp) -> Value {
        let mut fuel = 1_000_000;
        eval_env(e, &mut fuel).unwrap()
    }

    #[test]
    fn env_machine_agrees_with_substitution_evaluators() {
        let progs = vec![
            Exp::app(Exp::app(add_fn(), Exp::num(3)), Exp::num(4)),
            Exp::app(Exp::app(mul_fn(), Exp::num(3)), Exp::num(5)),
            Exp::app(fact_fn(), Exp::num(5)),
            Exp::let_("x", Exp::num(1), Exp::let_("x", Exp::num(2), Exp::var("x"))),
            Exp::case(Exp::num(3), Exp::Z, "p", Exp::var("p")),
        ];
        for p in progs {
            let mut f1 = 1_000_000;
            let native = eval_native(&p, &mut f1).unwrap();
            assert_eq!(run_env(&p).as_num(), native.as_num(), "{p}");
        }
    }

    #[test]
    fn env_machine_closures_capture_statically() {
        // let y = 1 in let f = fn x => y in let y = 9 in f z  ==>  1
        // (static scoping: the closure captures the y at definition time).
        let p = Exp::let_(
            "y",
            Exp::num(1),
            Exp::let_(
                "f",
                Exp::lam("x", Exp::var("y")),
                Exp::let_("y", Exp::num(9), Exp::app(Exp::var("f"), Exp::Z)),
            ),
        );
        assert_eq!(run_env(&p).as_num(), Some(1));
        // Substitution evaluators agree, of course.
        let mut fuel = 1000;
        assert_eq!(eval_native(&p, &mut fuel).unwrap().as_num(), Some(1));
    }

    #[test]
    fn env_machine_rejects_exotic_fix() {
        let p = Exp::fix("x", Exp::var("x"));
        let mut fuel = 1000;
        assert!(matches!(
            eval_env(&p, &mut fuel),
            Err(LangError::NotCanonical(_))
        ));
    }

    #[test]
    fn env_machine_fuel() {
        // fix f. fn x => f x applied — diverges.
        let p = Exp::app(
            Exp::fix("f", Exp::lam("x", Exp::app(Exp::var("f"), Exp::var("x")))),
            Exp::Z,
        );
        let mut fuel = 1000;
        assert!(matches!(eval_env(&p, &mut fuel), Err(LangError::OutOfFuel)));
    }

    #[test]
    fn values_read_back() {
        assert_eq!(run_env(&Exp::num(4)).as_num(), Some(4));
        assert!(run_env(&Exp::lam("x", Exp::var("x"))).as_num().is_none());
    }
}
