//! The untyped λ-calculus — the paper's introductory example.
//!
//! The HOAS representation uses two constants:
//!
//! ```text
//! type tm.
//! const lam : (tm -> tm) -> tm.
//! const app : tm -> tm -> tm.
//! ```
//!
//! Object-level binding is metalanguage binding, so object-level
//! substitution ([`subst_hoas`]) is a single metalanguage β-step
//! ([`hoas_core::normalize::happly`]) — no renaming code anywhere.
//! [`subst_native`] is the hand-written capture-avoiding version for
//! comparison (experiment E1/E2).

use crate::LangError;
use hoas_core::ctx::Ctx;
use hoas_core::sig::Signature;
use hoas_core::term::MetaEnv;
use hoas_core::{normalize, Sym, Term, Ty};
use hoas_testkit::rng::Rng;
use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;

/// A named untyped λ-term.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LTerm {
    /// Variable occurrence.
    Var(String),
    /// Abstraction `λx. body`.
    Lam(String, Box<LTerm>),
    /// Application.
    App(Box<LTerm>, Box<LTerm>),
}

impl LTerm {
    /// Convenience constructor for a variable.
    pub fn var(x: impl Into<String>) -> LTerm {
        LTerm::Var(x.into())
    }

    /// Convenience constructor for an abstraction.
    pub fn lam(x: impl Into<String>, body: LTerm) -> LTerm {
        LTerm::Lam(x.into(), Box::new(body))
    }

    /// Convenience constructor for an application.
    pub fn app(f: LTerm, a: LTerm) -> LTerm {
        LTerm::App(Box::new(f), Box::new(a))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            LTerm::Var(_) => 1,
            LTerm::Lam(_, b) => 1 + b.size(),
            LTerm::App(f, a) => 1 + f.size() + a.size(),
        }
    }

    /// Free variables.
    pub fn free_vars(&self) -> HashSet<String> {
        match self {
            LTerm::Var(x) => std::iter::once(x.clone()).collect(),
            LTerm::Lam(x, b) => {
                let mut fv = b.free_vars();
                fv.remove(x);
                fv
            }
            LTerm::App(f, a) => {
                let mut fv = f.free_vars();
                fv.extend(a.free_vars());
                fv
            }
        }
    }

    /// α-equivalence (via conversion to the first-order baseline, which
    /// implements the renaming-environment comparison).
    pub fn alpha_eq(&self, other: &LTerm) -> bool {
        to_tree(self).alpha_eq(&to_tree(other))
    }
}

impl fmt::Display for LTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LTerm::Var(x) => f.write_str(x),
            LTerm::Lam(x, b) => write!(f, "\\{x}. {b}"),
            LTerm::App(g, a) => {
                match g.as_ref() {
                    LTerm::Lam(..) => write!(f, "({g}) ")?,
                    _ => write!(f, "{g} ")?,
                }
                match a.as_ref() {
                    LTerm::Var(_) => write!(f, "{a}"),
                    _ => write!(f, "({a})"),
                }
            }
        }
    }
}

/// The HOAS signature for the untyped λ-calculus.
pub fn signature() -> &'static Signature {
    static SIG: OnceLock<Signature> = OnceLock::new();
    SIG.get_or_init(|| {
        Signature::parse(
            "type tm.
             const lam : (tm -> tm) -> tm.
             const app : tm -> tm -> tm.",
        )
        .expect("λ-calculus signature is well-formed")
    })
}

/// The representation type `tm`.
pub fn tm() -> Ty {
    Ty::base("tm")
}

/// Encodes a closed λ-term into the metalanguage.
///
/// # Errors
///
/// [`LangError::UnboundVar`] if the term has free variables.
pub fn encode(t: &LTerm) -> Result<Term, LangError> {
    encode_open(t, &[])
}

/// Encodes a λ-term whose free variables are bound by the given scope
/// (outermost first); the result refers to them with de Bruijn indices.
///
/// # Errors
///
/// [`LangError::UnboundVar`] for variables not in `scope`.
pub fn encode_open(t: &LTerm, scope: &[&str]) -> Result<Term, LangError> {
    fn go(t: &LTerm, env: &mut Vec<String>) -> Result<Term, LangError> {
        match t {
            LTerm::Var(x) => match env.iter().rposition(|b| b == x) {
                Some(pos) => Ok(Term::Var((env.len() - 1 - pos) as u32)),
                None => Err(LangError::UnboundVar(x.clone())),
            },
            LTerm::Lam(x, b) => {
                env.push(x.clone());
                let body = go(b, env)?;
                env.pop();
                Ok(Term::app(Term::cnst("lam"), Term::lam(x.as_str(), body)))
            }
            LTerm::App(f, a) => Ok(Term::apps(Term::cnst("app"), [go(f, env)?, go(a, env)?])),
        }
    }
    let mut env: Vec<String> = scope.iter().map(|s| s.to_string()).collect();
    go(t, &mut env)
}

/// Decodes a canonical metalanguage term of type `tm` back to a λ-term,
/// resurrecting binder hints (freshened against the scope).
///
/// # Errors
///
/// [`LangError::NotCanonical`] on exotic or ill-formed terms.
pub fn decode(t: &Term) -> Result<LTerm, LangError> {
    decode_open(t, &[])
}

/// Decodes an open encoding whose free indices refer to `scope`
/// (outermost first).
///
/// # Errors
///
/// As for [`decode`].
pub fn decode_open(t: &Term, scope: &[&str]) -> Result<LTerm, LangError> {
    fn go(t: &Term, env: &mut Vec<String>) -> Result<LTerm, LangError> {
        match t {
            Term::Var(i) => {
                let n = env.len();
                match n.checked_sub(1 + *i as usize).and_then(|k| env.get(k)) {
                    Some(name) => Ok(LTerm::var(name.clone())),
                    None => Err(LangError::NotCanonical(format!("dangling index {i}"))),
                }
            }
            Term::App(f, a) => match f.as_ref() {
                Term::Const(c) if c.as_str() == "lam" => match a.as_ref() {
                    Term::Lam(hint, body) => {
                        let used: HashSet<String> = env.iter().cloned().collect();
                        let name = hoas_firstorder::named::fresh_name(hint.as_str(), &used);
                        env.push(name.clone());
                        let b = go(body, env)?;
                        env.pop();
                        Ok(LTerm::lam(name, b))
                    }
                    other => Err(LangError::NotCanonical(format!(
                        "lam applied to non-λ argument `{other}` (exotic term)"
                    ))),
                },
                Term::App(g, x) => match g.as_ref() {
                    Term::Const(c) if c.as_str() == "app" => {
                        Ok(LTerm::app(go(x, env)?, go(a, env)?))
                    }
                    other => Err(LangError::NotCanonical(format!(
                        "unexpected head `{other}`"
                    ))),
                },
                other => Err(LangError::NotCanonical(format!(
                    "unexpected head `{other}`"
                ))),
            },
            other => Err(LangError::NotCanonical(format!(
                "not a tm constructor: `{other}`"
            ))),
        }
    }
    let mut env: Vec<String> = scope.iter().map(|s| s.to_string()).collect();
    go(t, &mut env)
}

/// Object-level substitution via the metalanguage: given `λx. body`
/// encoded as `lam F` and an encoded argument, computes the encoding of
/// `body[x := arg]` by a single β-step — the paper's headline.
///
/// # Errors
///
/// [`LangError::NotCanonical`] if `lam_term` is not a `lam` application.
pub fn subst_hoas(lam_term: &Term, arg: &Term) -> Result<Term, LangError> {
    match lam_term {
        Term::App(f, abs) if matches!(f.as_ref(), Term::Const(c) if c.as_str() == "lam") => {
            Ok(normalize::happly(abs.as_ref().clone(), arg.clone()))
        }
        other => Err(LangError::NotCanonical(format!(
            "subst_hoas expects a lam encoding, got `{other}`"
        ))),
    }
}

/// Hand-written capture-avoiding substitution on the named AST — the code
/// HOAS renders unnecessary. `t[x := s]`.
pub fn subst_native(t: &LTerm, x: &str, s: &LTerm) -> LTerm {
    fn all_names(t: &LTerm, acc: &mut HashSet<String>) {
        match t {
            LTerm::Var(y) => {
                acc.insert(y.clone());
            }
            LTerm::Lam(y, b) => {
                acc.insert(y.clone());
                all_names(b, acc);
            }
            LTerm::App(f, a) => {
                all_names(f, acc);
                all_names(a, acc);
            }
        }
    }
    let fvs = s.free_vars();
    fn go(t: &LTerm, x: &str, s: &LTerm, fvs: &HashSet<String>) -> LTerm {
        match t {
            LTerm::Var(y) => {
                if y == x {
                    s.clone()
                } else {
                    t.clone()
                }
            }
            LTerm::Lam(y, b) => {
                if y == x {
                    t.clone()
                } else if fvs.contains(y.as_str()) {
                    // Rename the binder to avoid capture. The fresh name
                    // must also avoid every *binder* name inside the body
                    // — the rename below does not freshen nested binders,
                    // so a colliding choice would itself be captured.
                    let mut avoid = fvs.clone();
                    all_names(b, &mut avoid);
                    avoid.insert(x.to_string());
                    let fresh = hoas_firstorder::named::fresh_name(y, &avoid);
                    let renamed = go(b, y, &LTerm::var(fresh.clone()), &HashSet::new());
                    LTerm::lam(fresh, go(&renamed, x, s, fvs))
                } else {
                    LTerm::lam(y.clone(), go(b, x, s, fvs))
                }
            }
            LTerm::App(f, a) => LTerm::app(go(f, x, s, fvs), go(a, x, s, fvs)),
        }
    }
    go(t, x, s, &fvs)
}

/// Normal-order (leftmost-outermost) reduction to normal form on the
/// named AST, with fuel.
///
/// # Errors
///
/// [`LangError::OutOfFuel`] when more than `fuel` β-steps are needed.
pub fn normalize_native(t: &LTerm, fuel: u64) -> Result<LTerm, LangError> {
    let mut cur = t.clone();
    let mut budget = fuel;
    loop {
        match step_normal_order(&cur) {
            Some(next) => {
                if budget == 0 {
                    return Err(LangError::OutOfFuel);
                }
                budget -= 1;
                cur = next;
            }
            None => return Ok(cur),
        }
    }
}

fn step_normal_order(t: &LTerm) -> Option<LTerm> {
    match t {
        LTerm::App(f, a) => {
            if let LTerm::Lam(x, b) = f.as_ref() {
                return Some(subst_native(b, x, a));
            }
            if let Some(f2) = step_normal_order(f) {
                return Some(LTerm::app(f2, a.as_ref().clone()));
            }
            step_normal_order(a).map(|a2| LTerm::app(f.as_ref().clone(), a2))
        }
        LTerm::Lam(x, b) => step_normal_order(b).map(|b2| LTerm::lam(x.clone(), b2)),
        LTerm::Var(_) => None,
    }
}

/// Normalization through the metalanguage: encode, β-normalize the
/// *object-level* redexes (via a small driver that repeatedly contracts
/// `app (lam F) A` to `F A`), decode.
///
/// # Errors
///
/// [`LangError::OutOfFuel`] on divergence; decode errors are impossible
/// for terms produced from `encode`.
pub fn normalize_hoas(t: &LTerm, fuel: u64) -> Result<LTerm, LangError> {
    let encoded = encode_open(t, &free_var_scope(t))?;
    let nf = object_nf(&encoded, &mut (fuel as i64))?;
    let scope = free_var_scope(t);
    decode_open(&nf, &scope)
}

fn free_var_scope(t: &LTerm) -> Vec<&str> {
    // Deterministic order for open terms in tests.
    let mut fvs: Vec<&str> = Vec::new();
    fn go<'a>(t: &'a LTerm, bound: &mut Vec<&'a str>, acc: &mut Vec<&'a str>) {
        match t {
            LTerm::Var(x) => {
                if !bound.contains(&x.as_str()) && !acc.contains(&x.as_str()) {
                    acc.push(x);
                }
            }
            LTerm::Lam(x, b) => {
                bound.push(x);
                go(b, bound, acc);
                bound.pop();
            }
            LTerm::App(f, a) => {
                go(f, bound, acc);
                go(a, bound, acc);
            }
        }
    }
    go(t, &mut Vec::new(), &mut fvs);
    fvs
}

/// One object-level normal-order β-normalization pass over the encoding:
/// contracts `app (lam F) A ⇒ F A` (a metalanguage β-step) to a fixpoint.
fn object_nf(t: &Term, fuel: &mut i64) -> Result<Term, LangError> {
    if *fuel < 0 {
        return Err(LangError::OutOfFuel);
    }
    // Head: is this `app (lam F) A`?
    if let Term::App(fa, a) = t {
        if let Term::App(ap, f) = fa.as_ref() {
            if matches!(ap.as_ref(), Term::Const(c) if c.as_str() == "app") {
                if let Term::App(la, abs) = f.as_ref() {
                    if matches!(la.as_ref(), Term::Const(c) if c.as_str() == "lam") {
                        *fuel -= 1;
                        if *fuel < 0 {
                            return Err(LangError::OutOfFuel);
                        }
                        let contracted =
                            normalize::happly(abs.as_ref().clone(), a.as_ref().clone());
                        return object_nf(&contracted, fuel);
                    }
                }
                // Not a redex: normalize the function part first (normal
                // order), then the argument.
                let f2 = object_nf(f, fuel)?;
                if &f2 != f.as_ref() {
                    let rebuilt = Term::apps(Term::cnst("app"), [f2, a.as_ref().clone()]);
                    return object_nf(&rebuilt, fuel);
                }
                let a2 = object_nf(a, fuel)?;
                return Ok(Term::apps(Term::cnst("app"), [f2, a2]));
            }
        }
    }
    match t {
        Term::App(f, a) => Ok(Term::app(object_nf(f, fuel)?, object_nf(a, fuel)?)),
        Term::Lam(h, b) => Ok(Term::lam(h.clone(), object_nf(b, fuel)?)),
        _ => Ok(t.clone()),
    }
}

/// Type-checks an encoding: `true` iff `t` is a well-typed term of type
/// `tm` in a scope of `n_free` `tm`-variables.
pub fn check_encoding(t: &Term, n_free: usize) -> bool {
    let mut ctx = Ctx::new();
    for i in 0..n_free {
        ctx.push_mut(Sym::new(format!("v{i}")), tm());
    }
    hoas_core::typeck::check(signature(), &MetaEnv::new(), &ctx, t, &tm()).is_ok()
}

/// Projects onto the generic first-order tree (for the baseline
/// experiments).
pub fn to_tree(t: &LTerm) -> hoas_firstorder::Tree {
    use hoas_firstorder::Tree;
    match t {
        LTerm::Var(x) => Tree::var(x.clone()),
        LTerm::Lam(x, b) => Tree::binder("lam", x.clone(), to_tree(b)),
        LTerm::App(f, a) => Tree::node("app", [to_tree(f), to_tree(a)]),
    }
}

/// Reads back from the generic first-order tree.
///
/// # Errors
///
/// [`LangError::NotCanonical`] if the tree does not use the λ-calculus
/// operators.
pub fn from_tree(t: &hoas_firstorder::Tree) -> Result<LTerm, LangError> {
    use hoas_firstorder::Tree;
    match t {
        Tree::Var(x) => Ok(LTerm::var(x.clone())),
        Tree::Node(op, scopes) => match (op.as_str(), scopes.as_slice()) {
            ("lam", [s]) if s.binders.len() == 1 => {
                Ok(LTerm::lam(s.binders[0].clone(), from_tree(&s.body)?))
            }
            ("app", [f, a]) if f.binders.is_empty() && a.binders.is_empty() => {
                Ok(LTerm::app(from_tree(&f.body)?, from_tree(&a.body)?))
            }
            _ => Err(LangError::NotCanonical(format!(
                "not a λ-calculus tree: {t}"
            ))),
        },
    }
}

/// Generates a random **closed** λ-term with roughly `target_size` nodes.
pub fn gen_closed(rng: &mut impl Rng, target_size: usize) -> LTerm {
    gen_open(rng, target_size, &[])
}

/// Generates a random λ-term with roughly `target_size` nodes whose free
/// variables are drawn from `free`.
pub fn gen_open(rng: &mut impl Rng, target_size: usize, free: &[&str]) -> LTerm {
    fn pick_var(rng: &mut impl Rng, n_bound: u32, free: &[&str]) -> LTerm {
        let total = n_bound as usize + free.len();
        debug_assert!(total > 0);
        let k = rng.gen_range(0..total);
        if k < n_bound as usize {
            LTerm::var(format!("x{k}"))
        } else {
            LTerm::var(free[k - n_bound as usize])
        }
    }
    fn go(rng: &mut impl Rng, budget: usize, n_bound: u32, free: &[&str]) -> LTerm {
        if budget <= 1 && (n_bound > 0 || !free.is_empty()) {
            return pick_var(rng, n_bound, free);
        }
        // Leaves only appear when the budget is (nearly) spent, so the
        // output size tracks the requested size.
        let choice = if n_bound == 0 && free.is_empty() {
            rng.gen_range(0..4)
        } else if budget <= 3 {
            rng.gen_range(0..10)
        } else {
            rng.gen_range(0..8)
        };
        match choice {
            0..=3 => LTerm::lam(
                format!("x{n_bound}"),
                go(rng, budget - 1, n_bound + 1, free),
            ),
            4..=7 => {
                let left = (budget - 1) / 2;
                LTerm::app(
                    go(rng, left.max(1), n_bound, free),
                    go(rng, (budget - 1 - left).max(1), n_bound, free),
                )
            }
            _ => pick_var(rng, n_bound, free),
        }
    }
    go(rng, target_size.max(2), 0, free)
}

/// A Church numeral `λs. λz. s^n z`.
pub fn church(n: u32) -> LTerm {
    let mut body = LTerm::var("z");
    for _ in 0..n {
        body = LTerm::app(LTerm::var("s"), body);
    }
    LTerm::lam("s", LTerm::lam("z", body))
}

/// Church addition `λm. λn. λs. λz. m s (n s z)`.
pub fn church_add() -> LTerm {
    LTerm::lam(
        "m",
        LTerm::lam(
            "n",
            LTerm::lam(
                "s",
                LTerm::lam(
                    "z",
                    LTerm::app(
                        LTerm::app(LTerm::var("m"), LTerm::var("s")),
                        LTerm::app(
                            LTerm::app(LTerm::var("n"), LTerm::var("s")),
                            LTerm::var("z"),
                        ),
                    ),
                ),
            ),
        ),
    )
}

/// Church multiplication `λm. λn. λs. m (n s)`.
pub fn church_mul() -> LTerm {
    LTerm::lam(
        "m",
        LTerm::lam(
            "n",
            LTerm::lam(
                "s",
                LTerm::app(
                    LTerm::var("m"),
                    LTerm::app(LTerm::var("n"), LTerm::var("s")),
                ),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_testkit::rng::SmallRng;

    #[test]
    fn encode_decode_roundtrip_identity() {
        let id = LTerm::lam("x", LTerm::var("x"));
        let e = encode(&id).unwrap();
        assert_eq!(e.to_string(), r"lam (\x. x)");
        assert!(check_encoding(&e, 0));
        assert!(decode(&e).unwrap().alpha_eq(&id));
    }

    #[test]
    fn encode_rejects_free_vars() {
        assert!(matches!(
            encode(&LTerm::var("oops")),
            Err(LangError::UnboundVar(_))
        ));
        // But open encoding accepts them.
        let e = encode_open(&LTerm::var("a"), &["a"]).unwrap();
        assert_eq!(e, Term::Var(0));
    }

    #[test]
    fn decode_rejects_exotic_terms() {
        // lam applied to a non-λ (a variable of function type) is exotic.
        let exotic = Term::app(Term::cnst("lam"), Term::cnst("app")); // ill-typed too
        assert!(decode(&exotic).is_err());
        // A unit literal is not a tm.
        assert!(decode(&Term::Unit).is_err());
    }

    #[test]
    fn subst_is_beta() {
        // (λx. x x)[apply to y] via HOAS equals native substitution.
        let t = LTerm::lam("x", LTerm::app(LTerm::var("x"), LTerm::var("x")));
        let e = encode_open(&t, &["y"]).unwrap();
        let arg = encode_open(&LTerm::var("y"), &["y"]).unwrap();
        let substituted = subst_hoas(&e, &arg).unwrap();
        let decoded = decode_open(&substituted, &["y"]).unwrap();
        let native = subst_native(
            &LTerm::app(LTerm::var("x"), LTerm::var("x")),
            "x",
            &LTerm::var("y"),
        );
        assert!(decoded.alpha_eq(&native));
    }

    #[test]
    fn capture_avoidance_for_free_from_hoas() {
        // (λy. x)[x := y]: HOAS cannot capture by construction.
        // Encode λx. λy. x, apply to y from an outer scope.
        let outer = LTerm::lam("x", LTerm::lam("y", LTerm::var("x")));
        let e = encode_open(&outer, &["y"]).unwrap();
        let arg = Term::Var(0); // the ambient y
        let r = subst_hoas(&e, &arg).unwrap();
        let decoded = decode_open(&r, &["y"]).unwrap();
        // Result must be λy'. y with y free — NOT λy. y.
        match &decoded {
            LTerm::Lam(b, body) => {
                assert_eq!(body.as_ref(), &LTerm::var("y"));
                assert_ne!(b, "y", "binder must have been freshened");
            }
            other => panic!("expected λ, got {other}"),
        }
    }

    #[test]
    fn native_and_hoas_normalization_agree() {
        // Intermediate reducts can get deep within the fuel budget;
        // normalization recurses on term depth.
        hoas_testkit::with_stack(256, || {
            let mut rng = SmallRng::seed_from_u64(42);
            let mut checked = 0;
            for _ in 0..200 {
                let t = gen_closed(&mut rng, 25);
                let native = normalize_native(&t, 500);
                let hoas = normalize_hoas(&t, 500);
                // Fuel accounting differs slightly; only require
                // agreement when both engines finish.
                if let (Ok(a), Ok(b)) = (native, hoas) {
                    assert!(a.alpha_eq(&b), "mismatch for {t}:\n native {a}\n hoas  {b}");
                    checked += 1;
                }
            }
            assert!(checked > 100, "only {checked} comparisons completed");
        });
    }

    #[test]
    fn church_arithmetic_via_hoas() {
        let two_plus_three = LTerm::app(LTerm::app(church_add(), church(2)), church(3));
        let r = normalize_hoas(&two_plus_three, 10_000).unwrap();
        assert!(r.alpha_eq(&church(5)));
        let two_times_three = LTerm::app(LTerm::app(church_mul(), church(2)), church(3));
        let r = normalize_hoas(&two_times_three, 10_000).unwrap();
        // mul needs an η-step to literally equal church(6); compare via
        // application to s and z instead.
        let applied = LTerm::app(LTerm::app(r, LTerm::var("s")), LTerm::var("z"));
        let expect = LTerm::app(LTerm::app(church(6), LTerm::var("s")), LTerm::var("z"));
        assert!(normalize_native(&applied, 10_000)
            .unwrap()
            .alpha_eq(&normalize_native(&expect, 10_000).unwrap()));
    }

    #[test]
    fn omega_runs_out_of_fuel_both_ways() {
        let w = LTerm::lam("x", LTerm::app(LTerm::var("x"), LTerm::var("x")));
        let omega = LTerm::app(w.clone(), w);
        assert!(matches!(
            normalize_native(&omega, 100),
            Err(LangError::OutOfFuel)
        ));
        assert!(matches!(
            normalize_hoas(&omega, 100),
            Err(LangError::OutOfFuel)
        ));
    }

    #[test]
    fn generated_terms_are_closed_and_encodable() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let t = gen_closed(&mut rng, 40);
            assert!(t.free_vars().is_empty(), "not closed: {t}");
            let e = encode(&t).unwrap();
            assert!(check_encoding(&e, 0), "ill-typed encoding for {t}");
            assert!(decode(&e).unwrap().alpha_eq(&t));
        }
    }

    #[test]
    fn tree_projection_roundtrip() {
        let t = LTerm::lam("x", LTerm::app(LTerm::var("x"), LTerm::var("x")));
        let tree = to_tree(&t);
        let back = from_tree(&tree).unwrap();
        assert_eq!(back, t);
        assert!(from_tree(&hoas_firstorder::Tree::leaf("mystery")).is_err());
    }

    #[test]
    fn display_is_parseable_shape() {
        let t = LTerm::app(
            LTerm::lam("x", LTerm::var("x")),
            LTerm::lam("y", LTerm::var("y")),
        );
        assert_eq!(t.to_string(), r"(\x. x) (\y. y)");
    }
}
