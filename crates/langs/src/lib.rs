//! # hoas-langs — object languages and their HOAS encodings
//!
//! The paper demonstrates higher-order abstract syntax on concrete object
//! languages; this crate reproduces those figures as executable artifacts.
//! Each module provides, for one object language:
//!
//! * a conventional named AST (what a compiler writer would start from),
//! * a [`hoas_core::sig::Signature`] declaring its HOAS representation
//!   types,
//! * `encode` / `decode` witnessing **adequacy**: a compositional
//!   bijection between ASTs (up to α) and canonical terms of the
//!   representation type (exotic terms are rejected by `decode`),
//! * a reference interpreter/semantics used to check that transformations
//!   preserve meaning,
//! * random generators for workloads (benchmarks E1–E8).
//!
//! Languages:
//!
//! * [`lambda`] — the untyped λ-calculus (the paper's first example:
//!   object-level substitution is metalanguage β-reduction);
//! * [`fol`] — first-order logic with quantifiers (the quantifier-rule
//!   figures; prenex-normal-form rules live in `hoas-rewrite`);
//! * [`miniml`] — a Mini-ML fragment (natural numbers, case, functions,
//!   let, fix) with native, HOAS-based, and environment-machine
//!   evaluators; [`miniml_types`] adds the object language's own
//!   Hindley–Milner discipline with let-polymorphism;
//! * [`imp`] — a small imperative language with declarations (`local`),
//!   the paper's program-transformation setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fol;
pub mod imp;
pub mod lambda;
pub mod miniml;
pub mod miniml_types;

/// Errors shared by the encoders/decoders in this crate.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum LangError {
    /// A free variable that is not bound in the encoding environment.
    UnboundVar(String),
    /// The term is not a canonical inhabitant of the representation type
    /// (an "exotic" term, or simply the wrong shape).
    NotCanonical(String),
    /// Evaluation ran out of fuel (e.g. a divergent loop).
    OutOfFuel,
    /// A kernel error surfaced during encoding/decoding.
    Core(hoas_core::Error),
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::UnboundVar(x) => write!(f, "unbound object-language variable `{x}`"),
            LangError::NotCanonical(msg) => write!(f, "not a canonical encoding: {msg}"),
            LangError::OutOfFuel => write!(f, "evaluation fuel exhausted"),
            LangError::Core(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LangError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hoas_core::Error> for LangError {
    fn from(e: hoas_core::Error) -> Self {
        LangError::Core(e)
    }
}
