//! A minimal wall-clock micro-benchmark harness with a Criterion-shaped
//! API, so the workspace's `harness = false` bench targets port by
//! swapping one `use` line.
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! `sample_size` samples; a sample runs the closure in a batch sized so
//! one sample takes ≳ [`MIN_SAMPLE_TIME`] (adaptive batching keeps
//! nanosecond-scale benchmarks measurable). Reported numbers are per-call
//! min / median / mean.
//!
//! Output: one human-readable line per benchmark on stdout. When
//! `HOAS_BENCH_JSON=<path>` is set, a JSON report of every result is also
//! written to `<path>` at [`Criterion::final_summary`] time (called by the
//! `criterion_main!` replacement).
//!
//! Running under `cargo test --benches` passes `--test`; the harness
//! detects it and switches to a smoke run (one batch of one iteration) so
//! test sweeps stay fast.

use std::time::{Duration, Instant};

/// Target minimum duration of one measurement sample.
pub const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);

/// Minimum number of timed samples per benchmark, settable via
/// `HOAS_BENCH_SAMPLES`. Individual groups pick small sample counts for
/// quick interactive runs; a recorded baseline (`bench-baseline`) raises
/// the floor so medians are robust against scheduler jitter.
fn sample_floor() -> usize {
    std::env::var("HOAS_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Re-export so benches can `black_box` without naming `std::hint`.
pub use std::hint::black_box;

/// A benchmark identifier `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter (rendered with
    /// `Display`).
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Throughput annotation (recorded in the JSON report).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full id `group/function/parameter`.
    pub id: String,
    /// Per-call minimum.
    pub min: Duration,
    /// Per-call median.
    pub median: Duration,
    /// Per-call mean.
    pub mean: Duration,
    /// Total calls measured (samples × batch).
    pub iterations: u64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

/// The harness root: collects results across groups.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    smoke: bool,
}

impl Criterion {
    /// A fresh harness. Smoke mode (single iteration, no timing loops) is
    /// enabled when the process was launched with `--test`, as
    /// `cargo test --benches` does.
    pub fn new() -> Criterion {
        Criterion {
            results: Vec::new(),
            smoke: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Prints the closing summary and writes the JSON report if
    /// `HOAS_BENCH_JSON` is set. Called by the `criterion_main!`
    /// replacement after all groups ran.
    pub fn final_summary(&self) {
        println!("# {} benchmarks measured", self.results.len());
        if let Ok(path) = std::env::var("HOAS_BENCH_JSON") {
            if !path.is_empty() {
                match std::fs::write(&path, self.to_json()) {
                    Ok(()) => println!("# JSON report written to {path}"),
                    Err(e) => eprintln!("# failed to write {path}: {e}"),
                }
            }
        }
    }

    /// The results serialized as a JSON array (hand-rolled — no external
    /// dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let thr = match r.throughput {
                Some(Throughput::Elements(n)) => format!(r#", "elements": {n}"#),
                Some(Throughput::Bytes(n)) => format!(r#", "bytes": {n}"#),
                None => String::new(),
            };
            out.push_str(&format!(
                r#"  {{"id": "{}", "min_ns": {}, "median_ns": {}, "mean_ns": {}, "iterations": {}{}}}"#,
                escape_json(&r.id),
                r.min.as_nanos(),
                r.median.as_nanos(),
                r.mean.as_nanos(),
                r.iterations,
                thr,
            ));
            out.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// All results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure that receives the given input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        // Start every benchmark from a trimmed term store so one
        // workload's dead-class cache doesn't skew the heap state (and
        // allocator behavior) another workload is measured under.
        hoas_core::store::trim();
        let mut b = Bencher::new(self.sample_size, self.criterion.smoke);
        f(&mut b, input);
        self.record(full, b);
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        hoas_core::store::trim();
        let mut b = Bencher::new(self.sample_size, self.criterion.smoke);
        f(&mut b);
        self.record(full, b);
        self
    }

    fn record(&mut self, id: String, b: Bencher) {
        if let Some(mut r) = b.into_result(id) {
            r.throughput = self.throughput;
            println!(
                "{:<56} min {:>12} median {:>12} mean {:>12} ({} iters)",
                r.id,
                fmt_ns(r.min),
                fmt_ns(r.median),
                fmt_ns(r.mean),
                r.iterations
            );
            self.criterion.results.push(r);
        }
    }

    /// Ends the group (kept for API compatibility; results are recorded
    /// eagerly).
    pub fn finish(&mut self) {}
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    sample_size: usize,
    smoke: bool,
    samples: Option<Vec<Duration>>, // per-call durations
    iterations: u64,
}

impl Bencher {
    fn new(sample_size: usize, smoke: bool) -> Bencher {
        Bencher {
            sample_size: sample_size.max(sample_floor()),
            smoke,
            samples: None,
            iterations: 0,
        }
    }

    /// Times the closure. Warmup, then `sample_size` samples of an
    /// adaptively sized batch; per-call durations are recorded.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.smoke {
            black_box(f());
            self.samples = Some(vec![Duration::ZERO]);
            self.iterations = 1;
            return;
        }
        // Warmup + batch size estimation: grow the batch until one batch
        // takes at least MIN_SAMPLE_TIME.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= MIN_SAMPLE_TIME || batch >= 1 << 20 {
                break;
            }
            // Aim past the threshold with headroom.
            let scale = (MIN_SAMPLE_TIME.as_nanos() as u64)
                .saturating_div(elapsed.as_nanos().max(1) as u64)
                .clamp(2, 1024);
            batch = batch.saturating_mul(scale).min(1 << 20);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed() / batch as u32);
        }
        self.iterations = batch * self.sample_size as u64;
        self.samples = Some(samples);
    }

    fn into_result(self, id: String) -> Option<BenchResult> {
        let mut samples = self.samples?;
        samples.sort_unstable();
        let min = *samples.first()?;
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        Some(BenchResult {
            id,
            min,
            median,
            mean,
            iterations: self.iterations,
            throughput: None,
        })
    }
}

/// Declares a group of benchmark functions, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main`, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::new();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        g.finish();
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.id, "unit/spin");
        assert!(r.min <= r.median && r.median <= r.mean * 2);
        assert!(r.iterations >= 3);
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let mut c = Criterion::new();
        c.results.push(BenchResult {
            id: "g/f\"q\"/1".into(),
            min: Duration::from_nanos(10),
            median: Duration::from_nanos(20),
            mean: Duration::from_nanos(21),
            iterations: 100,
            throughput: Some(Throughput::Elements(8)),
        });
        let j = c.to_json();
        assert!(j.starts_with("[\n"));
        assert!(j.contains(r#""median_ns": 20"#));
        assert!(j.contains(r#"\"q\""#));
        assert!(j.contains(r#""elements": 8"#));
        assert!(j.trim_end().ends_with(']'));
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("inputs");
        g.sample_size(2);
        let data = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        g.finish();
        assert_eq!(c.results()[0].id, "inputs/sum/3");
    }
}
