//! Size-bounded random generators for metalanguage objects: simple types,
//! signatures, well-typed canonical terms (closed and open), λProlog-style
//! logic programs, and terminating rewrite-rule systems.
//!
//! All generators are deterministic functions of the supplied [`Rng`] and
//! are built on `hoas-core`'s term and signature builders, so everything
//! they produce is well-formed by construction. Well-typed term generation
//! is type-directed: intro forms follow the target type (λ at arrow type,
//! pair at product type — the terms are η-long), and at base type a head
//! (variable or constant) targeting that base is chosen and its arguments
//! are generated recursively.

use crate::rng::Rng;
use hoas_core::sig::Signature;
use hoas_core::{Term, Ty, TyScheme};

// ---------------------------------------------------------------- types --

/// Generates a simple type of at most the given constructor depth, over
/// the base types `bases` plus `int` and `unit`, with type variables
/// `Var(0) .. Var(n_vars - 1)` mixed in when `n_vars > 0`.
pub fn ty_with(rng: &mut impl Rng, depth: u32, bases: &[&str], n_vars: u32) -> Ty {
    go(rng, depth, bases, n_vars)
}

fn go(rng: &mut impl Rng, depth: u32, bases: &[&str], n_vars: u32) -> Ty {
    let leaf_only = depth == 0;
    if leaf_only || rng.gen_bool(0.35) {
        let n_leaf_kinds = if n_vars > 0 { 4 } else { 3 };
        return match rng.gen_range(0..n_leaf_kinds) {
            0 => Ty::Int,
            1 => Ty::Unit,
            2 if !bases.is_empty() => Ty::base(*rng.choose(bases)),
            2 => Ty::Int,
            _ => Ty::Var(rng.gen_range(0..n_vars)),
        };
    }
    let a = go(rng, depth - 1, bases, n_vars);
    let b = go(rng, depth - 1, bases, n_vars);
    if rng.gen_bool(0.5) {
        Ty::arrow(a, b)
    } else {
        Ty::prod(a, b)
    }
}

/// [`ty_with`] over the standard test bases `tm` and `o`, with three type
/// variables — the shape the kernel round-trip suite exercises.
pub fn ty(rng: &mut impl Rng, depth: u32) -> Ty {
    ty_with(rng, depth, &["tm", "o"], 3)
}

// ----------------------------------------------------------- signatures --

/// Generates a well-formed signature with `n_types` base types
/// (`b0 … bn-1`) and `n_consts` constants (`k0 … km-1`).
///
/// Each constant targets a random base type; argument positions are base
/// types, `int`, `unit`, or second-order binding positions `bi -> bj`, so
/// generated signatures exercise the HOAS representation of binders.
pub fn signature(rng: &mut impl Rng, n_types: usize, n_consts: usize) -> Signature {
    assert!(n_types > 0, "signature: need at least one base type");
    let mut sig = Signature::new();
    let bases: Vec<String> = (0..n_types).map(|i| format!("b{i}")).collect();
    for b in &bases {
        sig.declare_type(b.clone()).expect("fresh base type");
    }
    let base_ty = |i: usize| Ty::base(bases[i].clone());
    for k in 0..n_consts {
        let target = rng.gen_range(0..n_types);
        let arity = rng.gen_range(0..4usize);
        let args: Vec<Ty> = (0..arity)
            .map(|_| match rng.gen_range(0..6u32) {
                0 => Ty::Int,
                1 => Ty::Unit,
                2 => Ty::arrow(
                    base_ty(rng.gen_range(0..n_types)),
                    base_ty(rng.gen_range(0..n_types)),
                ),
                _ => base_ty(rng.gen_range(0..n_types)),
            })
            .collect();
        sig.declare_const(
            format!("k{k}"),
            TyScheme::mono(Ty::arrows(args, base_ty(target))),
        )
        .expect("fresh constant");
    }
    sig
}

// ---------------------------------------------------- well-typed terms --

/// Generates a well-typed, η-long canonical term of type `ty` in context
/// `ctx` (innermost binder last, so de Bruijn index `i` refers to
/// `ctx[ctx.len() - 1 - i]`).
///
/// Returns `None` when the signature offers no way to inhabit the type
/// within the depth budget (e.g. an empty base type).
pub fn term_of(
    sig: &Signature,
    rng: &mut impl Rng,
    ctx: &mut Vec<Ty>,
    ty: &Ty,
    depth: u32,
) -> Option<Term> {
    match ty {
        Ty::Arrow(a, b) => {
            ctx.push((**a).clone());
            let body = term_of(sig, rng, ctx, b, depth);
            ctx.pop();
            Some(Term::lam(format!("x{}", ctx.len()), body?))
        }
        Ty::Prod(a, b) => {
            let l = term_of(sig, rng, ctx, a, depth)?;
            let r = term_of(sig, rng, ctx, b, depth)?;
            Some(Term::pair(l, r))
        }
        Ty::Unit => Some(Term::Unit),
        Ty::Int => Some(Term::Int(rng.gen_range(-8i64..9))),
        Ty::Var(_) => None,
        Ty::Base(b) => {
            // Heads that target this base: variables from the context and
            // monomorphic constants. Each candidate is (head, arg types).
            let mut heads: Vec<(Term, Vec<Ty>)> = Vec::new();
            for (pos, vty) in ctx.iter().enumerate() {
                let idx = (ctx.len() - 1 - pos) as u32;
                let (args, cod) = vty.uncurry();
                if matches!(cod, Ty::Base(c) if c == b) {
                    heads.push((Term::Var(idx), args.into_iter().cloned().collect()));
                }
            }
            for (name, scheme) in sig.consts() {
                if let Some(mono) = scheme.as_mono() {
                    let (args, cod) = mono.uncurry();
                    if matches!(cod, Ty::Base(c) if c == b) {
                        heads.push((
                            Term::cnst(name.clone()),
                            args.into_iter().cloned().collect(),
                        ));
                    }
                }
            }
            if heads.is_empty() {
                return None;
            }
            // Out of budget: prefer nullary heads to terminate.
            let nullary: Vec<usize> = heads
                .iter()
                .enumerate()
                .filter(|(_, (_, args))| args.is_empty())
                .map(|(i, _)| i)
                .collect();
            let (head, arg_tys) = if depth == 0 {
                if nullary.is_empty() {
                    return None;
                }
                heads[*rng.choose(&nullary)].clone()
            } else {
                heads[rng.gen_range(0..heads.len())].clone()
            };
            let mut args = Vec::with_capacity(arg_tys.len());
            for aty in &arg_tys {
                args.push(term_of(sig, rng, ctx, aty, depth.saturating_sub(1))?);
            }
            Some(Term::apps(head, args))
        }
    }
}

/// Generates a **closed** well-typed canonical term of type `ty`.
pub fn closed_term(sig: &Signature, rng: &mut impl Rng, ty: &Ty, depth: u32) -> Option<Term> {
    term_of(sig, rng, &mut Vec::new(), ty, depth)
}

/// Generates an **open** well-typed canonical term in the given context.
pub fn open_term(
    sig: &Signature,
    rng: &mut impl Rng,
    ctx: &[Ty],
    ty: &Ty,
    depth: u32,
) -> Option<Term> {
    term_of(sig, rng, &mut ctx.to_vec(), ty, depth)
}

// ------------------------------------------------------ logic programs --

/// A generated λProlog-style logic program: graph reachability over random
/// edges, with a built-in oracle so solver answers can be checked exactly.
#[derive(Clone, Debug)]
pub struct LpSpec {
    /// Number of node constants `n0 … n{k-1}`.
    pub n_nodes: usize,
    /// Directed edges as `(from, to)` node indices, deduplicated.
    pub edges: Vec<(usize, usize)>,
}

/// Generates a random reachability program with `n_nodes` nodes and about
/// `n_edges` edges.
pub fn lp_reachability(rng: &mut impl Rng, n_nodes: usize, n_edges: usize) -> LpSpec {
    assert!(n_nodes > 0);
    let mut edges: Vec<(usize, usize)> = (0..n_edges)
        .map(|_| (rng.gen_range(0..n_nodes), rng.gen_range(0..n_nodes)))
        .collect();
    edges.sort_unstable();
    edges.dedup();
    LpSpec { n_nodes, edges }
}

/// A logic-program clause in concrete syntax: `(typed variables, head,
/// body goals)`, as consumed by the `hoas-lp` clause parser.
pub type ClauseSrc = (Vec<(String, String)>, String, Vec<String>);

impl LpSpec {
    /// The program's signature in concrete syntax: node constants of type
    /// `i` plus `edge`/`path` predicates.
    pub fn sig_src(&self) -> String {
        let mut s = String::from("type i. type o.\n");
        for n in 0..self.n_nodes {
            s.push_str(&format!("const n{n} : i.\n"));
        }
        s.push_str("const edge : i -> i -> o.\nconst path : i -> i -> o.\n");
        s
    }

    /// The clauses as `(vars, head, body)` triples in concrete syntax:
    /// one `edge` fact per edge, plus the two transitive-closure rules
    /// for `path`.
    pub fn clause_srcs(&self) -> Vec<ClauseSrc> {
        let mut out: Vec<ClauseSrc> = self
            .edges
            .iter()
            .map(|(a, b)| (Vec::new(), format!("edge n{a} n{b}"), Vec::new()))
            .collect();
        let i = |v: &str| (v.to_string(), "i".to_string());
        out.push((
            vec![i("X"), i("Y")],
            "path ?X ?Y".into(),
            vec!["edge ?X ?Y".into()],
        ));
        out.push((
            vec![i("X"), i("Y"), i("Z")],
            "path ?X ?Z".into(),
            vec!["edge ?X ?Y".into(), "path ?Y ?Z".into()],
        ));
        out
    }

    /// The oracle: nodes reachable from `start` by one or more edges.
    pub fn reachable_from(&self, start: usize) -> std::collections::BTreeSet<usize> {
        let mut seen = std::collections::BTreeSet::new();
        let mut work = vec![start];
        while let Some(n) = work.pop() {
            for &(a, b) in &self.edges {
                if a == n && seen.insert(b) {
                    work.push(b);
                }
            }
        }
        seen
    }
}

// -------------------------------------------------------- rewrite rules --

/// A generated rewrite rule in concrete syntax, ready for
/// `hoas_rewrite::Rule::parse`: metavariable declarations, a left-hand
/// pattern, and a strictly smaller right-hand side.
#[derive(Clone, Debug)]
pub struct RuleSpec {
    /// Rule name (unique within the generated system).
    pub name: String,
    /// Metavariable declarations as `(name, type-src)` pairs.
    pub vars: Vec<(String, String)>,
    /// Left-hand side source.
    pub lhs: String,
    /// Right-hand side source.
    pub rhs: String,
    /// The type at which the rule rewrites, in concrete syntax.
    pub ty: String,
}

/// Generates a terminating, orthogonal rewrite system over `sig`: at most
/// one left-linear projection rule per constant (`k X₁ … Xₙ → Xᵢ` where
/// `Xᵢ` has the constant's target type), so the system is confluent and
/// every rewrite strictly shrinks the term.
pub fn rewrite_rules(sig: &Signature, rng: &mut impl Rng) -> Vec<RuleSpec> {
    // The pattern unifier (and so the rewrite matcher) supports
    // metavariables only at arrows over base types and `int` — no
    // products, unit, or type variables. Pattern variables get the
    // constant's argument types, so skip constants outside that fragment.
    fn meta_ok(ty: &Ty) -> bool {
        match ty {
            Ty::Base(_) | Ty::Int => true,
            Ty::Arrow(a, b) => meta_ok(a) && meta_ok(b),
            Ty::Prod(..) | Ty::Unit | Ty::Var(_) => false,
        }
    }
    let mut rules = Vec::new();
    for (name, scheme) in sig.consts() {
        let Some(mono) = scheme.as_mono() else {
            continue;
        };
        let (args, cod) = mono.uncurry();
        if !args.iter().all(|a| meta_ok(a)) {
            continue;
        }
        // Candidate projections: argument positions whose type is exactly
        // the constant's target type.
        let candidates: Vec<usize> = args
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == cod)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() || !rng.gen_bool(0.6) {
            continue;
        }
        let proj = *rng.choose(&candidates);
        let vars: Vec<(String, String)> = args
            .iter()
            .enumerate()
            .map(|(i, a)| (format!("X{i}"), a.to_string()))
            .collect();
        let lhs = std::iter::once(name.to_string())
            .chain((0..args.len()).map(|i| format!("?X{i}")))
            .collect::<Vec<_>>()
            .join(" ");
        rules.push(RuleSpec {
            name: format!("proj-{name}-{proj}"),
            vars,
            lhs,
            rhs: format!("?X{proj}"),
            ty: cod.to_string(),
        });
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;
    use hoas_core::prelude::*;

    #[test]
    fn generated_types_are_well_formed_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(1);
        for depth in 0..5u32 {
            for _ in 0..50 {
                let t = ty(&mut rng, depth);
                assert!(t.size() <= 2usize.pow(depth + 1));
            }
        }
    }

    #[test]
    fn generated_signatures_parse_back() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20 {
            let sig = signature(&mut rng, 3, 8);
            let printed = sig.to_string();
            let reparsed = Signature::parse(&printed).unwrap();
            assert_eq!(reparsed.to_string(), printed);
        }
    }

    #[test]
    fn generated_terms_typecheck_and_are_canonical() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut produced = 0;
        for i in 0..60 {
            let sig = signature(&mut rng, 2 + i % 3, 6 + i % 5);
            let target = Ty::base("b0");
            if let Some(t) = closed_term(&sig, &mut rng, &target, 4) {
                produced += 1;
                typeck::check_closed(&sig, &t, &target).unwrap();
                assert!(normalize::is_canonical(
                    &sig,
                    &MetaEnv::new(),
                    &Ctx::new(),
                    &t,
                    &target
                ));
            }
        }
        assert!(
            produced > 20,
            "generator inhabits most signatures: {produced}"
        );
    }

    #[test]
    fn open_terms_respect_their_context() {
        let mut rng = SmallRng::seed_from_u64(4);
        let sig = signature(&mut rng, 2, 8);
        let ctx_tys = [Ty::base("b0"), Ty::arrow(Ty::base("b0"), Ty::base("b1"))];
        for _ in 0..40 {
            if let Some(t) = open_term(&sig, &mut rng, &ctx_tys, &Ty::base("b1"), 3) {
                // Closing over the context must produce a well-typed term.
                let closed = Term::lam("c0", Term::lam("c1", t));
                let closed_ty = Ty::arrows(ctx_tys.to_vec(), Ty::base("b1"));
                typeck::check_closed(&sig, &closed, &closed_ty).unwrap();
            }
        }
    }

    #[test]
    fn lp_spec_oracle_matches_hand_example() {
        let spec = LpSpec {
            n_nodes: 4,
            edges: vec![(0, 1), (1, 2), (3, 0)],
        };
        let r: Vec<usize> = spec.reachable_from(0).into_iter().collect();
        assert_eq!(r, vec![1, 2]);
        let r3: Vec<usize> = spec.reachable_from(3).into_iter().collect();
        assert_eq!(r3, vec![0, 1, 2]);
        assert!(spec.sig_src().contains("const n3 : i."));
        assert_eq!(spec.clause_srcs().len(), 3 + 2);
    }

    #[test]
    fn rewrite_rules_are_projections_with_declared_vars() {
        let mut rng = SmallRng::seed_from_u64(5);
        let sig = signature(&mut rng, 2, 12);
        let rules = rewrite_rules(&sig, &mut rng);
        for r in &rules {
            assert!(r.rhs.starts_with("?X"), "projection rhs: {}", r.rhs);
            assert!(
                r.vars.iter().any(|(v, _)| format!("?{v}") == r.rhs),
                "rhs var is declared"
            );
        }
    }
}
