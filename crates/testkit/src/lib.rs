//! # hoas-testkit — hermetic test infrastructure for the HOAS workspace
//!
//! The workspace's tier-1 verify (`cargo build --release && cargo test -q`)
//! must run with **zero network access**: no crates.io, no registry. This
//! crate replaces the external `rand`, `proptest`, and `criterion`
//! dev-dependencies with small, deterministic, vendored equivalents —
//! exactly the slices of those APIs the repo uses, and nothing else:
//!
//! * [`rng`] — a [`rng::SplitMix64`] seeder and [`rng::SmallRng`]
//!   (xoshiro256**) main generator behind a `rand`-style [`rng::Rng`]
//!   trait (`gen_range`, `gen_bool`, `choose`);
//! * [`prop`] — a property-test runner with per-case seeds, failure-seed
//!   reporting, greedy shrinking, and the [`props!`] declaration macro
//!   plus [`prop_assert!`]-style assertion macros;
//! * [`gen`] — size-bounded generators for simple types, signatures,
//!   well-typed canonical terms, λProlog reachability programs (with an
//!   oracle), and terminating rewrite systems — all built on `hoas-core`'s
//!   builders;
//! * [`bench`] — a wall-clock micro-benchmark timer with a
//!   Criterion-shaped API ([`criterion_group!`]/[`criterion_main!`]) and a
//!   JSON report.
//!
//! Determinism contract: every suite runs under the fixed default seed
//! [`prop::DEFAULT_SEED`]; the same seed always produces the same case
//! sequence (asserted by tests in [`rng`] and [`prop`]). A failing
//! property prints a case seed that reproduces exactly that case via
//! `HOAS_PROP_CASE=<seed>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod gen;
pub mod prop;
pub mod rng;

/// Runs `f` on a freshly spawned thread with a `stack_mib`-MiB stack and
/// returns its result, re-raising any panic on the calling thread.
///
/// Random λ-terms can produce intermediate reducts of unbounded depth
/// within a step-count fuel budget; tests that normalize or substitute
/// into such terms recurse on term depth and can exceed the default
/// test-thread stack. Wrapping the test body keeps plain `cargo test -q`
/// reliable without `RUST_MIN_STACK` in the environment.
pub fn with_stack<T: Send>(stack_mib: usize, f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(stack_mib * 1024 * 1024)
            .spawn_scoped(s, f)
            .expect("failed to spawn wide-stack test thread")
            .join()
            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
    })
}

/// The common imports for a property-test file.
pub mod prelude {
    pub use crate::prop::{
        ascii_string, seeds, stress_threads, token_soup, Config, Just, Strategy,
    };
    pub use crate::rng::{per_thread_seed, Rng, SmallRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, props};
}
