//! Deterministic, seedable pseudo-random number generation.
//!
//! The workspace must build and test with **zero network access**, so this
//! module vendors the small slice of a `rand`-style API the repo actually
//! uses: a [`SplitMix64`] seeder, a [`Xoshiro256StarStar`] main generator
//! (exported as [`SmallRng`] so call sites read like the `rand` idiom), and
//! an [`Rng`] trait providing `gen_range`/`gen_bool`/`choose`.
//!
//! Both generators are the public-domain reference algorithms of Blackman &
//! Vigna. They are *not* cryptographic — they are fast, tiny, and exactly
//! reproducible across platforms, which is what test infrastructure needs.

use std::ops::Range;

/// Steele, Lea & Flood's SplitMix64: a one-word generator used to seed the
/// main PRNG and to derive independent per-case seeds in the property
/// harness.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The `thread_index`-th per-thread seed derived from a master seed: the
/// `(thread_index + 1)`-th output of a [`SplitMix64`] stream over
/// `master_seed`.
///
/// Concurrent test suites give worker thread *i* the seed
/// `per_thread_seed(cfg.seed, i)`, so every thread draws from its own
/// deterministic stream — no shared generator, no lock, no
/// scheduling-dependent interleaving of draws. A multi-thread failure is
/// replayed exactly by re-running with the same `HOAS_PROP_SEED` (and the
/// same `HOAS_STRESS_THREADS` count): thread *i* regenerates the very
/// same term family regardless of how the OS schedules the threads.
pub fn per_thread_seed(master_seed: u64, thread_index: usize) -> u64 {
    let mut mix = SplitMix64::new(master_seed);
    let mut seed = mix.next_u64();
    for _ in 0..thread_index {
        seed = mix.next_u64();
    }
    seed
}

/// xoshiro256**: the workhorse generator. 256 bits of state, period
/// 2²⁵⁶ − 1, equidistributed in four dimensions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The repo-wide alias, named after `rand::rngs::SmallRng` so ported call
/// sites keep their shape (`SmallRng::seed_from_u64(seed)`).
pub type SmallRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seeds the full 256-bit state from a single word via [`SplitMix64`],
    /// the seeding procedure recommended by the algorithm's authors.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256StarStar {
        let mut mix = SplitMix64::new(seed);
        let mut s = [
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
        ];
        if s == [0; 4] {
            // The all-zero state is the one fixed point; nudge off it.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The `rand`-style sampling interface used throughout the workspace.
///
/// Only the methods the repo actually calls are provided; everything is a
/// default method over [`Rng::next_u64`], so a generator implements one
/// function.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit output (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample from a half-open range. Panics if the range is
    /// empty, matching `rand`'s behavior.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(range.start, range.end, self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// Panics on an empty slice.
    fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T
    where
        Self: Sized,
    {
        assert!(!xs.is_empty(), "choose: empty slice");
        &xs[self.gen_range(0..xs.len())]
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[start, end)`. Panics if `start >= end`.
    fn sample_uniform<R: Rng>(start: Self, end: Self, rng: &mut R) -> Self;
}

/// A bias-free-enough bounded draw: multiply-shift maps a 64-bit draw onto
/// `[0, span)`. The bias is at most `span / 2⁶⁴` — irrelevant for test-case
/// generation and much faster than rejection sampling.
fn bounded_u64<R: Rng>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "gen_range: empty range {start}..{end}");
                let span = (end - start) as u64;
                start + bounded_u64(span, rng) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "gen_range: empty range {start}..{end}");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                start.wrapping_add(bounded_u64(span, rng) as $t)
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c (Vigna). Pins the implementation forever.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = rng.gen_range(0usize..10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-9i32..10);
            assert!((-9..10).contains(&v));
        }
        for _ in 0..100 {
            let v = rng.gen_range(5u64..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 10_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "observed {frac}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(3u32..3);
    }

    #[test]
    fn per_thread_seeds_are_the_splitmix_stream() {
        // Thread i's seed is the (i+1)-th SplitMix64 output of the master
        // seed — a pure function of (master, i), independent of call
        // order or scheduling.
        let mut mix = SplitMix64::new(0xD00D);
        for i in 0..8 {
            let expected = mix.next_u64();
            assert_eq!(per_thread_seed(0xD00D, i), expected);
        }
        // Distinct threads get distinct streams.
        let seeds: Vec<u64> = (0..16).map(|i| per_thread_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let v = takes_impl(&mut rng);
        assert!(v < 100);
    }
}
