//! A lightweight property-test runner with deterministic seeds, failure
//! reporting, and greedy shrinking.
//!
//! Each property runs `cases` test cases. Case `i` gets an independent
//! *case seed* derived from the run seed by [`SplitMix64`]; the case's
//! inputs are generated from a [`SmallRng`] seeded with that case seed.
//! When a case fails, the runner greedily shrinks the inputs (trying each
//! strategy's candidates, preferring later tuple components — sizes and
//! depths — over earlier ones) and reports:
//!
//! * the **case seed**, so `HOAS_PROP_CASE=<seed>` re-runs exactly the
//!   failing case,
//! * the original and shrunk counterexamples (`Debug`-printed).
//!
//! Environment knobs:
//!
//! * `HOAS_PROP_SEED` — overrides the run seed (decimal or `0x…`),
//! * `HOAS_PROP_CASES` — overrides the number of cases,
//! * `HOAS_PROP_CASE` — replays one specific failing case,
//! * `HOAS_STRESS_THREADS` — worker-thread count for the concurrent
//!   stress suites (read via [`stress_threads`]; default 4).

use crate::rng::{SmallRng, SplitMix64};
use std::panic::{self, AssertUnwindSafe};

/// The fixed default run seed. Every suite in the workspace runs under this
/// seed unless overridden, so CI is exactly reproducible.
pub const DEFAULT_SEED: u64 = 0x484F_4153_1988_0001;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to run.
    pub cases: u32,
    /// The run seed from which per-case seeds are derived.
    pub seed: u64,
    /// Upper bound on shrink attempts (candidate evaluations).
    pub max_shrink_steps: u32,
    /// Replay exactly one case from its case seed instead of a full run.
    pub repro_case: Option<u64>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 64,
            seed: DEFAULT_SEED,
            max_shrink_steps: 4096,
            repro_case: None,
        }
    }
}

impl Config {
    /// A config with the given case count and defaults elsewhere.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// The config the [`crate::props!`] macro uses: the given case count,
    /// then environment overrides.
    pub fn from_env(default_cases: u32) -> Config {
        let mut cfg = Config::with_cases(default_cases);
        if let Some(v) = env_u64("HOAS_PROP_SEED") {
            cfg.seed = v;
        }
        if let Some(v) = env_u64("HOAS_PROP_CASES") {
            cfg.cases = v as u32;
        }
        cfg.repro_case = env_u64("HOAS_PROP_CASE");
        cfg
    }
}

/// Worker-thread count for concurrent stress suites: `HOAS_STRESS_THREADS`
/// clamped to `1..=64`, defaulting to 4. CI's thread-matrix job sets the
/// knob to 1, 4, and 8; combined with [`crate::rng::per_thread_seed`]
/// streams, any (seed, thread count) pair replays deterministically.
pub fn stress_threads() -> usize {
    match env_u64("HOAS_STRESS_THREADS") {
        Some(n) => (n as usize).clamp(1, 64),
        None => 4,
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw}: expected a decimal or 0x-prefixed integer"),
    }
}

/// A generation strategy: how to produce a value from randomness, and how
/// to propose smaller candidates when it participates in a failure.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Shrink candidates for `value`, in decreasing order of aggression.
    /// The runner keeps the first candidate that still fails.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// ---------------------------------------------------------- strategies --

/// Uniform draw from a half-open integer range; shrinks toward the start.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                use crate::rng::Rng as _;
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = self.start;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo {
                        out.push(mid);
                    }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The full-width `u64` strategy used for generator seeds.
///
/// A seed has no meaningful order, so shrinking just tries a few
/// canonical seeds — the real size reduction comes from the size/depth
/// components that accompany it.
#[derive(Clone, Debug)]
pub struct Seeds;

/// All 64-bit seeds, uniformly.
pub fn seeds() -> Seeds {
    Seeds
}

impl Strategy for Seeds {
    type Value = u64;

    fn generate(&self, rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        let mut out: Vec<u64> = [0, 1, v >> 32, v >> 1]
            .into_iter()
            .filter(|c| c != &v)
            .collect();
        out.dedup();
        out
    }
}

/// A constant strategy (no shrinking).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Random ASCII strings (printable characters plus newline) of length
/// `0..=max_len`; shrinks by emptying and halving.
#[derive(Clone, Debug)]
pub struct AsciiString {
    max_len: usize,
}

/// Strings for parser-fuzz properties.
pub fn ascii_string(max_len: usize) -> AsciiString {
    AsciiString { max_len }
}

impl Strategy for AsciiString {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        use crate::rng::Rng as _;
        let len = rng.gen_range(0..self.max_len + 1);
        (0..len)
            .map(|_| {
                if rng.gen_bool(0.03) {
                    '\n'
                } else {
                    rng.gen_range(0x20u8..0x7F) as char
                }
            })
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        if value.is_empty() {
            return Vec::new();
        }
        let n = value.chars().count();
        let mut out = vec![String::new()];
        out.push(value.chars().take(n / 2).collect());
        out.push(value.chars().take(n - 1).collect());
        out.retain(|s| s != value);
        out.dedup();
        out
    }
}

/// Random sequences drawn from a fixed token vocabulary; shrinks by
/// emptying, halving, and dropping the last token.
#[derive(Clone, Debug)]
pub struct TokenSoup {
    tokens: &'static [&'static str],
    max_len: usize,
}

/// Token soup for structured parser-fuzz properties.
pub fn token_soup(tokens: &'static [&'static str], max_len: usize) -> TokenSoup {
    TokenSoup { tokens, max_len }
}

impl Strategy for TokenSoup {
    type Value = Vec<&'static str>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<&'static str> {
        use crate::rng::Rng as _;
        let len = rng.gen_range(0..self.max_len + 1);
        (0..len).map(|_| *rng.choose(self.tokens)).collect()
    }

    fn shrink(&self, value: &Vec<&'static str>) -> Vec<Vec<&'static str>> {
        if value.is_empty() {
            return Vec::new();
        }
        let mut out = vec![Vec::new()];
        out.push(value[..value.len() / 2].to_vec());
        out.push(value[..value.len() - 1].to_vec());
        out.retain(|v| v != value);
        out.dedup();
        out
    }
}

// Tuples of strategies generate componentwise. Shrinking iterates
// components right-to-left so that trailing size/depth parameters (the
// convention throughout the test suites: `(seed, size)`) shrink before
// seeds — "shrink term size first".
macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out: Vec<Self::Value> = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx).into_iter() {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out.reverse(); // right-to-left: sizes before seeds
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

// ------------------------------------------------------------- running --

/// A shrunk failure report.
#[derive(Clone, Debug)]
pub struct Failure<V> {
    /// Seed reproducing the failing case (`HOAS_PROP_CASE=<this>`).
    pub case_seed: u64,
    /// Index of the failing case within the run.
    pub case_index: u32,
    /// The originally generated counterexample.
    pub original: V,
    /// The counterexample after greedy shrinking.
    pub shrunk: V,
    /// How many shrink candidates were evaluated.
    pub shrink_steps: u32,
    /// The failure message of the shrunk case.
    pub message: String,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

thread_local! {
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent while this
/// thread is inside a property case. Panics are converted to failures and
/// reported by the runner; the default hook would spam stderr during
/// shrinking.
fn install_quiet_hook() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn run_case<V>(test: &impl Fn(&V) -> Result<(), String>, value: &V) -> Result<(), String> {
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| test(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(r) => r,
        Err(payload) => Err(panic_message(payload)),
    }
}

/// Runs the property, returning the number of cases passed or the shrunk
/// failure. This is the programmatic entry point ([`run`] is the panicking
/// wrapper the [`crate::props!`] macro uses); it is public so the harness
/// can be meta-tested.
pub fn check<S: Strategy>(
    cfg: &Config,
    strat: &S,
    test: impl Fn(&S::Value) -> Result<(), String>,
) -> Result<u32, Failure<S::Value>> {
    if let Some(case_seed) = cfg.repro_case {
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let value = strat.generate(&mut rng);
        return match run_case(&test, &value) {
            Ok(()) => Ok(1),
            Err(message) => Err(shrink_failure(
                cfg, strat, &test, case_seed, 0, value, message,
            )),
        };
    }
    let mut mix = SplitMix64::new(cfg.seed);
    for i in 0..cfg.cases {
        let case_seed = mix.next_u64();
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let value = strat.generate(&mut rng);
        if let Err(message) = run_case(&test, &value) {
            return Err(shrink_failure(
                cfg, strat, &test, case_seed, i, value, message,
            ));
        }
    }
    Ok(cfg.cases)
}

fn shrink_failure<S: Strategy>(
    cfg: &Config,
    strat: &S,
    test: &impl Fn(&S::Value) -> Result<(), String>,
    case_seed: u64,
    case_index: u32,
    original: S::Value,
    message: String,
) -> Failure<S::Value> {
    let mut shrunk = original.clone();
    let mut best_message = message;
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in strat.shrink(&shrunk) {
            steps += 1;
            if let Err(m) = run_case(test, &cand) {
                shrunk = cand;
                best_message = m;
                continue 'outer;
            }
            if steps >= cfg.max_shrink_steps {
                break;
            }
        }
        break;
    }
    Failure {
        case_seed,
        case_index,
        original,
        shrunk,
        shrink_steps: steps,
        message: best_message,
    }
}

/// Runs the property and panics with a reproduction report on failure.
pub fn run<S: Strategy>(
    name: &str,
    cfg: &Config,
    strat: S,
    test: impl Fn(&S::Value) -> Result<(), String>,
) {
    if let Err(f) = check(cfg, &strat, test) {
        panic!(
            "property {name} failed at case {idx}\n\
             \x20 case seed: {seed:#018x}  (re-run: HOAS_PROP_CASE={seed:#x} cargo test {short})\n\
             \x20 original:  {orig:?}\n\
             \x20 shrunk:    {shrunk:?}  ({steps} shrink steps)\n\
             \x20 cause:     {msg}",
            idx = f.case_index,
            seed = f.case_seed,
            short = name.rsplit("::").next().unwrap_or(name),
            orig = f.original,
            shrunk = f.shrunk,
            steps = f.shrink_steps,
            msg = f.message,
        );
    }
}

// -------------------------------------------------------------- macros --

/// Declares property tests.
///
/// ```ignore
/// use hoas_testkit::prelude::*;
///
/// props! {
///     #![cases(128)]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each `fn` becomes a `#[test]` running `cases` deterministic cases
/// (default 64) under the workspace seed; see [`Config::from_env`] for the
/// environment overrides. The body may use [`crate::prop_assert!`] /
/// [`crate::prop_assert_eq!`], `return Ok(())` for an early pass, or
/// `return Err(msg)` for an explicit failure; plain `assert!`/`unwrap`
/// panics are caught and shrunk too.
#[macro_export]
macro_rules! props {
    (#![cases($cases:expr)] $($rest:tt)*) => {
        $crate::__props_inner! { $cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__props_inner! { 64; $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __props_inner {
    ($cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg = $crate::prop::Config::from_env($cases);
            let strat = ($($strat,)+);
            $crate::prop::run(
                concat!(module_path!(), "::", stringify!($name)),
                &cfg,
                strat,
                |__value| {
                    let ($($arg,)+) = __value.clone();
                    let __body = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __body()
                },
            );
        }
    )*};
}

/// Asserts a condition inside a [`props!`] body, failing the case (and
/// triggering shrinking) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`props!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left:  {l:?}\n  right: {r:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} — {}\n  left:  {l:?}\n  right: {r:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a [`props!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {l:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config::with_cases(100);
        let n = check(&cfg, &(0u32..50,), |&(v,)| {
            if v < 50 {
                Ok(())
            } else {
                Err("out of range".into())
            }
        })
        .unwrap();
        assert_eq!(n, 100);
    }

    #[test]
    fn deterministic_case_sequence() {
        // Same config ⇒ the same sequence of generated values.
        let cfg = Config::with_cases(32);
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            let _ = check(&cfg, &(seeds(), 0usize..1000), |v| {
                seen.borrow_mut().push(*v);
                Ok(())
            });
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn failure_shrinks_to_boundary() {
        let cfg = Config::with_cases(500);
        let f = check(&cfg, &(0u32..1000,), |&(v,)| {
            if v < 7 {
                Ok(())
            } else {
                Err("too big".into())
            }
        })
        .unwrap_err();
        assert_eq!(f.shrunk.0, 7, "greedy shrink finds the boundary");
        assert!(f.message.contains("too big"));
    }

    #[test]
    fn failing_seed_reproduces_failure() {
        // The acceptance meta-test: a failing property reports a case
        // seed, and re-running with exactly that seed reproduces the
        // failure.
        let cfg = Config::with_cases(500);
        let prop = |&(v,): &(u32,)| {
            if v % 97 != 13 {
                Ok(())
            } else {
                Err("hit".into())
            }
        };
        let f = check(&cfg, &(0u32..10_000,), prop).unwrap_err();
        // Re-run in single-case repro mode, as HOAS_PROP_CASE would.
        let repro = Config {
            repro_case: Some(f.case_seed),
            ..Config::default()
        };
        let f2 = check(&repro, &(0u32..10_000,), prop).unwrap_err();
        assert_eq!(
            f2.original.0, f.original.0,
            "case seed regenerates the same input"
        );
        // And a *different* case seed does not (almost surely) hit the
        // same original value.
        let other = Config {
            repro_case: Some(f.case_seed ^ 1),
            ..Config::default()
        };
        match check(&other, &(0u32..10_000,), prop) {
            Ok(_) => {}
            Err(g) => assert_ne!(g.original.0, f.original.0),
        }
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let cfg = Config::with_cases(200);
        let f = check(&cfg, &(0usize..100,), |&(v,)| {
            assert!(v < 5, "boom at {v}");
            Ok(())
        })
        .unwrap_err();
        assert_eq!(f.shrunk.0, 5);
        assert!(
            f.message.contains("boom"),
            "panic message preserved: {}",
            f.message
        );
    }

    #[test]
    fn tuple_shrinking_prefers_trailing_components() {
        // (seed, size): the size component should reach its minimum.
        let cfg = Config::with_cases(50);
        let f = check(&cfg, &(seeds(), 2usize..40), |&(_, size)| {
            if size < 2 {
                Ok(())
            } else {
                Err("always fails".into())
            }
        })
        .unwrap_err();
        assert_eq!(f.shrunk.1, 2, "size shrinks to its lower bound");
    }

    #[test]
    fn early_return_ok_passes() {
        let cfg = Config::with_cases(10);
        assert!(check(&cfg, &(0u32..10,), |_| Ok(())).is_ok());
    }

    props! {
        #![cases(64)]

        fn macro_smoke(a in 0u32..100, b in 0u32..100) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a < 100 && b < 100);
        }

        fn macro_early_return(n in 0u32..10) {
            if n > 100 {
                return Err("unreachable".into());
            }
            if n == 0 {
                return Ok(());
            }
            prop_assert!(n >= 1);
        }
    }
}
