//! The rewrite engine: strategy-driven rule application with sound
//! rewriting under binders.
//!
//! The engine traverses a canonical, well-typed subject term, maintaining
//! the typing context of the binders it has crossed. At each position it
//! tries the rules whose subject type matches; a pattern rule fires via
//! higher-order matching with the crossed binders as *ambient* context
//! (so matched subterms may mention them), and the instantiated
//! right-hand side is spliced back at the same depth.

use crate::rule::{RewriteError, Rule, RuleSet};
use hoas_core::ctx::Ctx;
use hoas_core::sig::Signature;
use hoas_core::{normalize, typeck, Term, Ty};
use hoas_unify::classify::PatternClass;
use hoas_unify::matching::{match_pattern, match_term, MatchConfig};

/// Traversal strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Try the node before its children; repeat from the root after each
    /// rewrite.
    #[default]
    LeftmostOutermost,
    /// Try children before the node.
    LeftmostInnermost,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Matching budgets.
    pub match_cfg: MatchConfig,
    /// Maximum number of rule applications per [`Engine::normalize`] call.
    pub max_steps: usize,
    /// Traversal strategy.
    pub strategy: Strategy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            match_cfg: MatchConfig::default(),
            max_steps: 100_000,
            strategy: Strategy::LeftmostOutermost,
        }
    }
}

/// Which matching machinery produced a rewrite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchPath {
    /// The deterministic Miller-pattern matcher (the fast path taken by
    /// rules classified as [`PatternClass::Miller`]).
    Pattern,
    /// General higher-order matching (pattern unifier with Huet
    /// fallback).
    General,
    /// A native δ-rule fired.
    Native,
}

impl std::fmt::Display for MatchPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchPath::Pattern => f.write_str("pattern"),
            MatchPath::General => f.write_str("general"),
            MatchPath::Native => f.write_str("native"),
        }
    }
}

/// One rewrite in a trace: which rule fired, and where.
///
/// The path addresses the rewritten subterm from the root: `0..` are
/// spine-argument indices for neutral terms, `0` is a λ's body, and
/// `0`/`1` are a pair's components.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RewriteStep {
    /// Name of the rule that fired.
    pub rule: String,
    /// Position of the rewritten subterm.
    pub path: Vec<u32>,
    /// Which matcher produced the rewrite.
    pub via: MatchPath,
}

impl std::fmt::Display for RewriteStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ [", self.rule)?;
        for (i, p) in self.path.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str("]")
    }
}

/// Result of running the engine to a fixpoint (or budget).
#[derive(Clone, Debug)]
pub struct NormalizeResult {
    /// The rewritten term.
    pub term: Term,
    /// Number of rule applications performed.
    pub steps: usize,
    /// Name of each applied rule, in order.
    pub applied: Vec<String>,
    /// Full trace: rule name plus rewrite position, in order.
    pub trace: Vec<RewriteStep>,
    /// Whether a fixpoint was reached (`false` means the step budget ran
    /// out first).
    pub fixpoint: bool,
}

/// A rewrite engine for one signature and rule set.
#[derive(Clone, Debug)]
pub struct Engine<'a> {
    sig: &'a Signature,
    rules: &'a RuleSet,
    cfg: EngineConfig,
}

impl<'a> Engine<'a> {
    /// Creates an engine with default configuration.
    pub fn new(sig: &'a Signature, rules: &'a RuleSet) -> Engine<'a> {
        Engine {
            sig,
            rules,
            cfg: EngineConfig::default(),
        }
    }

    /// Creates an engine with explicit configuration.
    pub fn with_config(sig: &'a Signature, rules: &'a RuleSet, cfg: EngineConfig) -> Engine<'a> {
        Engine { sig, rules, cfg }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Attempts the rules at this exact position (no descent), returning
    /// the replacement, the rule's name, and which matcher produced it.
    ///
    /// # Errors
    ///
    /// Propagates malformed-problem errors; a simple mismatch is `None`.
    pub fn rewrite_here(
        &self,
        ctx: &Ctx,
        ty: &Ty,
        t: &Term,
    ) -> Result<Option<(Term, String, MatchPath)>, RewriteError> {
        // Discrimination key: the subject's rigid head constant.
        let subject_head = match t.head_spine() {
            Some((hoas_core::term::Head::Const(c), _)) => Some(c),
            _ => None,
        };
        for rule in &self.rules.rules {
            if rule.ty() != ty {
                continue;
            }
            // A rule whose lhs has a rigid head can only match subjects
            // with the same head.
            if let (Some(rh), Some(sh)) = (rule.head_const(), subject_head.as_ref()) {
                if rh != sh {
                    continue;
                }
            }
            if rule.head_const().is_some() && subject_head.is_none() {
                continue;
            }
            if let Some(replacement) = self.try_rule(rule, ctx, ty, t)? {
                let via = match rule.classification() {
                    PatternClass::Miller => MatchPath::Pattern,
                    PatternClass::General => MatchPath::General,
                };
                return Ok(Some((replacement, rule.name().to_string(), via)));
            }
        }
        for nrule in &self.rules.native {
            if nrule.ty() != ty {
                continue;
            }
            if let Some(replacement) = nrule.apply(t) {
                let canon = normalize::canon(self.sig, &Default::default(), ctx, &replacement, ty)
                    .map_err(RewriteError::Core)?;
                return Ok(Some((canon, nrule.name().to_string(), MatchPath::Native)));
            }
        }
        Ok(None)
    }

    fn try_rule(
        &self,
        rule: &Rule,
        ctx: &Ctx,
        ty: &Ty,
        t: &Term,
    ) -> Result<Option<Term>, RewriteError> {
        // Miller-classified rules take the deterministic fast path: one
        // lockstep descent, no per-attempt canonicalization or
        // environment cloning. General rules go through the pattern
        // unifier with Huet fallback.
        let matched = match rule.classification() {
            PatternClass::Miller => match_pattern(rule.lhs(), t),
            PatternClass::General => match_term(
                self.sig,
                rule.menv(),
                ctx,
                ty,
                rule.lhs(),
                t,
                &self.cfg.match_cfg,
            ),
        };
        let subst = match matched {
            Ok(Some(s)) => s,
            Ok(None) => return Ok(None),
            Err(e) => return Err(RewriteError::Unify(e)),
        };
        let replacement = subst.apply(rule.rhs());
        if replacement.has_metas() {
            // Under-determined match (e.g. a pattern variable not fixed by
            // the target); be conservative and do not rewrite.
            return Ok(None);
        }
        let replacement = normalize::canon(self.sig, rule.menv(), ctx, &replacement, ty)
            .map_err(RewriteError::Core)?;
        Ok(Some(replacement))
    }

    /// Performs one rewrite anywhere in the term according to the
    /// strategy, returning the new term and the applied rule's name.
    ///
    /// The subject `t` must be canonical and well-typed at `ty`.
    ///
    /// # Errors
    ///
    /// Kernel/unification errors on malformed subjects.
    pub fn rewrite_once(&self, ty: &Ty, t: &Term) -> Result<Option<(Term, String)>, RewriteError> {
        Ok(self
            .step(&Ctx::new(), ty, t)?
            .map(|(t2, step)| (t2, step.rule)))
    }

    /// Like [`Engine::rewrite_once`], also reporting the rewrite
    /// position.
    pub fn rewrite_once_traced(
        &self,
        ty: &Ty,
        t: &Term,
    ) -> Result<Option<(Term, RewriteStep)>, RewriteError> {
        self.step(&Ctx::new(), ty, t)
    }

    fn step(
        &self,
        ctx: &Ctx,
        ty: &Ty,
        t: &Term,
    ) -> Result<Option<(Term, RewriteStep)>, RewriteError> {
        let here = |this: &Self| {
            Ok::<_, RewriteError>(this.rewrite_here(ctx, ty, t)?.map(|(t2, rule, via)| {
                (
                    t2,
                    RewriteStep {
                        rule,
                        path: Vec::new(),
                        via,
                    },
                )
            }))
        };
        match self.cfg.strategy {
            Strategy::LeftmostOutermost => {
                if let Some(hit) = here(self)? {
                    return Ok(Some(hit));
                }
                self.step_children(ctx, ty, t)
            }
            Strategy::LeftmostInnermost => {
                if let Some(hit) = self.step_children(ctx, ty, t)? {
                    return Ok(Some(hit));
                }
                here(self)
            }
        }
    }

    fn step_children(
        &self,
        ctx: &Ctx,
        ty: &Ty,
        t: &Term,
    ) -> Result<Option<(Term, RewriteStep)>, RewriteError> {
        fn at(mut step: RewriteStep, i: u32) -> RewriteStep {
            step.path.insert(0, i);
            step
        }
        match (t, ty) {
            (Term::Lam(h, body), Ty::Arrow(dom, cod)) => {
                let ctx2 = ctx.push(h.clone(), dom.as_ref().clone());
                Ok(self
                    .step(&ctx2, cod, body)?
                    .map(|(b, step)| (Term::lam(h.clone(), b), at(step, 0))))
            }
            (Term::Pair(a, b), Ty::Prod(ta, tb)) => {
                if let Some((a2, step)) = self.step(ctx, ta, a)? {
                    return Ok(Some((Term::pair(a2, b.as_ref().clone()), at(step, 0))));
                }
                Ok(self
                    .step(ctx, tb, b)?
                    .map(|(b2, step)| (Term::pair(a.as_ref().clone(), b2), at(step, 1))))
            }
            _ => {
                // Neutral (or literal): descend into spine arguments using
                // the head's synthesized type.
                let (head, args) = t.spine();
                if args.is_empty() {
                    return Ok(None);
                }
                let head_ty = typeck::synth(self.sig, &Default::default(), ctx, head)
                    .map_err(RewriteError::Core)?;
                let (arg_tys, _) = head_ty.uncurry();
                for (i, (arg, aty)) in args.iter().zip(arg_tys).enumerate() {
                    if let Some((a2, step)) = self.step(ctx, aty, arg)? {
                        let mut new_args: Vec<Term> = args.iter().map(|a| (*a).clone()).collect();
                        new_args[i] = a2;
                        return Ok(Some((
                            Term::apps(head.clone(), new_args),
                            at(step, i as u32),
                        )));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Rewrites to a fixpoint (or until the step budget runs out). The
    /// subject is canonicalized first.
    ///
    /// # Errors
    ///
    /// Kernel/unification errors on malformed subjects or rules.
    pub fn normalize(&self, ty: &Ty, t: &Term) -> Result<NormalizeResult, RewriteError> {
        let mut cur = normalize::canon(self.sig, &Default::default(), &Ctx::new(), t, ty)
            .map_err(RewriteError::Core)?;
        let mut applied = Vec::new();
        let mut trace = Vec::new();
        loop {
            if applied.len() >= self.cfg.max_steps {
                // Budget spent: report whether a fixpoint happens to have
                // been reached anyway.
                let at_fixpoint = self.step(&Ctx::new(), ty, &cur)?.is_none();
                return Ok(NormalizeResult {
                    term: cur,
                    steps: applied.len(),
                    applied,
                    trace,
                    fixpoint: at_fixpoint,
                });
            }
            match self.step(&Ctx::new(), ty, &cur)? {
                Some((next, step)) => {
                    applied.push(step.rule.clone());
                    trace.push(step);
                    cur = next;
                }
                None => {
                    return Ok(NormalizeResult {
                        term: cur,
                        steps: applied.len(),
                        applied,
                        trace,
                        fixpoint: true,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::parse::{parse_term, parse_ty};

    fn sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const not : o -> o.
             const forall : (i -> o) -> o.
             const p : i -> o.
             const r : o.",
        )
        .unwrap()
    }

    fn o() -> Ty {
        parse_ty("o").unwrap()
    }

    fn not_not() -> RuleSet {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(Rule::parse(&s, "not-not", &o(), &[("P", "o")], "not (not ?P)", "?P").unwrap())
            .unwrap();
        rs
    }

    #[test]
    fn rewrites_at_root() {
        let s = sig();
        let rs = not_not();
        let e = Engine::new(&s, &rs);
        let t = parse_term(&s, "not (not r)").unwrap().term;
        let (out, name) = e.rewrite_once(&o(), &t).unwrap().unwrap();
        assert_eq!(name, "not-not");
        assert_eq!(out, Term::cnst("r"));
    }

    #[test]
    fn rewrites_under_binder_with_bound_var_in_solution() {
        // not (not (p x)) under forall: the match solution mentions the
        // ambient binder x.
        let s = sig();
        let rs = not_not();
        let e = Engine::new(&s, &rs);
        let t = parse_term(&s, r"forall (\x. not (not (p x)))")
            .unwrap()
            .term;
        let r = e.normalize(&o(), &t).unwrap();
        assert!(r.fixpoint);
        assert_eq!(r.steps, 1);
        assert_eq!(r.term, parse_term(&s, r"forall (\x. p x)").unwrap().term);
    }

    #[test]
    fn normalizes_nested_to_fixpoint() {
        let s = sig();
        let rs = not_not();
        let e = Engine::new(&s, &rs);
        // not^6 r reduces to r in 3 steps.
        let t = parse_term(&s, "not (not (not (not (not (not r)))))")
            .unwrap()
            .term;
        let r = e.normalize(&o(), &t).unwrap();
        assert_eq!(r.steps, 3);
        assert_eq!(r.term, Term::cnst("r"));
        assert!(r.applied.iter().all(|n| n == "not-not"));
    }

    #[test]
    fn no_match_is_fixpoint_zero_steps() {
        let s = sig();
        let rs = not_not();
        let e = Engine::new(&s, &rs);
        let t = parse_term(&s, "and r r").unwrap().term;
        let r = e.normalize(&o(), &t).unwrap();
        assert_eq!(r.steps, 0);
        assert!(r.fixpoint);
        assert_eq!(r.term, t);
    }

    #[test]
    fn step_budget_respected() {
        // A looping rule: r ~> not (not r) grows forever.
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(Rule::parse(&s, "grow", &o(), &[], "r", "not (not r)").unwrap())
            .unwrap();
        let cfg = EngineConfig {
            max_steps: 10,
            ..EngineConfig::default()
        };
        let e = Engine::with_config(&s, &rs, cfg);
        let r = e.normalize(&o(), &Term::cnst("r")).unwrap();
        assert!(!r.fixpoint);
        assert_eq!(r.steps, 10);
    }

    #[test]
    fn innermost_vs_outermost_order() {
        // Rule: and ?P ?P ~> ?P. Subject: and (and r r) (and r r).
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(Rule::parse(&s, "idem", &o(), &[("P", "o")], "and ?P ?P", "?P").unwrap())
            .unwrap();
        let t = parse_term(&s, "and (and r r) (and r r)").unwrap().term;
        // Outermost: one step to `and r r`, then one more to r.
        let outer = Engine::new(&s, &rs);
        let (after_one, _) = outer.rewrite_once(&o(), &t).unwrap().unwrap();
        assert_eq!(after_one, parse_term(&s, "and r r").unwrap().term);
        // Innermost: first step reduces a child.
        let cfg = EngineConfig {
            strategy: Strategy::LeftmostInnermost,
            ..EngineConfig::default()
        };
        let inner = Engine::with_config(&s, &rs, cfg);
        let (after_one, _) = inner.rewrite_once(&o(), &t).unwrap().unwrap();
        assert_eq!(after_one, parse_term(&s, "and r (and r r)").unwrap().term);
        // Both reach the same fixpoint.
        assert_eq!(outer.normalize(&o(), &t).unwrap().term, Term::cnst("r"));
        assert_eq!(inner.normalize(&o(), &t).unwrap().term, Term::cnst("r"));
    }

    #[test]
    fn vacuous_binder_rule_under_engine() {
        // forall (\x. ?P) ~> ?P — drops a vacuous quantifier, but only
        // when the body really ignores x.
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(
            Rule::parse(
                &s,
                "drop-vacuous",
                &o(),
                &[("P", "o")],
                r"forall (\x. ?P)",
                "?P",
            )
            .unwrap(),
        )
        .unwrap();
        let e = Engine::new(&s, &rs);
        let vacuous = parse_term(&s, r"forall (\x. and r r)").unwrap().term;
        assert_eq!(
            e.normalize(&o(), &vacuous).unwrap().term,
            parse_term(&s, "and r r").unwrap().term
        );
        let dependent = parse_term(&s, r"forall (\x. p x)").unwrap().term;
        let r = e.normalize(&o(), &dependent).unwrap();
        assert_eq!(r.steps, 0, "must not drop a used binder");
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::rule::{Rule, RuleSet};
    use hoas_core::parse::{parse_term, parse_ty};

    fn sig() -> Signature {
        Signature::parse(
            "type o.
             const and : o -> o -> o.
             const not : o -> o.
             const r : o.",
        )
        .unwrap()
    }

    #[test]
    fn trace_records_positions() {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(
            Rule::parse(
                &s,
                "not-not",
                &parse_ty("o").unwrap(),
                &[("P", "o")],
                "not (not ?P)",
                "?P",
            )
            .unwrap(),
        )
        .unwrap();
        let e = Engine::new(&s, &rs);
        // and (not (not r)) (and r (not (not r)))
        let t = parse_term(&s, "and (not (not r)) (and r (not (not r)))")
            .unwrap()
            .term;
        let out = e.normalize(&parse_ty("o").unwrap(), &t).unwrap();
        assert_eq!(out.steps, 2);
        // Leftmost-outermost: first at [0], then at [1.1].
        assert_eq!(out.trace[0].path, vec![0]);
        assert_eq!(out.trace[1].path, vec![1, 1]);
        assert_eq!(out.trace[0].to_string(), "not-not @ [0]");
        assert_eq!(out.trace[1].to_string(), "not-not @ [1.1]");
    }

    #[test]
    fn root_rewrite_has_empty_path() {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(
            Rule::parse(
                &s,
                "not-not",
                &parse_ty("o").unwrap(),
                &[("P", "o")],
                "not (not ?P)",
                "?P",
            )
            .unwrap(),
        )
        .unwrap();
        let e = Engine::new(&s, &rs);
        let t = parse_term(&s, "not (not r)").unwrap().term;
        let (_, step) = e
            .rewrite_once_traced(&parse_ty("o").unwrap(), &t)
            .unwrap()
            .unwrap();
        assert!(step.path.is_empty());
        assert_eq!(step.to_string(), "not-not @ []");
        assert_eq!(step.via, MatchPath::Pattern, "not-not is a Miller rule");
    }

    #[test]
    fn trace_records_match_path() {
        let s = Signature::parse(
            "type i.
             type o.
             const p : i -> o.
             const q : i -> o.
             const all : (i -> o) -> o.
             const a : i.",
        )
        .unwrap();
        let o = parse_ty("o").unwrap();
        let mut rs = RuleSet::new();
        // Miller rule: fast path.
        rs.push(
            Rule::parse(
                &s,
                "all-swap",
                &o,
                &[("Q", "i -> o")],
                r"all (\x. ?Q x)",
                r"all (\x. ?Q x)",
            )
            .unwrap(),
        )
        .unwrap();
        // General rule: ?F applied to a constant is outside the fragment.
        rs.push(Rule::parse(&s, "f-at-a", &o, &[("F", "i -> o")], "?F a", "?F a").unwrap())
            .unwrap();
        let e = Engine::new(&s, &rs);
        let ctx = Ctx::new();
        let miller_subject = parse_term(&s, r"all (\x. p x)").unwrap().term;
        let (_, name, via) = e.rewrite_here(&ctx, &o, &miller_subject).unwrap().unwrap();
        assert_eq!((name.as_str(), via), ("all-swap", MatchPath::Pattern));
        let general_subject = parse_term(&s, "p a").unwrap().term;
        let (_, name, via) = e.rewrite_here(&ctx, &o, &general_subject).unwrap().unwrap();
        assert_eq!((name.as_str(), via), ("f-at-a", MatchPath::General));
    }
}
