//! The rewrite engine: strategy-driven rule application with sound
//! rewriting under binders.
//!
//! The engine traverses a canonical, well-typed subject term, maintaining
//! the typing context of the binders it has crossed. At each position it
//! tries the rules whose subject type matches; a pattern rule fires via
//! higher-order matching with the crossed binders as *ambient* context
//! (so matched subterms may mention them), and the instantiated
//! right-hand side is spliced back at the same depth.
//!
//! # Normalization cache and dispatch index
//!
//! Three layers keep a `normalize` call from re-doing work. All of them
//! key on stable [`NodeId`](hoas_core::NodeId)s from the hash-consed term
//! store — durable keys that are never reused — so the caches live in a
//! shareable [`EngineCaches`] handle that can outlive any single engine
//! instance (see [`Engine::with_caches`]):
//!
//! * a **rule-normal-form cache** keyed on node id: once a shared subterm
//!   has been proven rule-normal (no rule fires anywhere inside it),
//!   every later pass skips it in O(1). Rewrites rebuild only the spine
//!   from the rewrite site to the root — sibling subtrees keep their
//!   nodes, so their cache entries survive and the restart-from-root loop
//!   degenerates to a resume-at-site traversal while producing identical
//!   [`RewriteStep`] traces;
//! * a **head-type table** filled lazily from the signature, so
//!   descending a neutral spine no longer re-synthesizes the head's type
//!   at every application node;
//! * a **canonical-form memo** ([`normalize::CanonCache`]) so that
//!   canonicalizing each rewrite's replacement only pays for the fresh
//!   right-hand-side skeleton, never for the matched subject subtrees it
//!   shares by pointer;
//! * the [`RuleSet`] **discrimination index**, which hands each position
//!   only the rules whose left-hand-side head (and shallow argument
//!   fingerprint) could match there.
//!
//! [`EngineStats`] counts what each layer did, so the wins are measurable
//! rather than asserted.

use crate::rule::{RewriteError, Rule, RuleSet};
use hoas_core::ctx::Ctx;
use hoas_core::sig::Signature;
use hoas_core::term::{Head, MetaEnv, TermRef};
use hoas_core::{normalize, store, typeck, NodeId, Sym, Term, Ty};
use hoas_unify::classify::PatternClass;
use hoas_unify::matching::{match_pattern, match_term, MatchConfig};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Traversal strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Try the node before its children; repeat from the root after each
    /// rewrite.
    #[default]
    LeftmostOutermost,
    /// Try children before the node.
    LeftmostInnermost,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Matching budgets.
    pub match_cfg: MatchConfig,
    /// Maximum number of rule applications per [`Engine::normalize`] call.
    pub max_steps: usize,
    /// Traversal strategy.
    pub strategy: Strategy,
    /// Whether to keep the rule-normal-form cache (on by default).
    /// Disabling it forces the pre-cache full re-traversal; results are
    /// identical either way, which `tests/engine_cache_props.rs`
    /// property-checks.
    pub cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            match_cfg: MatchConfig::default(),
            max_steps: 100_000,
            strategy: Strategy::LeftmostOutermost,
            cache: true,
        }
    }
}

/// Which matching machinery produced a rewrite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchPath {
    /// The deterministic Miller-pattern matcher (the fast path taken by
    /// rules classified as [`PatternClass::Miller`]).
    Pattern,
    /// General higher-order matching (pattern unifier with Huet
    /// fallback).
    General,
    /// A native δ-rule fired.
    Native,
}

impl std::fmt::Display for MatchPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchPath::Pattern => f.write_str("pattern"),
            MatchPath::General => f.write_str("general"),
            MatchPath::Native => f.write_str("native"),
        }
    }
}

/// One rewrite in a trace: which rule fired, and where.
///
/// The path addresses the rewritten subterm from the root: `0..` are
/// spine-argument indices for neutral terms, `0` is a λ's body, and
/// `0`/`1` are a pair's components.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RewriteStep {
    /// Name of the rule that fired.
    pub rule: String,
    /// Position of the rewritten subterm.
    pub path: Vec<u32>,
    /// Which matcher produced the rewrite.
    pub via: MatchPath,
}

impl std::fmt::Display for RewriteStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ [", self.rule)?;
        for (i, p) in self.path.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str("]")
    }
}

/// Work counters for an engine (or the delta of one [`Engine::normalize`]
/// call): traversal volume, cache effectiveness, dispatch-index shape,
/// and match attempts by [`MatchPath`].
///
/// Invariant: `cache_hits + cache_misses == cache_lookups`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EngineStats {
    /// Subterm positions visited by the strategy traversal.
    pub nodes_visited: u64,
    /// Rule-normal-form cache lookups.
    pub cache_lookups: u64,
    /// Lookups that found the subterm already proven rule-normal (the
    /// whole subtree is skipped).
    pub cache_hits: u64,
    /// Lookups that found nothing.
    pub cache_misses: u64,
    /// Match attempts through the deterministic Miller pattern matcher.
    pub pattern_attempts: u64,
    /// Match attempts through general higher-order matching.
    pub general_attempts: u64,
    /// Native δ-rule attempts.
    pub native_attempts: u64,
    /// Canonical-form memo hits: replacement subtrees whose η-long form
    /// was replayed by interned node id instead of re-traversed.
    pub canon_hits: u64,
    /// Canonical-form memo lookups that fell through to a traversal.
    pub canon_misses: u64,
    /// Root-step memo hits: whole strategy steps on a closed subject
    /// whose outcome (rewritten term, rule, position) was replayed by
    /// shallow node-id identity instead of re-derived.
    pub memo_hits: u64,
    /// Root-step memo lookups that fell through to a full traversal.
    pub memo_misses: u64,
    /// Term-store intern lookups (one per constructed node); thread-wide,
    /// see [`hoas_core::store::stats`].
    pub intern_lookups: u64,
    /// Intern lookups answered by an existing node (no allocation; the
    /// dedup that makes node-id caching effective).
    pub intern_hits: u64,
    /// Distinct nodes created in the term store (thread-wide, monotonic).
    pub intern_distinct: u64,
    /// Number of buckets in the rule discrimination index (head buckets
    /// plus the flex fallback when nonempty).
    pub index_buckets: usize,
    /// Size of the largest index bucket.
    pub index_max_bucket: usize,
    /// Content hashes computed by the term store — one per node created
    /// on this thread (see [`hoas_core::InternStats::hashed_nodes`]).
    pub hashed_nodes: u64,
    /// Transient scratch-arena nodes built by kernel hot paths on this
    /// thread — intermediates that were never interned (see
    /// [`hoas_core::InternStats::scratch_nodes`]).
    pub scratch_nodes: u64,
    /// Nodes interned through the bottom-up batch path (one store-session
    /// borrow per finished tree; see
    /// [`hoas_core::InternStats::batch_interned`]).
    pub batch_interned: u64,
    /// Estimated refcount operations the scratch/batch path avoided
    /// versus intern-every-intermediate (see
    /// [`hoas_core::InternStats::refcount_ops_saved`]).
    pub refcount_ops_saved: u64,
    /// Solver answer-table hits: tabled calls answered entirely from a
    /// completed table (thread-wide; see
    /// [`hoas_core::InternStats::table_hits`]).
    pub table_hits: u64,
    /// Tabled calls whose variant key was new, forcing a generator run
    /// (see [`hoas_core::InternStats::table_variant_misses`]).
    pub table_variant_misses: u64,
    /// Tabled calls suspended on an in-progress producer (same-SCC
    /// loops; see [`hoas_core::InternStats::table_suspensions`]).
    pub table_suspensions: u64,
    /// Table answers replayed into consumers instead of re-derived (see
    /// [`hoas_core::InternStats::table_answers_reused`]).
    pub table_answers_reused: u64,
    /// Size in bytes of the last warm image loaded into this cache
    /// bundle (`0` when none was).
    pub image_bytes: u64,
    /// Pool nodes whose writer-process id was remapped to a different id
    /// by the last warm-image load.
    pub remapped_ids: u64,
    /// Cache entries (all four layers) re-keyed and absorbed by the last
    /// warm-image load.
    pub cache_entries_reloaded: u64,
    /// Cache entries the last warm-image load had to drop because their
    /// key node was not in the image's pool.
    pub cache_entries_dropped: u64,
}

impl EngineStats {
    /// Counter difference `self - earlier` (index shape fields, which are
    /// static per engine, are carried over unchanged). Used to report
    /// per-call stats from cumulative engine counters.
    #[must_use]
    pub fn delta(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            nodes_visited: self.nodes_visited - earlier.nodes_visited,
            cache_lookups: self.cache_lookups - earlier.cache_lookups,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            pattern_attempts: self.pattern_attempts - earlier.pattern_attempts,
            general_attempts: self.general_attempts - earlier.general_attempts,
            native_attempts: self.native_attempts - earlier.native_attempts,
            canon_hits: self.canon_hits - earlier.canon_hits,
            canon_misses: self.canon_misses - earlier.canon_misses,
            memo_hits: self.memo_hits - earlier.memo_hits,
            memo_misses: self.memo_misses - earlier.memo_misses,
            intern_lookups: self.intern_lookups - earlier.intern_lookups,
            intern_hits: self.intern_hits - earlier.intern_hits,
            intern_distinct: self.intern_distinct - earlier.intern_distinct,
            index_buckets: self.index_buckets,
            index_max_bucket: self.index_max_bucket,
            hashed_nodes: self.hashed_nodes - earlier.hashed_nodes,
            scratch_nodes: self.scratch_nodes - earlier.scratch_nodes,
            batch_interned: self.batch_interned - earlier.batch_interned,
            refcount_ops_saved: self.refcount_ops_saved - earlier.refcount_ops_saved,
            table_hits: self.table_hits - earlier.table_hits,
            table_variant_misses: self.table_variant_misses - earlier.table_variant_misses,
            table_suspensions: self.table_suspensions - earlier.table_suspensions,
            table_answers_reused: self.table_answers_reused - earlier.table_answers_reused,
            // Persistence gauges describe the cache bundle's last image
            // load, not per-call work: carried over like the index shape.
            image_bytes: self.image_bytes,
            remapped_ids: self.remapped_ids,
            cache_entries_reloaded: self.cache_entries_reloaded,
            cache_entries_dropped: self.cache_entries_dropped,
        }
    }

    /// Fraction of cache lookups that hit, in `[0, 1]` (0 when the cache
    /// was never consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Fraction of term-store intern lookups deduplicated to an existing
    /// node, in `[0, 1]` (0 when nothing was constructed).
    pub fn intern_dedup_ratio(&self) -> f64 {
        if self.intern_lookups == 0 {
            0.0
        } else {
            self.intern_hits as f64 / self.intern_lookups as f64
        }
    }
}

/// Result of running the engine to a fixpoint (or budget).
#[derive(Clone, Debug)]
pub struct NormalizeResult {
    /// The rewritten term.
    pub term: Term,
    /// Number of rule applications performed.
    pub steps: usize,
    /// Name of each applied rule, in order.
    pub applied: Vec<String>,
    /// Full trace: rule name plus rewrite position, in order.
    pub trace: Vec<RewriteStep>,
    /// Whether a fixpoint was reached (`false` means the step budget ran
    /// out first).
    pub fixpoint: bool,
    /// Work counters for this call (cache state carried over from earlier
    /// calls on the same engine still counts as hits here).
    pub stats: EngineStats,
}

/// Interior-mutable counters: the traversal takes `&self` everywhere.
#[derive(Clone, Debug, Default)]
struct Counters {
    nodes_visited: Cell<u64>,
    cache_lookups: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    pattern_attempts: Cell<u64>,
    general_attempts: Cell<u64>,
    native_attempts: Cell<u64>,
    memo_hits: Cell<u64>,
    memo_misses: Cell<u64>,
}

fn bump(c: &Cell<u64>) {
    c.set(c.get() + 1);
}

/// One proven-rule-normal record. An entry means: no rule of this engine
/// fires anywhere inside the node when it appears at subject type `ty`
/// with its free de Bruijn variables typed `free_tys` — the only inputs
/// (besides the node's own structure) that rule matching consults.
#[derive(Clone, Debug)]
pub(crate) struct CacheEntry {
    /// Subject type at which the subterm was proven rule-normal.
    pub(crate) ty: Ty,
    /// Types of the subterm's free variables, innermost (`Var(0)`) first.
    pub(crate) free_tys: Vec<Ty>,
}

/// Shallow identity of a composite root: a variant tag plus the stable
/// [`NodeId`]s of the children (second slot `0` — never a real id — for
/// one-child variants). Hash-consing makes child-id equality certify
/// child α-equality, and ids are never reused, so the key stays sound
/// without pinning the subject.
pub(crate) type RootKey = (u8, u64, u64);

/// One memoized root-level strategy step (see [`Engine::step_root`]).
#[derive(Clone, Debug)]
pub(crate) struct RootEntry {
    /// Subject type the step was taken at.
    pub(crate) ty: Ty,
    /// Root binder hint (`Lam` roots only): the one root datum the
    /// [`RootKey`] does not capture. Compared on lookup so a replay
    /// reproduces the uncached output, hints included.
    pub(crate) hint: Option<Sym>,
    /// Strategy the step was recorded under; caches may be shared
    /// between engines, and the chosen redex position depends on it.
    pub(crate) strategy: Strategy,
    /// The recorded outcome, replayed verbatim on a hit.
    pub(crate) outcome: Option<(Term, RewriteStep)>,
}

/// The [`RootKey`] of a term, or `None` for childless nodes (leaves
/// terminate a step immediately; memoizing them would cost more than the
/// probe it saves).
fn root_key(t: &Term) -> Option<RootKey> {
    match t {
        Term::App(f, a) => Some((0, f.id().get(), a.id().get())),
        Term::Lam(_, b) => Some((1, b.id().get(), 0)),
        Term::Pair(a, b) => Some((2, a.id().get(), b.id().get())),
        Term::Fst(p) => Some((3, p.id().get(), 0)),
        Term::Snd(p) => Some((4, p.id().get(), 0)),
        Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => None,
    }
}

/// The root's binder hint, the only root datum [`root_key`] ignores.
fn root_hint(t: &Term) -> Option<&Sym> {
    match t {
        Term::Lam(h, _) => Some(h),
        _ => None,
    }
}

/// Root-step memo size bound; the table is dropped wholesale when full.
pub(crate) const ROOT_MEMO_CAP: usize = 1 << 20;

/// Rule-normal-form cache size bound (number of keyed nodes); the table
/// is dropped wholesale when full. PR 4's engine-lifetime cache needed no
/// bound because keepalive pins tied its size to live terms; a durable
/// shared cache can outlive every subject, so it gets the same cap
/// discipline as the other memo layers.
pub(crate) const RULE_NF_CAP: usize = 1 << 20;

/// The head-type table's value: uncurried argument types for a
/// monomorphic constant, `None` for a polymorphic one.
pub(crate) type HeadArgTys = Option<Arc<Vec<Ty>>>;

/// Argument types of a neutral spine's head, with ownership depending on
/// where they came from (memo table, context, or fresh synthesis).
enum ArgTys<'t> {
    Shared(Arc<Vec<Ty>>),
    Borrowed(Vec<&'t Ty>),
    Owned(Vec<Ty>),
}

impl ArgTys<'_> {
    fn get(&self, i: usize) -> Option<&Ty> {
        match self {
            ArgTys::Shared(v) => v.get(i),
            ArgTys::Borrowed(v) => v.get(i).copied(),
            ArgTys::Owned(v) => v.get(i),
        }
    }
}

/// The engine's durable cache state: rule-normal-form cache, root-step
/// memo, canonical-form memo, and head-type table, bundled behind one
/// cheaply clonable handle (`Clone` shares, it does not copy).
///
/// Every key in here is a stable [`NodeId`] (or a signature symbol), so
/// the handle stays sound after the engine — and even every subject term
/// — is gone: ids are never reused, process-wide, so an entry for a dead
/// node can never be probed again. Warm caches can therefore be carried
/// from one engine instance to the next with
/// [`Engine::caches`]/[`Engine::with_caches`] — and, the bundle being
/// `Send + Sync` (each table behind its own mutex), shared between
/// *threads*: workers over one term store build private `Engine`s around
/// one clone of the handle and warm each other's caches.
///
/// Entries record everything they depend on *except* the signature, rule
/// set, and match configuration, which are fixed per engine: only share a
/// handle between engines that agree on those (the root-step memo checks
/// the strategy itself, so engines may differ in strategy). A handle is
/// also implicitly tied to the term store its node ids came from; engines
/// in different stores must not share one.
#[derive(Clone, Debug, Default)]
pub struct EngineCaches {
    /// Memoized uncurried argument types per (monomorphic) constant,
    /// filled lazily on first use: descending a neutral spine costs a
    /// hash lookup instead of a `typeck::synth` call per node, and
    /// engine construction stays O(1) no matter how large the signature
    /// (analysis passes build an engine per rule). `None` records a
    /// polymorphic constant, which must take the synthesis path.
    pub(crate) head_arg_tys: Arc<Mutex<HashMap<Sym, HeadArgTys>>>,
    /// Canonical-form memo for replacement canonicalization (see
    /// [`hoas_core::normalize::CanonCache`] for the soundness argument).
    pub(crate) canon: Arc<normalize::CanonCache>,
    /// Rule-normal-form cache, keyed on stable node id. Entries are never
    /// invalidated: whether a rule fires inside a node is a function of
    /// its α-class (plus the recorded types), which the id pins down
    /// forever.
    pub(crate) rule_nf: Arc<Mutex<HashMap<NodeId, Vec<CacheEntry>>>>,
    /// Root-step memo: the outcome of one whole strategy step on a
    /// closed subject, keyed by the root's shallow id identity. Because
    /// interning hands back id-identical subtrees for a repeated
    /// subject, an entire rewrite run re-played on the same input
    /// collapses to one probe per step.
    pub(crate) root_memo: Arc<Mutex<HashMap<RootKey, Vec<RootEntry>>>>,
    /// Gauges describing the last warm-image load into this bundle (zero
    /// until one happens); written by the crate's `image` module,
    /// surfaced through [`EngineStats`].
    pub(crate) persist: Arc<PersistStats>,
}

/// Persistence gauges of a cache bundle — set (not accumulated) by each
/// warm-image load, so they always describe the bundle's current warm
/// state.
#[derive(Debug, Default)]
pub(crate) struct PersistStats {
    pub(crate) image_bytes: AtomicU64,
    pub(crate) remapped_ids: AtomicU64,
    pub(crate) entries_reloaded: AtomicU64,
    pub(crate) entries_dropped: AtomicU64,
}

impl EngineCaches {
    /// Creates an empty cache bundle.
    #[must_use]
    pub fn new() -> EngineCaches {
        EngineCaches::default()
    }
}

// The whole point of the bundle since PR 6: it must keep crossing thread
// boundaries (workers share one handle). Guard it here, next to the
// fields, rather than letting a future `Rc`/`RefCell` field break a
// downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineCaches>();
};

/// Cache tables ignore mutex poisoning: every critical section performs
/// only exception-safe `HashMap` operations, so a panicking thread leaves
/// a consistent table; the caches are pure memoization and must not turn
/// one panic into a process-wide poison cascade.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A rewrite engine for one signature and rule set.
#[derive(Clone, Debug)]
pub struct Engine<'a> {
    sig: &'a Signature,
    rules: &'a RuleSet,
    cfg: EngineConfig,
    /// Durable cache state; shareable across engine instances.
    caches: EngineCaches,
    counters: Counters,
    /// A validated termination certificate for `rules`, if one was
    /// attached. When present, [`Engine::normalize`] runs without
    /// per-step budget bookkeeping (debug builds keep counting as a
    /// cross-check; see [`Engine::attach_certificate`]).
    cert: Option<crate::cert::TerminationCert>,
}

impl<'a> Engine<'a> {
    /// Creates an engine with default configuration.
    pub fn new(sig: &'a Signature, rules: &'a RuleSet) -> Engine<'a> {
        Engine::with_config(sig, rules, EngineConfig::default())
    }

    /// Creates an engine with explicit configuration and fresh caches.
    pub fn with_config(sig: &'a Signature, rules: &'a RuleSet, cfg: EngineConfig) -> Engine<'a> {
        Engine::with_caches(sig, rules, cfg, EngineCaches::new())
    }

    /// Creates an engine that starts from an existing cache bundle —
    /// typically [`Engine::caches`] of a previous engine over the same
    /// signature, rule set, and match configuration (the sharing
    /// contract; see [`EngineCaches`]). Node-id keys make the warm
    /// entries sound even though the old engine, and possibly every term
    /// it ever saw, is gone.
    pub fn with_caches(
        sig: &'a Signature,
        rules: &'a RuleSet,
        cfg: EngineConfig,
        caches: EngineCaches,
    ) -> Engine<'a> {
        Engine {
            sig,
            rules,
            cfg,
            caches,
            counters: Counters::default(),
            cert: None,
        }
    }

    /// Attaches a termination certificate, enabling budget-free
    /// normalization. Returns `false` (and attaches nothing) when the
    /// certificate does not cover this engine's rule set — the
    /// fingerprint check is the trust boundary, so a certificate minted
    /// for a different (or since-extended) rule set is rejected rather
    /// than trusted.
    ///
    /// With a certificate attached, [`Engine::normalize`] stops
    /// charging steps against [`EngineConfig::max_steps`] in release
    /// builds. Debug builds keep the counter and panic — citing
    /// analyzer diagnostic `HA016` — if the run exceeds a 64× multiple
    /// of the configured budget, so an unsound certificate shows up as
    /// a loud failure instead of a hang.
    pub fn attach_certificate(&mut self, cert: &crate::cert::TerminationCert) -> bool {
        if cert.covers(self.rules) {
            self.cert = Some(cert.clone());
            true
        } else {
            false
        }
    }

    /// Whether a validated termination certificate is attached.
    pub fn is_certified(&self) -> bool {
        self.cert.is_some()
    }

    /// A handle to this engine's cache state, for warm-starting another
    /// engine via [`Engine::with_caches`]. Cloning shares the underlying
    /// tables.
    #[must_use]
    pub fn caches(&self) -> EngineCaches {
        self.caches.clone()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Cumulative work counters since the engine was created.
    ///
    /// The canonical-form memo and interner counters are properties of
    /// shared state (the cache bundle and the thread's term store), so
    /// they are cumulative over everything that touched that state, not
    /// just this engine; per-call deltas via [`NormalizeResult::stats`]
    /// are attributable to the call that reports them.
    pub fn stats(&self) -> EngineStats {
        let (index_buckets, index_max_bucket) = self.rules.index_stats();
        let intern = store::stats();
        EngineStats {
            nodes_visited: self.counters.nodes_visited.get(),
            cache_lookups: self.counters.cache_lookups.get(),
            cache_hits: self.counters.cache_hits.get(),
            cache_misses: self.counters.cache_misses.get(),
            pattern_attempts: self.counters.pattern_attempts.get(),
            general_attempts: self.counters.general_attempts.get(),
            native_attempts: self.counters.native_attempts.get(),
            canon_hits: self.caches.canon.hits(),
            canon_misses: self.caches.canon.misses(),
            memo_hits: self.counters.memo_hits.get(),
            memo_misses: self.counters.memo_misses.get(),
            intern_lookups: intern.lookups,
            intern_hits: intern.hits,
            intern_distinct: intern.distinct_nodes,
            index_buckets,
            index_max_bucket,
            hashed_nodes: intern.hashed_nodes,
            scratch_nodes: intern.scratch_nodes,
            batch_interned: intern.batch_interned,
            refcount_ops_saved: intern.refcount_ops_saved,
            table_hits: intern.table_hits,
            table_variant_misses: intern.table_variant_misses,
            table_suspensions: intern.table_suspensions,
            table_answers_reused: intern.table_answers_reused,
            image_bytes: self.caches.persist.image_bytes.load(Ordering::Relaxed),
            remapped_ids: self.caches.persist.remapped_ids.load(Ordering::Relaxed),
            cache_entries_reloaded: self.caches.persist.entries_reloaded.load(Ordering::Relaxed),
            cache_entries_dropped: self.caches.persist.entries_dropped.load(Ordering::Relaxed),
        }
    }

    /// Canonicalizes a replacement at its splice position, through the
    /// canonical-form memo when caching is enabled.
    fn canonize(&self, menv: &MetaEnv, ctx: &Ctx, t: &Term, ty: &Ty) -> Result<Term, RewriteError> {
        if self.cfg.cache {
            normalize::canon_with(self.sig, menv, ctx, t, ty, &self.caches.canon)
        } else {
            normalize::canon(self.sig, menv, ctx, t, ty)
        }
        .map_err(RewriteError::Core)
    }

    /// Attempts the rules at this exact position (no descent), returning
    /// the replacement, the rule's name, and which matcher produced it.
    ///
    /// # Errors
    ///
    /// Propagates malformed-problem errors; a simple mismatch is `None`.
    pub fn rewrite_here(
        &self,
        ctx: &Ctx,
        ty: &Ty,
        t: &Term,
    ) -> Result<Option<(Term, String, MatchPath)>, RewriteError> {
        // Discrimination key: the subject's rigid head constant, found by
        // walking the application spine without materializing the
        // argument list — most positions have no candidate rules at all,
        // and the allocation would be wasted.
        let mut head = t;
        while let Term::App(f, _) = head {
            head = f.term();
        }
        let subject_head = match head {
            Term::Const(c) => Some(c),
            _ => None,
        };
        // Spine arguments, materialized lazily for the first candidate
        // that carries a shallow fingerprint.
        let mut subject_args: Option<Vec<&Term>> = None;
        for rule in self.rules.candidates(subject_head) {
            if rule.ty() != ty {
                continue;
            }
            if !rule.arg_fingerprint().is_empty() {
                let args = subject_args.get_or_insert_with(|| spine_args(t));
                if !fingerprint_admits(rule.arg_fingerprint(), args) {
                    continue;
                }
            }
            match rule.classification() {
                PatternClass::Miller => bump(&self.counters.pattern_attempts),
                PatternClass::General => bump(&self.counters.general_attempts),
            }
            if let Some(replacement) = self.try_rule(rule, ctx, ty, t)? {
                let via = match rule.classification() {
                    PatternClass::Miller => MatchPath::Pattern,
                    PatternClass::General => MatchPath::General,
                };
                return Ok(Some((replacement, rule.name().to_string(), via)));
            }
        }
        for nrule in self.rules.native_rules() {
            if nrule.ty() != ty {
                continue;
            }
            bump(&self.counters.native_attempts);
            if let Some(replacement) = nrule.apply(t) {
                let canon = self.canonize(&Default::default(), ctx, &replacement, ty)?;
                return Ok(Some((canon, nrule.name().to_string(), MatchPath::Native)));
            }
        }
        Ok(None)
    }

    fn try_rule(
        &self,
        rule: &Rule,
        ctx: &Ctx,
        ty: &Ty,
        t: &Term,
    ) -> Result<Option<Term>, RewriteError> {
        // Miller-classified rules take the deterministic fast path: one
        // lockstep descent, no per-attempt canonicalization or
        // environment cloning. General rules go through the pattern
        // unifier with Huet fallback.
        let matched = match rule.classification() {
            PatternClass::Miller => match_pattern(rule.lhs(), t),
            PatternClass::General => match_term(
                self.sig,
                rule.menv(),
                ctx,
                ty,
                rule.lhs(),
                t,
                &self.cfg.match_cfg,
            ),
        };
        let subst = match matched {
            Ok(Some(s)) => s,
            Ok(None) => return Ok(None),
            Err(e) => return Err(RewriteError::Unify(e)),
        };
        let replacement = subst.apply(rule.rhs());
        if replacement.has_metas() {
            // Under-determined match (e.g. a pattern variable not fixed by
            // the target); be conservative and do not rewrite.
            return Ok(None);
        }
        // Miller instantiations are canonical by construction: the rhs is
        // canonicalized when the rule is built, the deterministic matcher
        // binds every pattern variable to a λ-abstracted canonical
        // subject subtree, and canonical forms are closed under
        // hereditary substitution — so re-canonicalizing here would be
        // the identity, and the fast path skips it (debug builds check).
        // General higher-order matches may produce non-canonical
        // instantiations and go through full canonicalization.
        let replacement = match rule.classification() {
            PatternClass::Miller => {
                debug_assert!(
                    normalize::canon(self.sig, rule.menv(), ctx, &replacement, ty)
                        .map(|c| c == replacement)
                        .unwrap_or(false),
                    "Miller instantiation of rule `{}` must already be canonical",
                    rule.name()
                );
                replacement
            }
            PatternClass::General => self.canonize(rule.menv(), ctx, &replacement, ty)?,
        };
        Ok(Some(replacement))
    }

    /// Performs one rewrite anywhere in the term according to the
    /// strategy, returning the new term and the applied rule's name.
    ///
    /// The subject `t` must be canonical and well-typed at `ty`.
    ///
    /// # Errors
    ///
    /// Kernel/unification errors on malformed subjects.
    pub fn rewrite_once(&self, ty: &Ty, t: &Term) -> Result<Option<(Term, String)>, RewriteError> {
        Ok(self.step_root(ty, t)?.map(|(t2, step)| (t2, step.rule)))
    }

    /// Like [`Engine::rewrite_once`], also reporting the rewrite
    /// position.
    pub fn rewrite_once_traced(
        &self,
        ty: &Ty,
        t: &Term,
    ) -> Result<Option<(Term, RewriteStep)>, RewriteError> {
        self.step_root(ty, t)
    }

    fn step(
        &self,
        ctx: &Ctx,
        ty: &Ty,
        t: &Term,
    ) -> Result<Option<(Term, RewriteStep)>, RewriteError> {
        bump(&self.counters.nodes_visited);
        let here = |this: &Self| {
            Ok::<_, RewriteError>(this.rewrite_here(ctx, ty, t)?.map(|(t2, rule, via)| {
                (
                    t2,
                    RewriteStep {
                        rule,
                        path: Vec::new(),
                        via,
                    },
                )
            }))
        };
        match self.cfg.strategy {
            Strategy::LeftmostOutermost => {
                if let Some(hit) = here(self)? {
                    return Ok(Some(hit));
                }
                self.step_children(ctx, ty, t)
            }
            Strategy::LeftmostInnermost => {
                if let Some(hit) = self.step_children(ctx, ty, t)? {
                    return Ok(Some(hit));
                }
                here(self)
            }
        }
    }

    /// [`Engine::step`] on a shared child node, going through the
    /// rule-normal-form cache: a hit skips the whole subtree, and a
    /// rewrite-free traversal marks the subtree for every later pass.
    ///
    /// Soundness of the `None` short-circuit: whether any rule fires
    /// inside `t` is a function of `t`'s structure (never its binder
    /// hints), the subject type, and the types of `t`'s free variables —
    /// the Miller matcher is purely structural, and general matching
    /// consults the ambient context only for those types. All three are
    /// part of the cache key; rules, signature, and budgets are fixed per
    /// engine.
    fn step_ref(
        &self,
        ctx: &Ctx,
        ty: &Ty,
        t: &TermRef,
    ) -> Result<Option<(Term, RewriteStep)>, RewriteError> {
        // Childless nodes bypass the cache entirely: re-proving a leaf
        // rule-normal costs one indexed candidate probe, which is cheaper
        // than a cache entry (key, type clones) plus a lookup.
        let cacheable = self.cfg.cache
            && !matches!(
                t.term(),
                Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit
            );
        if cacheable {
            bump(&self.counters.cache_lookups);
            if self.cache_contains(ctx, ty, t) {
                bump(&self.counters.cache_hits);
                return Ok(None);
            }
            bump(&self.counters.cache_misses);
        }
        let r = self.step(ctx, ty, t.term())?;
        if cacheable && r.is_none() {
            self.cache_insert(ctx, ty, t);
        }
        Ok(r)
    }

    /// [`Engine::step`] at the root (closed subject, empty context),
    /// through the root-step memo: the full outcome of one strategy step
    /// — rewritten term, rule name, and position — is replayed by
    /// shallow node-id identity.
    ///
    /// Soundness: with fixed rules, signature, and match configuration
    /// (the cache-sharing contract) and the strategy recorded per entry,
    /// the outcome of a step on a closed, meta-free subject is a function
    /// of the subject's structure and type alone. Two roots that agree on
    /// their own node data and have id-identical children are
    /// α-equivalent, so the recorded outcome — trace entry included — is
    /// exactly what a fresh traversal would produce. Native δ-rules are
    /// assumed deterministic engine-wide; the rule-normal-form cache's
    /// `None` short-circuit already relies on the same assumption.
    fn step_root(&self, ty: &Ty, t: &Term) -> Result<Option<(Term, RewriteStep)>, RewriteError> {
        let ctx = Ctx::new();
        if !self.cfg.cache || t.has_metas() {
            return self.step(&ctx, ty, t);
        }
        let Some(key) = root_key(t) else {
            return self.step(&ctx, ty, t);
        };
        {
            let memo = lock(&self.caches.root_memo);
            if let Some(e) = memo.get(&key).and_then(|es| {
                es.iter().find(|e| {
                    e.ty == *ty
                        && e.strategy == self.cfg.strategy
                        && e.hint.as_ref() == root_hint(t)
                })
            }) {
                bump(&self.counters.memo_hits);
                return Ok(e.outcome.clone());
            }
        }
        bump(&self.counters.memo_misses);
        let r = self.step(&ctx, ty, t)?;
        let mut memo = lock(&self.caches.root_memo);
        if memo.len() >= ROOT_MEMO_CAP {
            memo.clear();
        }
        memo.entry(key).or_default().push(RootEntry {
            ty: ty.clone(),
            hint: root_hint(t).cloned(),
            strategy: self.cfg.strategy,
            outcome: r.clone(),
        });
        Ok(r)
    }

    fn cache_contains(&self, ctx: &Ctx, ty: &Ty, t: &TermRef) -> bool {
        let cache = lock(&self.caches.rule_nf);
        let Some(entries) = cache.get(&t.id()) else {
            return false;
        };
        entries.iter().any(|e| {
            e.ty == *ty
                && e.free_tys.len() == t.max_free() as usize
                && e.free_tys
                    .iter()
                    .enumerate()
                    .all(|(i, ft)| ctx.lookup(i as u32).map(|(_, vt)| vt) == Some(ft))
        })
    }

    fn cache_insert(&self, ctx: &Ctx, ty: &Ty, t: &TermRef) {
        let mut free_tys = Vec::with_capacity(t.max_free() as usize);
        for i in 0..t.max_free() {
            match ctx.lookup(i) {
                Some((_, vt)) => free_tys.push(vt.clone()),
                // Free variable without a context entry: the subject is
                // ill-scoped here; refuse to cache rather than key on a
                // partial context.
                None => return,
            }
        }
        let mut cache = lock(&self.caches.rule_nf);
        if cache.len() >= RULE_NF_CAP {
            cache.clear();
        }
        cache.entry(t.id()).or_default().push(CacheEntry {
            ty: ty.clone(),
            free_tys,
        });
    }

    /// Argument types for descending a neutral spine: memo table for
    /// constant heads, context lookup for variable heads, full synthesis
    /// otherwise (also the error path for unknown heads).
    fn arg_tys_for<'t>(&self, ctx: &'t Ctx, head: &Term) -> Result<ArgTys<'t>, RewriteError> {
        match head {
            Term::Const(c) => {
                let memo = lock(&self.caches.head_arg_tys)
                    .entry(c.clone())
                    .or_insert_with(|| {
                        self.sig.const_ty(c.as_str()).and_then(|scheme| {
                            scheme.as_mono().map(|ty| {
                                Arc::new(ty.uncurry().0.into_iter().cloned().collect::<Vec<Ty>>())
                            })
                        })
                    })
                    .clone();
                if let Some(tys) = memo {
                    return Ok(ArgTys::Shared(tys));
                }
            }
            Term::Var(i) => {
                if let Some((_, ty)) = ctx.lookup(*i) {
                    return Ok(ArgTys::Borrowed(ty.uncurry().0));
                }
            }
            _ => {}
        }
        let head_ty =
            typeck::synth(self.sig, &Default::default(), ctx, head).map_err(RewriteError::Core)?;
        let (args, _) = head_ty.uncurry();
        Ok(ArgTys::Owned(args.into_iter().cloned().collect()))
    }

    fn step_children(
        &self,
        ctx: &Ctx,
        ty: &Ty,
        t: &Term,
    ) -> Result<Option<(Term, RewriteStep)>, RewriteError> {
        fn at(mut step: RewriteStep, i: u32) -> RewriteStep {
            step.path.insert(0, i);
            step
        }
        match (t, ty) {
            (Term::Lam(h, body), Ty::Arrow(dom, cod)) => {
                let ctx2 = ctx.push(h.clone(), dom.as_ref().clone());
                Ok(self
                    .step_ref(&ctx2, cod, body)?
                    .map(|(b, step)| (Term::lam(h.clone(), b), at(step, 0))))
            }
            (Term::Pair(a, b), Ty::Prod(ta, tb)) => {
                // Rebuild around the rewritten component only: the
                // untouched sibling keeps its node (and cache entries).
                if let Some((a2, step)) = self.step_ref(ctx, ta, a)? {
                    return Ok(Some((Term::Pair(TermRef::new(a2), b.clone()), at(step, 0))));
                }
                Ok(self
                    .step_ref(ctx, tb, b)?
                    .map(|(b2, step)| (Term::Pair(a.clone(), TermRef::new(b2)), at(step, 1))))
            }
            _ => {
                // Neutral (or literal): descend into spine arguments using
                // the head's argument types.
                let (head, apps) = t.spine_apps();
                if apps.is_empty() {
                    return Ok(None);
                }
                let arg_tys = self.arg_tys_for(ctx, head)?;
                for (i, (prefix, arg)) in apps.iter().enumerate() {
                    let Some(aty) = arg_tys.get(i) else { break };
                    if let Some((a2, step)) = self.step_ref(ctx, aty, arg)? {
                        // Splice the new argument onto the unchanged
                        // prefix node, then re-attach the sibling
                        // argument nodes by pointer: only the spine from
                        // the rewrite site to the root is reallocated.
                        let mut acc = Term::App((*prefix).clone(), TermRef::new(a2));
                        for (_, sib) in &apps[i + 1..] {
                            acc = Term::App(TermRef::new(acc), (*sib).clone());
                        }
                        return Ok(Some((acc, at(step, i as u32))));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Rewrites to a fixpoint (or until the step budget runs out). The
    /// subject is canonicalized first.
    ///
    /// # Errors
    ///
    /// Kernel/unification errors on malformed subjects or rules.
    pub fn normalize(&self, ty: &Ty, t: &Term) -> Result<NormalizeResult, RewriteError> {
        let before = self.stats();
        // Canonicalizing the subject through the memo also seeds it with
        // every subject subtree, which later replacement
        // canonicalizations share by pointer.
        let mut cur = self.canonize(&Default::default(), &Ctx::new(), t, ty)?;
        let mut applied = Vec::new();
        let mut trace = Vec::new();
        loop {
            if self.cert.is_none() && applied.len() >= self.cfg.max_steps {
                // Budget spent: report whether a fixpoint happens to have
                // been reached anyway.
                let at_fixpoint = self.step_root(ty, &cur)?.is_none();
                return Ok(NormalizeResult {
                    term: cur,
                    steps: applied.len(),
                    applied,
                    trace,
                    fixpoint: at_fixpoint,
                    stats: self.stats().delta(&before),
                });
            }
            // Cross-check a "proven terminating" certificate in debug
            // builds: a certified run that exceeds a generous multiple
            // of the budget means the size-change analysis (or the
            // fingerprint check) is unsound, which must be loud.
            #[cfg(debug_assertions)]
            if let Some(cert) = &self.cert {
                assert!(
                    applied.len() < self.cfg.max_steps.saturating_mul(64),
                    "HA016 violated: certified-terminating rule set exceeded \
                     {} steps (certificate: {})",
                    self.cfg.max_steps.saturating_mul(64),
                    cert.reason(),
                );
            }
            match self.step_root(ty, &cur)? {
                Some((next, step)) => {
                    applied.push(step.rule.clone());
                    trace.push(step);
                    cur = next;
                }
                None => {
                    return Ok(NormalizeResult {
                        term: cur,
                        steps: applied.len(),
                        applied,
                        trace,
                        fixpoint: true,
                        stats: self.stats().delta(&before),
                    })
                }
            }
        }
    }
}

/// Whether a rule's shallow argument fingerprint admits the subject's
/// spine arguments. Only rigid-constant-vs-rigid-constant disagreements
/// are rejected — everything else defers to the matcher — so skipping is
/// sound: a canonical pattern argument with rigid head `c` can only match
/// a canonical subject argument with the same rigid head.
/// Spine arguments of a neutral term, outermost application last.
fn spine_args(t: &Term) -> Vec<&Term> {
    let mut args = Vec::new();
    let mut cur = t;
    while let Term::App(f, a) = cur {
        args.push(a.term());
        cur = f.term();
    }
    args.reverse();
    args
}

fn fingerprint_admits(fp: &[Option<Sym>], args: &[&Term]) -> bool {
    if fp.is_empty() {
        return true;
    }
    if fp.len() != args.len() {
        return false;
    }
    fp.iter().zip(args).all(|(want, arg)| match want {
        None => true,
        Some(c) => match arg.head_spine() {
            Some((Head::Const(d), _)) => *c == d,
            _ => true,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::parse::{parse_term, parse_ty};

    fn sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const not : o -> o.
             const forall : (i -> o) -> o.
             const p : i -> o.
             const r : o.",
        )
        .unwrap()
    }

    fn o() -> Ty {
        parse_ty("o").unwrap()
    }

    fn not_not() -> RuleSet {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(Rule::parse(&s, "not-not", &o(), &[("P", "o")], "not (not ?P)", "?P").unwrap())
            .unwrap();
        rs
    }

    #[test]
    fn rewrites_at_root() {
        let s = sig();
        let rs = not_not();
        let e = Engine::new(&s, &rs);
        let t = parse_term(&s, "not (not r)").unwrap().term;
        let (out, name) = e.rewrite_once(&o(), &t).unwrap().unwrap();
        assert_eq!(name, "not-not");
        assert_eq!(out, Term::cnst("r"));
    }

    #[test]
    fn rewrites_under_binder_with_bound_var_in_solution() {
        // not (not (p x)) under forall: the match solution mentions the
        // ambient binder x.
        let s = sig();
        let rs = not_not();
        let e = Engine::new(&s, &rs);
        let t = parse_term(&s, r"forall (\x. not (not (p x)))")
            .unwrap()
            .term;
        let r = e.normalize(&o(), &t).unwrap();
        assert!(r.fixpoint);
        assert_eq!(r.steps, 1);
        assert_eq!(r.term, parse_term(&s, r"forall (\x. p x)").unwrap().term);
    }

    #[test]
    fn normalizes_nested_to_fixpoint() {
        let s = sig();
        let rs = not_not();
        let e = Engine::new(&s, &rs);
        // not^6 r reduces to r in 3 steps.
        let t = parse_term(&s, "not (not (not (not (not (not r)))))")
            .unwrap()
            .term;
        let r = e.normalize(&o(), &t).unwrap();
        assert_eq!(r.steps, 3);
        assert_eq!(r.term, Term::cnst("r"));
        assert!(r.applied.iter().all(|n| n == "not-not"));
    }

    #[test]
    fn no_match_is_fixpoint_zero_steps() {
        let s = sig();
        let rs = not_not();
        let e = Engine::new(&s, &rs);
        let t = parse_term(&s, "and r r").unwrap().term;
        let r = e.normalize(&o(), &t).unwrap();
        assert_eq!(r.steps, 0);
        assert!(r.fixpoint);
        assert_eq!(r.term, t);
    }

    #[test]
    fn step_budget_respected() {
        // A looping rule: r ~> not (not r) grows forever.
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(Rule::parse(&s, "grow", &o(), &[], "r", "not (not r)").unwrap())
            .unwrap();
        let cfg = EngineConfig {
            max_steps: 10,
            ..EngineConfig::default()
        };
        let e = Engine::with_config(&s, &rs, cfg);
        let r = e.normalize(&o(), &Term::cnst("r")).unwrap();
        assert!(!r.fixpoint);
        assert_eq!(r.steps, 10);
    }

    #[test]
    fn innermost_vs_outermost_order() {
        // Rule: and ?P ?P ~> ?P. Subject: and (and r r) (and r r).
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(Rule::parse(&s, "idem", &o(), &[("P", "o")], "and ?P ?P", "?P").unwrap())
            .unwrap();
        let t = parse_term(&s, "and (and r r) (and r r)").unwrap().term;
        // Outermost: one step to `and r r`, then one more to r.
        let outer = Engine::new(&s, &rs);
        let (after_one, _) = outer.rewrite_once(&o(), &t).unwrap().unwrap();
        assert_eq!(after_one, parse_term(&s, "and r r").unwrap().term);
        // Innermost: first step reduces a child.
        let cfg = EngineConfig {
            strategy: Strategy::LeftmostInnermost,
            ..EngineConfig::default()
        };
        let inner = Engine::with_config(&s, &rs, cfg);
        let (after_one, _) = inner.rewrite_once(&o(), &t).unwrap().unwrap();
        assert_eq!(after_one, parse_term(&s, "and r (and r r)").unwrap().term);
        // Both reach the same fixpoint.
        assert_eq!(outer.normalize(&o(), &t).unwrap().term, Term::cnst("r"));
        assert_eq!(inner.normalize(&o(), &t).unwrap().term, Term::cnst("r"));
    }

    #[test]
    fn vacuous_binder_rule_under_engine() {
        // forall (\x. ?P) ~> ?P — drops a vacuous quantifier, but only
        // when the body really ignores x.
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(
            Rule::parse(
                &s,
                "drop-vacuous",
                &o(),
                &[("P", "o")],
                r"forall (\x. ?P)",
                "?P",
            )
            .unwrap(),
        )
        .unwrap();
        let e = Engine::new(&s, &rs);
        let vacuous = parse_term(&s, r"forall (\x. and r r)").unwrap().term;
        assert_eq!(
            e.normalize(&o(), &vacuous).unwrap().term,
            parse_term(&s, "and r r").unwrap().term
        );
        let dependent = parse_term(&s, r"forall (\x. p x)").unwrap().term;
        let r = e.normalize(&o(), &dependent).unwrap();
        assert_eq!(r.steps, 0, "must not drop a used binder");
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use hoas_core::parse::{parse_term, parse_ty};

    fn sig() -> Signature {
        Signature::parse(
            "type o.
             const and : o -> o -> o.
             const not : o -> o.
             const r : o.",
        )
        .unwrap()
    }

    fn o() -> Ty {
        parse_ty("o").unwrap()
    }

    fn not_not(s: &Signature) -> RuleSet {
        let mut rs = RuleSet::new();
        rs.push(Rule::parse(s, "not-not", &o(), &[("P", "o")], "not (not ?P)", "?P").unwrap())
            .unwrap();
        rs
    }

    #[test]
    fn cache_hits_accumulate_and_stats_are_consistent() {
        let s = sig();
        let rs = not_not(&s);
        let e = Engine::new(&s, &rs);
        // The left subtree is rule-normal; after the rewrite at [1] the
        // second pass must skip it via the cache.
        let t = parse_term(&s, "and (and r r) (not (not r))").unwrap().term;
        let r = e.normalize(&o(), &t).unwrap();
        assert_eq!(r.steps, 1);
        assert_eq!(r.trace[0].path, vec![1]);
        assert!(r.stats.cache_hits >= 1, "stats: {:?}", r.stats);
        assert_eq!(
            r.stats.cache_hits + r.stats.cache_misses,
            r.stats.cache_lookups
        );
        assert!(r.stats.nodes_visited > 0);
        assert_eq!(r.stats.index_buckets, 1, "only `not` is indexed");
        // Cumulative engine stats cover the call.
        let total = e.stats();
        assert!(total.cache_lookups >= r.stats.cache_lookups);
        assert_eq!(total.cache_hits + total.cache_misses, total.cache_lookups);
    }

    #[test]
    fn cache_survives_across_normalize_calls() {
        let s = sig();
        let rs = not_not(&s);
        let e = Engine::new(&s, &rs);
        let t = parse_term(&s, "and (and r r) (not (not r))").unwrap().term;
        let first = e.normalize(&o(), &t).unwrap();
        let second = e.normalize(&o(), &t).unwrap();
        assert_eq!(first.term, second.term);
        assert_eq!(first.trace, second.trace);
        // The replay is memoized end to end: the canonical-form memo
        // hands back the first call's subject by pointer, so every
        // root-level step of the second call replays from the root-step
        // memo without touching the traversal at all.
        assert!(
            second.stats.memo_hits >= 1,
            "second call re-uses marks from the first: {:?}",
            second.stats
        );
        assert_eq!(
            second.stats.nodes_visited, 0,
            "fully memoized replay should not traverse: {:?}",
            second.stats
        );
    }

    #[test]
    fn disabled_cache_agrees_and_reports_no_lookups() {
        let s = sig();
        let rs = not_not(&s);
        let cached = Engine::new(&s, &rs);
        let uncached = Engine::with_config(
            &s,
            &rs,
            EngineConfig {
                cache: false,
                ..EngineConfig::default()
            },
        );
        let t = parse_term(&s, "and (not (not r)) (and r (not (not r)))")
            .unwrap()
            .term;
        let a = cached.normalize(&o(), &t).unwrap();
        let b = uncached.normalize(&o(), &t).unwrap();
        assert_eq!(a.term, b.term);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.trace, b.trace);
        assert_eq!(b.stats.cache_lookups, 0);
        assert!(a.stats.cache_lookups > 0);
    }

    #[test]
    fn spine_rebuild_preserves_sibling_nodes() {
        // Rewrite inside argument 1 of a 2-argument spine: argument 0's
        // node must survive by pointer so its cache entry stays valid.
        let s = sig();
        let rs = not_not(&s);
        let e = Engine::new(&s, &rs);
        let t = parse_term(&s, "and (and r r) (not (not r))").unwrap().term;
        let canon = normalize::canon(&s, &Default::default(), &Ctx::new(), &t, &o()).unwrap();
        let (next, _) = e.rewrite_once(&o(), &canon).unwrap().unwrap();
        let (_, before_apps) = canon.spine_apps();
        let (_, after_apps) = next.spine_apps();
        assert!(TermRef::ptr_eq(before_apps[0].1, after_apps[0].1));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::rule::{Rule, RuleSet};
    use hoas_core::parse::{parse_term, parse_ty};

    fn sig() -> Signature {
        Signature::parse(
            "type o.
             const and : o -> o -> o.
             const not : o -> o.
             const r : o.",
        )
        .unwrap()
    }

    #[test]
    fn trace_records_positions() {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(
            Rule::parse(
                &s,
                "not-not",
                &parse_ty("o").unwrap(),
                &[("P", "o")],
                "not (not ?P)",
                "?P",
            )
            .unwrap(),
        )
        .unwrap();
        let e = Engine::new(&s, &rs);
        // and (not (not r)) (and r (not (not r)))
        let t = parse_term(&s, "and (not (not r)) (and r (not (not r)))")
            .unwrap()
            .term;
        let out = e.normalize(&parse_ty("o").unwrap(), &t).unwrap();
        assert_eq!(out.steps, 2);
        // Leftmost-outermost: first at [0], then at [1.1].
        assert_eq!(out.trace[0].path, vec![0]);
        assert_eq!(out.trace[1].path, vec![1, 1]);
        assert_eq!(out.trace[0].to_string(), "not-not @ [0]");
        assert_eq!(out.trace[1].to_string(), "not-not @ [1.1]");
    }

    #[test]
    fn root_rewrite_has_empty_path() {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(
            Rule::parse(
                &s,
                "not-not",
                &parse_ty("o").unwrap(),
                &[("P", "o")],
                "not (not ?P)",
                "?P",
            )
            .unwrap(),
        )
        .unwrap();
        let e = Engine::new(&s, &rs);
        let t = parse_term(&s, "not (not r)").unwrap().term;
        let (_, step) = e
            .rewrite_once_traced(&parse_ty("o").unwrap(), &t)
            .unwrap()
            .unwrap();
        assert!(step.path.is_empty());
        assert_eq!(step.to_string(), "not-not @ []");
        assert_eq!(step.via, MatchPath::Pattern, "not-not is a Miller rule");
    }

    #[test]
    fn trace_records_match_path() {
        let s = Signature::parse(
            "type i.
             type o.
             const p : i -> o.
             const q : i -> o.
             const all : (i -> o) -> o.
             const a : i.",
        )
        .unwrap();
        let o = parse_ty("o").unwrap();
        let mut rs = RuleSet::new();
        // Miller rule: fast path.
        rs.push(
            Rule::parse(
                &s,
                "all-swap",
                &o,
                &[("Q", "i -> o")],
                r"all (\x. ?Q x)",
                r"all (\x. ?Q x)",
            )
            .unwrap(),
        )
        .unwrap();
        // General rule: ?F applied to a constant is outside the fragment.
        rs.push(Rule::parse(&s, "f-at-a", &o, &[("F", "i -> o")], "?F a", "?F a").unwrap())
            .unwrap();
        let e = Engine::new(&s, &rs);
        let ctx = Ctx::new();
        let miller_subject = parse_term(&s, r"all (\x. p x)").unwrap().term;
        let (_, name, via) = e.rewrite_here(&ctx, &o, &miller_subject).unwrap().unwrap();
        assert_eq!((name.as_str(), via), ("all-swap", MatchPath::Pattern));
        let general_subject = parse_term(&s, "p a").unwrap().term;
        let (_, name, via) = e.rewrite_here(&ctx, &o, &general_subject).unwrap().unwrap();
        assert_eq!((name.as_str(), via), ("f-at-a", MatchPath::General));
    }
}
