//! Rewrite rules.
//!
//! A [`Rule`] is a pair of terms over shared metavariables, both checked
//! against the rule's subject type at construction — so applying a rule
//! can never produce an ill-typed term (type preservation by
//! construction). A [`NativeRule`] is a Rust function from subterm to
//! replacement, used for δ-rules like integer constant folding.

use hoas_core::parse::{parse_term_with, MetaTable};
use hoas_core::sig::Signature;
use hoas_core::term::MetaEnv;
use hoas_core::{normalize, Term, Ty};
use hoas_unify::classify::{classify, PatternClass};
use hoas_unify::UnifyError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors from rule construction and rewriting.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum RewriteError {
    /// The rule's sides failed to parse or type-check.
    BadRule {
        /// Rule name.
        name: String,
        /// Explanation.
        reason: String,
    },
    /// Two rules with the same name were added to a [`RuleSet`]; the
    /// second would silently shadow (or be shadowed by) the first.
    DuplicateRule {
        /// The offending name.
        name: String,
    },
    /// A kernel error during traversal (ill-typed subject term).
    Core(hoas_core::Error),
    /// A unification error that indicates a malformed problem (not a
    /// mere mismatch).
    Unify(UnifyError),
    /// The step budget was exhausted before reaching a normal form.
    OutOfSteps,
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::BadRule { name, reason } => {
                write!(f, "invalid rule `{name}`: {reason}")
            }
            RewriteError::DuplicateRule { name } => {
                write!(f, "duplicate rule name `{name}` in rule set")
            }
            RewriteError::Core(e) => write!(f, "kernel error during rewriting: {e}"),
            RewriteError::Unify(e) => write!(f, "unification error during rewriting: {e}"),
            RewriteError::OutOfSteps => write!(f, "rewrite step budget exhausted"),
        }
    }
}

impl std::error::Error for RewriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RewriteError::Core(e) => Some(e),
            RewriteError::Unify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hoas_core::Error> for RewriteError {
    fn from(e: hoas_core::Error) -> Self {
        RewriteError::Core(e)
    }
}

impl From<UnifyError> for RewriteError {
    fn from(e: UnifyError) -> Self {
        RewriteError::Unify(e)
    }
}

/// A pattern rewrite rule `lhs ~> rhs : ty`.
#[derive(Clone, Debug)]
pub struct Rule {
    name: String,
    menv: MetaEnv,
    lhs: Term,
    rhs: Term,
    ty: Ty,
    /// Rigid head constant of the lhs, if any — a cheap discrimination
    /// key the engine checks before attempting a full match.
    head: Option<hoas_core::Sym>,
    /// Shallow argument fingerprint of the lhs spine: for each spine
    /// argument, its rigid head constant if it has one (`None` is a
    /// wildcard). Empty unless the lhs is neutral with a constant head.
    fingerprint: Vec<Option<hoas_core::Sym>>,
    /// Pattern-fragment classification of the lhs, computed once at
    /// construction; `Miller` rules dispatch to the deterministic pattern
    /// matcher instead of general higher-order matching.
    class: PatternClass,
}

impl Rule {
    /// Builds a rule from concrete syntax. `metas` declares the pattern
    /// variables and their types; `?X` in `lhs` and `rhs` refer to the
    /// same variable. Both sides are canonicalized and type-checked at
    /// `ty`, and the right-hand side may not introduce new metavariables.
    ///
    /// # Errors
    ///
    /// [`RewriteError::BadRule`] with an explanation.
    ///
    /// ```
    /// use hoas_core::sig::Signature;
    /// use hoas_core::parse::parse_ty;
    /// use hoas_rewrite::Rule;
    /// let sig = Signature::parse(
    ///     "type o. const and : o -> o -> o. const top : o.",
    /// )?;
    /// let rule = Rule::parse(
    ///     &sig,
    ///     "and-idempotent",
    ///     &parse_ty("o")?,
    ///     &[("P", "o")],
    ///     "and ?P ?P",
    ///     "?P",
    /// )?;
    /// assert_eq!(rule.name(), "and-idempotent");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn parse(
        sig: &Signature,
        name: &str,
        ty: &Ty,
        metas: &[(&str, &str)],
        lhs: &str,
        rhs: &str,
    ) -> Result<Rule, RewriteError> {
        let bad = |reason: String| RewriteError::BadRule {
            name: name.to_string(),
            reason,
        };
        let table = MetaTable::new();
        let pl = parse_term_with(sig, lhs, table).map_err(|e| bad(format!("lhs: {e}")))?;
        let pr =
            parse_term_with(sig, rhs, pl.metas.clone()).map_err(|e| bad(format!("rhs: {e}")))?;
        let mut menv = MetaEnv::new();
        for (mname, mty) in metas {
            let m = pr
                .metas
                .get(mname)
                .ok_or_else(|| bad(format!("metavariable ?{mname} not used in the rule")))?
                .clone();
            let parsed_ty = hoas_core::parse::parse_ty(mty)
                .map_err(|e| bad(format!("type of ?{mname}: {e}")))?;
            menv.insert(m, parsed_ty);
        }
        Rule::new(sig, name, ty.clone(), menv, pl.term, pr.term)
    }

    /// Builds a rule from already-constructed terms; both sides are
    /// canonicalized and type-checked at `ty` under `menv`.
    ///
    /// # Errors
    ///
    /// [`RewriteError::BadRule`] when a side is ill-typed, mentions an
    /// undeclared metavariable, or the rhs introduces new metavariables.
    pub fn new(
        sig: &Signature,
        name: &str,
        ty: Ty,
        menv: MetaEnv,
        lhs: Term,
        rhs: Term,
    ) -> Result<Rule, RewriteError> {
        let bad = |reason: String| RewriteError::BadRule {
            name: name.to_string(),
            reason,
        };
        for m in lhs.metas().iter().chain(rhs.metas().iter()) {
            if !menv.contains_key(m) {
                return Err(bad(format!("metavariable {m} has no declared type")));
            }
        }
        let lhs_metas = lhs.metas();
        for m in rhs.metas() {
            if !lhs_metas.contains(&m) {
                return Err(bad(format!(
                    "right-hand side introduces metavariable {m} not bound by the left-hand side"
                )));
            }
        }
        let ctx = hoas_core::ctx::Ctx::new();
        let lhs = normalize::canon(sig, &menv, &ctx, &lhs, &ty)
            .map_err(|e| bad(format!("lhs ill-typed at `{ty}`: {e}")))?;
        let rhs = normalize::canon(sig, &menv, &ctx, &rhs, &ty)
            .map_err(|e| bad(format!("rhs ill-typed at `{ty}`: {e}")))?;
        let (head, fingerprint) = match lhs.head_spine() {
            Some((hoas_core::term::Head::Const(c), args)) => {
                let fp = args
                    .iter()
                    .map(|a| match a.head_spine() {
                        Some((hoas_core::term::Head::Const(c), _)) => Some(c),
                        _ => None,
                    })
                    .collect();
                (Some(c), fp)
            }
            _ => (None, Vec::new()),
        };
        let class = classify(&lhs);
        Ok(Rule {
            name: name.to_string(),
            menv,
            lhs,
            rhs,
            ty,
            head,
            fingerprint,
            class,
        })
    }

    /// The rule's name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// The subject type the rule rewrites at.
    pub fn ty(&self) -> &Ty {
        &self.ty
    }
    /// The left-hand side (canonical).
    pub fn lhs(&self) -> &Term {
        &self.lhs
    }
    /// The right-hand side (canonical).
    pub fn rhs(&self) -> &Term {
        &self.rhs
    }
    /// Types of the pattern variables.
    pub fn menv(&self) -> &MetaEnv {
        &self.menv
    }
    /// Rigid head constant of the lhs, if any (used for rule
    /// discrimination before full matching).
    pub fn head_const(&self) -> Option<&hoas_core::Sym> {
        self.head.as_ref()
    }
    /// Shallow argument fingerprint of the lhs spine, nonempty only when
    /// the lhs is neutral with a constant head: entry `i` is `Some(c)`
    /// when spine argument `i` is itself neutral with rigid head constant
    /// `c`, `None` otherwise (a wildcard). A rigid constant head in a
    /// canonical pattern argument can only match a subject argument with
    /// the same rigid head, so the engine skips the full match when a
    /// `Some` entry disagrees with the subject's corresponding argument
    /// head.
    pub fn arg_fingerprint(&self) -> &[Option<hoas_core::Sym>] {
        &self.fingerprint
    }
    /// Pattern-fragment classification of the left-hand side, recorded at
    /// construction. [`PatternClass::Miller`] rules are matched by the
    /// deterministic pattern matcher (see
    /// [`hoas_unify::matching::match_pattern`]); `General` rules need the
    /// full pattern-unifier-plus-Huet pipeline.
    pub fn classification(&self) -> PatternClass {
        self.class
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ~> {} : {}",
            self.name, self.lhs, self.rhs, self.ty
        )
    }
}

/// The shared function backing a [`NativeRule`].
type NativeFn = Arc<dyn Fn(&Term) -> Option<Term> + Send + Sync>;

/// A δ-rule implemented as a Rust function; returns `Some(replacement)`
/// when it fires. The replacement must be a well-typed canonical term of
/// the rule's subject type in the same context (the engine re-checks in
/// debug builds).
#[derive(Clone)]
pub struct NativeRule {
    name: String,
    ty: Ty,
    f: NativeFn,
}

impl NativeRule {
    /// Builds a native rule.
    pub fn new(
        name: &str,
        ty: Ty,
        f: impl Fn(&Term) -> Option<Term> + Send + Sync + 'static,
    ) -> NativeRule {
        NativeRule {
            name: name.to_string(),
            ty,
            f: Arc::new(f),
        }
    }

    /// The rule's name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// The subject type.
    pub fn ty(&self) -> &Ty {
        &self.ty
    }
    /// Attempts to fire at `t`.
    pub fn apply(&self, t: &Term) -> Option<Term> {
        (self.f)(t)
    }
}

impl fmt::Debug for NativeRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NativeRule({} : {})", self.name, self.ty)
    }
}

/// An ordered collection of rules tried first-to-last at each position.
///
/// Alongside the rule list, the set maintains a **discrimination index**:
/// pattern rules are bucketed by the rigid head constant of their
/// left-hand side, with head-less (flex) rules in a fallback bucket. The
/// engine asks for [`RuleSet::candidates`] at each subject position and
/// only ever sees the rules that could possibly match there, in the same
/// first-to-last order a linear scan would have produced. The index is
/// rebuilt incrementally on [`RuleSet::push`], so it can never go stale.
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
    native: Vec<NativeRule>,
    /// Rule indices bucketed by rigid lhs head constant, each bucket in
    /// ascending (insertion) order.
    by_head: HashMap<hoas_core::Sym, Vec<usize>>,
    /// Indices of rules whose lhs has no rigid head constant; these can
    /// match any subject and are merged into every candidate list.
    flex: Vec<usize>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Assembles a rule set from parts, rebuilding the discrimination
    /// index. Unlike [`RuleSet::push`] this performs **no** duplicate-name
    /// check: it is the entry point for hand-assembled sets (including
    /// deliberately malformed ones fed to [`RuleSet::analyze`], which
    /// recomputes duplicates itself).
    ///
    /// [`RuleSet::analyze`]: crate::analysis
    pub fn from_parts(rules: Vec<Rule>, native: Vec<NativeRule>) -> RuleSet {
        let mut rs = RuleSet {
            rules,
            native,
            by_head: HashMap::new(),
            flex: Vec::new(),
        };
        rs.rebuild_index();
        rs
    }

    /// Decomposes the set into its pattern and native rules, consuming it.
    pub fn into_parts(self) -> (Vec<Rule>, Vec<NativeRule>) {
        (self.rules, self.native)
    }

    /// Adds a pattern rule.
    ///
    /// # Errors
    ///
    /// [`RewriteError::DuplicateRule`] if a rule (pattern or native) with
    /// the same name is already present — a second rule of the same name
    /// would be silently shadowed in traces and reports (analyzer
    /// diagnostic `HA006`).
    pub fn push(&mut self, rule: Rule) -> Result<&mut Self, RewriteError> {
        self.check_fresh_name(rule.name())?;
        self.index_rule(self.rules.len(), &rule);
        self.rules.push(rule);
        Ok(self)
    }

    /// Adds a native rule.
    ///
    /// # Errors
    ///
    /// [`RewriteError::DuplicateRule`] as for [`RuleSet::push`].
    pub fn push_native(&mut self, rule: NativeRule) -> Result<&mut Self, RewriteError> {
        self.check_fresh_name(rule.name())?;
        self.native.push(rule);
        Ok(self)
    }

    /// Adds a batch of pattern rules, attempting *every* rule before
    /// reporting: duplicates are skipped and all of them returned, so
    /// one bad name does not mask later ones (unlike a `push` loop,
    /// which stops — and stays silent about — everything after the
    /// first error).
    ///
    /// # Errors
    ///
    /// One [`RewriteError::DuplicateRule`] per rejected rule, in input
    /// order. The accepted rules are in the set either way.
    pub fn push_all(
        &mut self,
        rules: impl IntoIterator<Item = Rule>,
    ) -> Result<&mut Self, Vec<RewriteError>> {
        let mut rejected = Vec::new();
        for rule in rules {
            if let Err(e) = self.push(rule) {
                rejected.push(e);
            }
        }
        if rejected.is_empty() {
            Ok(self)
        } else {
            Err(rejected)
        }
    }

    /// Keeps only the first `n` pattern rules (native rules are
    /// untouched), rebuilding the index.
    pub fn truncate_rules(&mut self, n: usize) {
        self.rules.truncate(n);
        self.rebuild_index();
    }

    fn index_rule(&mut self, idx: usize, rule: &Rule) {
        match rule.head_const() {
            Some(c) => self.by_head.entry(c.clone()).or_default().push(idx),
            None => self.flex.push(idx),
        }
    }

    fn rebuild_index(&mut self) {
        self.by_head.clear();
        self.flex.clear();
        for i in 0..self.rules.len() {
            match self.rules[i].head_const().cloned() {
                Some(c) => self.by_head.entry(c).or_default().push(i),
                None => self.flex.push(i),
            }
        }
    }

    fn check_fresh_name(&self, name: &str) -> Result<(), RewriteError> {
        if self.names().contains(&name) {
            return Err(RewriteError::DuplicateRule {
                name: name.to_string(),
            });
        }
        Ok(())
    }

    /// The pattern rules, in insertion order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The native δ-rules, in insertion order.
    pub fn native_rules(&self) -> &[NativeRule] {
        &self.native
    }

    /// The pattern rules that could match a subject whose rigid head
    /// constant is `head` (`None` for subjects without one), in the same
    /// first-to-last order a scan of the full list would try them: the
    /// head's bucket merged with the flex fallback bucket by ascending
    /// insertion index. O(bucket), not O(rules).
    pub fn candidates(&self, head: Option<&hoas_core::Sym>) -> Candidates<'_> {
        static EMPTY: &[usize] = &[];
        let bucket = head
            .and_then(|c| self.by_head.get(c))
            .map_or(EMPTY, Vec::as_slice);
        Candidates {
            rules: &self.rules,
            bucket,
            flex: &self.flex,
            bi: 0,
            fi: 0,
        }
    }

    /// Index shape: `(number of head buckets, size of the largest
    /// bucket)` where the flex fallback counts as a bucket when nonempty.
    pub fn index_stats(&self) -> (usize, usize) {
        let buckets = self.by_head.len() + usize::from(!self.flex.is_empty());
        let max = self
            .by_head
            .values()
            .map(Vec::len)
            .chain(std::iter::once(self.flex.len()))
            .max()
            .unwrap_or(0);
        (buckets, max)
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.rules.len() + self.native.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.native.is_empty()
    }

    /// Names of all rules, pattern rules first.
    pub fn names(&self) -> Vec<&str> {
        self.rules
            .iter()
            .map(|r| r.name())
            .chain(self.native.iter().map(|r| r.name()))
            .collect()
    }
}

/// Iterator over the pattern rules that could match a given subject head,
/// produced by [`RuleSet::candidates`]: a two-pointer merge of the head's
/// bucket and the flex fallback bucket, yielding rules in ascending
/// insertion order (i.e. exactly the order a linear scan would try them).
pub struct Candidates<'a> {
    rules: &'a [Rule],
    bucket: &'a [usize],
    flex: &'a [usize],
    bi: usize,
    fi: usize,
}

impl<'a> Iterator for Candidates<'a> {
    type Item = &'a Rule;

    fn next(&mut self) -> Option<&'a Rule> {
        let idx = match (self.bucket.get(self.bi), self.flex.get(self.fi)) {
            (Some(&b), Some(&f)) => {
                if b < f {
                    self.bi += 1;
                    b
                } else {
                    self.fi += 1;
                    f
                }
            }
            (Some(&b), None) => {
                self.bi += 1;
                b
            }
            (None, Some(&f)) => {
                self.fi += 1;
                f
            }
            (None, None) => return None,
        };
        Some(&self.rules[idx])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.bucket.len() - self.bi) + (self.flex.len() - self.fi);
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::parse::parse_ty;

    fn sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const not : o -> o.
             const forall : (i -> o) -> o.
             const p : i -> o.
             const r : o.",
        )
        .unwrap()
    }

    #[test]
    fn parse_and_display() {
        hoas_core::StoreHandle::isolated().enter(|| {
            // Isolated store: this test asserts printed hints, which are
            // canonical per α-class per store (first intern wins).
            let s = sig();
            let rule = Rule::parse(
                &s,
                "not-not",
                &parse_ty("o").unwrap(),
                &[("P", "o")],
                "not (not ?P)",
                "?P",
            )
            .unwrap();
            assert_eq!(rule.to_string(), "not-not: not (not ?P) ~> ?P : o");
            assert_eq!(rule.menv().len(), 1);
        })
    }

    #[test]
    fn rejects_untyped_meta() {
        let s = sig();
        let err = Rule::parse(&s, "bad", &parse_ty("o").unwrap(), &[], "not ?P", "?P").unwrap_err();
        assert!(err.to_string().contains("no declared type"));
    }

    #[test]
    fn rejects_rhs_only_meta() {
        let s = sig();
        let err = Rule::parse(
            &s,
            "bad",
            &parse_ty("o").unwrap(),
            &[("P", "o"), ("Q", "o")],
            "not ?P",
            "and ?P ?Q",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not bound by the left-hand side"));
    }

    #[test]
    fn rejects_ill_typed_sides() {
        let s = sig();
        let err = Rule::parse(
            &s,
            "bad",
            &parse_ty("o").unwrap(),
            &[("P", "o")],
            "and ?P",
            "?P",
        )
        .unwrap_err();
        assert!(matches!(err, RewriteError::BadRule { .. }));
    }

    #[test]
    fn canonicalizes_sides() {
        // η-short rule text is accepted and stored η-long.
        let s = sig();
        let rule = Rule::parse(
            &s,
            "forall-eta",
            &parse_ty("o").unwrap(),
            &[("Q", "i -> o")],
            "forall ?Q",
            r"forall (\x. ?Q x)",
        )
        .unwrap();
        assert_eq!(rule.lhs(), rule.rhs(), "both sides canonicalize equally");
    }

    #[test]
    fn native_rule_fires() {
        let rule = NativeRule::new("to-r", parse_ty("o").unwrap(), |t| {
            (t == &Term::cnst("r")).then(|| Term::cnst("r"))
        });
        assert!(rule.apply(&Term::cnst("r")).is_some());
        assert!(rule.apply(&Term::Unit).is_none());
        assert_eq!(format!("{rule:?}"), "NativeRule(to-r : o)");
    }

    #[test]
    fn ruleset_collects_names() {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(
            Rule::parse(
                &s,
                "a",
                &parse_ty("o").unwrap(),
                &[("P", "o")],
                "not (not ?P)",
                "?P",
            )
            .unwrap(),
        )
        .unwrap();
        rs.push_native(NativeRule::new("b", parse_ty("o").unwrap(), |_| None))
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        assert_eq!(rs.names(), vec!["a", "b"]);
    }

    #[test]
    fn ruleset_rejects_duplicate_names() {
        let s = sig();
        let rule = || {
            Rule::parse(
                &s,
                "a",
                &parse_ty("o").unwrap(),
                &[("P", "o")],
                "not (not ?P)",
                "?P",
            )
            .unwrap()
        };
        let mut rs = RuleSet::new();
        rs.push(rule()).unwrap();
        let err = rs.push(rule()).unwrap_err();
        assert!(matches!(err, RewriteError::DuplicateRule { ref name } if name == "a"));
        assert!(err.to_string().contains("duplicate rule name `a`"));
        // Pattern and native rules share one namespace.
        let err = rs
            .push_native(NativeRule::new("a", parse_ty("o").unwrap(), |_| None))
            .unwrap_err();
        assert!(matches!(err, RewriteError::DuplicateRule { .. }));
        assert_eq!(rs.len(), 1, "rejected rules are not added");
    }

    #[test]
    fn push_all_reports_every_duplicate_not_just_the_first() {
        let s = sig();
        let o = parse_ty("o").unwrap();
        let named =
            |name: &str| Rule::parse(&s, name, &o, &[("P", "o")], "not (not ?P)", "?P").unwrap();
        let mut rs = RuleSet::new();
        let errs = rs
            .push_all([named("a"), named("a"), named("b"), named("b"), named("c")])
            .unwrap_err();
        // Both collisions are reported, and the good rules all landed.
        assert_eq!(errs.len(), 2);
        assert!(
            matches!(&errs[0], RewriteError::DuplicateRule { name } if name == "a"),
            "{errs:?}"
        );
        assert!(matches!(&errs[1], RewriteError::DuplicateRule { name } if name == "b"));
        assert_eq!(rs.names(), vec!["a", "b", "c"]);
        rs.push_all([named("d")]).unwrap();
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn index_dispatch_finds_rules_pushed_out_of_head_order() {
        // Interleave heads (not, and, not, flex, and) so every bucket is
        // built up across non-adjacent pushes, then check that candidate
        // dispatch still sees exactly the rules a linear scan would, in
        // the same order.
        let s = sig();
        let o = parse_ty("o").unwrap();
        let mut rs = RuleSet::new();
        rs.push(Rule::parse(&s, "n1", &o, &[("P", "o")], "not (not ?P)", "?P").unwrap())
            .unwrap();
        rs.push(Rule::parse(&s, "a1", &o, &[("P", "o")], "and ?P ?P", "?P").unwrap())
            .unwrap();
        rs.push(Rule::parse(&s, "n2", &o, &[("P", "o")], "not (and ?P ?P)", "not ?P").unwrap())
            .unwrap();
        // Flex lhs (metavariable head): lands in the fallback bucket.
        rs.push(
            Rule::parse(
                &s,
                "flex",
                &o,
                &[("F", "i -> o"), ("X", "i")],
                "?F ?X",
                "?F ?X",
            )
            .unwrap(),
        )
        .unwrap();
        rs.push(Rule::parse(&s, "a2", &o, &[("P", "o"), ("Q", "o")], "and ?P ?Q", "?Q").unwrap())
            .unwrap();

        let names = |head: Option<&str>| -> Vec<&str> {
            rs.candidates(head.map(hoas_core::Sym::new).as_ref())
                .map(Rule::name)
                .collect()
        };
        // Bucket + flex merged in insertion order, exactly as a scan.
        assert_eq!(names(Some("not")), vec!["n1", "n2", "flex"]);
        assert_eq!(names(Some("and")), vec!["a1", "flex", "a2"]);
        assert_eq!(names(Some("forall")), vec!["flex"]);
        assert_eq!(names(None), vec!["flex"]);
        // Every pattern rule is reachable through some bucket.
        let mut reachable: Vec<&str> = names(Some("not"));
        reachable.extend(names(Some("and")));
        for rule in rs.rules() {
            assert!(reachable.contains(&rule.name()), "{} lost", rule.name());
        }
        let (buckets, max) = rs.index_stats();
        assert_eq!(buckets, 3, "not, and, flex");
        assert_eq!(max, 2);
    }

    #[test]
    fn from_parts_and_truncate_rebuild_the_index() {
        let s = sig();
        let o = parse_ty("o").unwrap();
        let r1 = Rule::parse(&s, "n1", &o, &[("P", "o")], "not (not ?P)", "?P").unwrap();
        let r2 = Rule::parse(&s, "a1", &o, &[("P", "o")], "and ?P ?P", "?P").unwrap();
        let mut rs = RuleSet::from_parts(vec![r1, r2], Vec::new());
        assert_eq!(
            rs.candidates(Some(&hoas_core::Sym::new("and")))
                .map(Rule::name)
                .collect::<Vec<_>>(),
            vec!["a1"]
        );
        rs.truncate_rules(1);
        assert_eq!(rs.len(), 1);
        assert!(rs
            .candidates(Some(&hoas_core::Sym::new("and")))
            .next()
            .is_none());
        assert_eq!(
            rs.candidates(Some(&hoas_core::Sym::new("not")))
                .map(Rule::name)
                .collect::<Vec<_>>(),
            vec!["n1"]
        );
    }

    #[test]
    fn arg_fingerprints_record_rigid_arg_heads() {
        let s = sig();
        let o = parse_ty("o").unwrap();
        let rule = Rule::parse(
            &s,
            "extract",
            &o,
            &[("P", "o"), ("Q", "i -> o")],
            r"and (forall (\x. ?Q x)) ?P",
            r"forall (\x. and (?Q x) ?P)",
        )
        .unwrap();
        assert_eq!(
            rule.arg_fingerprint(),
            &[Some(hoas_core::Sym::new("forall")), None]
        );
    }

    #[test]
    fn rules_record_their_classification() {
        let s = sig();
        let miller = Rule::parse(
            &s,
            "forall-triv",
            &parse_ty("o").unwrap(),
            &[("Q", "i -> o")],
            r"forall (\x. ?Q x)",
            r"forall (\x. ?Q x)",
        )
        .unwrap();
        assert_eq!(miller.classification(), PatternClass::Miller);
        let general = Rule::parse(
            &s,
            "beta-general",
            &parse_ty("o").unwrap(),
            &[("F", "i -> o"), ("X", "i")],
            "?F ?X",
            "?F ?X",
        )
        .unwrap();
        assert_eq!(general.classification(), PatternClass::General);
    }
}
