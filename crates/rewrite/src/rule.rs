//! Rewrite rules.
//!
//! A [`Rule`] is a pair of terms over shared metavariables, both checked
//! against the rule's subject type at construction — so applying a rule
//! can never produce an ill-typed term (type preservation by
//! construction). A [`NativeRule`] is a Rust function from subterm to
//! replacement, used for δ-rules like integer constant folding.

use hoas_core::parse::{parse_term_with, MetaTable};
use hoas_core::sig::Signature;
use hoas_core::term::MetaEnv;
use hoas_core::{normalize, Term, Ty};
use hoas_unify::classify::{classify, PatternClass};
use hoas_unify::UnifyError;
use std::fmt;
use std::sync::Arc;

/// Errors from rule construction and rewriting.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum RewriteError {
    /// The rule's sides failed to parse or type-check.
    BadRule {
        /// Rule name.
        name: String,
        /// Explanation.
        reason: String,
    },
    /// Two rules with the same name were added to a [`RuleSet`]; the
    /// second would silently shadow (or be shadowed by) the first.
    DuplicateRule {
        /// The offending name.
        name: String,
    },
    /// A kernel error during traversal (ill-typed subject term).
    Core(hoas_core::Error),
    /// A unification error that indicates a malformed problem (not a
    /// mere mismatch).
    Unify(UnifyError),
    /// The step budget was exhausted before reaching a normal form.
    OutOfSteps,
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::BadRule { name, reason } => {
                write!(f, "invalid rule `{name}`: {reason}")
            }
            RewriteError::DuplicateRule { name } => {
                write!(f, "duplicate rule name `{name}` in rule set")
            }
            RewriteError::Core(e) => write!(f, "kernel error during rewriting: {e}"),
            RewriteError::Unify(e) => write!(f, "unification error during rewriting: {e}"),
            RewriteError::OutOfSteps => write!(f, "rewrite step budget exhausted"),
        }
    }
}

impl std::error::Error for RewriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RewriteError::Core(e) => Some(e),
            RewriteError::Unify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hoas_core::Error> for RewriteError {
    fn from(e: hoas_core::Error) -> Self {
        RewriteError::Core(e)
    }
}

impl From<UnifyError> for RewriteError {
    fn from(e: UnifyError) -> Self {
        RewriteError::Unify(e)
    }
}

/// A pattern rewrite rule `lhs ~> rhs : ty`.
#[derive(Clone, Debug)]
pub struct Rule {
    name: String,
    menv: MetaEnv,
    lhs: Term,
    rhs: Term,
    ty: Ty,
    /// Rigid head constant of the lhs, if any — a cheap discrimination
    /// key the engine checks before attempting a full match.
    head: Option<hoas_core::Sym>,
    /// Pattern-fragment classification of the lhs, computed once at
    /// construction; `Miller` rules dispatch to the deterministic pattern
    /// matcher instead of general higher-order matching.
    class: PatternClass,
}

impl Rule {
    /// Builds a rule from concrete syntax. `metas` declares the pattern
    /// variables and their types; `?X` in `lhs` and `rhs` refer to the
    /// same variable. Both sides are canonicalized and type-checked at
    /// `ty`, and the right-hand side may not introduce new metavariables.
    ///
    /// # Errors
    ///
    /// [`RewriteError::BadRule`] with an explanation.
    ///
    /// ```
    /// use hoas_core::sig::Signature;
    /// use hoas_core::parse::parse_ty;
    /// use hoas_rewrite::Rule;
    /// let sig = Signature::parse(
    ///     "type o. const and : o -> o -> o. const top : o.",
    /// )?;
    /// let rule = Rule::parse(
    ///     &sig,
    ///     "and-idempotent",
    ///     &parse_ty("o")?,
    ///     &[("P", "o")],
    ///     "and ?P ?P",
    ///     "?P",
    /// )?;
    /// assert_eq!(rule.name(), "and-idempotent");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn parse(
        sig: &Signature,
        name: &str,
        ty: &Ty,
        metas: &[(&str, &str)],
        lhs: &str,
        rhs: &str,
    ) -> Result<Rule, RewriteError> {
        let bad = |reason: String| RewriteError::BadRule {
            name: name.to_string(),
            reason,
        };
        let table = MetaTable::new();
        let pl = parse_term_with(sig, lhs, table).map_err(|e| bad(format!("lhs: {e}")))?;
        let pr =
            parse_term_with(sig, rhs, pl.metas.clone()).map_err(|e| bad(format!("rhs: {e}")))?;
        let mut menv = MetaEnv::new();
        for (mname, mty) in metas {
            let m = pr
                .metas
                .get(mname)
                .ok_or_else(|| bad(format!("metavariable ?{mname} not used in the rule")))?
                .clone();
            let parsed_ty = hoas_core::parse::parse_ty(mty)
                .map_err(|e| bad(format!("type of ?{mname}: {e}")))?;
            menv.insert(m, parsed_ty);
        }
        Rule::new(sig, name, ty.clone(), menv, pl.term, pr.term)
    }

    /// Builds a rule from already-constructed terms; both sides are
    /// canonicalized and type-checked at `ty` under `menv`.
    ///
    /// # Errors
    ///
    /// [`RewriteError::BadRule`] when a side is ill-typed, mentions an
    /// undeclared metavariable, or the rhs introduces new metavariables.
    pub fn new(
        sig: &Signature,
        name: &str,
        ty: Ty,
        menv: MetaEnv,
        lhs: Term,
        rhs: Term,
    ) -> Result<Rule, RewriteError> {
        let bad = |reason: String| RewriteError::BadRule {
            name: name.to_string(),
            reason,
        };
        for m in lhs.metas().iter().chain(rhs.metas().iter()) {
            if !menv.contains_key(m) {
                return Err(bad(format!("metavariable {m} has no declared type")));
            }
        }
        let lhs_metas = lhs.metas();
        for m in rhs.metas() {
            if !lhs_metas.contains(&m) {
                return Err(bad(format!(
                    "right-hand side introduces metavariable {m} not bound by the left-hand side"
                )));
            }
        }
        let ctx = hoas_core::ctx::Ctx::new();
        let lhs = normalize::canon(sig, &menv, &ctx, &lhs, &ty)
            .map_err(|e| bad(format!("lhs ill-typed at `{ty}`: {e}")))?;
        let rhs = normalize::canon(sig, &menv, &ctx, &rhs, &ty)
            .map_err(|e| bad(format!("rhs ill-typed at `{ty}`: {e}")))?;
        let head = match lhs.head_spine() {
            Some((hoas_core::term::Head::Const(c), _)) => Some(c),
            _ => None,
        };
        let class = classify(&lhs);
        Ok(Rule {
            name: name.to_string(),
            menv,
            lhs,
            rhs,
            ty,
            head,
            class,
        })
    }

    /// The rule's name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// The subject type the rule rewrites at.
    pub fn ty(&self) -> &Ty {
        &self.ty
    }
    /// The left-hand side (canonical).
    pub fn lhs(&self) -> &Term {
        &self.lhs
    }
    /// The right-hand side (canonical).
    pub fn rhs(&self) -> &Term {
        &self.rhs
    }
    /// Types of the pattern variables.
    pub fn menv(&self) -> &MetaEnv {
        &self.menv
    }
    /// Rigid head constant of the lhs, if any (used for rule
    /// discrimination before full matching).
    pub fn head_const(&self) -> Option<&hoas_core::Sym> {
        self.head.as_ref()
    }
    /// Pattern-fragment classification of the left-hand side, recorded at
    /// construction. [`PatternClass::Miller`] rules are matched by the
    /// deterministic pattern matcher (see
    /// [`hoas_unify::matching::match_pattern`]); `General` rules need the
    /// full pattern-unifier-plus-Huet pipeline.
    pub fn classification(&self) -> PatternClass {
        self.class
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ~> {} : {}",
            self.name, self.lhs, self.rhs, self.ty
        )
    }
}

/// The shared function backing a [`NativeRule`].
type NativeFn = Arc<dyn Fn(&Term) -> Option<Term> + Send + Sync>;

/// A δ-rule implemented as a Rust function; returns `Some(replacement)`
/// when it fires. The replacement must be a well-typed canonical term of
/// the rule's subject type in the same context (the engine re-checks in
/// debug builds).
#[derive(Clone)]
pub struct NativeRule {
    name: String,
    ty: Ty,
    f: NativeFn,
}

impl NativeRule {
    /// Builds a native rule.
    pub fn new(
        name: &str,
        ty: Ty,
        f: impl Fn(&Term) -> Option<Term> + Send + Sync + 'static,
    ) -> NativeRule {
        NativeRule {
            name: name.to_string(),
            ty,
            f: Arc::new(f),
        }
    }

    /// The rule's name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// The subject type.
    pub fn ty(&self) -> &Ty {
        &self.ty
    }
    /// Attempts to fire at `t`.
    pub fn apply(&self, t: &Term) -> Option<Term> {
        (self.f)(t)
    }
}

impl fmt::Debug for NativeRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NativeRule({} : {})", self.name, self.ty)
    }
}

/// An ordered collection of rules tried first-to-last at each position.
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    /// Pattern rules.
    pub rules: Vec<Rule>,
    /// Native δ-rules.
    pub native: Vec<NativeRule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Adds a pattern rule.
    ///
    /// # Errors
    ///
    /// [`RewriteError::DuplicateRule`] if a rule (pattern or native) with
    /// the same name is already present — a second rule of the same name
    /// would be silently shadowed in traces and reports (analyzer
    /// diagnostic `HA006`).
    pub fn push(&mut self, rule: Rule) -> Result<&mut Self, RewriteError> {
        self.check_fresh_name(rule.name())?;
        self.rules.push(rule);
        Ok(self)
    }

    /// Adds a native rule.
    ///
    /// # Errors
    ///
    /// [`RewriteError::DuplicateRule`] as for [`RuleSet::push`].
    pub fn push_native(&mut self, rule: NativeRule) -> Result<&mut Self, RewriteError> {
        self.check_fresh_name(rule.name())?;
        self.native.push(rule);
        Ok(self)
    }

    fn check_fresh_name(&self, name: &str) -> Result<(), RewriteError> {
        if self.names().contains(&name) {
            return Err(RewriteError::DuplicateRule {
                name: name.to_string(),
            });
        }
        Ok(())
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.rules.len() + self.native.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.native.is_empty()
    }

    /// Names of all rules, pattern rules first.
    pub fn names(&self) -> Vec<&str> {
        self.rules
            .iter()
            .map(|r| r.name())
            .chain(self.native.iter().map(|r| r.name()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::parse::parse_ty;

    fn sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const not : o -> o.
             const forall : (i -> o) -> o.
             const p : i -> o.
             const r : o.",
        )
        .unwrap()
    }

    #[test]
    fn parse_and_display() {
        let s = sig();
        let rule = Rule::parse(
            &s,
            "not-not",
            &parse_ty("o").unwrap(),
            &[("P", "o")],
            "not (not ?P)",
            "?P",
        )
        .unwrap();
        assert_eq!(rule.to_string(), "not-not: not (not ?P) ~> ?P : o");
        assert_eq!(rule.menv().len(), 1);
    }

    #[test]
    fn rejects_untyped_meta() {
        let s = sig();
        let err = Rule::parse(&s, "bad", &parse_ty("o").unwrap(), &[], "not ?P", "?P").unwrap_err();
        assert!(err.to_string().contains("no declared type"));
    }

    #[test]
    fn rejects_rhs_only_meta() {
        let s = sig();
        let err = Rule::parse(
            &s,
            "bad",
            &parse_ty("o").unwrap(),
            &[("P", "o"), ("Q", "o")],
            "not ?P",
            "and ?P ?Q",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not bound by the left-hand side"));
    }

    #[test]
    fn rejects_ill_typed_sides() {
        let s = sig();
        let err = Rule::parse(
            &s,
            "bad",
            &parse_ty("o").unwrap(),
            &[("P", "o")],
            "and ?P",
            "?P",
        )
        .unwrap_err();
        assert!(matches!(err, RewriteError::BadRule { .. }));
    }

    #[test]
    fn canonicalizes_sides() {
        // η-short rule text is accepted and stored η-long.
        let s = sig();
        let rule = Rule::parse(
            &s,
            "forall-eta",
            &parse_ty("o").unwrap(),
            &[("Q", "i -> o")],
            "forall ?Q",
            r"forall (\x. ?Q x)",
        )
        .unwrap();
        assert_eq!(rule.lhs(), rule.rhs(), "both sides canonicalize equally");
    }

    #[test]
    fn native_rule_fires() {
        let rule = NativeRule::new("to-r", parse_ty("o").unwrap(), |t| {
            (t == &Term::cnst("r")).then(|| Term::cnst("r"))
        });
        assert!(rule.apply(&Term::cnst("r")).is_some());
        assert!(rule.apply(&Term::Unit).is_none());
        assert_eq!(format!("{rule:?}"), "NativeRule(to-r : o)");
    }

    #[test]
    fn ruleset_collects_names() {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(
            Rule::parse(
                &s,
                "a",
                &parse_ty("o").unwrap(),
                &[("P", "o")],
                "not (not ?P)",
                "?P",
            )
            .unwrap(),
        )
        .unwrap();
        rs.push_native(NativeRule::new("b", parse_ty("o").unwrap(), |_| None))
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        assert_eq!(rs.names(), vec!["a", "b"]);
    }

    #[test]
    fn ruleset_rejects_duplicate_names() {
        let s = sig();
        let rule = || {
            Rule::parse(
                &s,
                "a",
                &parse_ty("o").unwrap(),
                &[("P", "o")],
                "not (not ?P)",
                "?P",
            )
            .unwrap()
        };
        let mut rs = RuleSet::new();
        rs.push(rule()).unwrap();
        let err = rs.push(rule()).unwrap_err();
        assert!(matches!(err, RewriteError::DuplicateRule { ref name } if name == "a"));
        assert!(err.to_string().contains("duplicate rule name `a`"));
        // Pattern and native rules share one namespace.
        let err = rs
            .push_native(NativeRule::new("a", parse_ty("o").unwrap(), |_| None))
            .unwrap_err();
        assert!(matches!(err, RewriteError::DuplicateRule { .. }));
        assert_eq!(rs.len(), 1, "rejected rules are not added");
    }

    #[test]
    fn rules_record_their_classification() {
        let s = sig();
        let miller = Rule::parse(
            &s,
            "forall-triv",
            &parse_ty("o").unwrap(),
            &[("Q", "i -> o")],
            r"forall (\x. ?Q x)",
            r"forall (\x. ?Q x)",
        )
        .unwrap();
        assert_eq!(miller.classification(), PatternClass::Miller);
        let general = Rule::parse(
            &s,
            "beta-general",
            &parse_ty("o").unwrap(),
            &[("F", "i -> o"), ("X", "i")],
            "?F ?X",
            "?F ?X",
        )
        .unwrap();
        assert_eq!(general.classification(), PatternClass::General);
    }
}
