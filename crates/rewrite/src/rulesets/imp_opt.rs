//! Optimizations for the imperative language — the paper's
//! program-transformation example (experiment E4).
//!
//! * **Pattern rules** handle everything involving binding structure:
//!   dead-declaration elimination (`local e (\x. c) ~> c` — the "x unused"
//!   side condition *is* the pattern), `skip` unit laws, and `if` with
//!   identical branches.
//! * **Native δ-rules** handle integer arithmetic the metalanguage treats
//!   as opaque: constant folding of `add`/`sub`/`mul` on literals,
//!   algebraic identities, and branch folding of conditionals whose test
//!   compares literals.

use crate::rule::{NativeRule, RewriteError, Rule, RuleSet};
use hoas_core::sig::Signature;
use hoas_core::{Term, Ty};

fn lit_of(t: &Term) -> Option<i64> {
    match t.spine() {
        (Term::Const(c), args) if c.as_str() == "lit" && args.len() == 1 => match args[0] {
            Term::Int(n) => Some(*n),
            _ => None,
        },
        _ => None,
    }
}

fn lit(n: i64) -> Term {
    Term::app(Term::cnst("lit"), Term::Int(n))
}

/// Builds the optimization rule set for the imperative-language signature
/// ([`hoas_langs::imp::signature`]).
///
/// # Errors
///
/// [`RewriteError::BadRule`] if `sig` lacks the constructors.
pub fn rules(sig: &Signature) -> Result<RuleSet, RewriteError> {
    let cmd = Ty::base("cmd");
    let aexp = Ty::base("aexp");
    let mut rs = RuleSet::new();

    // --- pattern rules on commands ---
    rs.push(Rule::parse(
        sig,
        "seq-skip-left",
        &cmd,
        &[("C", "cmd")],
        "seq skip ?C",
        "?C",
    )?)?;
    rs.push(Rule::parse(
        sig,
        "seq-skip-right",
        &cmd,
        &[("C", "cmd")],
        "seq ?C skip",
        "?C",
    )?)?;
    // Dead declaration: the scope ignores its variable — a vacuous-binder
    // pattern. Initializers are pure (aexp), so this is unconditionally
    // sound.
    rs.push(Rule::parse(
        sig,
        "dead-local",
        &cmd,
        &[("E", "aexp"), ("C", "cmd")],
        r"local ?E (\x. ?C)",
        "?C",
    )?)?;
    // If with identical branches (tests are pure).
    rs.push(Rule::parse(
        sig,
        "if-same",
        &cmd,
        &[("B", "bexp"), ("C", "cmd")],
        "ifc ?B ?C ?C",
        "?C",
    )?)?;
    // while with a test that is literally false never runs; handled by the
    // native branch-folding rules below (tests have no boolean literals).

    // --- native δ-rules on arithmetic ---
    rs.push_native(NativeRule::new("fold-arith", aexp.clone(), |t| {
        let (head, args) = t.spine();
        let op = match head {
            Term::Const(c) => c.as_str(),
            _ => return None,
        };
        if args.len() != 2 {
            return None;
        }
        let (a, b) = (lit_of(args[0]), lit_of(args[1]));
        match (op, a, b) {
            ("add", Some(x), Some(y)) => Some(lit(x.wrapping_add(y))),
            ("sub", Some(x), Some(y)) => Some(lit(x.wrapping_sub(y))),
            ("mul", Some(x), Some(y)) => Some(lit(x.wrapping_mul(y))),
            _ => None,
        }
    }))?;
    rs.push_native(NativeRule::new("arith-identities", aexp, |t| {
        let (head, args) = t.spine();
        let op = match head {
            Term::Const(c) => c.as_str(),
            _ => return None,
        };
        if args.len() != 2 {
            return None;
        }
        let (a, b) = (lit_of(args[0]), lit_of(args[1]));
        match (op, a, b) {
            ("add", Some(0), _) => Some(args[1].clone()),
            ("add", _, Some(0)) => Some(args[0].clone()),
            ("sub", _, Some(0)) => Some(args[0].clone()),
            ("mul", Some(1), _) => Some(args[1].clone()),
            ("mul", _, Some(1)) => Some(args[0].clone()),
            // 0 * e and e * 0 are sound because aexps are pure.
            ("mul", Some(0), _) | ("mul", _, Some(0)) => Some(lit(0)),
            _ => None,
        }
    }))?;
    // Fold conditionals/loops whose test compares literals.
    rs.push_native(NativeRule::new("fold-branch", Ty::base("cmd"), |t| {
        let (head, args) = t.spine();
        let op = match head {
            Term::Const(c) => c.as_str(),
            _ => return None,
        };
        let test_value = |b: &Term| -> Option<bool> {
            let (bh, bargs) = b.spine();
            let bop = match bh {
                Term::Const(c) => c.as_str(),
                _ => return None,
            };
            if bargs.len() != 2 {
                return None;
            }
            let (x, y) = (lit_of(bargs[0])?, lit_of(bargs[1])?);
            match bop {
                "le" => Some(x <= y),
                "eqb" => Some(x == y),
                _ => None,
            }
        };
        match (op, args.as_slice()) {
            ("ifc", [b, th, el]) => match test_value(b)? {
                true => Some((*th).clone()),
                false => Some((*el).clone()),
            },
            // Only the false case is safe for loops (true would diverge).
            ("while", [b, _body]) => match test_value(b)? {
                false => Some(Term::cnst("skip")),
                true => None,
            },
            _ => None,
        }
    }))?;
    Ok(rs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use hoas_langs::imp::{self, Aexp, Bexp, Cmd};
    use hoas_testkit::rng::SmallRng;

    fn optimize(c: &Cmd) -> (Cmd, usize) {
        let sig = imp::signature();
        let rs = rules(sig).unwrap();
        let engine = Engine::new(sig, &rs);
        let t = imp::encode(c).unwrap();
        let r = engine.normalize(&imp::cmd_ty(), &t).unwrap();
        assert!(r.fixpoint, "optimizer must terminate");
        (imp::decode(&r.term).unwrap(), r.steps)
    }

    #[test]
    fn constant_folding_chain() {
        // print ((1 + 2) * (3 + 4)) → print 21
        let c = Cmd::local(
            "x",
            Aexp::Num(0),
            Cmd::Print(Aexp::mul(
                Aexp::add(Aexp::Num(1), Aexp::Num(2)),
                Aexp::add(Aexp::Num(3), Aexp::Num(4)),
            )),
        );
        let (opt, steps) = optimize(&c);
        assert!(steps >= 3);
        // Dead local also removed.
        assert_eq!(opt, Cmd::Print(Aexp::Num(21)));
    }

    #[test]
    fn dead_local_eliminated_only_when_unused() {
        let dead = Cmd::local("x", Aexp::Num(5), Cmd::Print(Aexp::Num(1)));
        let (opt, _) = optimize(&dead);
        assert_eq!(opt, Cmd::Print(Aexp::Num(1)));
        let live = Cmd::local("x", Aexp::Num(5), Cmd::Print(Aexp::var("x")));
        let (opt, steps) = optimize(&live);
        assert_eq!(steps, 0);
        assert!(matches!(opt, Cmd::Local(..)));
    }

    #[test]
    fn skip_laws() {
        let c = Cmd::local(
            "x",
            Aexp::Num(0),
            Cmd::seq(Cmd::Skip, Cmd::seq(Cmd::Print(Aexp::Num(1)), Cmd::Skip)),
        );
        let (opt, _) = optimize(&c);
        assert_eq!(opt, Cmd::Print(Aexp::Num(1)));
    }

    #[test]
    fn branch_folding() {
        // if (2 <= 1) { print 1 } else { print 2 } → print 2
        let c = Cmd::local(
            "x",
            Aexp::Num(0),
            Cmd::if_(
                Bexp::le(Aexp::Num(2), Aexp::Num(1)),
                Cmd::Print(Aexp::Num(1)),
                Cmd::Print(Aexp::Num(2)),
            ),
        );
        let (opt, _) = optimize(&c);
        assert_eq!(opt, Cmd::Print(Aexp::Num(2)));
        // while (1 <= 0) { ... } → skip (and then the seq law cleans up).
        let w = Cmd::local(
            "x",
            Aexp::Num(0),
            Cmd::seq(
                Cmd::while_(
                    Bexp::le(Aexp::Num(1), Aexp::Num(0)),
                    Cmd::Print(Aexp::Num(9)),
                ),
                Cmd::Print(Aexp::Num(3)),
            ),
        );
        let (opt, _) = optimize(&w);
        assert_eq!(opt, Cmd::Print(Aexp::Num(3)));
    }

    #[test]
    fn if_same_branches() {
        let c = Cmd::local(
            "x",
            Aexp::Num(0),
            Cmd::if_(
                Bexp::le(Aexp::var("x"), Aexp::Num(1)),
                Cmd::Print(Aexp::Num(7)),
                Cmd::Print(Aexp::Num(7)),
            ),
        );
        let (opt, _) = optimize(&c);
        assert_eq!(opt, Cmd::Print(Aexp::Num(7)));
    }

    #[test]
    fn optimization_preserves_traces() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut optimized_something = 0;
        for _ in 0..40 {
            let c = imp::gen_cmd(&mut rng, 4);
            let (opt, steps) = optimize(&c);
            if steps > 0 {
                optimized_something += 1;
            }
            let before = imp::run(&c, 10_000);
            let after = imp::run(&opt, 10_000);
            match (before, after) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "trace changed for {c}\n -> {opt}"),
                (Err(_), _) | (_, Err(_)) => {} // fuel-limited loops
            }
        }
        assert!(optimized_something > 10, "workload has no opportunities");
    }

    #[test]
    fn zero_mul_uses_purity() {
        // 0 * x folds to 0 even though x is a variable read.
        let c = Cmd::local(
            "x",
            Aexp::Num(3),
            Cmd::Print(Aexp::mul(Aexp::Num(0), Aexp::var("x"))),
        );
        let (opt, _) = optimize(&c);
        assert_eq!(opt, Cmd::Print(Aexp::Num(0)));
    }
}
