//! Conjunctive normal form — the classic follow-on to prenex
//! normalization, as one more rewrite phase (experiment E3's extension).
//!
//! Two distribution rules on top of the prenex set:
//!
//! ```text
//! or (and ?P ?Q) ?R  ~>  and (or ?P ?R) (or ?Q ?R)
//! or ?R (and ?P ?Q)  ~>  and (or ?R ?P) (or ?R ?Q)
//! ```
//!
//! Because the engine rewrites under binders, the same rules normalize
//! the matrix *under the quantifier prefix* with no extra code.

use crate::rule::{RewriteError, Rule, RuleSet};
use crate::rulesets::fol_prenex;
use hoas_core::sig::Signature;
use hoas_core::Ty;

/// The distribution rules alone.
///
/// # Errors
///
/// [`RewriteError::BadRule`] if `sig` lacks the connectives.
pub fn distribution_rules(sig: &Signature) -> Result<RuleSet, RewriteError> {
    let o = Ty::base("o");
    let pqr = [("P", "o"), ("Q", "o"), ("R", "o")];
    let mut rs = RuleSet::new();
    rs.push(Rule::parse(
        sig,
        "distr-left",
        &o,
        &pqr,
        "or (and ?P ?Q) ?R",
        "and (or ?P ?R) (or ?Q ?R)",
    )?)?;
    rs.push(Rule::parse(
        sig,
        "distr-right",
        &o,
        &pqr,
        "or ?R (and ?P ?Q)",
        "and (or ?R ?P) (or ?R ?Q)",
    )?)?;
    Ok(rs)
}

/// The full pipeline: prenex rules (implication elimination, NNF,
/// quantifier extraction) plus distribution — normalizing to a prenex
/// formula with a CNF matrix.
///
/// # Errors
///
/// As for [`fol_prenex::rules`].
pub fn rules(sig: &Signature) -> Result<RuleSet, RewriteError> {
    let mut rs = fol_prenex::rules(sig)?;
    // Push one by one so duplicate-name detection applies across the
    // combined set.
    for rule in distribution_rules(sig)?.into_parts().0 {
        rs.push(rule)?;
    }
    Ok(rs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use hoas_langs::fol::{self, Formula, Model, Vocabulary};
    use hoas_testkit::rng::SmallRng;
    use std::collections::HashMap;

    /// CNF matrix check: conjunctions of disjunctions of (possibly
    /// negated) atoms.
    fn is_cnf_matrix(f: &Formula) -> bool {
        fn literal(f: &Formula) -> bool {
            match f {
                Formula::Pred(..) => true,
                Formula::Not(inner) => matches!(inner.as_ref(), Formula::Pred(..)),
                _ => false,
            }
        }
        fn disj(f: &Formula) -> bool {
            match f {
                Formula::Or(a, b) => disj(a) && disj(b),
                other => literal(other),
            }
        }
        match f {
            Formula::And(a, b) => is_cnf_matrix(a) && is_cnf_matrix(b),
            other => disj(other),
        }
    }

    fn strip_prefix(f: &Formula) -> &Formula {
        match f {
            Formula::Forall(_, a) | Formula::Exists(_, a) => strip_prefix(a),
            other => other,
        }
    }

    #[test]
    fn distributes_to_cnf() {
        let vocab = Vocabulary::small();
        let sig = vocab.signature();
        let rs = rules(&sig).unwrap();
        let engine = Engine::new(&sig, &rs);
        // (r ∧ p(a)) ∨ (r ∧ p(b)) → CNF with 4 clauses... (shape check).
        let f = Formula::or(
            Formula::and(
                Formula::Pred("r".into(), vec![]),
                Formula::Pred("p".into(), vec![fol::FoTerm::Fun("a".into(), vec![])]),
            ),
            Formula::and(
                Formula::Pred("r".into(), vec![]),
                Formula::Pred("p".into(), vec![fol::FoTerm::Fun("b".into(), vec![])]),
            ),
        );
        let out = engine
            .normalize(&fol::o(), &fol::encode(&f).unwrap())
            .unwrap();
        assert!(out.fixpoint);
        let g = fol::decode(&out.term).unwrap();
        assert!(is_cnf_matrix(&g), "not CNF: {g}");
    }

    #[test]
    fn full_pipeline_random_formulas() {
        let vocab = Vocabulary::small();
        let sig = vocab.signature();
        let rs = rules(&sig).unwrap();
        let engine = Engine::new(&sig, &rs);
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..30 {
            let f = fol::gen_formula(&vocab, &mut rng, 4);
            let out = engine
                .normalize(&fol::o(), &fol::encode(&f).unwrap())
                .unwrap();
            assert!(out.fixpoint, "CNF rules must terminate on {f}");
            let g = fol::decode(&out.term).unwrap();
            assert!(g.is_prenex(), "not prenex: {g}");
            assert!(is_cnf_matrix(strip_prefix(&g)), "matrix not CNF: {g}");
            for _ in 0..3 {
                let m = Model::random(&vocab, 2, &mut rng);
                assert_eq!(
                    m.eval(&f, &mut HashMap::new()).unwrap(),
                    m.eval(&g, &mut HashMap::new()).unwrap(),
                    "semantics changed: {f} vs {g}"
                );
            }
        }
    }

    #[test]
    fn distribution_happens_under_the_prefix() {
        // ∀x. p(x) ∨ (r ∧ q(x,x)): the distribution rewrites under the
        // quantifier with zero extra machinery.
        let vocab = Vocabulary::small();
        let sig = vocab.signature();
        let rs = distribution_rules(&sig).unwrap();
        let engine = Engine::new(&sig, &rs);
        let x = || fol::FoTerm::Var("x".into());
        let f = Formula::forall(
            "x",
            Formula::or(
                Formula::Pred("p".into(), vec![x()]),
                Formula::and(
                    Formula::Pred("r".into(), vec![]),
                    Formula::Pred("q".into(), vec![x(), x()]),
                ),
            ),
        );
        let out = engine
            .normalize(&fol::o(), &fol::encode(&f).unwrap())
            .unwrap();
        assert_eq!(out.steps, 1);
        assert_eq!(
            out.trace[0].path,
            vec![0, 0],
            "forall arg 0, then the λ body"
        );
        let g = fol::decode(&out.term).unwrap();
        assert!(is_cnf_matrix(strip_prefix(&g)), "{g}");
    }
}
