//! Prenex normal form for first-order logic — the paper's quantifier-rule
//! figures as an executable rule set (experiment E3).
//!
//! Three rule groups, all *pattern* rules:
//!
//! 1. implication elimination (`imp P Q ~> or (not P) Q`);
//! 2. negation normal form (De Morgan + double negation + quantifier
//!    duals);
//! 3. quantifier extraction past `and`/`or` — the rules that need the
//!    higher-order side condition "`x` not free in `P`", expressed simply
//!    by `?P` *not* being applied to `x`:
//!
//!    ```text
//!    and (forall (\x. ?Q x)) ?P  ~>  forall (\x. and (?Q x) ?P)
//!    ```
//!
//! Soundness of extraction relies on a non-empty domain, which
//! [`hoas_langs::fol::Model`] guarantees.

use crate::rule::{RewriteError, Rule, RuleSet};
use hoas_core::sig::Signature;
use hoas_core::Ty;

/// Builds the full prenex rule set for a FOL signature (any signature
/// containing the connectives of [`hoas_langs::fol`]).
///
/// # Errors
///
/// [`RewriteError::BadRule`] if `sig` lacks the connectives.
pub fn rules(sig: &Signature) -> Result<RuleSet, RewriteError> {
    let o = Ty::base("o");
    let mut rs = RuleSet::new();
    let p = [("P", "o")];
    let pq = [("P", "o"), ("Q", "o")];
    let q1 = [("Q", "i -> o")];
    let pq1 = [("P", "o"), ("Q", "i -> o")];

    // 1. implication elimination.
    rs.push(Rule::parse(
        sig,
        "imp-elim",
        &o,
        &pq,
        "imp ?P ?Q",
        "or (not ?P) ?Q",
    )?)?;

    // 2. negation normal form.
    rs.push(Rule::parse(sig, "not-not", &o, &p, "not (not ?P)", "?P")?)?;
    rs.push(Rule::parse(
        sig,
        "not-and",
        &o,
        &pq,
        "not (and ?P ?Q)",
        "or (not ?P) (not ?Q)",
    )?)?;
    rs.push(Rule::parse(
        sig,
        "not-or",
        &o,
        &pq,
        "not (or ?P ?Q)",
        "and (not ?P) (not ?Q)",
    )?)?;
    rs.push(Rule::parse(
        sig,
        "not-forall",
        &o,
        &q1,
        r"not (forall (\x. ?Q x))",
        r"exists (\x. not (?Q x))",
    )?)?;
    rs.push(Rule::parse(
        sig,
        "not-exists",
        &o,
        &q1,
        r"not (exists (\x. ?Q x))",
        r"forall (\x. not (?Q x))",
    )?)?;

    // 3. quantifier extraction. The vacuity of x in ?P is enforced by the
    // pattern structure — exactly the paper's point.
    for (conn, quant) in [
        ("and", "forall"),
        ("and", "exists"),
        ("or", "forall"),
        ("or", "exists"),
    ] {
        rs.push(Rule::parse(
            sig,
            &format!("{quant}-{conn}-left"),
            &o,
            &pq1,
            &format!(r"{conn} ({quant} (\x. ?Q x)) ?P"),
            &format!(r"{quant} (\x. {conn} (?Q x) ?P)"),
        )?)?;
        rs.push(Rule::parse(
            sig,
            &format!("{quant}-{conn}-right"),
            &o,
            &pq1,
            &format!(r"{conn} ?P ({quant} (\x. ?Q x))"),
            &format!(r"{quant} (\x. {conn} ?P (?Q x))"),
        )?)?;
    }
    Ok(rs)
}

/// Only the negation-normal-form subset (groups 1–2).
///
/// # Errors
///
/// As for [`rules`].
pub fn nnf_rules(sig: &Signature) -> Result<RuleSet, RewriteError> {
    let mut all = rules(sig)?;
    all.truncate_rules(6);
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use hoas_langs::fol::{self, Formula, Model, Vocabulary};
    use hoas_testkit::rng::SmallRng;
    use std::collections::HashMap;

    fn setup() -> (Signature, Vocabulary) {
        let v = Vocabulary::small();
        (v.signature(), v)
    }

    fn prenexify(sig: &Signature, f: &Formula) -> Formula {
        let rs = rules(sig).unwrap();
        let engine = Engine::new(sig, &rs);
        let t = fol::encode(f).unwrap();
        let r = engine.normalize(&fol::o(), &t).unwrap();
        assert!(r.fixpoint, "prenex rules must terminate");
        fol::decode(&r.term).unwrap()
    }

    #[test]
    fn example_from_paper_shape() {
        // ∀x. p(x) ∧ r — already prenex; (∀x. p(x)) ∧ r — needs one move.
        let (sig, _) = setup();
        let f = Formula::and(
            Formula::forall(
                "x",
                Formula::Pred("p".into(), vec![fol::FoTerm::Var("x".into())]),
            ),
            Formula::Pred("r".into(), vec![]),
        );
        let g = prenexify(&sig, &f);
        assert!(g.is_prenex(), "got {g}");
        assert_eq!(g.quantifier_count(), 1);
        match g {
            Formula::Forall(_, inner) => {
                assert!(matches!(*inner, Formula::And(..)));
            }
            other => panic!("expected ∀ at the root, got {other}"),
        }
    }

    #[test]
    fn implication_with_quantifiers() {
        // (∀x. p(x)) → r  becomes  ∃x. (¬p(x) ∨ r).
        let (sig, _) = setup();
        let f = Formula::imp(
            Formula::forall(
                "x",
                Formula::Pred("p".into(), vec![fol::FoTerm::Var("x".into())]),
            ),
            Formula::Pred("r".into(), vec![]),
        );
        let g = prenexify(&sig, &f);
        assert!(g.is_prenex(), "got {g}");
        assert!(matches!(g, Formula::Exists(..)));
    }

    #[test]
    fn random_formulas_reach_prenex_and_preserve_truth() {
        let (sig, vocab) = setup();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut nontrivial = 0;
        for _ in 0..60 {
            let f = fol::gen_formula(&vocab, &mut rng, 4);
            let g = prenexify(&sig, &f);
            assert!(g.is_prenex(), "not prenex: {g} (from {f})");
            if f.quantifier_count() > 0 {
                nontrivial += 1;
            }
            // Truth-preservation over random finite models.
            for _ in 0..5 {
                let m = Model::random(&vocab, 3, &mut rng);
                let mut env = HashMap::new();
                let before = m.eval(&f, &mut env).unwrap();
                let mut env = HashMap::new();
                let after = m.eval(&g, &mut env).unwrap();
                assert_eq!(before, after, "semantics changed for {f} ~> {g}");
            }
        }
        assert!(nontrivial > 10, "workload too trivial");
    }

    #[test]
    fn nnf_subset_produces_nnf() {
        let (sig, _) = setup();
        let rs = nnf_rules(&sig).unwrap();
        assert_eq!(rs.rules().len(), 6);
        let engine = Engine::new(&sig, &rs);
        // ¬(r ∧ ¬r)
        let f = Formula::not(Formula::and(
            Formula::Pred("r".into(), vec![]),
            Formula::not(Formula::Pred("r".into(), vec![])),
        ));
        let t = fol::encode(&f).unwrap();
        let out = engine.normalize(&fol::o(), &t).unwrap();
        let g = fol::decode(&out.term).unwrap();
        // NNF: ¬ only on atoms.
        fn nnf_ok(f: &Formula) -> bool {
            match f {
                Formula::Not(inner) => matches!(inner.as_ref(), Formula::Pred(..)),
                Formula::And(a, b) | Formula::Or(a, b) | Formula::Imp(a, b) => {
                    nnf_ok(a) && nnf_ok(b)
                }
                Formula::Forall(_, a) | Formula::Exists(_, a) => nnf_ok(a),
                Formula::Pred(..) => true,
            }
        }
        assert!(nnf_ok(&g), "not NNF: {g}");
    }
}
