//! The paper's transformation suites, as reusable rule sets.

pub mod fol_cnf;
pub mod fol_prenex;
pub mod imp_opt;
pub mod miniml_opt;
