//! Mini-ML simplification rules (experiment E8's transformation side).
//!
//! Pattern rules cover the binding-sensitive simplifications:
//!
//! * case-of-known-constructor (`case z`, `case (s n)`) — note the
//!   successor rule *instantiates* the branch binder via the metalanguage;
//! * dead `let` whose bound expression is a **value** (restricting to
//!   values keeps call-by-value termination behaviour);
//! * β-inlining of a λ applied to a value.
//!
//! Value restriction is enforced by native wrappers that check the
//! syntactic value-ness the type system cannot see.

use crate::rule::{NativeRule, RewriteError, Rule, RuleSet};
use hoas_core::sig::Signature;
use hoas_core::{normalize, Term, Ty};

/// Whether an encoded expression is a syntactic value (a numeral or a λ).
pub fn is_value(t: &Term) -> bool {
    match t.spine() {
        (Term::Const(c), args) => match (c.as_str(), args.len()) {
            ("z", 0) | ("lam", 1) => true,
            ("s", 1) => is_value(args[0]),
            _ => false,
        },
        _ => false,
    }
}

/// Builds the simplification rule set for [`hoas_langs::miniml::signature`].
///
/// # Errors
///
/// [`RewriteError::BadRule`] if `sig` lacks the constructors.
pub fn rules(sig: &Signature) -> Result<RuleSet, RewriteError> {
    let exp = Ty::base("exp");
    let mut rs = RuleSet::new();

    // case-of-known-constructor: pure pattern rules.
    rs.push(Rule::parse(
        sig,
        "case-z",
        &exp,
        &[("Z", "exp"), ("S", "exp -> exp")],
        r"case z ?Z (\x. ?S x)",
        "?Z",
    )?)?;
    rs.push(Rule::parse(
        sig,
        "case-s",
        &exp,
        &[("N", "exp"), ("Z", "exp"), ("S", "exp -> exp")],
        r"case (s ?N) ?Z (\x. ?S x)",
        "?S ?N",
    )?)?;

    // Value-restricted rules are native: check value-ness, then hand the
    // binding work back to the metalanguage (happly = object substitution).
    rs.push_native(NativeRule::new("dead-let-value", exp.clone(), |t| {
        let (head, args) = t.spine();
        match (head, args.as_slice()) {
            (Term::Const(c), [v, abs]) if c.as_str() == "letv" && is_value(v) => {
                // Dead only if the binder is vacuous.
                if let Term::Lam(_, body) = abs {
                    if !body.occurs_free(0) {
                        return Some(hoas_core::subst::unshift_above(body, 1, 0));
                    }
                }
                None
            }
            _ => None,
        }
    }))?;
    rs.push_native(NativeRule::new("beta-value", exp, |t| {
        let (head, args) = t.spine();
        match (head, args.as_slice()) {
            (Term::Const(c), [f, v]) if c.as_str() == "app" && is_value(v) => {
                let (fh, fargs) = f.spine();
                match (fh, fargs.as_slice()) {
                    (Term::Const(lc), [abs]) if lc.as_str() == "lam" => {
                        Some(normalize::happly((*abs).clone(), (*v).clone()))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }))?;
    Ok(rs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use hoas_langs::miniml::{self, Exp};

    fn simplify(e: &Exp) -> (Exp, usize) {
        let sig = miniml::signature();
        let rs = rules(sig).unwrap();
        let engine = Engine::new(sig, &rs);
        let t = miniml::encode(e).unwrap();
        let r = engine.normalize(&miniml::exp(), &t).unwrap();
        assert!(r.fixpoint);
        (miniml::decode(&r.term).unwrap(), r.steps)
    }

    #[test]
    fn case_of_known_constructors() {
        let e = Exp::case(Exp::num(0), Exp::num(9), "x", Exp::var("x"));
        assert_eq!(simplify(&e).0, Exp::num(9));
        let e = Exp::case(Exp::num(3), Exp::num(9), "x", Exp::s(Exp::var("x")));
        // case (s 2) ... ~> s 2 via the branch — binder instantiated by β.
        assert_eq!(simplify(&e).0, Exp::num(3));
    }

    #[test]
    fn beta_inlines_values_only() {
        // (fn x => s x) 2 inlines; (fn x => s x) (f y) does not (argument
        // not a value).
        let inline = Exp::app(Exp::lam("x", Exp::s(Exp::var("x"))), Exp::num(2));
        assert_eq!(simplify(&inline).0, Exp::num(3));
        let opaque = Exp::lam(
            "f",
            Exp::app(
                Exp::lam("x", Exp::s(Exp::var("x"))),
                Exp::app(Exp::var("f"), Exp::Z),
            ),
        );
        let (out, steps) = simplify(&opaque);
        assert_eq!(steps, 0, "must not inline a non-value: {out}");
    }

    #[test]
    fn dead_let_value_restriction() {
        // let x = 5 in z — dead, value: removed.
        let dead = Exp::let_("x", Exp::num(5), Exp::Z);
        assert_eq!(simplify(&dead).0, Exp::Z);
        // let x = (fix f. f) in z — dead but NOT a value (diverges in CBV):
        // kept.
        let divergent = Exp::let_("x", Exp::fix("f", Exp::var("f")), Exp::Z);
        let (out, steps) = simplify(&divergent);
        assert_eq!(steps, 0);
        assert!(matches!(out, Exp::Let(..)));
        // let x = 5 in s x — not dead: kept.
        let live = Exp::let_("x", Exp::num(5), Exp::s(Exp::var("x")));
        assert_eq!(simplify(&live).1, 0);
    }

    #[test]
    fn nested_simplification_cascades() {
        // case (case z z (x. x)) 7 (y. y)  ~>  case z 7 (y. y)  ~>  7
        let e = Exp::case(
            Exp::case(Exp::Z, Exp::Z, "x", Exp::var("x")),
            Exp::num(7),
            "y",
            Exp::var("y"),
        );
        let (out, steps) = simplify(&e);
        assert_eq!(out, Exp::num(7));
        assert_eq!(steps, 2);
    }

    #[test]
    fn simplification_preserves_evaluation() {
        let progs = vec![
            Exp::app(Exp::app(miniml::add_fn(), Exp::num(2)), Exp::num(2)),
            Exp::let_(
                "dead",
                Exp::num(9),
                Exp::case(Exp::num(1), Exp::Z, "x", Exp::var("x")),
            ),
            Exp::app(Exp::lam("x", Exp::s(Exp::var("x"))), Exp::num(4)),
        ];
        for p in progs {
            let (q, _) = simplify(&p);
            let mut fa = 100_000;
            let mut fb = 100_000;
            let a = miniml::eval_native(&p, &mut fa).unwrap();
            let b = miniml::eval_native(&q, &mut fb).unwrap();
            assert_eq!(a.as_num(), b.as_num(), "{p} vs {q}");
        }
    }
}
