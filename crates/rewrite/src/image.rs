//! Warm images: persisting a live term store together with the engine's
//! cache bundle, and reloading both into a fresh process.
//!
//! A warm image is one [`Kind::Image`] codec stream whose node pool *is*
//! the store snapshot: [`save_warm_image`] registers every live node
//! from [`hoas_core::store::image::snapshot`] into the encoder pool, so
//! decoding the pool re-interns the entire store before any cache
//! section is read. The body then carries the four cache tables of an
//! [`EngineCaches`] bundle — canonical-form memo, rule-normal-form
//! cache, head-type table, and root-step memo — each with its
//! [`NodeId`] keys written as the *writer's* raw ids.
//!
//! [`load_warm_image`] replays the pool into the current store and
//! translates every key through the decoder's `old id → new id` remap
//! table. A key that fails to remap (its node was swept between
//! normalize and save, so it never reached the pool) drops that entry —
//! counted, never guessed. Everything else lands id-correct in the
//! target bundle, so a re-built subject re-interns onto pool nodes and
//! replays against the warm caches with zero rule-NF misses: the root
//! memo hands back whole strategy steps, and the canon memo hands back
//! replacement canonicalizations, without traversing the subject at
//! all.
//!
//! The image does **not** carry the signature or rule set (persist those
//! with [`hoas_core::codec::encode_signature`] and
//! [`crate::codec::encode_rule_set`] if needed): cache soundness only
//! requires that the loading engine agrees with the writer on both,
//! which is the same contract [`EngineCaches`] already imposes on
//! cross-engine sharing.

use crate::engine::{lock, CacheEntry, EngineCaches, RootEntry, RootKey};
use crate::engine::{MatchPath, RewriteStep, Strategy};
use hoas_core::codec::{CodecError, Decoder, Encoder, Kind};
use hoas_core::normalize::CanonExport;
use hoas_core::store;
use hoas_core::{Sym, Term, TermRef, Ty};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One solver variant-table entry in engine-neutral form, for carrying
/// `hoas_lp` answer tables inside a warm image without a crate
/// dependency in either direction. The caller converts to and from
/// `hoas_lp::SolveTables` (via its `entries()` and `absorb` API); the
/// image layer only needs terms, types, and the completion flag.
///
/// The canonical call and its answers are ordinary terms, so they ride
/// the image's node pool: on load they re-intern onto pool nodes and
/// the table key (the call's content-addressed [`TermRef`]) is stable
/// across processes.
#[derive(Clone, Debug)]
pub struct SolverTableEntry {
    /// The tabled predicate.
    pub pred: Sym,
    /// The canonical call atom (metavariables `0..k` in
    /// first-occurrence order).
    pub call: Term,
    /// Types of the canonical call's metavariables `0..k`.
    pub call_tys: Vec<Ty>,
    /// Stored answers: each an instance of the call atom plus the types
    /// of its residual metavariables `0..k`.
    pub answers: Vec<(Term, Vec<Ty>)>,
    /// Whether the entry's answer set reached its least fixpoint
    /// (replayable without re-running the generator).
    pub complete: bool,
}

/// What a warm image contained and what a load did with it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImageStats {
    /// Total image size in bytes.
    pub bytes: u64,
    /// Nodes in the store-snapshot pool.
    pub pool_nodes: u64,
    /// Pool nodes whose id changed between writer and loader.
    pub remapped_ids: u64,
    /// Canonical-form memo entries carried by the image.
    pub canon_entries: u64,
    /// Rule-normal-form cache entries carried by the image.
    pub rule_nf_entries: u64,
    /// Head-type table entries carried by the image.
    pub head_ty_entries: u64,
    /// Root-step memo entries carried by the image.
    pub root_memo_entries: u64,
    /// Solver variant-table entries carried by the image.
    pub solver_table_entries: u64,
    /// Solver answers carried across all variant-table entries.
    pub solver_answers: u64,
    /// Cache entries whose keys remapped and were installed.
    pub entries_reloaded: u64,
    /// Cache entries dropped because a key failed to remap.
    pub entries_dropped: u64,
}

/// Serializes the current term store and `caches` into one warm image.
///
/// Call this while the terms you intend to replay against are still
/// alive (or at least un-swept): cache keys whose nodes are missing
/// from the store at save time cannot be remapped on load and are
/// dropped there.
#[must_use]
pub fn save_warm_image(caches: &EngineCaches) -> Vec<u8> {
    save_warm_image_with_tables(caches, &[])
}

/// [`save_warm_image`], additionally carrying solver variant tables.
///
/// Table entries are written sorted by the canonical call's content
/// hash, so the image bytes are deterministic regardless of the hash
/// map iteration order the caller exported them in.
#[must_use]
pub fn save_warm_image_with_tables(caches: &EngineCaches, tables: &[SolverTableEntry]) -> Vec<u8> {
    let mut enc = Encoder::new(Kind::Image);

    // The pool is the store: registering the snapshot (id order, so
    // children precede parents) makes pool decode rebuild every live
    // α-class before the cache sections reference one.
    for t in store::image::snapshot() {
        enc.register(&t);
    }

    // Canonical-form memo.
    let canon = caches.canon.export();
    enc.put_u64(canon.len() as u64);
    for e in &canon {
        enc.put_u64(e.key.get());
        enc.put_ty(&e.ty);
        put_tys(&mut enc, &e.free_tys);
        enc.put_term_ref(&e.result);
    }

    // Rule-normal-form cache, sorted by key for a deterministic image.
    {
        let map = lock(&caches.rule_nf);
        let mut keys: Vec<_> = map.keys().copied().collect();
        keys.sort_unstable();
        enc.put_u64(keys.len() as u64);
        for key in keys {
            let bucket = &map[&key];
            enc.put_u64(key.get());
            enc.put_u64(bucket.len() as u64);
            for e in bucket {
                enc.put_ty(&e.ty);
                put_tys(&mut enc, &e.free_tys);
            }
        }
    }

    // Head-type table (symbol-keyed, so no remap on load).
    {
        let map = lock(&caches.head_arg_tys);
        let mut entries: Vec<(&Sym, &Option<Arc<Vec<Ty>>>)> = map.iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        enc.put_u64(entries.len() as u64);
        for (sym, tys) in entries {
            enc.put_sym(sym);
            match tys {
                Some(tys) => {
                    enc.put_bool(true);
                    put_tys(&mut enc, tys);
                }
                None => enc.put_bool(false),
            }
        }
    }

    // Root-step memo, sorted by key tuple.
    {
        let map = lock(&caches.root_memo);
        let mut keys: Vec<RootKey> = map.keys().copied().collect();
        keys.sort_unstable();
        enc.put_u64(keys.len() as u64);
        for key in keys {
            let bucket = &map[&key];
            enc.put_u8(key.0);
            enc.put_u64(key.1);
            enc.put_u64(key.2);
            enc.put_u64(bucket.len() as u64);
            for e in bucket {
                enc.put_ty(&e.ty);
                match &e.hint {
                    Some(h) => {
                        enc.put_bool(true);
                        enc.put_sym(h);
                    }
                    None => enc.put_bool(false),
                }
                enc.put_u8(strategy_tag(e.strategy));
                match &e.outcome {
                    Some((t, step)) => {
                        enc.put_bool(true);
                        enc.put_term(t);
                        enc.put_str(&step.rule);
                        enc.put_u64(step.path.len() as u64);
                        for p in &step.path {
                            enc.put_u32(*p);
                        }
                        enc.put_u8(via_tag(step.via));
                    }
                    None => enc.put_bool(false),
                }
            }
        }
    }

    // Solver variant tables, sorted by the canonical call's content
    // hash (stable across processes, unlike raw node ids).
    {
        let mut sorted: Vec<&SolverTableEntry> = tables.iter().collect();
        sorted.sort_by_key(|e| TermRef::new(e.call.clone()).content_hash());
        enc.put_u64(sorted.len() as u64);
        for e in sorted {
            enc.put_sym(&e.pred);
            enc.put_term(&e.call);
            put_tys(&mut enc, &e.call_tys);
            enc.put_bool(e.complete);
            enc.put_u64(e.answers.len() as u64);
            for (t, tys) in &e.answers {
                enc.put_term(t);
                put_tys(&mut enc, tys);
            }
        }
    }

    enc.finish()
}

/// Loads a warm image into the current term store and `caches`.
///
/// The pool is re-interned first (that *is* the store reload); every
/// cache entry is then installed under its remapped key, or counted as
/// dropped when the key's node did not survive to the image. The
/// bundle's persistence gauges (surfaced through
/// [`crate::engine::EngineStats`]) are set — not accumulated — to
/// describe this load.
///
/// # Errors
///
/// Any [`CodecError`]: a corrupt, truncated, bit-flipped,
/// wrong-version, or wrong-kind image is rejected without touching
/// `caches` beyond entries already absorbed before the error.
pub fn load_warm_image(bytes: &[u8], caches: &EngineCaches) -> Result<ImageStats, CodecError> {
    load_warm_image_with_tables(bytes, caches).map(|(stats, _)| stats)
}

/// [`load_warm_image`], additionally returning the solver variant
/// tables the image carried (empty for images saved without them). The
/// caller re-imports them via `hoas_lp::SolveTables::absorb`.
///
/// # Errors
///
/// Any [`CodecError`], as for [`load_warm_image`].
pub fn load_warm_image_with_tables(
    bytes: &[u8],
    caches: &EngineCaches,
) -> Result<(ImageStats, Vec<SolverTableEntry>), CodecError> {
    let mut dec = Decoder::new(bytes, Kind::Image)?;
    let mut stats = ImageStats {
        bytes: bytes.len() as u64,
        pool_nodes: dec.pool_len(),
        ..ImageStats::default()
    };

    // Canonical-form memo.
    let n_canon = dec.get_u64()?;
    for _ in 0..n_canon {
        let old = dec.get_u64()?;
        let ty = dec.get_ty()?;
        let free_tys = get_tys(&mut dec)?;
        let result = dec.get_term()?;
        stats.canon_entries += 1;
        match dec.remap_id(old) {
            Some(key) => {
                caches.canon.absorb(CanonExport {
                    key,
                    ty,
                    free_tys,
                    result,
                });
                stats.entries_reloaded += 1;
            }
            None => stats.entries_dropped += 1,
        }
    }

    // Rule-normal-form cache.
    let n_keys = dec.get_u64()?;
    for _ in 0..n_keys {
        let old = dec.get_u64()?;
        let n_entries = dec.get_u64()?;
        let mut bucket = Vec::new();
        for _ in 0..n_entries {
            let ty = dec.get_ty()?;
            let free_tys = get_tys(&mut dec)?;
            bucket.push(CacheEntry { ty, free_tys });
        }
        stats.rule_nf_entries += n_entries;
        match dec.remap_id(old) {
            Some(key) => {
                stats.entries_reloaded += n_entries;
                absorb_rule_nf(caches, key, bucket);
            }
            None => stats.entries_dropped += n_entries,
        }
    }

    // Head-type table.
    let n_heads = dec.get_u64()?;
    for _ in 0..n_heads {
        let sym = dec.get_sym()?;
        let tys = if dec.get_bool()? {
            Some(Arc::new(get_tys(&mut dec)?))
        } else {
            None
        };
        stats.head_ty_entries += 1;
        stats.entries_reloaded += 1;
        lock(&caches.head_arg_tys).insert(sym, tys);
    }

    // Root-step memo.
    let n_roots = dec.get_u64()?;
    for _ in 0..n_roots {
        let tag = dec.get_u8()?;
        let old_a = dec.get_u64()?;
        let old_b = dec.get_u64()?;
        let n_entries = dec.get_u64()?;
        let mut bucket = Vec::new();
        for _ in 0..n_entries {
            let ty = dec.get_ty()?;
            let hint = if dec.get_bool()? {
                Some(dec.get_sym()?)
            } else {
                None
            };
            let strategy = strategy_from_tag(dec.get_u8()?)?;
            let outcome = if dec.get_bool()? {
                let t = dec.get_term()?.into_term();
                let rule = dec.get_str()?;
                let n_path = dec.get_u64()?;
                let mut path = Vec::new();
                for _ in 0..n_path {
                    path.push(dec.get_u32()?);
                }
                let via = via_from_tag(dec.get_u8()?)?;
                Some((t, RewriteStep { rule, path, via }))
            } else {
                None
            };
            bucket.push(RootEntry {
                ty,
                hint,
                strategy,
                outcome,
            });
        }
        stats.root_memo_entries += n_entries;
        // The second child slot uses `0` as "no child"; only real ids
        // go through the remap table.
        let new_a = dec.remap_id(old_a);
        let new_b = if old_b == 0 {
            Some(0)
        } else {
            dec.remap_id(old_b).map(hoas_core::NodeId::get)
        };
        match (new_a, new_b) {
            (Some(a), Some(b)) => {
                stats.entries_reloaded += n_entries;
                absorb_root_memo(caches, (tag, a.get(), b), bucket);
            }
            _ => stats.entries_dropped += n_entries,
        }
    }

    // Solver variant tables. Answer terms decode through the pool like
    // any other term, so no per-entry remap can fail here: the entry is
    // either decoded whole or the image is rejected.
    let mut tables = Vec::new();
    let n_tables = dec.get_u64()?;
    for _ in 0..n_tables {
        let pred = dec.get_sym()?;
        let call = dec.get_term()?.into_term();
        let call_tys = get_tys(&mut dec)?;
        let complete = dec.get_bool()?;
        let n_answers = dec.get_u64()?;
        let mut answers = Vec::new();
        for _ in 0..n_answers {
            let t = dec.get_term()?.into_term();
            let tys = get_tys(&mut dec)?;
            answers.push((t, tys));
        }
        stats.solver_table_entries += 1;
        stats.solver_answers += n_answers;
        stats.entries_reloaded += 1;
        tables.push(SolverTableEntry {
            pred,
            call,
            call_tys,
            answers,
            complete,
        });
    }

    stats.remapped_ids = dec.remapped_ids();
    dec.finish()?;

    let p = &caches.persist;
    p.image_bytes.store(stats.bytes, Ordering::Relaxed);
    p.remapped_ids.store(stats.remapped_ids, Ordering::Relaxed);
    p.entries_reloaded
        .store(stats.entries_reloaded, Ordering::Relaxed);
    p.entries_dropped
        .store(stats.entries_dropped, Ordering::Relaxed);
    Ok((stats, tables))
}

/// Decodes a warm image into a throwaway cache bundle (the pool still
/// re-interns into the current store), returning what it contained.
/// This is the `hoas-image inspect` entry point: full validation —
/// checksum, digest, semantic decode — without touching live caches.
///
/// # Errors
///
/// Any [`CodecError`], as for [`load_warm_image`].
pub fn inspect_warm_image(bytes: &[u8]) -> Result<ImageStats, CodecError> {
    load_warm_image(bytes, &EngineCaches::new())
}

/// Installs one reloaded rule-NF bucket, deduplicating against (and
/// respecting the cap discipline of) whatever the live table holds.
fn absorb_rule_nf(caches: &EngineCaches, key: hoas_core::NodeId, entries: Vec<CacheEntry>) {
    let mut map = lock(&caches.rule_nf);
    cap_clear(&mut map, crate::engine::RULE_NF_CAP);
    let bucket = map.entry(key).or_default();
    for e in entries {
        if !bucket
            .iter()
            .any(|x| x.ty == e.ty && x.free_tys == e.free_tys)
        {
            bucket.push(e);
        }
    }
}

/// Installs one reloaded root-memo bucket (same discipline as
/// [`absorb_rule_nf`]).
fn absorb_root_memo(caches: &EngineCaches, key: RootKey, entries: Vec<RootEntry>) {
    let mut map = lock(&caches.root_memo);
    cap_clear(&mut map, crate::engine::ROOT_MEMO_CAP);
    let bucket = map.entry(key).or_default();
    for e in entries {
        if !bucket
            .iter()
            .any(|x| x.ty == e.ty && x.hint == e.hint && x.strategy == e.strategy)
        {
            bucket.push(e);
        }
    }
}

/// The wholesale-drop cap discipline shared with the engine's own
/// insert paths.
fn cap_clear<K, V>(map: &mut HashMap<K, V>, cap: usize) {
    if map.len() >= cap {
        map.clear();
    }
}

fn put_tys(enc: &mut Encoder, tys: &[Ty]) {
    enc.put_u64(tys.len() as u64);
    for ty in tys {
        enc.put_ty(ty);
    }
}

fn get_tys(dec: &mut Decoder<'_>) -> Result<Vec<Ty>, CodecError> {
    let n = dec.get_u64()?;
    let mut tys = Vec::new();
    for _ in 0..n {
        tys.push(dec.get_ty()?);
    }
    Ok(tys)
}

fn strategy_tag(s: Strategy) -> u8 {
    match s {
        Strategy::LeftmostOutermost => 0,
        Strategy::LeftmostInnermost => 1,
    }
}

fn strategy_from_tag(tag: u8) -> Result<Strategy, CodecError> {
    match tag {
        0 => Ok(Strategy::LeftmostOutermost),
        1 => Ok(Strategy::LeftmostInnermost),
        _ => Err(CodecError::Corrupt("unknown strategy tag")),
    }
}

fn via_tag(v: MatchPath) -> u8 {
    match v {
        MatchPath::Pattern => 0,
        MatchPath::General => 1,
        MatchPath::Native => 2,
    }
}

fn via_from_tag(tag: u8) -> Result<MatchPath, CodecError> {
    match tag {
        0 => Ok(MatchPath::Pattern),
        1 => Ok(MatchPath::General),
        2 => Ok(MatchPath::Native),
        _ => Err(CodecError::Corrupt("unknown match-path tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineCaches, EngineConfig};
    use crate::rulesets::fol_prenex;
    use hoas_core::prelude::*;

    fn workload(sig: &Signature) -> Vec<Term> {
        [
            r"and (forall (\x. p x)) (q c0)",
            r"not (and (exists (\x. p x)) (q c0))",
            r"imp (forall (\x. p x)) (exists (\y. q y))",
        ]
        .iter()
        .map(|s| parse_term(sig, s).expect("workload parses").term)
        .collect()
    }

    fn fol_sig() -> Signature {
        Signature::parse(
            "type o. type i.
             const and : o -> o -> o. const or : o -> o -> o.
             const imp : o -> o -> o. const not : o -> o.
             const forall : (i -> o) -> o. const exists : (i -> o) -> o.
             const p : i -> o. const q : i -> o. const c0 : i.",
        )
        .expect("signature parses")
    }

    #[test]
    fn warm_image_round_trips_and_replays_without_misses() {
        let o = Ty::Base(Sym::from("o"));

        // Terms (rule sides included) carry store-specific node ids, so
        // each isolated store builds its own signature, rules, and
        // subjects; cold results cross over as strings only.
        let (image, cold_results) = StoreHandle::isolated().enter(|| {
            let sig = fol_sig();
            let rules = fol_prenex::rules(&sig).expect("rules build");
            let caches = EngineCaches::new();
            let engine = Engine::with_caches(&sig, &rules, EngineConfig::default(), caches.clone());
            let subjects = workload(&sig);
            let results: Vec<String> = subjects
                .iter()
                .map(|t| {
                    engine
                        .normalize(&o, t)
                        .expect("normalizes")
                        .term
                        .to_string()
                })
                .collect();
            // Subjects stay alive until after the save so their cache
            // keys are still in the store.
            let image = save_warm_image(&caches);
            drop(subjects);
            (image, results)
        });

        StoreHandle::isolated().enter(|| {
            let caches = EngineCaches::new();
            let stats = load_warm_image(&image, &caches).expect("image loads");
            assert!(stats.pool_nodes > 0);
            assert!(stats.canon_entries > 0, "canon section persisted");
            assert!(stats.rule_nf_entries > 0, "rule-NF section persisted");
            assert!(stats.root_memo_entries > 0, "root memo persisted");
            assert!(stats.entries_reloaded > 0);

            let sig = fol_sig();
            let rules = fol_prenex::rules(&sig).expect("rules build");
            let engine = Engine::with_caches(&sig, &rules, EngineConfig::default(), caches);
            for (subject, cold) in workload(&sig).iter().zip(&cold_results) {
                let warm = engine.normalize(&o, subject).expect("normalizes");
                assert_eq!(&warm.term.to_string(), cold, "warm replay matches cold");
            }
            let es = engine.stats();
            assert_eq!(es.cache_misses, 0, "warm replay takes zero rule-NF misses");
            assert!(es.memo_hits > 0, "root memo replays whole steps");
            assert!(es.image_bytes > 0 && es.cache_entries_reloaded > 0);
        });
    }

    #[test]
    fn solver_tables_ride_the_image() {
        let (image, call_str) = StoreHandle::isolated().enter(|| {
            let sig = fol_sig();
            let call = parse_term(&sig, "p c0").expect("call parses").term;
            let ans = parse_term(&sig, "q c0").expect("answer parses").term;
            let entry = SolverTableEntry {
                pred: Sym::from("p"),
                call: call.clone(),
                call_tys: vec![],
                answers: vec![(ans, vec![])],
                complete: true,
            };
            let image = save_warm_image_with_tables(&EngineCaches::new(), &[entry]);
            (image, call.to_string())
        });

        StoreHandle::isolated().enter(|| {
            let (stats, tables) =
                load_warm_image_with_tables(&image, &EngineCaches::new()).expect("image loads");
            assert_eq!(stats.solver_table_entries, 1);
            assert_eq!(stats.solver_answers, 1);
            assert_eq!(tables.len(), 1);
            assert_eq!(tables[0].pred.as_str(), "p");
            assert_eq!(tables[0].call.to_string(), call_str);
            assert!(tables[0].complete);
            assert_eq!(tables[0].answers.len(), 1);
        });

        // A plain save carries an empty table section, and a plain load
        // of a table-bearing image just drops the tables.
        StoreHandle::isolated().enter(|| {
            let plain = save_warm_image(&EngineCaches::new());
            let (stats, tables) =
                load_warm_image_with_tables(&plain, &EngineCaches::new()).expect("loads");
            assert_eq!(stats.solver_table_entries, 0);
            assert!(tables.is_empty());
            let stats = load_warm_image(&image, &EngineCaches::new()).expect("loads");
            assert_eq!(stats.solver_table_entries, 1);
        });
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let o = Ty::Base(Sym::from("o"));
        let image = StoreHandle::isolated().enter(|| {
            let sig = fol_sig();
            let rules = fol_prenex::rules(&sig).expect("rules build");
            let caches = EngineCaches::new();
            let engine = Engine::with_caches(&sig, &rules, EngineConfig::default(), caches.clone());
            let subjects = workload(&sig);
            for t in &subjects {
                engine.normalize(&o, t).expect("normalizes");
            }
            save_warm_image(&caches)
        });

        StoreHandle::isolated().enter(|| {
            assert!(load_warm_image(&image[..image.len() - 1], &EngineCaches::new()).is_err());
            let mut flipped = image.clone();
            let mid = flipped.len() / 2;
            flipped[mid] ^= 0x40;
            assert!(load_warm_image(&flipped, &EngineCaches::new()).is_err());
        });
    }
}
