//! # hoas-rewrite — program transformation by higher-order rewriting
//!
//! The paper's Section 4 expresses program transformations as rewrite
//! rules whose left-hand sides are higher-order patterns; applying a rule
//! is higher-order matching, and binding side conditions ("x does not
//! occur in P") are expressed by *not* applying a metavariable to the
//! bound variable. This crate provides:
//!
//! * [`rule`] — typed rewrite rules (pattern → template) with
//!   type-preservation checked at construction, plus *native* rules
//!   (Rust functions) for arithmetic folding the metalanguage cannot
//!   express;
//! * [`engine`] — matching-driven rewriting with leftmost-outermost and
//!   leftmost-innermost strategies, rewriting soundly **under binders**
//!   (the ambient-context machinery of `hoas-unify`);
//! * [`rulesets`] — the paper's transformation suites: prenex normal form
//!   for first-order logic, optimization of the imperative language
//!   (constant folding, dead-declaration elimination), and Mini-ML
//!   simplifications;
//! * [`analysis`] — static analysis of rule sets: pattern-fragment
//!   classification, linearity and scoping lints, shadowing,
//!   trivial-non-termination, and root-overlap (critical-pair) detection,
//!   consumed by the `hoas-analyze` diagnostics front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cert;
pub mod codec;
pub mod engine;
pub mod image;
pub mod rule;
pub mod rulesets;

pub use analysis::{Overlap, RuleInfo, RuleSetAnalysis};
pub use cert::TerminationCert;
pub use engine::{
    Engine, EngineCaches, EngineConfig, EngineStats, MatchPath, NormalizeResult, RewriteStep,
    Strategy,
};
pub use rule::{Candidates, NativeRule, RewriteError, Rule, RuleSet};
