//! Static analysis of rule sets.
//!
//! [`RuleSet::analyze`] inspects a rule set without rewriting anything,
//! reporting per-rule facts and cross-rule interactions:
//!
//! * **Classification** — whether each left-hand side lies in Miller's
//!   pattern fragment (the engine's deterministic fast path) or needs
//!   general higher-order matching;
//! * **Linearity** — metavariables occurring more than once in a
//!   left-hand side (non-left-linear rules impose equality side
//!   conditions that make overlap analysis incomplete);
//! * **Scoping** — right-hand-side metavariables not bound by the
//!   left-hand side (recomputed defensively; [`Rule::new`] rejects them);
//! * **Shadowing** — a rule whose left-hand side is an instance of an
//!   *earlier* rule's left-hand side can never fire (the engine tries
//!   rules first-to-last);
//! * **Trivial non-termination** — the rule rewrites its own result:
//!   its left-hand side matches the (frozen) right-hand side at the root
//!   or at any embedded position;
//! * **Root overlaps** — two pattern-fragment left-hand sides unify after
//!   renaming apart, so a term exists at which both rules apply (a
//!   critical pair, hence possible non-confluence).
//!
//! Semi-decidable questions are answered conservatively: the analysis
//! only reports facts it can establish within the pattern fragment, and
//! stays silent where general higher-order unification would be needed.
//!
//! The `hoas-analyze` crate turns this report into diagnostics with
//! stable codes and severities.

use crate::engine::Engine;
use crate::rule::{Rule, RuleSet};
use hoas_core::ctx::Ctx;
use hoas_core::sig::Signature;
use hoas_core::{MVar, Term};
use hoas_unify::classify::{freeze_metas, shift_menv, shift_metas, PatternClass};
use hoas_unify::pattern;
use std::collections::HashMap;

/// Per-rule facts established by [`RuleSet::analyze`].
#[derive(Clone, Debug)]
pub struct RuleInfo {
    /// The rule's name.
    pub name: String,
    /// Pattern-fragment classification of the left-hand side.
    pub class: PatternClass,
    /// Metavariables occurring more than once in the left-hand side
    /// (hint names). Empty for left-linear rules.
    pub nonlinear_metas: Vec<String>,
    /// Right-hand-side metavariables not bound by the left-hand side.
    /// Always empty for rules built through [`Rule::new`], which rejects
    /// them; recomputed here so hand-assembled sets are checked too.
    pub unbound_rhs_metas: Vec<String>,
    /// Name of an earlier rule whose left-hand side generalizes this
    /// one's, making this rule unreachable under first-to-last order.
    pub shadowed_by: Option<String>,
    /// Whether the rule applies somewhere inside its own (frozen)
    /// right-hand side — a one-rule loop, hence non-termination.
    pub self_applicable: bool,
}

/// A root overlap between two pattern-fragment rules: their left-hand
/// sides unify after renaming apart, so some term admits both.
#[derive(Clone, Debug)]
pub struct Overlap {
    /// Name of the earlier rule.
    pub left: String,
    /// Name of the later rule.
    pub right: String,
}

/// The report produced by [`RuleSet::analyze`].
#[derive(Clone, Debug)]
pub struct RuleSetAnalysis {
    /// Per-rule facts, in rule order (pattern rules only; native rules
    /// have no term structure to analyze).
    pub rules: Vec<RuleInfo>,
    /// Names carried by more than one rule (pattern or native). Always
    /// empty for sets built through [`RuleSet::push`], which rejects
    /// duplicates; recomputed here for hand-assembled sets.
    pub duplicate_names: Vec<String>,
    /// Root overlaps between distinct pattern-fragment rules of the same
    /// subject type.
    pub overlaps: Vec<Overlap>,
}

impl RuleSet {
    /// Analyzes the rule set against the signature its rules were built
    /// from. Pure inspection: the set itself is not modified and no
    /// subject term is rewritten.
    pub fn analyze(&self, sig: &Signature) -> RuleSetAnalysis {
        let rules = self
            .rules()
            .iter()
            .enumerate()
            .map(|(i, rule)| RuleInfo {
                name: rule.name().to_string(),
                class: rule.classification(),
                nonlinear_metas: nonlinear_metas(rule.lhs()),
                unbound_rhs_metas: unbound_rhs_metas(rule),
                shadowed_by: shadowed_by(sig, self.rules(), i),
                self_applicable: self_applicable(sig, rule),
            })
            .collect();
        RuleSetAnalysis {
            rules,
            duplicate_names: duplicate_names(self),
            overlaps: overlaps(sig, self.rules()),
        }
    }
}

/// Hint names of metavariables with more than one occurrence in `lhs`.
/// [`Term::metas`] deduplicates, so occurrences are counted by a raw
/// structural walk.
fn nonlinear_metas(lhs: &Term) -> Vec<String> {
    let mut counts: HashMap<MVar, usize> = HashMap::new();
    count_meta_occurrences(lhs, &mut counts);
    let mut repeated: Vec<String> = counts
        .into_iter()
        .filter(|(_, n)| *n > 1)
        .map(|(m, _)| m.hint().to_string())
        .collect();
    repeated.sort();
    repeated
}

fn count_meta_occurrences(t: &Term, counts: &mut HashMap<MVar, usize>) {
    if !t.has_metas() {
        return;
    }
    match t {
        Term::Meta(m) => *counts.entry(m.clone()).or_insert(0) += 1,
        Term::Lam(_, b) => count_meta_occurrences(b, counts),
        Term::App(f, a) => {
            count_meta_occurrences(f, counts);
            count_meta_occurrences(a, counts);
        }
        Term::Pair(a, b) => {
            count_meta_occurrences(a, counts);
            count_meta_occurrences(b, counts);
        }
        Term::Fst(p) | Term::Snd(p) => count_meta_occurrences(p, counts),
        Term::Var(_) | Term::Const(_) | Term::Int(_) | Term::Unit => {}
    }
}

fn unbound_rhs_metas(rule: &Rule) -> Vec<String> {
    let lhs_metas = rule.lhs().metas();
    let mut unbound: Vec<String> = rule
        .rhs()
        .metas()
        .into_iter()
        .filter(|m| !lhs_metas.contains(m))
        .map(|m| m.hint().to_string())
        .collect();
    unbound.sort();
    unbound
}

/// Whether an earlier rule fires on every instance of rule `i`'s lhs,
/// making rule `i` unreachable at its own root. Decided by running the
/// earlier rules — with the engine's own dispatch, including its
/// under-determined-match guard — on a most-general ground instance of
/// the later lhs (metavariables frozen to fresh constants): a rewrite
/// there rewrites *every* instance.
fn shadowed_by(sig: &Signature, rules: &[Rule], i: usize) -> Option<String> {
    if i == 0 {
        return None;
    }
    let rule = &rules[i];
    let (frozen_sig, frozen_lhs) = freeze_metas(sig, rule.menv(), rule.lhs()).ok()?;
    let earlier = RuleSet::from_parts(rules[..i].to_vec(), Vec::new());
    let engine = one_shot_engine(&frozen_sig, &earlier);
    match engine.rewrite_here(&Ctx::new(), rule.ty(), &frozen_lhs) {
        Ok(Some((_, name, _))) => Some(name),
        _ => None,
    }
}

/// Whether the rule rewrites its own right-hand side: its lhs matches a
/// most-general ground instance of the rhs at the root or at any embedded
/// position. One engine step over a single-rule set decides both cases.
fn self_applicable(sig: &Signature, rule: &Rule) -> bool {
    let Ok((frozen_sig, frozen_rhs)) = freeze_metas(sig, rule.menv(), rule.rhs()) else {
        return false;
    };
    let single = RuleSet::from_parts(vec![rule.clone()], Vec::new());
    let engine = one_shot_engine(&frozen_sig, &single);
    matches!(engine.rewrite_once(rule.ty(), &frozen_rhs), Ok(Some(_)))
}

/// An engine for a single probe: every analysis engine is used for one
/// rewrite attempt and dropped, so the normal-form caches would only pay
/// their fill cost without ever replaying an entry.
fn one_shot_engine<'a>(sig: &'a Signature, rules: &'a RuleSet) -> Engine<'a> {
    Engine::with_config(
        sig,
        rules,
        crate::engine::EngineConfig {
            cache: false,
            ..Default::default()
        },
    )
}

fn duplicate_names(rs: &RuleSet) -> Vec<String> {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for name in rs.names() {
        *seen.entry(name).or_insert(0) += 1;
    }
    let mut dups: Vec<String> = seen
        .into_iter()
        .filter(|(_, n)| *n > 1)
        .map(|(name, _)| name.to_string())
        .collect();
    dups.sort();
    dups
}

/// Root overlaps between pattern-fragment rules: for each pair of Miller
/// rules at the same subject type, rename the later rule's metavariables
/// apart and run pattern unification on the two left-hand sides. Success
/// exhibits a term both rules rewrite; a refutation proves none exists.
/// Pairs outside the fragment (or exceeding the solver's budget) are
/// skipped — overlap there is undecidable in general.
fn overlaps(sig: &Signature, rules: &[Rule]) -> Vec<Overlap> {
    let mut found = Vec::new();
    for (i, left) in rules.iter().enumerate() {
        if left.classification() != PatternClass::Miller {
            continue;
        }
        let offset = max_meta_id(left.menv()).map_or(0, |id| id + 1);
        for right in rules.iter().skip(i + 1) {
            if right.classification() != PatternClass::Miller || right.ty() != left.ty() {
                continue;
            }
            let mut menv = left.menv().clone();
            for (m, ty) in shift_menv(right.menv(), offset).iter() {
                menv.insert(m.clone(), ty.clone());
            }
            let renamed = shift_metas(right.lhs(), offset);
            if pattern::unify(sig, &menv, left.ty(), left.lhs(), &renamed).is_ok() {
                found.push(Overlap {
                    left: left.name().to_string(),
                    right: right.name().to_string(),
                });
            }
        }
    }
    found
}

fn max_meta_id(menv: &hoas_core::term::MetaEnv) -> Option<u32> {
    menv.keys().map(|m| m.id()).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::parse::parse_ty;
    use hoas_core::Ty;

    fn sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const not : o -> o.
             const forall : (i -> o) -> o.
             const p : i -> o.
             const r : o.",
        )
        .unwrap()
    }

    fn o() -> Ty {
        parse_ty("o").unwrap()
    }

    fn rule(s: &Signature, name: &str, metas: &[(&str, &str)], lhs: &str, rhs: &str) -> Rule {
        Rule::parse(s, name, &o(), metas, lhs, rhs).unwrap()
    }

    #[test]
    fn reports_classification_and_linearity() {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(rule(&s, "idem", &[("P", "o")], "and ?P ?P", "?P"))
            .unwrap();
        rs.push(rule(
            &s,
            "beta",
            &[("F", "i -> o"), ("X", "i")],
            "?F ?X",
            "?F ?X",
        ))
        .unwrap();
        let a = rs.analyze(&s);
        assert_eq!(a.rules[0].class, PatternClass::Miller);
        assert_eq!(a.rules[0].nonlinear_metas, vec!["P"]);
        assert_eq!(a.rules[1].class, PatternClass::General);
        assert!(a.rules[1].nonlinear_metas.is_empty());
        assert!(a.duplicate_names.is_empty());
    }

    #[test]
    fn detects_shadowing() {
        let s = sig();
        let mut rs = RuleSet::new();
        // `not ?P` generalizes `not (not ?P)`: the second can never fire.
        rs.push(rule(&s, "general", &[("P", "o")], "not ?P", "?P"))
            .unwrap();
        rs.push(rule(&s, "specific", &[("P", "o")], "not (not ?P)", "?P"))
            .unwrap();
        let a = rs.analyze(&s);
        assert_eq!(a.rules[0].shadowed_by, None);
        assert_eq!(a.rules[1].shadowed_by.as_deref(), Some("general"));
        // The reverse order is fine: specific first.
        let mut rs = RuleSet::new();
        rs.push(rule(&s, "specific", &[("P", "o")], "not (not ?P)", "?P"))
            .unwrap();
        rs.push(rule(&s, "general", &[("P", "o")], "not ?P", "?P"))
            .unwrap();
        let a = rs.analyze(&s);
        assert!(a.rules.iter().all(|r| r.shadowed_by.is_none()));
    }

    #[test]
    fn detects_trivial_non_termination() {
        let s = sig();
        let mut rs = RuleSet::new();
        // Root loop: the rhs *is* an lhs instance.
        rs.push(rule(
            &s,
            "swap",
            &[("P", "o"), ("Q", "o")],
            "and ?P ?Q",
            "and ?Q ?P",
        ))
        .unwrap();
        // Embedded loop: the rhs contains an lhs instance.
        rs.push(rule(&s, "grow", &[], "r", "not (not r)")).unwrap();
        // Shrinking rule: terminates.
        rs.push(rule(&s, "not-not", &[("P", "o")], "not (not ?P)", "?P"))
            .unwrap();
        let a = rs.analyze(&s);
        assert!(a.rules[0].self_applicable, "swap loops at the root");
        assert!(a.rules[1].self_applicable, "grow loops under `not`");
        assert!(!a.rules[2].self_applicable);
    }

    #[test]
    fn detects_root_overlaps() {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(rule(&s, "skip-left", &[("P", "o")], "and r ?P", "?P"))
            .unwrap();
        rs.push(rule(&s, "skip-right", &[("P", "o")], "and ?P r", "?P"))
            .unwrap();
        rs.push(rule(&s, "or-id", &[("P", "o")], "or ?P ?P", "?P"))
            .unwrap();
        let a = rs.analyze(&s);
        // `and r r` admits both skip rules; `or` never meets `and`.
        assert_eq!(a.overlaps.len(), 1);
        assert_eq!(
            (a.overlaps[0].left.as_str(), a.overlaps[0].right.as_str()),
            ("skip-left", "skip-right")
        );
    }

    #[test]
    fn recomputes_duplicates_on_hand_assembled_sets() {
        let s = sig();
        let r = rule(&s, "dup", &[("P", "o")], "not (not ?P)", "?P");
        // Bypass `push` (which rejects duplicates) via `from_parts`, which
        // skips the freshness check for hand-assembled sets.
        let rs = RuleSet::from_parts(vec![r.clone(), r], Vec::new());
        let a = rs.analyze(&s);
        assert_eq!(a.duplicate_names, vec!["dup"]);
    }

    #[test]
    fn bundled_rulesets_have_no_errors() {
        use crate::rulesets::{fol_cnf, fol_prenex};
        let vocab_sig = Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const imp : o -> o -> o.
             const not : o -> o.
             const forall : (i -> o) -> o.
             const exists : (i -> o) -> o.",
        )
        .unwrap();
        for rs in [
            fol_prenex::rules(&vocab_sig).unwrap(),
            fol_cnf::rules(&vocab_sig).unwrap(),
        ] {
            let a = rs.analyze(&vocab_sig);
            assert!(a.duplicate_names.is_empty());
            for info in &a.rules {
                assert_eq!(info.class, PatternClass::Miller, "{}", info.name);
                assert!(info.unbound_rhs_metas.is_empty(), "{}", info.name);
                assert!(info.shadowed_by.is_none(), "{}", info.name);
                assert!(!info.self_applicable, "{}", info.name);
            }
        }
    }
}
