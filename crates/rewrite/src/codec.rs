//! Binary codec for rule sets, on top of [`hoas_core::codec`].
//!
//! A rule is persisted as its raw ingredients — name, subject type,
//! metavariable environment, lhs, rhs — and decoding replays
//! [`Rule::new`], which re-canonicalizes and re-type-checks both sides
//! against the caller's signature. Replaying the constructor (rather
//! than trusting serialized derived data: head constant, fingerprint,
//! pattern class) keeps the codec's trust base at zero: a decoded rule
//! is definitionally one the constructor accepted, and since the stored
//! sides are already canonical, canonicalization is idempotent and the
//! round trip is the identity.
//!
//! [`crate::rule::NativeRule`]s are Rust closures and cannot cross a process
//! boundary; encoding records their *names* so the decoder can report
//! exactly what was dropped, and callers re-attach native rules by name
//! after decoding.

use crate::rule::{Rule, RuleSet};
use hoas_core::codec::{CodecError, Decoder, Encoder, Kind};
use hoas_core::sig::Signature;

/// Encodes a rule set (named pattern rules fully; native δ-rules by
/// name only — see the module docs).
pub fn encode_rule_set(rules: &RuleSet) -> Vec<u8> {
    let mut enc = Encoder::new(Kind::Rules);
    put_rules(&mut enc, rules);
    enc.finish()
}

/// Writes a rule set into an already-open encoder (shared with the warm
/// image writer, which embeds rule-set payloads in [`Kind::Image`]
/// streams).
pub(crate) fn put_rules(enc: &mut Encoder, rules: &RuleSet) {
    let pattern = rules.rules();
    enc.put_u64(pattern.len() as u64);
    for r in pattern {
        enc.put_str(r.name());
        enc.put_ty(r.ty());
        enc.put_menv(r.menv());
        enc.put_term(r.lhs());
        enc.put_term(r.rhs());
    }
    let native = rules.native_rules();
    enc.put_u64(native.len() as u64);
    for n in native {
        enc.put_str(n.name());
    }
}

/// Decodes a [`Kind::Rules`] stream against `sig`, returning the rule
/// set plus the names of native rules the writer had attached (which
/// the caller must re-create, e.g. via [`crate::rule::NativeRule::new`]).
///
/// # Errors
///
/// Any [`CodecError`]; [`CodecError::Invalid`] when a replayed
/// [`Rule::new`] rejects a rule under `sig`.
pub fn decode_rule_set(
    sig: &Signature,
    bytes: &[u8],
) -> Result<(RuleSet, Vec<String>), CodecError> {
    let mut dec = Decoder::new(bytes, Kind::Rules)?;
    let (rules, native_names) = get_rules(sig, &mut dec)?;
    dec.finish()?;
    Ok((rules, native_names))
}

/// Reads a rule set from an already-open decoder (counterpart of
/// [`put_rules`]).
pub(crate) fn get_rules(
    sig: &Signature,
    dec: &mut Decoder<'_>,
) -> Result<(RuleSet, Vec<String>), CodecError> {
    let n = dec.get_u64()?;
    let mut rules = Vec::new();
    for _ in 0..n {
        let name = dec.get_str()?;
        let ty = dec.get_ty()?;
        let menv = dec.get_menv()?;
        let lhs = dec.get_term()?;
        let rhs = dec.get_term()?;
        let rule = Rule::new(sig, &name, ty, menv, lhs.into_term(), rhs.into_term())
            .map_err(|e| CodecError::Invalid(format!("rule `{name}`: {e}")))?;
        rules.push(rule);
    }
    let n_native = dec.get_u64()?;
    let mut native_names = Vec::new();
    for _ in 0..n_native {
        native_names.push(dec.get_str()?);
    }
    let mut set = RuleSet::new();
    for rule in rules {
        let name = rule.name().to_string();
        set.push(rule)
            .map_err(|e| CodecError::Invalid(format!("rule `{name}`: {e}")))?;
    }
    Ok((set, native_names))
}
