//! Termination certificates: engine-enforced analysis verdicts.
//!
//! The static analyzer (crate `hoas-analyze`) proves facts about a
//! [`RuleSet`] — today, size-change termination — and mints a
//! [`TerminationCert`] recording the verdict together with a
//! fingerprint of the exact rule set it was proven for. The engine
//! accepts a certificate only when the fingerprint matches the rule
//! set it is running ([`crate::Engine::attach_certificate`]), and then
//! drops per-call step-budget bookkeeping from the normalization loop:
//! a proven-terminating rule set cannot run forever, so counting steps
//! against `max_steps` is pure overhead.
//!
//! Trust boundary: certificates can only be constructed through
//! [`TerminationCert::issue`], which is `#[doc(hidden)]` and intended
//! solely for the analyzer. The fields are private, so a certificate
//! cannot be forged by literal construction, and the fingerprint check
//! prevents replaying a certificate against a different (e.g. extended)
//! rule set. Debug builds keep counting steps even under a certificate
//! and panic — citing diagnostic `HA016` — if a "proven terminating"
//! set exceeds a generous multiple of the configured budget, so a bug
//! in the analyzer surfaces as a loud cross-check failure instead of a
//! hang.

use crate::rule::RuleSet;

/// Mixes one 64-bit word into a running FNV-style fingerprint.
fn mix(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(0x0100_0000_01b3).rotate_left(23)
}

/// Mixes a byte string into a running fingerprint.
fn mix_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(w));
    }
    mix(h, bytes.len() as u64)
}

impl RuleSet {
    /// A store-independent fingerprint of the rule set's observable
    /// content: rule names, both sides' content hashes, and subject
    /// types, plus native-rule names. Order-sensitive — rule order
    /// affects engine behavior, so reordered sets fingerprint apart.
    pub fn fingerprint64(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for r in self.rules() {
            h = mix_bytes(h, r.name().as_bytes());
            let lh = hoas_core::TermRef::new(r.lhs().clone()).content_hash();
            let rh = hoas_core::TermRef::new(r.rhs().clone()).content_hash();
            h = mix(h, lh as u64);
            h = mix(h, (lh >> 64) as u64);
            h = mix(h, rh as u64);
            h = mix(h, (rh >> 64) as u64);
            h = mix_bytes(h, r.ty().to_string().as_bytes());
        }
        for n in self.native_rules() {
            h = mix_bytes(h, n.name().as_bytes());
        }
        mix(h, self.rules().len() as u64)
    }
}

/// Proof token: the analyzer established size-change termination for
/// one specific rule set. See the module docs for the trust story.
#[derive(Clone, Debug)]
pub struct TerminationCert {
    fingerprint: u64,
    /// Human-readable justification recorded by the analyzer (e.g.
    /// which descent measure closed every idempotent graph).
    reason: String,
}

impl TerminationCert {
    /// Mints a certificate for `rs`. **Analyzer use only** — calling
    /// this without having actually run the size-change analysis
    /// forfeits the termination guarantee the engine relies on.
    #[doc(hidden)]
    pub fn issue(rs: &RuleSet, reason: impl Into<String>) -> TerminationCert {
        TerminationCert {
            fingerprint: rs.fingerprint64(),
            reason: reason.into(),
        }
    }

    /// Whether the certificate was issued for exactly this rule set.
    pub fn covers(&self, rs: &RuleSet) -> bool {
        self.fingerprint == rs.fingerprint64()
    }

    /// The analyzer's recorded justification.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use hoas_core::parse::parse_ty;
    use hoas_core::sig::Signature;

    fn demo() -> (Signature, RuleSet) {
        let sig = Signature::parse("type o. const not : o -> o. const and : o -> o -> o.").unwrap();
        let o = parse_ty("o").unwrap();
        let mut rs = RuleSet::new();
        rs.push(Rule::parse(&sig, "nn", &o, &[("P", "o")], "not (not ?P)", "?P").unwrap())
            .unwrap();
        (sig, rs)
    }

    #[test]
    fn certificate_covers_only_the_fingerprinted_set() {
        let (sig, rs) = demo();
        let cert = TerminationCert::issue(&rs, "sct: all idempotent graphs descend");
        assert!(cert.covers(&rs));
        assert_eq!(cert.reason(), "sct: all idempotent graphs descend");

        // Extending the set invalidates the certificate.
        let mut extended = rs.clone();
        let o = parse_ty("o").unwrap();
        extended
            .push(Rule::parse(&sig, "ai", &o, &[("P", "o")], "and ?P ?P", "?P").unwrap())
            .unwrap();
        assert!(!cert.covers(&extended));
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let sig = Signature::parse("type o. const not : o -> o. const and : o -> o -> o.").unwrap();
        let o = parse_ty("o").unwrap();
        let r1 = Rule::parse(&sig, "nn", &o, &[("P", "o")], "not (not ?P)", "?P").unwrap();
        let r2 = Rule::parse(&sig, "ai", &o, &[("P", "o")], "and ?P ?P", "?P").unwrap();
        let ab = RuleSet::from_parts(vec![r1.clone(), r2.clone()], Vec::new());
        let ba = RuleSet::from_parts(vec![r2, r1], Vec::new());
        assert_ne!(ab.fingerprint64(), ba.fingerprint64());
    }
}
