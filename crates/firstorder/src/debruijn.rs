//! Nameless (de Bruijn) abstract binding trees.
//!
//! The second conventional representation the paper discusses: variables
//! are numbers counting enclosing binders. α-equivalence becomes
//! structural equality, but substitution now needs index *shifting*, which
//! is easy to get wrong and still must be written once per system —
//! whereas HOAS inherits it from the metalanguage.

use std::fmt;

/// A nameless first-order term. `Var(0)` refers to the innermost binder;
/// in a multi-binder scope `(k, body)`, the binders are indices
/// `k-1 … 0` (leftmost binder has the highest index).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum DbTree {
    /// A bound variable (or dangling index if out of range).
    Var(u32),
    /// A free (global) variable kept by name.
    Free(String),
    /// An operator applied to scopes `(n_binders, body)`.
    Node(String, Vec<(u32, DbTree)>),
}

impl DbTree {
    /// Convenience constructor for an operator over unbound children.
    pub fn node(op: impl Into<String>, children: impl IntoIterator<Item = DbTree>) -> DbTree {
        DbTree::Node(op.into(), children.into_iter().map(|c| (0, c)).collect())
    }

    /// Convenience constructor for a unary binder operator.
    pub fn binder(op: impl Into<String>, body: DbTree) -> DbTree {
        DbTree::Node(op.into(), vec![(1, body)])
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            DbTree::Var(_) | DbTree::Free(_) => 1,
            DbTree::Node(_, scopes) => 1 + scopes.iter().map(|(_, b)| b.size()).sum::<usize>(),
        }
    }

    /// Shifts free indices `>= cutoff` up by `d`.
    pub fn shift_above(&self, d: u32, cutoff: u32) -> DbTree {
        match self {
            DbTree::Var(i) => {
                if *i >= cutoff {
                    DbTree::Var(i + d)
                } else {
                    self.clone()
                }
            }
            DbTree::Free(_) => self.clone(),
            DbTree::Node(op, scopes) => DbTree::Node(
                op.clone(),
                scopes
                    .iter()
                    .map(|(n, b)| (*n, b.shift_above(d, cutoff + n)))
                    .collect(),
            ),
        }
    }

    /// Shifts all free indices up by `d`.
    pub fn shift(&self, d: u32) -> DbTree {
        self.shift_above(d, 0)
    }

    /// Substitutes `s` for index `j`, leaving other indices unchanged.
    /// The replacement is shifted at each occurrence site (not at every
    /// binder crossing, which would cost `O(binders × |s|)`).
    pub fn subst(&self, j: u32, s: &DbTree) -> DbTree {
        fn go(t: &DbTree, j: u32, s: &DbTree, depth: u32) -> DbTree {
            match t {
                DbTree::Var(i) => {
                    if *i == j + depth {
                        s.shift(depth)
                    } else {
                        t.clone()
                    }
                }
                DbTree::Free(_) => t.clone(),
                DbTree::Node(op, scopes) => DbTree::Node(
                    op.clone(),
                    scopes
                        .iter()
                        .map(|(n, b)| (*n, go(b, j, s, depth + n)))
                        .collect(),
                ),
            }
        }
        go(self, j, s, 0)
    }

    /// Opens a 1-binder scope body with `arg`: substitutes index 0 and
    /// decrements the remaining free indices — the β-contraction helper.
    pub fn instantiate(&self, arg: &DbTree) -> DbTree {
        fn go(t: &DbTree, arg: &DbTree, depth: u32) -> DbTree {
            match t {
                DbTree::Var(i) => {
                    if *i == depth {
                        arg.shift(depth)
                    } else if *i > depth {
                        DbTree::Var(i - 1)
                    } else {
                        t.clone()
                    }
                }
                DbTree::Free(_) => t.clone(),
                DbTree::Node(op, scopes) => DbTree::Node(
                    op.clone(),
                    scopes
                        .iter()
                        .map(|(n, b)| (*n, go(b, arg, depth + n)))
                        .collect(),
                ),
            }
        }
        go(self, arg, 0)
    }

    /// Substitutes `s` for the free (named) variable `x`, shifting the
    /// replacement at each occurrence site.
    pub fn subst_free(&self, x: &str, s: &DbTree) -> DbTree {
        fn go(t: &DbTree, x: &str, s: &DbTree, depth: u32) -> DbTree {
            match t {
                DbTree::Free(y) if y == x => s.shift(depth),
                DbTree::Var(_) | DbTree::Free(_) => t.clone(),
                DbTree::Node(op, scopes) => DbTree::Node(
                    op.clone(),
                    scopes
                        .iter()
                        .map(|(n, b)| (*n, go(b, x, s, depth + n)))
                        .collect(),
                ),
            }
        }
        go(self, x, s, 0)
    }

    /// Whether all indices are bound (no dangling `Var`).
    pub fn is_locally_closed(&self) -> bool {
        fn go(t: &DbTree, depth: u32) -> bool {
            match t {
                DbTree::Var(i) => *i < depth,
                DbTree::Free(_) => true,
                DbTree::Node(_, scopes) => scopes.iter().all(|(n, b)| go(b, depth + n)),
            }
        }
        go(self, 0)
    }
}

impl fmt::Display for DbTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbTree::Var(i) => write!(f, "#{i}"),
            DbTree::Free(x) => f.write_str(x),
            DbTree::Node(op, scopes) => {
                if scopes.is_empty() {
                    return f.write_str(op);
                }
                write!(f, "{op}(")?;
                for (i, (n, b)) in scopes.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    for _ in 0..*n {
                        f.write_str("λ.")?;
                    }
                    write!(f, "{b}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> DbTree {
        DbTree::Var(i)
    }

    fn lam(b: DbTree) -> DbTree {
        DbTree::binder("lam", b)
    }

    fn app(f: DbTree, a: DbTree) -> DbTree {
        DbTree::node("app", [f, a])
    }

    #[test]
    fn alpha_is_structural() {
        // λ.0 == λ.0, no renaming machinery needed.
        assert_eq!(lam(v(0)), lam(v(0)));
        assert_ne!(lam(v(0)), lam(v(1)));
    }

    #[test]
    fn shift_with_cutoff() {
        let t = lam(app(v(0), v(1)));
        assert_eq!(t.shift(2), lam(app(v(0), v(3))));
    }

    #[test]
    fn instantiate_beta() {
        // (λ. 0 0) c  ⇒  c c
        let body = app(v(0), v(0));
        let c = DbTree::node("c", []);
        assert_eq!(body.instantiate(&c), app(c.clone(), c));
    }

    #[test]
    fn instantiate_decrements_outer() {
        let body = app(v(0), v(1));
        let r = body.instantiate(&DbTree::Free("a".into()));
        assert_eq!(r, app(DbTree::Free("a".into()), v(0)));
    }

    #[test]
    fn instantiate_shifts_under_binder() {
        // body = λ. (1 0); open with free index context: arg = 5 (a free idx)
        let body = lam(app(v(1), v(0)));
        let r = body.instantiate(&v(5));
        assert_eq!(r, lam(app(v(6), v(0))));
    }

    #[test]
    fn subst_free_crosses_binders_with_shift() {
        // λ. (f 0) [f := 0] — the replacement index must shift to 1 inside.
        let t = lam(app(DbTree::Free("f".into()), v(0)));
        let r = t.subst_free("f", &v(0));
        assert_eq!(r, lam(app(v(1), v(0))));
    }

    #[test]
    fn multi_binder_scopes() {
        // let2 binds 2 names: indices 1 and 0 inside.
        let t = DbTree::Node("let2".into(), vec![(2, app(v(1), v(0)))]);
        assert!(t.is_locally_closed());
        let shifted = t.shift(4);
        assert_eq!(shifted, t, "no free vars, shift is identity");
        let open = DbTree::Node("let2".into(), vec![(2, app(v(2), v(0)))]);
        assert!(!open.is_locally_closed());
        assert_eq!(
            open.shift(1),
            DbTree::Node("let2".into(), vec![(2, app(v(3), v(0)))])
        );
    }

    #[test]
    fn display_format() {
        let t = lam(app(v(0), DbTree::Free("c".into())));
        assert_eq!(t.to_string(), "lam(λ.app(#0; c))");
    }
}
