//! Locally nameless abstract binding trees.
//!
//! The third conventional representation: bound variables are de Bruijn
//! indices, free variables are names. Substitution for a *free* variable
//! needs no shifting and cannot capture; the price is the `open`/`close`
//! discipline when traversing under binders — yet more infrastructure
//! each first-order mechanization must build (and prove lemmas about),
//! all of which HOAS inherits from the metalanguage.

use crate::named::{fresh_name, Abs, Tree};
use std::collections::HashSet;
use std::fmt;

/// A locally nameless term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LnTree {
    /// A bound variable (index counts enclosing scopes; within a
    /// multi-binder scope the leftmost binder has the highest index).
    BVar(u32),
    /// A free variable, by name.
    FVar(String),
    /// An operator applied to scopes `(n_binders, body)`.
    Node(String, Vec<(u32, LnTree)>),
}

impl LnTree {
    /// Convenience constructor for an operator over unbound children.
    pub fn node(op: impl Into<String>, children: impl IntoIterator<Item = LnTree>) -> LnTree {
        LnTree::Node(op.into(), children.into_iter().map(|c| (0, c)).collect())
    }

    /// Convenience constructor for a free variable.
    pub fn fvar(x: impl Into<String>) -> LnTree {
        LnTree::FVar(x.into())
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            LnTree::BVar(_) | LnTree::FVar(_) => 1,
            LnTree::Node(_, scopes) => 1 + scopes.iter().map(|(_, b)| b.size()).sum::<usize>(),
        }
    }

    /// The free variables.
    pub fn free_vars(&self) -> HashSet<String> {
        fn go(t: &LnTree, acc: &mut HashSet<String>) {
            match t {
                LnTree::BVar(_) => {}
                LnTree::FVar(x) => {
                    acc.insert(x.clone());
                }
                LnTree::Node(_, scopes) => {
                    for (_, b) in scopes {
                        go(b, acc);
                    }
                }
            }
        }
        let mut acc = HashSet::new();
        go(self, &mut acc);
        acc
    }

    /// Whether the term is *locally closed*: every bound index points at
    /// an enclosing scope. The representation invariant all operations
    /// preserve.
    pub fn is_locally_closed(&self) -> bool {
        fn go(t: &LnTree, depth: u32) -> bool {
            match t {
                LnTree::BVar(i) => *i < depth,
                LnTree::FVar(_) => true,
                LnTree::Node(_, scopes) => scopes.iter().all(|(n, b)| go(b, depth + n)),
            }
        }
        go(self, 0)
    }

    /// Opens a `k`-binder scope body, replacing its outermost bound
    /// variables (indices `k-1 … 0` at depth 0) with the given free
    /// variables. This is how one descends under a binder.
    ///
    /// # Panics
    ///
    /// Panics if `names.len()` does not match the scope's binder count
    /// expectation of the caller (the replacement list length is the
    /// authority here).
    pub fn open_with(&self, names: &[&str]) -> LnTree {
        let k = names.len() as u32;
        fn go(t: &LnTree, names: &[&str], k: u32, depth: u32) -> LnTree {
            match t {
                LnTree::BVar(i) => {
                    if *i >= depth && *i < depth + k {
                        // Index depth+j refers to binder j of the opened
                        // scope, counting innermost-first.
                        let j = (*i - depth) as usize;
                        LnTree::fvar(names[names.len() - 1 - j])
                    } else if *i >= depth + k {
                        LnTree::BVar(*i - k)
                    } else {
                        t.clone()
                    }
                }
                LnTree::FVar(_) => t.clone(),
                LnTree::Node(op, scopes) => LnTree::Node(
                    op.clone(),
                    scopes
                        .iter()
                        .map(|(n, b)| (*n, go(b, names, k, depth + n)))
                        .collect(),
                ),
            }
        }
        go(self, names, k, 0)
    }

    /// Closes over the given free variables, producing a scope body whose
    /// outermost indices refer to them (inverse of [`LnTree::open_with`]).
    pub fn close_over(&self, names: &[&str]) -> LnTree {
        let k = names.len() as u32;
        fn go(t: &LnTree, names: &[&str], k: u32, depth: u32) -> LnTree {
            match t {
                LnTree::BVar(i) => {
                    if *i >= depth {
                        LnTree::BVar(*i + k)
                    } else {
                        t.clone()
                    }
                }
                LnTree::FVar(x) => match names.iter().position(|n| n == x) {
                    Some(pos) => LnTree::BVar(depth + (names.len() - 1 - pos) as u32),
                    None => t.clone(),
                },
                LnTree::Node(op, scopes) => LnTree::Node(
                    op.clone(),
                    scopes
                        .iter()
                        .map(|(n, b)| (*n, go(b, names, k, depth + n)))
                        .collect(),
                ),
            }
        }
        go(self, names, k, 0)
    }

    /// Substitutes `s` for the free variable `x`. **No shifting, no
    /// capture possible** — free and bound variables live in different
    /// syntactic classes, which is the selling point of this
    /// representation.
    pub fn subst_free(&self, x: &str, s: &LnTree) -> LnTree {
        match self {
            LnTree::FVar(y) if y == x => s.clone(),
            LnTree::BVar(_) | LnTree::FVar(_) => self.clone(),
            LnTree::Node(op, scopes) => LnTree::Node(
                op.clone(),
                scopes
                    .iter()
                    .map(|(n, b)| (*n, b.subst_free(x, s)))
                    .collect(),
            ),
        }
    }
}

impl fmt::Display for LnTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LnTree::BVar(i) => write!(f, "#{i}"),
            LnTree::FVar(x) => f.write_str(x),
            LnTree::Node(op, scopes) => {
                if scopes.is_empty() {
                    return f.write_str(op);
                }
                write!(f, "{op}(")?;
                for (i, (n, b)) in scopes.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    for _ in 0..*n {
                        f.write_str("λ.")?;
                    }
                    write!(f, "{b}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Converts a named tree to locally nameless form (binders become
/// indices; free names stay names).
pub fn from_named(t: &Tree) -> LnTree {
    fn go(t: &Tree, env: &mut Vec<String>) -> LnTree {
        match t {
            Tree::Var(x) => match env.iter().rposition(|b| b == x) {
                Some(pos) => LnTree::BVar((env.len() - 1 - pos) as u32),
                None => LnTree::fvar(x.clone()),
            },
            Tree::Node(op, scopes) => LnTree::Node(
                op.clone(),
                scopes
                    .iter()
                    .map(|s| {
                        let n = s.binders.len();
                        env.extend(s.binders.iter().cloned());
                        let b = go(&s.body, env);
                        env.truncate(env.len() - n);
                        (n as u32, b)
                    })
                    .collect(),
            ),
        }
    }
    go(t, &mut Vec::new())
}

/// Converts back to named form, inventing fresh binder names via the
/// open discipline.
pub fn to_named(t: &LnTree) -> Tree {
    fn go(t: &LnTree, used: &mut HashSet<String>) -> Tree {
        match t {
            LnTree::BVar(i) => Tree::var(format!("#{i}")), // dangling
            LnTree::FVar(x) => Tree::var(x.clone()),
            LnTree::Node(op, scopes) => Tree::Node(
                op.clone(),
                scopes
                    .iter()
                    .map(|(k, b)| {
                        let mut names = Vec::with_capacity(*k as usize);
                        for _ in 0..*k {
                            let n = fresh_name("x", used);
                            used.insert(n.clone());
                            names.push(n);
                        }
                        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                        let body = go(&b.open_with(&refs), used);
                        for n in &names {
                            used.remove(n);
                        }
                        Abs {
                            binders: names,
                            body,
                        }
                    })
                    .collect(),
            ),
        }
    }
    let mut used = t.free_vars();
    go(t, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lam(b: LnTree) -> LnTree {
        LnTree::Node("lam".into(), vec![(1, b)])
    }

    fn app(f: LnTree, a: LnTree) -> LnTree {
        LnTree::node("app", [f, a])
    }

    #[test]
    fn open_replaces_outermost_indices() {
        // scope body of λ: app #0 y
        let body = app(LnTree::BVar(0), LnTree::fvar("y"));
        let opened = body.open_with(&["x"]);
        assert_eq!(opened, app(LnTree::fvar("x"), LnTree::fvar("y")));
    }

    #[test]
    fn open_close_roundtrip() {
        let body = app(LnTree::BVar(0), lam(app(LnTree::BVar(0), LnTree::BVar(1))));
        let opened = body.open_with(&["fresh"]);
        assert!(opened.is_locally_closed());
        assert_eq!(opened.close_over(&["fresh"]), body);
    }

    #[test]
    fn close_open_roundtrip() {
        let t = app(
            LnTree::fvar("a"),
            lam(app(LnTree::BVar(0), LnTree::fvar("a"))),
        );
        let closed = t.close_over(&["a"]);
        assert_eq!(closed.open_with(&["a"]), t);
        assert!(
            !closed.is_locally_closed(),
            "closing leaves a dangling index"
        );
    }

    #[test]
    fn multi_binder_open_order() {
        // 2-binder scope: #1 is the leftmost binder.
        let body = app(LnTree::BVar(1), LnTree::BVar(0));
        let opened = body.open_with(&["first", "second"]);
        assert_eq!(opened, app(LnTree::fvar("first"), LnTree::fvar("second")));
        assert_eq!(opened.close_over(&["first", "second"]), body);
    }

    #[test]
    fn subst_free_cannot_capture() {
        // λ. x — substituting x := #0-containing term is impossible by
        // typing: replacements are locally closed. Substituting a free
        // variable never touches indices.
        let t = lam(LnTree::fvar("x"));
        let r = t.subst_free("x", &LnTree::fvar("y"));
        assert_eq!(r, lam(LnTree::fvar("y")));
        // Substitution under a binder needs no shifting at all.
        let s = lam(app(LnTree::BVar(0), LnTree::fvar("f")));
        let r = s.subst_free("f", &lam(LnTree::BVar(0)));
        assert_eq!(r, lam(app(LnTree::BVar(0), lam(LnTree::BVar(0)))));
    }

    #[test]
    fn conversion_agrees_with_named() {
        let named = Tree::binder(
            "lam",
            "x",
            Tree::node("app", [Tree::var("x"), Tree::var("free")]),
        );
        let ln = from_named(&named);
        assert_eq!(ln, lam(app(LnTree::BVar(0), LnTree::fvar("free"))));
        assert!(to_named(&ln).alpha_eq(&named));
    }

    #[test]
    fn alpha_is_structural() {
        let a = Tree::binder("lam", "x", Tree::var("x"));
        let b = Tree::binder("lam", "y", Tree::var("y"));
        assert_eq!(from_named(&a), from_named(&b));
    }

    #[test]
    fn to_named_freshens_against_free_vars() {
        // λ. (#0 x): the invented binder must avoid the free "x".
        let ln = lam(app(LnTree::BVar(0), LnTree::fvar("x")));
        let named = to_named(&ln);
        if let Tree::Node(_, scopes) = &named {
            assert_ne!(scopes[0].binders[0], "x");
        } else {
            panic!("expected a node");
        }
        assert_eq!(from_named(&named), ln);
    }

    #[test]
    fn local_closure_detection() {
        assert!(lam(LnTree::BVar(0)).is_locally_closed());
        assert!(!LnTree::BVar(0).is_locally_closed());
        assert!(LnTree::fvar("x").is_locally_closed());
    }

    #[test]
    fn display_format() {
        let t = lam(app(LnTree::BVar(0), LnTree::fvar("c")));
        assert_eq!(t.to_string(), "lam(λ.app(#0; c))");
    }

    #[test]
    fn substitution_commutes_with_named_subst() {
        // Named subst then convert == convert then LN subst_free (on a
        // closed replacement).
        let named = Tree::binder(
            "lam",
            "y",
            Tree::node("app", [Tree::var("x"), Tree::var("y")]),
        );
        let repl = Tree::binder("lam", "z", Tree::var("z"));
        let left = from_named(&named.subst("x", &repl));
        let right = from_named(&named).subst_free("x", &from_named(&repl));
        assert_eq!(left, right);
    }
}
