//! Conversions between named and de Bruijn trees.

use crate::debruijn::DbTree;
use crate::named::{fresh_name, Abs, Tree};
use std::collections::HashSet;

/// Converts a named tree to de Bruijn. Free variables become
/// [`DbTree::Free`]; the conversion is total.
pub fn to_debruijn(t: &Tree) -> DbTree {
    fn go(t: &Tree, env: &mut Vec<String>) -> DbTree {
        match t {
            Tree::Var(x) => match env.iter().rposition(|b| b == x) {
                Some(pos) => DbTree::Var((env.len() - 1 - pos) as u32),
                None => DbTree::Free(x.clone()),
            },
            Tree::Node(op, scopes) => DbTree::Node(
                op.clone(),
                scopes
                    .iter()
                    .map(|s| {
                        let n = s.binders.len();
                        env.extend(s.binders.iter().cloned());
                        let b = go(&s.body, env);
                        env.truncate(env.len() - n);
                        (n as u32, b)
                    })
                    .collect(),
            ),
        }
    }
    go(t, &mut Vec::new())
}

/// Converts a de Bruijn tree back to named form, inventing binder names
/// (`x`, `x1`, …) that avoid the free names in scope.
///
/// Dangling indices become variables named `#i` (cannot clash with
/// identifiers).
pub fn to_named(t: &DbTree) -> Tree {
    fn go(t: &DbTree, env: &mut Vec<String>, used: &mut HashSet<String>) -> Tree {
        match t {
            DbTree::Var(i) => {
                let n = env.len();
                match n.checked_sub(1 + *i as usize).and_then(|k| env.get(k)) {
                    Some(name) => Tree::var(name.clone()),
                    None => Tree::var(format!("#{i}")),
                }
            }
            DbTree::Free(x) => Tree::var(x.clone()),
            DbTree::Node(op, scopes) => Tree::Node(
                op.clone(),
                scopes
                    .iter()
                    .map(|(k, b)| {
                        let mut binders = Vec::with_capacity(*k as usize);
                        for _ in 0..*k {
                            let name = fresh_name("x", used);
                            used.insert(name.clone());
                            env.push(name.clone());
                            binders.push(name);
                        }
                        let body = go(b, env, used);
                        for name in binders.iter() {
                            used.remove(name);
                        }
                        env.truncate(env.len() - *k as usize);
                        Abs { binders, body }
                    })
                    .collect(),
            ),
        }
    }
    let mut used: HashSet<String> = free_names(t);
    go(t, &mut Vec::new(), &mut used)
}

fn free_names(t: &DbTree) -> HashSet<String> {
    match t {
        DbTree::Var(_) => HashSet::new(),
        DbTree::Free(x) => std::iter::once(x.clone()).collect(),
        DbTree::Node(_, scopes) => scopes.iter().flat_map(|(_, b)| free_names(b)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: &str) -> Tree {
        Tree::var(x)
    }

    fn lam(x: &str, body: Tree) -> Tree {
        Tree::binder("lam", x, body)
    }

    fn app(f: Tree, a: Tree) -> Tree {
        Tree::node("app", [f, a])
    }

    #[test]
    fn named_to_db_basic() {
        let t = lam("x", app(v("x"), v("y")));
        let db = to_debruijn(&t);
        assert_eq!(
            db,
            DbTree::binder(
                "lam",
                DbTree::node("app", [DbTree::Var(0), DbTree::Free("y".into())])
            )
        );
    }

    #[test]
    fn alpha_equal_named_terms_convert_identically() {
        let a = lam("x", v("x"));
        let b = lam("different", v("different"));
        assert_eq!(to_debruijn(&a), to_debruijn(&b));
    }

    #[test]
    fn shadowing_resolves_to_innermost() {
        let t = lam("x", lam("x", v("x")));
        let db = to_debruijn(&t);
        assert_eq!(
            db,
            DbTree::binder("lam", DbTree::binder("lam", DbTree::Var(0)))
        );
    }

    #[test]
    fn roundtrip_preserves_alpha_class() {
        let t = lam("x", lam("y", app(app(v("x"), v("y")), v("free"))));
        let back = to_named(&to_debruijn(&t));
        assert!(back.alpha_eq(&t), "got {back}");
        // And de Bruijn forms agree exactly.
        assert_eq!(to_debruijn(&back), to_debruijn(&t));
    }

    #[test]
    fn to_named_avoids_free_names() {
        // λ. (0 x): the invented binder must not be called "x".
        let db = DbTree::binder(
            "lam",
            DbTree::node("app", [DbTree::Var(0), DbTree::Free("x".into())]),
        );
        let named = to_named(&db);
        if let Tree::Node(_, scopes) = &named {
            assert_ne!(scopes[0].binders[0], "x");
        } else {
            panic!("expected node");
        }
        assert_eq!(to_debruijn(&named), db);
    }

    #[test]
    fn multi_binder_roundtrip() {
        let t = Tree::Node(
            "let2".into(),
            vec![Abs {
                binders: vec!["a".into(), "b".into()],
                body: app(v("a"), app(v("b"), v("c"))),
            }],
        );
        let db = to_debruijn(&t);
        assert_eq!(
            db,
            DbTree::Node(
                "let2".into(),
                vec![(
                    2,
                    DbTree::node(
                        "app",
                        [
                            DbTree::Var(1),
                            DbTree::node("app", [DbTree::Var(0), DbTree::Free("c".into())])
                        ]
                    )
                )]
            )
        );
        assert!(to_named(&db).alpha_eq(&t));
    }

    #[test]
    fn dangling_index_becomes_hash_name() {
        let db = DbTree::Var(3);
        assert_eq!(to_named(&db), Tree::var("#3"));
    }

    #[test]
    fn substitution_commutes_with_conversion() {
        // subst in named world then convert == convert then subst_free.
        let t = lam("y", app(v("x"), v("y")));
        let s = app(v("a"), v("b"));
        let named_then = to_debruijn(&t.subst("x", &s));
        let db_then = to_debruijn(&t).subst_free("x", &to_debruijn(&s));
        assert_eq!(named_then, db_then);
    }
}
