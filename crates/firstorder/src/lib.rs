//! # hoas-firstorder — the first-order abstract syntax baseline
//!
//! The HOAS paper (Pfenning & Elliott, PLDI 1988) opens by cataloguing the
//! problems of conventional *first-order* abstract syntax: variables are
//! names (or numbers), each object language re-implements substitution,
//! naive substitution captures, capture-avoiding substitution needs
//! renaming machinery, and α-equivalence is a nontrivial judgment.
//!
//! This crate implements that baseline faithfully so that the paper's
//! comparison can be reproduced (experiments E1/E2):
//!
//! * [`named`] — generic operator trees with **named** binders ("abstract
//!   binding trees"), with *naive* substitution (exhibiting the capture
//!   bug), *capture-avoiding* substitution (with freshening), explicit
//!   renaming, and α-equivalence;
//! * [`debruijn`] — the nameless variant with shifting and substitution,
//!   where α-equivalence is structural equality;
//! * [`locally`] — the locally nameless discipline (bound = indices,
//!   free = names) with its `open`/`close` machinery;
//! * [`convert`] — conversions between the representations.
//!
//! Both representations are *generic*: an operator is any string applied
//! to a vector of abstractions (scopes). Every object language in
//! `hoas-langs` can be projected onto these trees for the baseline
//! benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod debruijn;
pub mod locally;
pub mod named;

pub use debruijn::DbTree;
pub use locally::LnTree;
pub use named::{Abs, Tree};
