//! Named abstract binding trees: the conventional representation the
//! paper argues against.
//!
//! A [`Tree`] is either a named variable or an operator applied to
//! *abstractions* ([`Abs`]): scopes that bind zero or more names. This is
//! generic first-order abstract syntax — e.g. the untyped λ-calculus uses
//! operators `lam` (one abstraction binding one name) and `app` (two
//! abstractions binding nothing).
//!
//! The module deliberately provides **both** substitutions:
//!
//! * [`Tree::subst_naive`] — textbook-naive, *captures* variables
//!   (experiment E1 demonstrates the bug);
//! * [`Tree::subst`] — capture-avoiding, freshening binders as needed
//!   (the machinery every first-order implementation must write and test,
//!   and which HOAS gets for free from β-reduction).

use std::collections::HashSet;
use std::fmt;

/// A scope: `binders` are bound within `body`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Abs {
    /// Names bound in the body (may be empty for a plain subterm).
    pub binders: Vec<String>,
    /// The scope body.
    pub body: Tree,
}

impl Abs {
    /// A scope binding no names.
    pub fn plain(body: Tree) -> Abs {
        Abs {
            binders: Vec::new(),
            body,
        }
    }

    /// A scope binding one name.
    pub fn bind(name: impl Into<String>, body: Tree) -> Abs {
        Abs {
            binders: vec![name.into()],
            body,
        }
    }
}

/// A named first-order term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Tree {
    /// A variable occurrence.
    Var(String),
    /// An operator applied to scopes.
    Node(String, Vec<Abs>),
}

impl Tree {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Tree {
        Tree::Var(name.into())
    }

    /// Convenience constructor for a leaf operator (no children).
    pub fn leaf(op: impl Into<String>) -> Tree {
        Tree::Node(op.into(), Vec::new())
    }

    /// Convenience constructor for an operator over unbound children.
    pub fn node(op: impl Into<String>, children: impl IntoIterator<Item = Tree>) -> Tree {
        Tree::Node(op.into(), children.into_iter().map(Abs::plain).collect())
    }

    /// Convenience constructor for a unary binder operator, e.g.
    /// `Tree::binder("lam", "x", body)` for `λx. body`.
    pub fn binder(op: impl Into<String>, name: impl Into<String>, body: Tree) -> Tree {
        Tree::Node(op.into(), vec![Abs::bind(name, body)])
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Tree::Var(_) => 1,
            Tree::Node(_, scopes) => 1 + scopes.iter().map(|s| s.body.size()).sum::<usize>(),
        }
    }

    /// The free variables of the term.
    pub fn free_vars(&self) -> HashSet<String> {
        fn go(t: &Tree, bound: &mut Vec<String>, acc: &mut HashSet<String>) {
            match t {
                Tree::Var(x) => {
                    if !bound.iter().any(|b| b == x) {
                        acc.insert(x.clone());
                    }
                }
                Tree::Node(_, scopes) => {
                    for s in scopes {
                        let n = s.binders.len();
                        bound.extend(s.binders.iter().cloned());
                        go(&s.body, bound, acc);
                        bound.truncate(bound.len() - n);
                    }
                }
            }
        }
        let mut acc = HashSet::new();
        go(self, &mut Vec::new(), &mut acc);
        acc
    }

    /// Whether `x` occurs free.
    pub fn occurs_free(&self, x: &str) -> bool {
        match self {
            Tree::Var(y) => y == x,
            Tree::Node(_, scopes) => scopes
                .iter()
                .any(|s| !s.binders.iter().any(|b| b == x) && s.body.occurs_free(x)),
        }
    }

    /// **Naive** substitution `self[x := s]`: replaces free occurrences of
    /// `x` without renaming binders. **Wrong in general** — if `s` has a
    /// free variable that a binder on the path captures, the result is
    /// incorrect (the classic bug the paper's Section 2 warns about).
    /// Kept for the E1 experiment and as a fast path when `s` is closed.
    pub fn subst_naive(&self, x: &str, s: &Tree) -> Tree {
        match self {
            Tree::Var(y) => {
                if y == x {
                    s.clone()
                } else {
                    self.clone()
                }
            }
            Tree::Node(op, scopes) => Tree::Node(
                op.clone(),
                scopes
                    .iter()
                    .map(|sc| {
                        if sc.binders.iter().any(|b| b == x) {
                            sc.clone() // x is shadowed: stop
                        } else {
                            Abs {
                                binders: sc.binders.clone(),
                                body: sc.body.subst_naive(x, s),
                            }
                        }
                    })
                    .collect(),
            ),
        }
    }

    /// Capture-avoiding substitution `self[x := s]`, freshening binders
    /// that would capture a free variable of `s`.
    pub fn subst(&self, x: &str, s: &Tree) -> Tree {
        let fvs = s.free_vars();
        self.subst_avoiding(x, s, &fvs)
    }

    fn subst_avoiding(&self, x: &str, s: &Tree, fvs: &HashSet<String>) -> Tree {
        match self {
            Tree::Var(y) => {
                if y == x {
                    s.clone()
                } else {
                    self.clone()
                }
            }
            Tree::Node(op, scopes) => Tree::Node(
                op.clone(),
                scopes
                    .iter()
                    .map(|sc| {
                        if sc.binders.iter().any(|b| b == x) {
                            return sc.clone(); // shadowed
                        }
                        // Freshen binders that would capture. The fresh
                        // name must avoid not only the free variables in
                        // play but also every binder name inside the body:
                        // `rename_free` does not freshen nested binders,
                        // so a colliding choice would be captured deeper
                        // down. (Exactly the kind of subtlety the paper
                        // says hand-written substitution keeps getting
                        // wrong — our own first version had this bug,
                        // caught by the cross-representation property
                        // tests.)
                        let mut binders = sc.binders.clone();
                        let mut body = sc.body.clone();
                        for b in binders.iter_mut() {
                            if fvs.contains(b.as_str()) && body.occurs_free(b) {
                                let mut avoid: HashSet<String> = fvs.clone();
                                avoid.extend(all_names(&body));
                                avoid.insert(x.to_string());
                                let fresh = fresh_name(b, &avoid);
                                body = body.rename_free(b, &fresh);
                                *b = fresh;
                            } else if fvs.contains(b.as_str()) {
                                // Binder clashes but is unused: still rename
                                // to keep the scopes disjoint (cheap).
                                let mut avoid: HashSet<String> = fvs.clone();
                                avoid.insert(x.to_string());
                                *b = fresh_name(b, &avoid);
                            }
                        }
                        Abs {
                            binders,
                            body: body.subst_avoiding(x, s, fvs),
                        }
                    })
                    .collect(),
            ),
        }
    }

    /// Renames free occurrences of `from` to `to` (capture is the caller's
    /// concern; used internally with fresh names only).
    pub fn rename_free(&self, from: &str, to: &str) -> Tree {
        match self {
            Tree::Var(y) => {
                if y == from {
                    Tree::var(to)
                } else {
                    self.clone()
                }
            }
            Tree::Node(op, scopes) => Tree::Node(
                op.clone(),
                scopes
                    .iter()
                    .map(|sc| {
                        if sc.binders.iter().any(|b| b == from) {
                            sc.clone()
                        } else {
                            Abs {
                                binders: sc.binders.clone(),
                                body: sc.body.rename_free(from, to),
                            }
                        }
                    })
                    .collect(),
            ),
        }
    }

    /// α-equivalence: equality up to consistent renaming of bound
    /// variables. In this representation it needs an explicit recursive
    /// comparison with a renaming environment — contrast with de Bruijn
    /// (structural `==`) and HOAS (kernel `==`).
    pub fn alpha_eq(&self, other: &Tree) -> bool {
        fn go(a: &Tree, b: &Tree, env: &mut Vec<(String, String)>) -> bool {
            match (a, b) {
                (Tree::Var(x), Tree::Var(y)) => {
                    // Innermost binding wins.
                    for (bx, by) in env.iter().rev() {
                        let lx = bx == x;
                        let ly = by == y;
                        if lx || ly {
                            return lx && ly;
                        }
                    }
                    x == y
                }
                (Tree::Node(f, ss), Tree::Node(g, ts)) => {
                    if f != g || ss.len() != ts.len() {
                        return false;
                    }
                    ss.iter().zip(ts).all(|(s, t)| {
                        if s.binders.len() != t.binders.len() {
                            return false;
                        }
                        let n = s.binders.len();
                        for (bs, bt) in s.binders.iter().zip(&t.binders) {
                            env.push((bs.clone(), bt.clone()));
                        }
                        let r = go(&s.body, &t.body, env);
                        env.truncate(env.len() - n);
                        r
                    })
                }
                _ => false,
            }
        }
        go(self, other, &mut Vec::new())
    }
}

/// Every name occurring in a tree — variables *and* binders. Fresh-name
/// choices during substitution must avoid all of them.
pub fn all_names(t: &Tree) -> HashSet<String> {
    fn go(t: &Tree, acc: &mut HashSet<String>) {
        match t {
            Tree::Var(x) => {
                acc.insert(x.clone());
            }
            Tree::Node(_, scopes) => {
                for s in scopes {
                    acc.extend(s.binders.iter().cloned());
                    go(&s.body, acc);
                }
            }
        }
    }
    let mut acc = HashSet::new();
    go(t, &mut acc);
    acc
}

/// Produces a name based on `base` that is not in `avoid`.
pub fn fresh_name(base: &str, avoid: &HashSet<String>) -> String {
    let stem: &str = base.trim_end_matches(|c: char| c.is_ascii_digit());
    let stem = if stem.is_empty() { "x" } else { stem };
    if !avoid.contains(base) {
        return base.to_string();
    }
    for i in 1u64.. {
        let cand = format!("{stem}{i}");
        if !avoid.contains(&cand) {
            return cand;
        }
    }
    unreachable!()
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tree::Var(x) => f.write_str(x),
            Tree::Node(op, scopes) => {
                if scopes.is_empty() {
                    return f.write_str(op);
                }
                write!(f, "{op}(")?;
                for (i, s) in scopes.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    for b in &s.binders {
                        write!(f, "{b}.")?;
                    }
                    write!(f, "{}", s.body)?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: &str) -> Tree {
        Tree::var(x)
    }

    /// λx. body in the generic tree language.
    fn lam(x: &str, body: Tree) -> Tree {
        Tree::binder("lam", x, body)
    }

    fn app(f: Tree, a: Tree) -> Tree {
        Tree::node("app", [f, a])
    }

    #[test]
    fn free_vars_respect_binding() {
        let t = lam("x", app(v("x"), v("y")));
        let fvs = t.free_vars();
        assert!(fvs.contains("y"));
        assert!(!fvs.contains("x"));
        assert!(t.occurs_free("y"));
        assert!(!t.occurs_free("x"));
    }

    #[test]
    fn naive_substitution_captures() {
        // (λy. x)[x := y] must NOT become λy. y — but naive subst does.
        let t = lam("y", v("x"));
        let naive = t.subst_naive("x", &v("y"));
        assert_eq!(naive, lam("y", v("y")), "this is the classic capture bug");
        // Capture-avoiding substitution renames the binder.
        let correct = t.subst("x", &v("y"));
        assert!(correct.alpha_eq(&lam("z", v("y"))));
        assert!(!correct.alpha_eq(&lam("y", v("y"))));
    }

    #[test]
    fn naive_agrees_with_correct_on_closed_replacement() {
        let t = lam("y", app(v("x"), v("y")));
        let closed = lam("z", v("z"));
        assert_eq!(t.subst_naive("x", &closed), t.subst("x", &closed));
    }

    #[test]
    fn shadowed_variable_not_substituted() {
        let t = lam("x", v("x"));
        assert_eq!(t.subst("x", &v("y")), t);
        assert_eq!(t.subst_naive("x", &v("y")), t);
    }

    #[test]
    fn substitution_lemma_closed() {
        // t[x:=a][y:=b] == t[y:=b][x:=a] when a, b closed and x ≠ y.
        let t = app(v("x"), lam("z", app(v("y"), v("z"))));
        let a = Tree::leaf("c1");
        let b = Tree::leaf("c2");
        let lhs = t.subst("x", &a).subst("y", &b);
        let rhs = t.subst("y", &b).subst("x", &a);
        assert!(lhs.alpha_eq(&rhs));
    }

    #[test]
    fn alpha_eq_basic() {
        assert!(lam("x", v("x")).alpha_eq(&lam("y", v("y"))));
        assert!(!lam("x", v("x")).alpha_eq(&lam("x", v("z"))));
        // Free variables must match exactly.
        assert!(!lam("x", v("a")).alpha_eq(&lam("x", v("b"))));
        assert!(v("a").alpha_eq(&v("a")));
    }

    #[test]
    fn alpha_eq_nested_shadowing() {
        // λx. λx. x  ≡α  λy. λz. z
        let a = lam("x", lam("x", v("x")));
        let b = lam("y", lam("z", v("z")));
        assert!(a.alpha_eq(&b));
        // but not λy. λz. y
        let c = lam("y", lam("z", v("y")));
        assert!(!a.alpha_eq(&c));
    }

    #[test]
    fn alpha_eq_multi_binders() {
        let a = Tree::Node(
            "let2".into(),
            vec![Abs {
                binders: vec!["x".into(), "y".into()],
                body: app(v("x"), v("y")),
            }],
        );
        let b = Tree::Node(
            "let2".into(),
            vec![Abs {
                binders: vec!["u".into(), "v".into()],
                body: app(v("u"), v("v")),
            }],
        );
        let c = Tree::Node(
            "let2".into(),
            vec![Abs {
                binders: vec!["u".into(), "v".into()],
                body: app(v("v"), v("u")),
            }],
        );
        assert!(a.alpha_eq(&b));
        assert!(!a.alpha_eq(&c));
    }

    #[test]
    fn fresh_name_avoids() {
        let avoid: HashSet<String> = ["x", "x1", "x2"].iter().map(|s| s.to_string()).collect();
        assert_eq!(fresh_name("x", &avoid), "x3");
        assert_eq!(fresh_name("y", &avoid), "y");
        // Numeric suffixes are stripped before counting.
        assert_eq!(fresh_name("x1", &avoid), "x3");
    }

    #[test]
    fn rename_free_stops_at_shadow() {
        let t = app(v("x"), lam("x", v("x")));
        let r = t.rename_free("x", "w");
        assert_eq!(r, app(v("w"), lam("x", v("x"))));
    }

    #[test]
    fn display_format() {
        let t = lam("x", app(v("x"), Tree::leaf("c")));
        assert_eq!(t.to_string(), "lam(x.app(x; c))");
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(v("x").size(), 1);
        assert_eq!(lam("x", app(v("x"), v("x"))).size(), 4);
    }

    #[test]
    fn deep_substitution_chain_keeps_scope() {
        // Build λa. λb. (x a b) and substitute x := (app a b) — both free
        // names collide with binders and must be renamed.
        let t = lam("a", lam("b", app(app(v("x"), v("a")), v("b"))));
        let s = app(v("a"), v("b"));
        let r = t.subst("x", &s);
        // The result must keep exactly a and b free (from s).
        let fvs = r.free_vars();
        assert_eq!(
            fvs,
            ["a", "b"]
                .iter()
                .map(|s| s.to_string())
                .collect::<HashSet<_>>()
        );
        // And must not be α-equal to the captured version.
        let captured = lam("a", lam("b", app(app(app(v("a"), v("b")), v("a")), v("b"))));
        assert!(!r.alpha_eq(&captured));
    }
}
