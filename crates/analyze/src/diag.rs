//! Diagnostics: stable codes, severities, and rendered reports.

use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// Informational: a fact worth knowing, not a defect (e.g. a rule
    /// outside the pattern fragment — legal, but slower to match and
    /// invisible to overlap analysis).
    Info,
    /// Likely-unintended but not definitely wrong (e.g. overlapping
    /// left-hand sides: rewriting still works, confluence may not hold).
    Warn,
    /// A defect: the rule set or program cannot behave as written (e.g. a
    /// shadowed rule never fires, a looping rule never terminates).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` (not `write_str`) so report columns can align with `{:5}`.
        f.pad(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// The table of diagnostic codes: `(code, severity, description)`.
/// Codes are stable — tools may match on them — and documented in the
/// repository README.
pub const CODES: &[(&str, Severity, &str)] = &[
    (
        "HA001",
        Severity::Info,
        "rule left-hand side or clause head is outside the Miller pattern fragment",
    ),
    (
        "HA002",
        Severity::Warn,
        "rule is not left-linear (a metavariable occurs more than once in the left-hand side)",
    ),
    (
        "HA003",
        Severity::Error,
        "right-hand-side metavariable is not bound by the left-hand side",
    ),
    (
        "HA004",
        Severity::Warn,
        "rule is shadowed by an earlier rule whose left-hand side generalizes it",
    ),
    (
        "HA005",
        Severity::Error,
        "rule rewrites its own right-hand side (trivial non-termination)",
    ),
    (
        "HA006",
        Severity::Error,
        "duplicate rule name in a rule set",
    ),
    (
        "HA007",
        Severity::Warn,
        "two left-hand sides overlap at the root (critical pair, possible non-confluence)",
    ),
    (
        "HA008",
        Severity::Info,
        "signature constants never mentioned by the rule set or program",
    ),
    (
        "HA009",
        Severity::Error,
        "name declared both as a type and as a constant",
    ),
    (
        "HA010",
        Severity::Error,
        "cached kernel annotations disagree with recomputation",
    ),
    (
        "HA011",
        Severity::Error,
        "clause head is not headed by a predicate constant",
    ),
    (
        "HA012",
        Severity::Info,
        "clause body atom is outside the Miller pattern fragment",
    ),
    (
        "HA013",
        Severity::Info,
        "predicate admits a consistent input/output mode",
    ),
    (
        "HA014",
        Severity::Warn,
        "predicate admits no consistent input/output mode",
    ),
    (
        "HA015",
        Severity::Info,
        "predicate is committed-choice (clause heads pairwise non-unifiable on its input positions)",
    ),
    (
        "HA016",
        Severity::Info,
        "rule set proven terminating by size-change analysis",
    ),
    (
        "HA017",
        Severity::Warn,
        "rule set not proven terminating by size-change analysis",
    ),
    (
        "HA018",
        Severity::Error,
        "dynamic mode sanitizer observed a violation of a static verdict",
    ),
    (
        "HA019",
        Severity::Warn,
        "call site uses a predicate outside every inferred mode",
    ),
    (
        "HA020",
        Severity::Info,
        "analysis certificate issued for engine-enforced verdicts",
    ),
    (
        "HA021",
        Severity::Info,
        "predicate is tabling-eligible (moded input skeletons key a sound answer table)",
    ),
];

/// The severity of a known code.
pub fn severity_of(code: &str) -> Option<Severity> {
    CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, s, _)| *s)
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable code from [`CODES`].
    pub code: &'static str,
    /// Severity, always consistent with the code's table entry.
    pub severity: Severity,
    /// What the finding is about (a rule, clause, or constant name).
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:5} [{}] {}",
            self.code, self.severity, self.subject, self.message
        )
    }
}

/// All findings for one analysis target.
#[derive(Clone, Debug)]
pub struct Report {
    /// The target's name (see `targets`).
    pub target: String,
    /// Findings in check order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for a target.
    pub fn new(target: impl Into<String>) -> Report {
        Report {
            target: target.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Records a finding. The severity comes from the code's table entry.
    ///
    /// # Panics
    ///
    /// If `code` is not in [`CODES`] — checks only emit known codes.
    pub fn push(&mut self, code: &'static str, subject: impl Into<String>, message: String) {
        let severity = severity_of(code).expect("diagnostic code is registered in CODES");
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            subject: subject.into(),
            message,
        });
    }

    /// Number of findings at a severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Whether the target has no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report as text: a summary line, then one line per
    /// finding.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} note(s)",
            self.target,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_ordered() {
        for (i, (code, _, _)) in CODES.iter().enumerate() {
            assert_eq!(*code, format!("HA{:03}", i + 1), "codes are dense");
        }
    }

    #[test]
    fn render_lists_counts_and_findings() {
        let mut r = Report::new("demo");
        assert!(r.is_clean());
        r.push("HA006", "dup", "duplicate rule name `dup`".to_string());
        r.push("HA001", "gen", "outside the pattern fragment".to_string());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.count(Severity::Info), 1);
        let text = r.render();
        assert!(text.starts_with("demo: 1 error(s), 0 warning(s), 1 note(s)"));
        assert!(text.contains("HA006 error [dup] duplicate rule name `dup`"));
        assert!(text.contains("HA001 info  [gen]"));
    }

    #[test]
    #[should_panic(expected = "registered")]
    fn unknown_codes_are_rejected() {
        Report::new("demo").push("HA999", "x", String::new());
    }
}
