//! The analysis passes: rule sets and logic programs to [`Report`]s.

use crate::diag::Report;
use hoas_core::sig::Signature;
use hoas_core::validate;
use hoas_lp::program::Program;
use hoas_rewrite::{RuleSet, RuleSetAnalysis};
use hoas_unify::classify::{classify_at, PatternClass};
use std::collections::BTreeSet;

/// Runs every rule-set check: classification (HA001), left-linearity
/// (HA002), right-hand-side scoping (HA003), shadowing (HA004), trivial
/// non-termination (HA005), duplicate names (HA006), root overlaps
/// (HA007), signature lints (HA008/HA009), the kernel annotation
/// validator over both sides of every rule (HA010), and size-change
/// termination (HA016/HA017, with HA020 when a certificate is minted).
pub fn check_ruleset(target: &str, sig: &Signature, rs: &RuleSet) -> Report {
    let mut report = check_ruleset_gen1(target, sig, rs);
    push_ruleset_verdicts(&mut report, rs);
    report
}

/// The first-generation rule-set checks only (HA001–HA010) — everything
/// [`check_ruleset`] reports except the size-change verdicts. Split out
/// so the `analyze` bench suite keeps timing a fixed workload across
/// PRs; the verdict passes are timed separately (`verdicts` suite).
pub fn check_ruleset_gen1(target: &str, sig: &Signature, rs: &RuleSet) -> Report {
    let mut report = Report::new(target);
    push_analysis(&mut report, &rs.analyze(sig));
    for rule in rs.rules() {
        for (side, t) in [("lhs", rule.lhs()), ("rhs", rule.rhs())] {
            if let Err(e) = validate::check_term(t) {
                report.push("HA010", rule.name(), format!("{side}: {e}"));
            }
        }
    }
    // Native rules mention constants only inside opaque Rust closures, so
    // "never mentioned" cannot be decided for sets that have any.
    if rs.native_rules().is_empty() {
        let used = rs
            .rules()
            .iter()
            .flat_map(|r| r.lhs().constants().into_iter().chain(r.rhs().constants()))
            .map(|c| c.as_str().to_string())
            .collect();
        check_unused_consts(&mut report, sig, &used, "rule set");
    }
    check_type_const_collisions(&mut report, sig);
    report
}

/// The size-change termination verdicts (HA016/HA017, HA020).
fn push_ruleset_verdicts(report: &mut Report, rs: &RuleSet) {
    if !rs.rules().is_empty() || !rs.native_rules().is_empty() {
        let sct = crate::termination::analyze_ruleset(rs);
        if sct.proven() {
            report.push("HA016", "rule set", sct.reason.clone());
            report.push(
                "HA020",
                "rule set",
                "termination certificate issued; `Engine::attach_certificate` \
                 drops step-budget bookkeeping for this set"
                    .to_string(),
            );
        } else {
            report.push(
                "HA017",
                "rule set",
                format!("size-change termination not proven: {}", sct.reason),
            );
        }
    }
}

fn push_analysis(report: &mut Report, analysis: &RuleSetAnalysis) {
    for info in &analysis.rules {
        if info.class == PatternClass::General {
            report.push(
                "HA001",
                &info.name,
                format!(
                    "left-hand side is outside the Miller pattern fragment \
                     ({}); matching falls back to general higher-order search \
                     and overlap analysis cannot see this rule",
                    info.class
                ),
            );
        }
        if !info.nonlinear_metas.is_empty() {
            report.push(
                "HA002",
                &info.name,
                format!(
                    "not left-linear: ?{} occur(s) more than once in the \
                     left-hand side, imposing an equality side condition",
                    info.nonlinear_metas.join(", ?")
                ),
            );
        }
        if !info.unbound_rhs_metas.is_empty() {
            report.push(
                "HA003",
                &info.name,
                format!(
                    "right-hand side mentions ?{} which the left-hand side \
                     never binds; the rule can only produce open terms",
                    info.unbound_rhs_metas.join(", ?")
                ),
            );
        }
        if let Some(earlier) = &info.shadowed_by {
            report.push(
                "HA004",
                &info.name,
                format!(
                    "shadowed by earlier rule `{earlier}`: every subject this \
                     rule matches is already rewritten by `{earlier}`, so \
                     this rule never fires"
                ),
            );
        }
        if info.self_applicable {
            report.push(
                "HA005",
                &info.name,
                "rewrites its own right-hand side: one application enables \
                 the next, so normalization cannot terminate"
                    .to_string(),
            );
        }
    }
    for name in &analysis.duplicate_names {
        report.push(
            "HA006",
            name,
            format!("more than one rule is named `{name}`"),
        );
    }
    for overlap in &analysis.overlaps {
        report.push(
            "HA007",
            format!("{} ~ {}", overlap.left, overlap.right),
            format!(
                "left-hand sides of `{}` and `{}` unify after renaming \
                 apart: some term admits both rules (critical pair), so the \
                 result can depend on rule order",
                overlap.left, overlap.right
            ),
        );
    }
}

/// Runs every logic-program check: clause-head well-formedness (HA011),
/// pattern-fragment classification of heads (HA001) and body atoms
/// (HA012) at their `Π` depth, the kernel annotation validator over every
/// clause term (HA010), the signature lints (HA008/HA009), and the
/// mode/determinacy analysis (HA013–HA015, HA019, with HA020 when a
/// certificate is minted).
pub fn check_program(target: &str, prog: &Program) -> Report {
    let mut report = check_program_gen1(target, prog);
    push_program_verdicts(&mut report, prog);
    report
}

/// The first-generation logic-program checks only (HA001, HA008–HA012)
/// — everything [`check_program`] reports except the mode/determinacy
/// verdicts. Split out so the `analyze` bench suite keeps timing a
/// fixed workload across PRs; the verdict passes are timed separately
/// (`verdicts` suite).
pub fn check_program_gen1(target: &str, prog: &Program) -> Report {
    let mut report = Report::new(target);
    let mut used: BTreeSet<String> = BTreeSet::new();
    for (ci, clause) in prog.clauses().iter().enumerate() {
        let subject = match clause.head_pred() {
            Some(p) => format!("clause {ci} ({p})"),
            None => format!("clause {ci}"),
        };
        if clause.head_pred().is_none() {
            report.push(
                "HA011",
                &subject,
                format!(
                    "head `{}` is not headed by a predicate constant; \
                     backchaining can never select this clause",
                    clause.head
                ),
            );
        }
        for (k, (t, depth)) in clause.terms().into_iter().enumerate() {
            if let Err(e) = validate::check_term(&t) {
                report.push("HA010", &subject, e.to_string());
            }
            used.extend(t.constants().into_iter().map(|c| c.as_str().to_string()));
            if classify_at(&t, depth) == PatternClass::General {
                if k == 0 {
                    report.push(
                        "HA001",
                        &subject,
                        format!(
                            "head `{t}` is outside the Miller pattern \
                             fragment; clause selection needs general \
                             higher-order unification"
                        ),
                    );
                } else {
                    report.push(
                        "HA012",
                        &subject,
                        format!(
                            "body atom `{t}` is outside the Miller pattern \
                             fragment; solving it may suspend on flexible \
                             subgoals or need Huet-style search"
                        ),
                    );
                }
            }
        }
    }
    check_unused_consts(&mut report, prog.sig(), &used, "program");
    check_type_const_collisions(&mut report, prog.sig());
    report
}

/// The mode/determinacy verdicts (HA013–HA015, HA019–HA021).
fn push_program_verdicts(report: &mut Report, prog: &Program) {
    let modes = crate::modes::analyze_program(prog);
    for (pred, verdict) in &modes.preds {
        if verdict.modes.is_empty() {
            report.push(
                "HA014",
                pred.as_str(),
                "no consistent input/output mode: under every candidate \
                 mode some clause (or assumable hypothetical) can leave \
                 an output position non-ground"
                    .to_string(),
            );
        } else {
            let rendered: Vec<String> = verdict.modes.iter().map(|m| m.render()).collect();
            report.push(
                "HA013",
                pred.as_str(),
                format!("admits mode(s) {}", rendered.join(", ")),
            );
        }
        match &verdict.commit {
            Some(positions) if positions.is_empty() => {
                report.push(
                    "HA015",
                    pred.as_str(),
                    "committed-choice: at most one clause, so the solver \
                     never needs a choice point for it"
                        .to_string(),
                );
            }
            Some(positions) => {
                let ps: Vec<String> = positions.iter().map(|p| p.to_string()).collect();
                report.push(
                    "HA015",
                    pred.as_str(),
                    format!(
                        "committed-choice: clause heads are pairwise \
                         non-unifiable on input position(s) {}; the solver \
                         commits to the first match when they are ground",
                        ps.join(", ")
                    ),
                );
            }
            None => {}
        }
        if verdict.table {
            report.push(
                "HA021",
                pred.as_str(),
                "tabling-eligible: calls with ground moded inputs key a \
                 sound answer table; `TableMode::Certified` memoizes them"
                    .to_string(),
            );
        }
    }
    for call in &modes.unmoded_calls {
        report.push(
            "HA019",
            format!("clause {} ({})", call.clause_index, call.pred),
            format!(
                "body atom `{}` fits no inferred mode even with every \
                 head variable ground; calls through it run unmoded",
                call.atom
            ),
        );
    }
    if !modes.preds.is_empty() {
        report.push(
            "HA020",
            "program",
            format!(
                "mode/determinacy certificate issued covering {} \
                 predicate(s); `solve_certified` enforces it",
                modes.preds.len()
            ),
        );
    }
}

fn check_unused_consts(report: &mut Report, sig: &Signature, used: &BTreeSet<String>, what: &str) {
    let mut unused: Vec<&str> = sig
        .consts()
        .map(|(name, _)| name.as_str())
        .filter(|name| !used.contains(*name))
        .collect();
    unused.sort_unstable();
    if !unused.is_empty() {
        report.push(
            "HA008",
            "signature",
            format!(
                "constant(s) `{}` are declared but never mentioned by the \
                 {what}",
                unused.join("`, `")
            ),
        );
    }
}

fn check_type_const_collisions(report: &mut Report, sig: &Signature) {
    for ty in sig.types() {
        if sig.has_const(ty.as_str()) {
            report.push(
                "HA009",
                ty.as_str(),
                format!(
                    "`{ty}` is declared both as a base type and as a \
                     constant; term and type namespaces must not collide"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::parse::parse_ty;
    use hoas_lp::program::Clause;
    use hoas_rewrite::Rule;

    fn sig() -> Signature {
        Signature::parse(
            "type i.
             type o.
             const and : o -> o -> o.
             const not : o -> o.
             const p : i -> o.
             const r : o.",
        )
        .unwrap()
    }

    #[test]
    fn clean_ruleset_reports_nothing_but_unused_consts() {
        let s = sig();
        let mut rs = RuleSet::new();
        rs.push(
            Rule::parse(
                &s,
                "not-not",
                &parse_ty("o").unwrap(),
                &[("P", "o")],
                "not (not ?P)",
                "?P",
            )
            .unwrap(),
        )
        .unwrap();
        let report = check_ruleset("demo", &s, &rs);
        assert_eq!(report.error_count(), 0);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        // HA008 (unused consts) plus the SCT verdict: not-not has no
        // recursive calls, so termination is proven and certified.
        assert_eq!(codes, vec!["HA008", "HA016", "HA020"]);
        assert!(report.diagnostics[0].message.contains("`and`, `p`, `r`"));
    }

    #[test]
    fn ruleset_defects_map_to_codes() {
        let s = sig();
        let o = parse_ty("o").unwrap();
        let mut rs = RuleSet::new();
        // Non-left-linear and outside the fragment (HA002 only: linearity
        // is judged on occurrences, the class on spines).
        rs.push(Rule::parse(&s, "idem", &o, &[("P", "o")], "and ?P ?P", "?P").unwrap())
            .unwrap();
        // General (HA001) — and a catch-all identity at type o, so it
        // also rewrites its own output (HA005) and shadows every later
        // rule without a discriminating head constant.
        rs.push(
            Rule::parse(
                &s,
                "beta",
                &o,
                &[("F", "i -> o"), ("X", "i")],
                "?F ?X",
                "?F ?X",
            )
            .unwrap(),
        )
        .unwrap();
        // Shadowed by idem (HA004) and overlapping it (HA007).
        rs.push(Rule::parse(&s, "rr", &o, &[], "and r r", "r").unwrap())
            .unwrap();
        // Trivial loop (HA005); also shadowed by the beta catch-all.
        rs.push(Rule::parse(&s, "grow", &o, &[], "r", "not (not r)").unwrap())
            .unwrap();
        let report = check_ruleset("demo", &s, &rs);
        let mut codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        assert_eq!(
            codes,
            vec!["HA001", "HA002", "HA004", "HA004", "HA005", "HA005", "HA007", "HA008", "HA017"],
            "the flexible-headed beta rule also blocks the SCT proof"
        );
        let shadowed: Vec<(&str, &str)> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "HA004")
            .map(|d| (d.subject.as_str(), d.message.split('`').nth(1).unwrap()))
            .collect();
        assert_eq!(shadowed, vec![("rr", "idem"), ("grow", "beta")]);
        assert_eq!(report.error_count(), 2, "the two loops are the errors");
    }

    #[test]
    fn type_const_collision_is_reported() {
        let mut s = Signature::new();
        s.declare_type("o").unwrap();
        s.declare_const("o", parse_ty("o").unwrap()).unwrap();
        let report = check_ruleset("demo", &s, &RuleSet::new());
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"HA009"));
        assert_eq!(report.error_count(), 1);
    }

    #[test]
    fn program_checks_classify_at_pi_depth() {
        let s = Signature::parse(
            "type tm.
             type o.
             const app : tm -> tm -> tm.
             const eval : tm -> tm -> o.",
        )
        .unwrap();
        let mut prog = Program::new(s);
        // eval (app ?M ?N) ?V :- eval (?M ?N) ?V — body atom outside the
        // fragment (?M applied to a metavariable).
        prog.push(
            Clause::parse(
                prog.sig(),
                &[("M", "tm -> tm"), ("N", "tm"), ("V", "tm")],
                "eval (app (?M ?N) ?N) ?V",
                &["eval (?M ?N) ?V"],
            )
            .unwrap(),
        );
        let report = check_program("demo", &prog);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        // Head is general too (same flexible application).
        assert!(codes.contains(&"HA001"));
        assert!(codes.contains(&"HA012"));
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn flexible_clause_head_is_an_error() {
        let s = Signature::parse("type o.").unwrap();
        let mut prog = Program::new(s);
        prog.push(Clause {
            vars: vec![(hoas_core::Sym::new("G"), parse_ty("o").unwrap())],
            head: hoas_core::Term::Meta(hoas_core::MVar::new(0, "G")),
            body: hoas_lp::program::Goal::True,
        });
        let report = check_program("demo", &prog);
        assert!(report.diagnostics.iter().any(|d| d.code == "HA011"));
        assert_eq!(report.error_count(), 1);
    }
}
