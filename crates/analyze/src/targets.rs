//! The bundled analysis targets: every rule set and λProlog example
//! program shipped by the workspace, addressable by name from the
//! `hoas-analyze` CLI.

use crate::checks::{check_program, check_program_gen1, check_ruleset, check_ruleset_gen1};
use crate::diag::Report;
use hoas_langs::fol::Vocabulary;
use hoas_langs::{imp, miniml};
use hoas_lp::examples;
use hoas_rewrite::rulesets::{fol_cnf, fol_prenex, imp_opt, miniml_opt};

/// The known targets: `(name, description)`.
pub const TARGETS: &[(&str, &str)] = &[
    (
        "fol-prenex",
        "prenex-normal-form rules over the small first-order vocabulary",
    ),
    ("fol-cnf", "prenex rules plus CNF distribution"),
    (
        "imp-opt",
        "imperative-language optimizer (pattern and native rules)",
    ),
    (
        "miniml-opt",
        "Mini-ML simplifier (pattern and native rules)",
    ),
    ("lp-append", "lambda-Prolog append/3 program"),
    ("lp-stlc", "lambda-Prolog STLC type checker"),
    ("lp-eval", "lambda-Prolog call-by-value evaluator"),
];

/// Runs every check over one named target; `None` for unknown names.
/// Bundled targets always build — their rule sets are constructed by the
/// same code the engine tests exercise.
pub fn run(name: &str) -> Option<Report> {
    let report = match name {
        "fol-prenex" => {
            let sig = Vocabulary::small().signature();
            let rs = fol_prenex::rules(&sig).expect("bundled ruleset builds");
            check_ruleset(name, &sig, &rs)
        }
        "fol-cnf" => {
            let sig = Vocabulary::small().signature();
            let rs = fol_cnf::rules(&sig).expect("bundled ruleset builds");
            check_ruleset(name, &sig, &rs)
        }
        "imp-opt" => {
            let sig = imp::signature();
            let rs = imp_opt::rules(sig).expect("bundled ruleset builds");
            check_ruleset(name, sig, &rs)
        }
        "miniml-opt" => {
            let sig = miniml::signature();
            let rs = miniml_opt::rules(sig).expect("bundled ruleset builds");
            check_ruleset(name, sig, &rs)
        }
        "lp-append" => check_program(name, &examples::append_program()),
        "lp-stlc" => check_program(name, &examples::stlc_program()),
        "lp-eval" => check_program(name, &examples::eval_program()),
        _ => return None,
    };
    Some(report)
}

/// Runs every bundled target, in [`TARGETS`] order.
pub fn run_all() -> Vec<Report> {
    TARGETS
        .iter()
        .map(|(name, _)| run(name).expect("TARGETS entries are runnable"))
        .collect()
}

/// Like [`run`], but with only the first-generation checks — the fixed
/// workload the perf-tracked `analyze` bench suite has timed since it
/// was introduced. The second-generation verdict passes (size-change
/// termination, mode/determinacy) are timed by the `verdicts` suite.
pub fn run_gen1(name: &str) -> Option<Report> {
    let report = match name {
        "fol-prenex" => {
            let sig = Vocabulary::small().signature();
            let rs = fol_prenex::rules(&sig).expect("bundled ruleset builds");
            check_ruleset_gen1(name, &sig, &rs)
        }
        "fol-cnf" => {
            let sig = Vocabulary::small().signature();
            let rs = fol_cnf::rules(&sig).expect("bundled ruleset builds");
            check_ruleset_gen1(name, &sig, &rs)
        }
        "imp-opt" => {
            let sig = imp::signature();
            let rs = imp_opt::rules(sig).expect("bundled ruleset builds");
            check_ruleset_gen1(name, sig, &rs)
        }
        "miniml-opt" => {
            let sig = miniml::signature();
            let rs = miniml_opt::rules(sig).expect("bundled ruleset builds");
            check_ruleset_gen1(name, sig, &rs)
        }
        "lp-append" => check_program_gen1(name, &examples::append_program()),
        "lp-stlc" => check_program_gen1(name, &examples::stlc_program()),
        "lp-eval" => check_program_gen1(name, &examples::eval_program()),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_target_runs_and_unknown_names_do_not() {
        assert_eq!(run_all().len(), TARGETS.len());
        assert!(run("no-such-target").is_none());
    }

    #[test]
    fn bundled_targets_have_no_errors() {
        for report in run_all() {
            assert_eq!(
                report.error_count(),
                0,
                "target {} has errors:\n{}",
                report.target,
                report.render()
            );
        }
    }

    #[test]
    fn known_genuine_findings_are_present() {
        // if-same compares its branches: non-left-linear by design.
        let imp = run("imp-opt").unwrap();
        assert!(imp
            .diagnostics
            .iter()
            .any(|d| d.code == "HA002" && d.subject == "if-same"));
        // The two distribution rules meet on `or (and _ _) (and _ _)`.
        let cnf = run("fol-cnf").unwrap();
        assert!(cnf
            .diagnostics
            .iter()
            .any(|d| d.code == "HA007" && d.subject.contains("distr-")));
        // The evaluator's `eval (?F ?U) ?V` body atom is the paper's
        // showcase of leaving the pattern fragment on purpose.
        let eval = run("lp-eval").unwrap();
        assert!(eval.diagnostics.iter().any(|d| d.code == "HA012"));
        // append declares list atoms its clauses never mention.
        let append = run("lp-append").unwrap();
        assert!(append.diagnostics.iter().any(|d| d.code == "HA008"));
    }

    #[test]
    fn gen1_is_a_prefix_of_the_full_report() {
        for (name, _) in TARGETS {
            let full = run(name).unwrap();
            let gen1 = run_gen1(name).unwrap();
            // The fixed bench workload reports no second-generation code…
            assert!(gen1.diagnostics.iter().all(|d| d.code < "HA013"), "{name}");
            // …and the full report is exactly gen1 plus appended verdicts.
            assert!(full.diagnostics.len() >= gen1.diagnostics.len());
            for (f, g) in full.diagnostics.iter().zip(&gen1.diagnostics) {
                assert_eq!((&f.code, &f.subject), (&g.code, &g.subject), "{name}");
            }
            assert!(
                full.diagnostics[gen1.diagnostics.len()..]
                    .iter()
                    .all(|d| d.code >= "HA013"),
                "{name}"
            );
        }
    }

    #[test]
    fn second_generation_verdicts_cover_the_bundle() {
        // SCT proves termination of both first-order rule sets…
        for name in ["fol-prenex", "fol-cnf"] {
            let r = run(name).unwrap();
            assert!(
                r.diagnostics.iter().any(|d| d.code == "HA016"),
                "{name} should be SCT-proven:\n{}",
                r.render()
            );
        }
        // …and refuses the native-rule optimizers rather than guessing.
        for name in ["imp-opt", "miniml-opt"] {
            let r = run(name).unwrap();
            assert!(
                r.diagnostics.iter().any(|d| d.code == "HA017"),
                "{name} has native rules, so SCT must refuse:\n{}",
                r.render()
            );
        }
        // Every bundled program gets a mode verdict, a determinacy
        // verdict (all three predicates are first-argument indexed), and
        // a certificate.
        for name in ["lp-append", "lp-stlc", "lp-eval"] {
            let r = run(name).unwrap();
            for code in ["HA015", "HA020"] {
                assert!(
                    r.diagnostics.iter().any(|d| d.code == code),
                    "{name} lacks {code}:\n{}",
                    r.render()
                );
            }
            assert!(r
                .diagnostics
                .iter()
                .any(|d| d.code == "HA013" || d.code == "HA014"));
        }
        // The STLC checker's hypothetical context kills every mode of
        // `of`, and its app clause contains the one ill-moded call.
        let stlc = run("lp-stlc").unwrap();
        assert!(stlc.diagnostics.iter().any(|d| d.code == "HA014"));
        assert!(stlc.diagnostics.iter().any(|d| d.code == "HA019"));
    }
}
