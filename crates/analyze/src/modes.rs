//! Mode/groundness and determinacy analysis for λProlog programs.
//!
//! # Mode inference
//!
//! A **mode** for an `n`-ary predicate marks each argument position as
//! input (`+`) or output (`-`). A predicate *admits* a mode when every
//! clause (including every hypothetical clause any execution could
//! assume via `⇒`) satisfies the guarantee: *if the input positions are
//! ground at the call, the output positions are ground at every
//! success*.
//!
//! The analysis is an abstract interpretation over the two-point
//! groundness lattice per metavariable (`ground` ⊑ `unknown`; a
//! metavariable is abstractly ground when it is in the `ground` set,
//! and `free`/`unknown` otherwise — the concrete three-way split
//! collapses to membership in that set). Starting from *every* input
//! mask as a candidate (arity capped at [`MAX_MODED_ARITY`]), a
//! fixpoint loop removes modes a clause refutes:
//!
//! * a clause is checked left to right, seeding the ground set with the
//!   metavariables of the head's input positions;
//! * a body atom is satisfiable moded-ly when it is entirely ground, or
//!   when *some* currently-surviving callee mode has all of its input
//!   positions ground — in which case the whole atom's metavariables
//!   become ground (the callee's guarantee grounds its outputs);
//! * `Π x. G` just recurses: the eigenvariable is ground by
//!   construction and contributes no metavariables;
//! * `D ⇒ G` recurses into `G`; the assumed clause `D` is handled by a
//!   separate **kill pass**, which checks `D` as a clause of its head
//!   predicate `q` under each of `q`'s surviving modes, with an *empty*
//!   ambient ground set — the enclosing clause may be invoked with
//!   nothing ground, so no context may be assumed. A hypothetical that
//!   violates a mode kills that mode globally (conservative: the
//!   hypothetical might be in scope during any call to `q`);
//! * after the body, the head's output positions must be ground.
//!
//! Both passes only ever *remove* candidates, so the loop terminates.
//!
//! # Determinacy
//!
//! A predicate is **committed-choice** on a set `I` of input positions
//! when its program clause heads are pairwise non-unifiable after
//! restriction to `I`. At a call whose `I` positions are ground (and
//! with no hypothetical clauses for the predicate in scope — the solver
//! checks that at run time), at most one clause head can match, so the
//! solver may commit to the first match and skip the remaining choice
//! points without losing answers. Pairwise apartness is decided with
//! the pattern unifier after renaming the clauses apart; only a
//! *refutation* ([`hoas_unify::UnifyError::is_refutation`]) counts —
//! fragment failures are treated conservatively as "may unify".
//!
//! The verdicts are packaged into a [`ProgramCert`] which
//! [`hoas_lp::solve_certified`] enforces; see `hoas_lp::cert` for the
//! trust story.

use hoas_core::{Sym, Term, Ty};
use hoas_lp::{Clause, Goal, Mode, PredVerdict, Program, ProgramCert};
use hoas_unify::classify::{shift_menv, shift_metas};
use hoas_unify::pattern;
use hoas_unify::problem::Constraint;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Largest predicate arity the mode search covers. The candidate set is
/// every input mask — `2^arity` of them — so the cap keeps the search
/// small; predicates above it are simply not analyzed.
pub const MAX_MODED_ARITY: usize = 6;

/// Mode and determinacy verdicts for one predicate.
#[derive(Clone, Debug)]
pub struct PredReport {
    /// Argument count (consistent across all clauses).
    pub arity: usize,
    /// Admitted modes, in ascending input-mask order. Empty when no
    /// consistent mode exists.
    pub modes: Vec<Mode>,
    /// Committed-choice input positions, when apartness was proven.
    pub commit: Option<Vec<usize>>,
    /// Tabling eligibility (`HA021`): the predicate admits a mode with
    /// at least one input position (so calls can be keyed on ground
    /// skeletons) and no hypothetical clause anywhere in the program
    /// assumes it — an assumed clause would make answers depend on the
    /// derivation context, which a context-free variant table cannot
    /// express.
    pub table: bool,
}

/// A body atom no surviving mode can serve even in the best case
/// (every head metavariable ground) — reported as `HA019`.
#[derive(Clone, Debug)]
pub struct UnmodedCall {
    /// Head predicate of the clause containing the call.
    pub pred: Sym,
    /// Index of the clause in program order.
    pub clause_index: usize,
    /// The offending atom, rendered.
    pub atom: String,
}

/// Everything the mode/determinacy pass produces.
#[derive(Clone, Debug)]
pub struct ModeOutcome {
    /// Per-predicate verdicts (predicates with consistent arity at most
    /// [`MAX_MODED_ARITY`]).
    pub preds: BTreeMap<Sym, PredReport>,
    /// Ill-moded call sites (`HA019`).
    pub unmoded_calls: Vec<UnmodedCall>,
    /// The engine-enforceable certificate covering `preds`.
    pub cert: ProgramCert,
}

fn add_metas(t: &Term, ground: &mut BTreeSet<u32>) {
    for m in t.metas() {
        ground.insert(m.id());
    }
}

fn grounded(t: &Term, ground: &BTreeSet<u32>) -> bool {
    t.metas().iter().all(|m| ground.contains(&m.id()))
}

/// Whether a body atom is servable under the current ground set, using
/// the surviving candidate modes. On success the atom's metavariables
/// are added to the ground set.
fn atom_ok(t: &Term, ground: &mut BTreeSet<u32>, cands: &BTreeMap<Sym, Vec<Mode>>) -> bool {
    if grounded(t, ground) {
        return true;
    }
    let (head, args) = t.spine();
    let Term::Const(c) = head else {
        // Flexible or bound-variable head: not statically modable.
        return false;
    };
    let Some(modes) = cands.get(c) else {
        return false;
    };
    let applicable = modes.iter().any(|m| {
        m.inputs.len() == args.len()
            && m.inputs
                .iter()
                .zip(&args)
                .all(|(&inp, a)| !inp || grounded(a, ground))
    });
    if applicable {
        add_metas(t, ground);
    }
    applicable
}

fn goal_ok(g: &Goal, ground: &mut BTreeSet<u32>, cands: &BTreeMap<Sym, Vec<Mode>>) -> bool {
    match g {
        Goal::True => true,
        Goal::Atom(t) => atom_ok(t, ground, cands),
        Goal::And(a, b) => goal_ok(a, ground, cands) && goal_ok(b, ground, cands),
        // The assumed clause is handled by the kill pass; here only the
        // conclusion constrains the mode.
        Goal::Impl(_, g) => goal_ok(g, ground, cands),
        // The eigenvariable is ground by construction.
        Goal::All(_, _, g) => goal_ok(g, ground, cands),
    }
}

/// Whether `c` (a program clause, or a hypothetical checked with empty
/// ambient context) satisfies mode `m`'s guarantee.
fn clause_admits(c: &Clause, m: &Mode, cands: &BTreeMap<Sym, Vec<Mode>>) -> bool {
    let (_, args) = c.head.spine();
    if args.len() != m.inputs.len() {
        return false;
    }
    let mut ground = BTreeSet::new();
    for (a, &inp) in args.iter().zip(&m.inputs) {
        if inp {
            add_metas(a, &mut ground);
        }
    }
    goal_ok(&c.body, &mut ground, cands)
        && args
            .iter()
            .zip(&m.inputs)
            .all(|(a, &inp)| inp || grounded(a, &ground))
}

/// Collects every hypothetical clause assumable via `⇒`, including ones
/// nested inside other hypotheticals' bodies.
fn hyp_clauses<'a>(g: &'a Goal, acc: &mut Vec<&'a Clause>) {
    match g {
        Goal::True | Goal::Atom(_) => {}
        Goal::And(a, b) => {
            hyp_clauses(a, acc);
            hyp_clauses(b, acc);
        }
        Goal::Impl(d, g) => {
            acc.push(d);
            hyp_clauses(&d.body, acc);
            hyp_clauses(g, acc);
        }
        Goal::All(_, _, g) => hyp_clauses(g, acc),
    }
}

/// Argument counts per predicate; predicates whose clauses disagree on
/// arity (ill-typed anyway) are dropped.
fn pred_arities(prog: &Program) -> BTreeMap<Sym, usize> {
    let mut out: BTreeMap<Sym, usize> = BTreeMap::new();
    let mut bad: BTreeSet<Sym> = BTreeSet::new();
    for c in prog.clauses() {
        if let Some(p) = c.head_pred() {
            let n = c.head.spine().1.len();
            match out.get(p) {
                None => {
                    out.insert(p.clone(), n);
                }
                Some(&m) if m != n => {
                    bad.insert(p.clone());
                }
                Some(_) => {}
            }
        }
    }
    for p in &bad {
        out.remove(p);
    }
    out
}

/// The mode fixpoint: start from every input mask, remove refuted modes
/// (and hypothetical-killed modes) until stable.
fn infer_modes(prog: &Program, arities: &BTreeMap<Sym, usize>) -> BTreeMap<Sym, Vec<Mode>> {
    let mut cands: BTreeMap<Sym, Vec<Mode>> = arities
        .iter()
        .filter(|(_, &n)| n <= MAX_MODED_ARITY)
        .map(|(p, &n)| {
            let modes = (0..1usize << n)
                .map(|mask| Mode {
                    inputs: (0..n).map(|i| mask & (1 << i) != 0).collect(),
                })
                .collect();
            (p.clone(), modes)
        })
        .collect();

    let mut hyps = Vec::new();
    for c in prog.clauses() {
        hyp_clauses(&c.body, &mut hyps);
    }

    loop {
        let mut changed = false;

        // Kill pass: a hypothetical clause for q must itself satisfy
        // every surviving mode of q, with no ambient groundness assumed.
        let mut kills: Vec<(Sym, Mode)> = Vec::new();
        for d in &hyps {
            let Some(q) = d.head_pred() else { continue };
            let Some(modes) = cands.get(q) else { continue };
            for m in modes {
                if !clause_admits(d, m, &cands) {
                    kills.push((q.clone(), m.clone()));
                }
            }
        }
        for (q, m) in kills {
            if let Some(modes) = cands.get_mut(&q) {
                let before = modes.len();
                modes.retain(|x| *x != m);
                changed |= modes.len() != before;
            }
        }

        // Clause pass: every program clause of p must admit the mode.
        let preds: Vec<Sym> = cands.keys().cloned().collect();
        for p in preds {
            let keep: Vec<Mode> = cands[&p]
                .iter()
                .filter(|m| prog.clauses_for(&p).all(|c| clause_admits(c, m, &cands)))
                .cloned()
                .collect();
            if keep.len() != cands[&p].len() {
                cands.insert(p, keep);
                changed = true;
            }
        }

        if !changed {
            return cands;
        }
    }
}

/// Whether two (renamed-apart) clause heads are provably non-unifiable
/// when restricted to `positions`.
fn pair_apart(
    prog: &Program,
    arg_tys: &[&Ty],
    c1: &Clause,
    c2: &Clause,
    positions: &[usize],
) -> bool {
    let n1 = c1.vars.len() as u32;
    let mut menv = c1.var_menv();
    menv.extend(shift_menv(&c2.var_menv(), n1));
    let head2 = shift_metas(&c2.head, n1);
    let (_, a1) = c1.head.spine();
    let (_, a2) = head2.spine();
    if a1.len() != a2.len() {
        return false;
    }
    let constraints: Vec<Constraint> = positions
        .iter()
        .map(|&k| Constraint::closed(arg_tys[k].clone(), a1[k].clone(), a2[k].clone()))
        .collect();
    match pattern::unify_constraints(prog.sig(), &menv, constraints) {
        Ok(_) => false,
        // Only a definite refutation proves apartness; fragment failures
        // are conservatively "may unify".
        Err(e) => e.is_refutation(),
    }
}

/// Searches for committed-choice input positions: singletons first
/// (cheapest run-time groundness check), then all positions at once.
fn commit_positions(prog: &Program, pred: &Sym, arity: usize) -> Option<Vec<usize>> {
    let clauses: Vec<&Clause> = prog.clauses_for(pred).collect();
    if clauses.len() <= 1 {
        // Zero or one clause: trivially at most one match.
        return Some(Vec::new());
    }
    let mono = prog.sig().const_ty(pred.as_str())?.as_mono()?;
    let (arg_tys, _) = mono.uncurry();
    if arg_tys.len() < arity {
        return None;
    }
    let singletons = (0..arity).map(|i| vec![i]);
    let everything = std::iter::once((0..arity).collect::<Vec<_>>());
    'sets: for positions in singletons.chain(everything) {
        for i in 0..clauses.len() {
            for j in i + 1..clauses.len() {
                if !pair_apart(prog, &arg_tys, clauses[i], clauses[j], &positions) {
                    continue 'sets;
                }
            }
        }
        return Some(positions);
    }
    None
}

/// Best-case ill-modedness lint (`HA019`): even with every head
/// metavariable ground, the atom fits no surviving mode. After a
/// finding the atom's metavariables are optimistically grounded so one
/// bad call does not cascade into findings on every later atom.
fn find_unmoded_calls(prog: &Program, preds: &BTreeMap<Sym, PredReport>) -> Vec<UnmodedCall> {
    let cands: BTreeMap<Sym, Vec<Mode>> = preds
        .iter()
        .map(|(p, r)| (p.clone(), r.modes.clone()))
        .collect();
    fn walk(
        g: &Goal,
        ground: &mut BTreeSet<u32>,
        cands: &BTreeMap<Sym, Vec<Mode>>,
        pred: &Sym,
        ci: usize,
        out: &mut Vec<UnmodedCall>,
    ) {
        match g {
            Goal::True => {}
            Goal::Atom(t) => {
                if !atom_ok(t, ground, cands) {
                    out.push(UnmodedCall {
                        pred: pred.clone(),
                        clause_index: ci,
                        atom: t.to_string(),
                    });
                    add_metas(t, ground);
                }
            }
            Goal::And(a, b) => {
                walk(a, ground, cands, pred, ci, out);
                walk(b, ground, cands, pred, ci, out);
            }
            Goal::Impl(_, g) | Goal::All(_, _, g) => walk(g, ground, cands, pred, ci, out),
        }
    }
    let mut out = Vec::new();
    for (ci, c) in prog.clauses().iter().enumerate() {
        let Some(p) = c.head_pred() else { continue };
        if !preds.contains_key(p) {
            continue;
        }
        let mut ground = BTreeSet::new();
        add_metas(&c.head, &mut ground);
        walk(&c.body, &mut ground, &cands, p, ci, &mut out);
    }
    out
}

/// Runs mode inference and determinacy analysis over a program and
/// mints the certificate [`hoas_lp::solve_certified`] enforces.
pub fn analyze_program(prog: &Program) -> ModeOutcome {
    let arities = pred_arities(prog);
    let mut modes = infer_modes(prog, &arities);
    let mut preds = BTreeMap::new();
    let mut verdicts = HashMap::new();
    for (p, &arity) in arities.iter().filter(|(_, &n)| n <= MAX_MODED_ARITY) {
        let commit = commit_positions(prog, p, arity);
        let pred_modes = modes.remove(p).unwrap_or_default();
        let table = pred_modes.iter().any(|m| m.inputs.iter().any(|&i| i))
            && !prog.extended_hypothetically(p);
        preds.insert(
            p.clone(),
            PredReport {
                arity,
                modes: pred_modes.clone(),
                commit: commit.clone(),
                table,
            },
        );
        verdicts.insert(
            p.clone(),
            PredVerdict {
                modes: pred_modes,
                commit,
                table,
            },
        );
    }
    let unmoded_calls = find_unmoded_calls(prog, &preds);
    let cert = ProgramCert::issue(prog, verdicts);
    ModeOutcome {
        preds,
        unmoded_calls,
        cert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_lp::examples;

    fn renders(r: &PredReport) -> Vec<String> {
        r.modes.iter().map(Mode::render).collect()
    }

    #[test]
    fn append_is_richly_moded_and_first_argument_indexed() {
        let prog = examples::append_program();
        let out = analyze_program(&prog);
        let r = &out.preds[&Sym::new("append")];
        assert_eq!(r.arity, 3);
        // Every mask that grounds the recursion: notably NOT (-,+,-) —
        // clause 2's head output `cons ?X ?XS` leaves ?X unground — and
        // not the all-output mask.
        assert_eq!(
            renders(r),
            vec!["(+,+,-)", "(-,-,+)", "(+,-,+)", "(-,+,+)", "(+,+,+)"]
        );
        assert_eq!(r.commit, Some(vec![0]), "nil vs cons apart on position 0");
        assert!(out.unmoded_calls.is_empty());
        assert!(out.cert.covers(&prog));
    }

    #[test]
    fn eval_is_input_first_moded() {
        let prog = examples::eval_program();
        let out = analyze_program(&prog);
        let r = &out.preds[&Sym::new("eval")];
        assert_eq!(renders(r), vec!["(+,-)", "(+,+)"]);
        assert_eq!(r.commit, Some(vec![0]), "lam vs app apart on position 0");
        assert!(out.unmoded_calls.is_empty());
    }

    #[test]
    fn stlc_hypothetical_kills_every_mode_of_of() {
        let prog = examples::stlc_program();
        let out = analyze_program(&prog);
        let r = &out.preds[&Sym::new("of")];
        // The lam clause assumes `of x ?A` with ?A possibly free at
        // assumption time: it refutes every output-guaranteeing mode,
        // and the app clause's first subgoal refutes the rest.
        assert!(r.modes.is_empty(), "got {:?}", renders(r));
        assert_eq!(r.commit, Some(vec![0]), "app vs lam apart on position 0");
        // Exactly one best-case-unmodable call: `of ?M (arr ?A ?B)` in
        // the app clause, whose ?A is fresh.
        assert_eq!(out.unmoded_calls.len(), 1, "{:?}", out.unmoded_calls);
        assert_eq!(out.unmoded_calls[0].clause_index, 0);
        assert!(out.unmoded_calls[0].atom.contains("arr"));
    }

    #[test]
    fn single_clause_predicates_commit_vacuously() {
        let sig =
            hoas_core::sig::Signature::parse("type i. type o. const z : i. const p : i -> o.")
                .unwrap();
        let mut prog = Program::new(sig);
        prog.push(Clause::parse(prog.sig(), &[], "p z", &[]).unwrap());
        let out = analyze_program(&prog);
        assert_eq!(out.preds[&Sym::new("p")].commit, Some(vec![]));
    }

    #[test]
    fn overlapping_heads_are_not_committed() {
        let sig = hoas_core::sig::Signature::parse(
            "type i. type o. const z : i. const s : i -> i. const p : i -> o.",
        )
        .unwrap();
        let mut prog = Program::new(sig);
        prog.push(Clause::parse(prog.sig(), &[("X", "i")], "p ?X", &[]).unwrap());
        prog.push(Clause::parse(prog.sig(), &[], "p z", &[]).unwrap());
        let out = analyze_program(&prog);
        let r = &out.preds[&Sym::new("p")];
        assert_eq!(r.commit, None, "`p ?X` overlaps `p z` on every position");
        // Still moded: (-) dies because the fact `p ?X` cannot ground
        // its output, but (+) survives both clauses.
        assert_eq!(renders(r), vec!["(+)"]);
    }
}
