//! # hoas-analyze — static analysis for HOAS artifacts
//!
//! A diagnostics front end over the workspace's declarative artifacts:
//! rewrite-rule sets, signatures, and λProlog programs. Each check emits
//! [`Diagnostic`]s with a stable code (`HA001`, `HA002`, …) and a
//! severity, collected per target into a rendered [`Report`]; the
//! `hoas-analyze` binary runs every check over named targets and exits
//! non-zero if any error-severity finding remains.
//!
//! The checks lean on the paper's central observation from the analysis
//! side: because binding structure is explicit in the metalanguage,
//! questions about rules — "can these two left-hand sides ever meet?",
//! "is this rule reachable?", "does this rule rewrite its own output?" —
//! become *decidable* matching and unification problems inside Miller's
//! pattern fragment ([`hoas_rewrite::analysis`] does the term work). On
//! top of that sit signature hygiene lints and the kernel annotation
//! validator ([`hoas_core::validate`]), which recomputes every cached
//! `max_free`/`has_meta`/`beta_normal` bit by naive traversal and diffs
//! it against the sharing-aware kernel.
//!
//! ```
//! use hoas_analyze::targets;
//! let report = targets::run("fol-prenex").unwrap();
//! assert_eq!(report.error_count(), 0);
//! println!("{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod diag;
pub mod modes;
pub mod targets;
pub mod termination;

pub use checks::{check_program, check_ruleset};
pub use diag::{Diagnostic, Report, Severity, CODES};
pub use modes::{analyze_program, ModeOutcome};
pub use termination::{analyze_ruleset, SctOutcome};
