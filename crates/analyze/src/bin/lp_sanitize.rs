//! `lp-sanitize` — run the bundled λProlog examples through the
//! certified solver and check it agrees with the uncertified one.
//!
//! CI runs this binary in the *debug* profile, where the dynamic mode
//! sanitizer inside `solve_certified` is live: every enforced verdict
//! (inputs ground on entry, outputs ground on exit, committed calls
//! match at most one clause) is cross-checked at runtime and a
//! violation panics citing the HA code. A clean exit therefore means
//! the static verdicts survived contact with the actual search on
//! every bundled example.

use hoas_analyze::modes;
use hoas_lp::solve::{query_menv, solve, solve_certified, SolveConfig};
use hoas_lp::{examples, Program};

fn check(name: &str, prog: &Program, query: &str, vars: &[(&str, &str)]) -> Result<usize, String> {
    let outcome = modes::analyze_program(prog);
    let mut preds: Vec<_> = outcome.preds.iter().collect();
    preds.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
    for (pred, report) in preds {
        let verdict = if report.table {
            "tabling-eligible (HA021)"
        } else {
            "not tabling-eligible"
        };
        println!("{name}: {pred} — {verdict}");
    }
    let (goal, menv) =
        query_menv(prog.sig(), query, vars).map_err(|e| format!("{name}: bad query: {e}"))?;
    let cfg = SolveConfig {
        max_solutions: 8,
        ..SolveConfig::default()
    };
    let plain = solve(prog, &menv, &goal, &cfg).map_err(|e| format!("{name}: {e}"))?;
    let certified = solve_certified(prog, &menv, &goal, &cfg, &outcome.cert)
        .map_err(|e| format!("{name}: {e}"))?;
    if plain.answers.len() != certified.answers.len() {
        return Err(format!(
            "{name}: certified search returned {} answer(s), uncertified {}",
            certified.answers.len(),
            plain.answers.len()
        ));
    }
    for (a, b) in plain.answers.iter().zip(&certified.answers) {
        // Unsolved metavariables in an answer are universally free, and
        // the two searches allocate fresh ones at different counter
        // positions — compare up to that renaming.
        if canon(&a.to_string()) != canon(&b.to_string()) {
            return Err(format!("{name}: answers diverge: `{a}` vs `{b}`"));
        }
    }
    Ok(plain.answers.len())
}

/// Renames every `?name` token to `?m0`, `?m1`, … by first occurrence,
/// so two printouts differing only in fresh-metavariable hints compare
/// equal.
fn canon(printed: &str) -> String {
    let mut out = String::with_capacity(printed.len());
    let mut names: Vec<String> = Vec::new();
    let mut chars = printed.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '?' {
            out.push(c);
            continue;
        }
        let mut name = String::new();
        while let Some(&n) = chars.peek() {
            if n.is_alphanumeric() || n == '_' || n == '\'' {
                name.push(n);
                chars.next();
            } else {
                break;
            }
        }
        let idx = match names.iter().position(|n| *n == name) {
            Some(i) => i,
            None => {
                names.push(name);
                names.len() - 1
            }
        };
        out.push_str(&format!("?m{idx}"));
    }
    out
}

fn main() {
    let sanitizer = if cfg!(debug_assertions) {
        "live"
    } else {
        "compiled out (release profile)"
    };
    println!("dynamic mode sanitizer: {sanitizer}");
    #[allow(clippy::type_complexity)]
    let cases: Vec<(&str, Program, &str, &[(&str, &str)])> = vec![
        (
            "lp-append",
            examples::append_program(),
            "append (cons a (cons b nil)) (cons c nil) ?Z",
            &[("Z", "i")],
        ),
        (
            "lp-stlc",
            examples::stlc_program(),
            r"of (lam (\f. lam (\x. app f x))) ?T",
            &[("T", "tp")],
        ),
        (
            "lp-eval",
            examples::eval_program(),
            r"eval (app (lam (\x. x)) (lam (\y. lam (\z. y)))) ?V",
            &[("V", "tm")],
        ),
    ];
    let mut failures = 0;
    for (name, prog, query, vars) in &cases {
        match check(name, prog, query, vars) {
            Ok(n) => println!("{name}: ok — {n} answer(s), certified and uncertified agree"),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
