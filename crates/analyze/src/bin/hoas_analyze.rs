//! `hoas-analyze` — run every static check over named targets.
//!
//! ```text
//! hoas-analyze                  # analyze all bundled targets
//! hoas-analyze fol-cnf imp-opt  # analyze specific targets
//! hoas-analyze --list           # list target names
//! ```
//!
//! Exits 0 when no error-severity diagnostic was produced, 1 otherwise,
//! and 2 on usage errors (unknown target or flag).

use hoas_analyze::targets;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for (name, description) in targets::TARGETS {
            println!("{name:12} {description}");
        }
        return;
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        eprintln!("unknown flag `{flag}`\n\n{}", usage());
        std::process::exit(2);
    }

    let reports = if args.is_empty() {
        targets::run_all()
    } else {
        let mut reports = Vec::with_capacity(args.len());
        for name in &args {
            match targets::run(name) {
                Some(report) => reports.push(report),
                None => {
                    eprintln!("unknown target `{name}` (try --list)");
                    std::process::exit(2);
                }
            }
        }
        reports
    };

    let mut errors = 0;
    for report in &reports {
        print!("{}", report.render());
        errors += report.error_count();
    }
    if errors > 0 {
        eprintln!("{errors} error-severity finding(s)");
        std::process::exit(1);
    }
}

fn usage() -> String {
    let targets: Vec<&str> = targets::TARGETS.iter().map(|(n, _)| *n).collect();
    format!(
        "usage: hoas-analyze [--list] [TARGET ...]\n\n\
         Runs the static analyzer (pattern-fragment classification, rule\n\
         lints, overlap detection, signature hygiene, kernel annotation\n\
         validation) over the named targets, or all of them by default.\n\n\
         targets: {}\n",
        targets.join(", ")
    )
}
