//! `hoas-analyze` — run every static check over named targets.
//!
//! ```text
//! hoas-analyze                  # analyze all bundled targets
//! hoas-analyze fol-cnf imp-opt  # analyze specific targets
//! hoas-analyze --list           # list target names
//! hoas-analyze --strict         # promote warnings to errors
//! hoas-analyze --strict --allow HA017   # ...except HA017
//! ```
//!
//! Every requested target is analyzed and its full report printed before
//! the process decides its exit code — a bad target name or an early
//! error-severity finding never masks later diagnostics. Exits 0 when no
//! exit-relevant finding was produced, 1 otherwise, and 2 on usage
//! errors (unknown target or flag), still after printing every report it
//! could produce.

use hoas_analyze::diag::{Report, Severity};
use hoas_analyze::targets;

struct Options {
    strict: bool,
    allow: Vec<String>,
    names: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        strict: false,
        allow: Vec::new(),
        names: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strict" => opts.strict = true,
            "--allow" => match it.next() {
                Some(code) => opts.allow.push(code.clone()),
                None => return Err("--allow needs a diagnostic code".to_string()),
            },
            s if s.starts_with("--allow=") => {
                opts.allow.push(s["--allow=".len()..].to_string());
            }
            s if s.starts_with('-') => return Err(format!("unknown flag `{s}`")),
            s => opts.names.push(s.to_string()),
        }
    }
    Ok(opts)
}

/// Resolves every requested target (all bundled ones when `names` is
/// empty), returning the reports of every known name *and* the unknown
/// names — one bad name does not mask the other targets' diagnostics.
fn collect_reports(names: &[String]) -> (Vec<Report>, Vec<String>) {
    if names.is_empty() {
        return (targets::run_all(), Vec::new());
    }
    let mut reports = Vec::with_capacity(names.len());
    let mut unknown = Vec::new();
    for name in names {
        match targets::run(name) {
            Some(report) => reports.push(report),
            None => unknown.push(name.clone()),
        }
    }
    (reports, unknown)
}

/// Exit-relevant finding count: errors always count; warnings count
/// under `--strict` unless their code is explicitly allowed.
fn fatal_count(report: &Report, strict: bool, allow: &[String]) -> usize {
    report
        .diagnostics
        .iter()
        .filter(|d| match d.severity {
            Severity::Error => true,
            Severity::Warn => strict && !allow.iter().any(|a| a == d.code),
            Severity::Info => false,
        })
        .count()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for (name, description) in targets::TARGETS {
            println!("{name:12} {description}");
        }
        return;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}\n\n{}", usage());
            std::process::exit(2);
        }
    };

    let (reports, unknown) = collect_reports(&opts.names);
    let mut fatal = 0;
    for report in &reports {
        print!("{}", report.render());
        fatal += fatal_count(report, opts.strict, &opts.allow);
    }
    for name in &unknown {
        eprintln!("unknown target `{name}` (try --list)");
    }
    if !unknown.is_empty() {
        std::process::exit(2);
    }
    if fatal > 0 {
        eprintln!(
            "{fatal} exit-relevant finding(s){}",
            if opts.strict { " (strict)" } else { "" }
        );
        std::process::exit(1);
    }
}

fn usage() -> String {
    let targets: Vec<&str> = targets::TARGETS.iter().map(|(n, _)| *n).collect();
    format!(
        "usage: hoas-analyze [--list] [--strict] [--allow CODE ...] [TARGET ...]\n\n\
         Runs the static analyzer (pattern-fragment classification, rule\n\
         lints, overlap detection, signature hygiene, kernel annotation\n\
         validation, mode/determinacy inference, size-change termination)\n\
         over the named targets, or all of them by default.\n\n\
         --strict promotes warnings to exit-relevant findings; --allow\n\
         exempts one code (repeatable).\n\n\
         targets: {}\n",
        targets.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_names_do_not_mask_other_reports() {
        let names = vec![
            "lp-append".to_string(),
            "no-such-target".to_string(),
            "fol-cnf".to_string(),
        ];
        let (reports, unknown) = collect_reports(&names);
        // Both valid targets are fully analyzed despite the bad name
        // between them.
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].target, "lp-append");
        assert_eq!(reports[1].target, "fol-cnf");
        assert_eq!(unknown, vec!["no-such-target"]);
    }

    #[test]
    fn strict_promotes_warnings_except_allowed_codes() {
        let mut r = Report::new("demo");
        r.push("HA007", "a ~ b", "overlap".to_string());
        r.push("HA017", "rule set", "unproven".to_string());
        r.push("HA008", "signature", "unused".to_string());
        assert_eq!(fatal_count(&r, false, &[]), 0);
        assert_eq!(fatal_count(&r, true, &[]), 2);
        assert_eq!(fatal_count(&r, true, &["HA017".to_string()]), 1);
        // Errors stay fatal even when allowed.
        r.push("HA005", "loop", "loops".to_string());
        assert_eq!(fatal_count(&r, false, &["HA005".to_string()]), 1);
    }

    #[test]
    fn flags_parse_and_unknown_flags_are_rejected() {
        let args: Vec<String> = ["--strict", "--allow", "HA017", "--allow=HA019", "fol-cnf"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_args(&args).unwrap();
        assert!(opts.strict);
        assert_eq!(opts.allow, vec!["HA017", "HA019"]);
        assert_eq!(opts.names, vec!["fol-cnf"]);
        assert!(parse_args(&["--bogus".to_string()]).is_err());
        assert!(parse_args(&["--allow".to_string()]).is_err());
    }
}
