//! Size-change termination (SCT) for rewrite rule sets.
//!
//! A rule `f p₁ … pₙ ~> … g u₁ … uₘ …` is read as a *call* from the
//! defined symbol `f` to the defined symbol `g` (a symbol is *defined*
//! when it heads some rule's left-hand side). For every such call we
//! build a **size-change graph**: an edge `i → j` labelled *strict*
//! when `uⱼ` is provably smaller than `pᵢ` in every ground instance,
//! and *non-strict* when it is provably no larger. The graph set is
//! closed under composition, and by the size-change principle
//! (Lee–Jones–Ben-Amram) the rule set terminates if every idempotent
//! graph `f → f` in the closure carries a strict self-edge `i → i`:
//! any infinite rewrite sequence would have to apply root rules along
//! an infinite call path, and the closure's idempotent graphs describe
//! the recurring shapes of such paths — a strict self-edge forces a
//! well-founded measure (the argument's instance weight) to descend
//! infinitely.
//!
//! The size order is a weight measure on the interned de Bruijn
//! skeleton: `w(t)` counts nodes, metavariables counting 1. For open
//! terms, `u ≤ p` holds when every metavariable occurrence of `u` can
//! be matched to an occurrence in `p` of the same variable applied to
//! the same number of bound-variable arguments (so the β-residual of
//! any instantiation contributes the same weight on both sides) and
//! the symbolic weights compare, with a penalty charged for every
//! unmatched occurrence in `p` (whose instance may shrink below its
//! symbolic weight, but never below one node). Occurrences applied to
//! non-variable arguments are *opaque*: they disqualify `u` (their
//! instance weight is unpredictable upward) and are charged the full
//! penalty in `p`.
//!
//! The pass refuses to certify rule sets containing native (opaque
//! Rust) rules or rules whose left-hand side has no rigid head
//! constant. A successful analysis mints a
//! [`hoas_rewrite::TerminationCert`] the engine can validate and
//! enforce (see `hoas_rewrite::cert` for the trust boundary; the
//! engine's debug builds cross-check certified runs against a 64×
//! step-budget margin, panicking with `HA016`).

use hoas_core::{Sym, Term};
use hoas_rewrite::{RuleSet, TerminationCert};
use std::collections::{BTreeMap, BTreeSet};

/// One size-change graph between two defined symbols. Edges are
/// `(from_arg, to_arg, strict)` with at most one entry per argument
/// pair (strict wins).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SizeChangeGraph {
    /// Caller symbol (lhs head).
    pub from: Sym,
    /// Callee symbol (rhs call head).
    pub to: Sym,
    /// `(i, j, strict)`: argument `j` of the call is smaller
    /// (strictly, when the flag is set) than argument `i` of the lhs.
    pub edges: BTreeSet<(usize, usize, bool)>,
}

impl SizeChangeGraph {
    /// Composes `self : f → g` with `other : g → h` into `f → h`.
    fn compose(&self, other: &SizeChangeGraph) -> SizeChangeGraph {
        let mut best: BTreeMap<(usize, usize), bool> = BTreeMap::new();
        for &(i, j, s1) in &self.edges {
            for &(j2, k, s2) in &other.edges {
                if j == j2 {
                    let e = best.entry((i, k)).or_insert(false);
                    *e = *e || s1 || s2;
                }
            }
        }
        SizeChangeGraph {
            from: self.from.clone(),
            to: other.to.clone(),
            edges: best.into_iter().map(|((i, k), s)| (i, k, s)).collect(),
        }
    }

    /// Whether the graph is idempotent (`G ∘ G = G`); meaningful only
    /// for self-graphs (`from == to`).
    fn idempotent(&self) -> bool {
        self.compose(self) == *self
    }

    /// Whether some argument strictly descends into itself.
    fn has_strict_self_edge(&self) -> bool {
        self.edges.iter().any(|&(i, j, s)| i == j && s)
    }
}

/// The verdict of the SCT pass, with the evidence either way.
#[derive(Clone, Debug)]
pub struct SctOutcome {
    /// A certificate when termination was proven.
    pub cert: Option<TerminationCert>,
    /// Human-readable verdict (the certificate's recorded reason, or
    /// why the proof failed).
    pub reason: String,
    /// The size-change graphs extracted from the rules (before
    /// closure), for reporting.
    pub graphs: Vec<SizeChangeGraph>,
}

impl SctOutcome {
    /// Whether termination was proven.
    pub fn proven(&self) -> bool {
        self.cert.is_some()
    }

    fn unproven(reason: impl Into<String>, graphs: Vec<SizeChangeGraph>) -> SctOutcome {
        SctOutcome {
            cert: None,
            reason: reason.into(),
            graphs,
        }
    }
}

/// Node count of the de Bruijn skeleton, metavariables counting 1.
fn weight(t: &Term) -> u64 {
    match t {
        Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => 1,
        Term::Lam(_, b) | Term::Fst(b) | Term::Snd(b) => 1 + weight(b),
        Term::App(a, b) | Term::Pair(a, b) => 1 + weight(a) + weight(b),
    }
}

/// One metavariable occurrence: the variable's id, how many arguments
/// it is applied to, whether every argument is a bound variable
/// (`pattern`), and the occurrence's symbolic weight.
struct Occurrence {
    meta: u32,
    argc: usize,
    pattern: bool,
    sym_weight: u64,
}

/// Collects metavariable occurrences of `t` (spine-maximal: `?F x` is
/// one occurrence of `F`, not an occurrence under an `App`).
fn occurrences(t: &Term, acc: &mut Vec<Occurrence>) {
    let (head, args) = t.spine();
    if let Term::Meta(m) = head {
        acc.push(Occurrence {
            meta: m.id(),
            argc: args.len(),
            pattern: args.iter().all(|a| matches!(a, Term::Var(_))),
            sym_weight: weight(t),
        });
        // Non-variable arguments may themselves contain metas, but the
        // whole occurrence is already opaque; still record nested
        // occurrences so subset checks see them.
        for a in args {
            if !matches!(a, Term::Var(_)) {
                occurrences(a, acc);
            }
        }
        return;
    }
    match t {
        Term::Lam(_, b) | Term::Fst(b) | Term::Snd(b) => occurrences(b, acc),
        Term::App(f, a) => {
            occurrences(f, acc);
            occurrences(a, acc);
        }
        Term::Pair(a, b) => {
            occurrences(a, acc);
            occurrences(b, acc);
        }
        Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => {}
    }
}

/// The size relation between a call argument `u` and an lhs argument
/// `p`: `Some(strict)` when every ground instance satisfies
/// `w(uσ) ≤ w(pσ)` (strictly when `strict`), `None` when no relation
/// can be established.
fn descends(u: &Term, p: &Term) -> Option<bool> {
    let mut u_occs = Vec::new();
    let mut p_occs = Vec::new();
    occurrences(u, &mut u_occs);
    occurrences(p, &mut p_occs);
    // Opaque occurrences in `u` can grow arbitrarily under
    // instantiation; no bound is possible.
    if u_occs.iter().any(|o| !o.pattern) {
        return None;
    }
    // Match each u-occurrence to a p-occurrence of the same variable
    // with the same argument count (their β-residuals weigh the same,
    // so matched pairs cancel). Unmatched p-occurrences are charged
    // the worst-case shrink: symbolic weight down to one node.
    let mut budget: BTreeMap<(u32, usize), Vec<u64>> = BTreeMap::new();
    for o in &p_occs {
        if o.pattern {
            budget
                .entry((o.meta, o.argc))
                .or_default()
                .push(o.sym_weight);
        }
    }
    for o in &u_occs {
        let slot = budget.get_mut(&(o.meta, o.argc))?;
        slot.pop()?;
    }
    let penalty: u64 = budget
        .values()
        .flatten()
        .map(|w| w - 1)
        .chain(
            p_occs
                .iter()
                .filter(|o| !o.pattern)
                .map(|o| o.sym_weight - 1),
        )
        .sum();
    let wu = weight(u) + penalty;
    let wp = weight(p);
    if wu < wp {
        Some(true)
    } else if wu == wp {
        Some(false)
    } else {
        None
    }
}

/// Collects every rhs subterm whose spine head is a defined symbol, as
/// `(symbol, spine args)` — including calls nested inside other calls'
/// arguments and under binders.
fn calls<'t>(t: &'t Term, defined: &BTreeSet<Sym>, acc: &mut Vec<(Sym, Vec<&'t Term>)>) {
    let (head, args) = t.spine();
    if let Term::Const(c) = head {
        if defined.contains(c) {
            // One call for the maximal spine (partial applications of
            // the same head are not separate calls); nested calls can
            // only live inside the arguments.
            acc.push((c.clone(), args.clone()));
            for a in args {
                calls(a, defined, acc);
            }
            return;
        }
    }
    match t {
        Term::Lam(_, b) | Term::Fst(b) | Term::Snd(b) => calls(b, defined, acc),
        Term::App(f, a) => {
            calls(f, defined, acc);
            calls(a, defined, acc);
        }
        Term::Pair(a, b) => {
            calls(a, defined, acc);
            calls(b, defined, acc);
        }
        Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => {}
    }
}

/// Runs the size-change termination analysis over a rule set.
pub fn analyze_ruleset(rs: &RuleSet) -> SctOutcome {
    if rs.rules().is_empty() && rs.native_rules().is_empty() {
        return SctOutcome::unproven("empty rule set: nothing to prove", Vec::new());
    }
    if !rs.native_rules().is_empty() {
        return SctOutcome::unproven(
            format!(
                "native rule(s) `{}` are opaque Rust functions; their \
                 right-hand sides cannot be size-change analyzed",
                rs.native_rules()
                    .iter()
                    .map(hoas_rewrite::NativeRule::name)
                    .collect::<Vec<_>>()
                    .join("`, `")
            ),
            Vec::new(),
        );
    }
    let mut defined: BTreeSet<Sym> = BTreeSet::new();
    for rule in rs.rules() {
        match rule.head_const() {
            Some(c) => {
                defined.insert(c.clone());
            }
            None => {
                return SctOutcome::unproven(
                    format!(
                        "rule `{}` has no rigid left-hand-side head constant; \
                         its redexes cannot be assigned to a call graph node",
                        rule.name()
                    ),
                    Vec::new(),
                );
            }
        }
    }

    // One size-change graph per (rule, rhs call).
    let mut graphs: Vec<SizeChangeGraph> = Vec::new();
    for rule in rs.rules() {
        let (_, ps) = rule.lhs().spine();
        let from = rule.head_const().expect("checked above").clone();
        let mut cs = Vec::new();
        calls(rule.rhs(), &defined, &mut cs);
        for (to, us) in cs {
            let mut edges = BTreeSet::new();
            for (i, p) in ps.iter().enumerate() {
                for (j, u) in us.iter().enumerate() {
                    if let Some(strict) = descends(u, p) {
                        edges.insert((i, j, strict));
                    }
                }
            }
            // Keep only the strongest label per argument pair.
            let strongest: BTreeSet<(usize, usize, bool)> = edges
                .iter()
                .filter(|&&(i, j, s)| s || !edges.contains(&(i, j, true)))
                .copied()
                .collect();
            graphs.push(SizeChangeGraph {
                from: from.clone(),
                to,
                edges: strongest,
            });
        }
    }

    // Close under composition.
    let mut closure: BTreeSet<SizeChangeGraph> = graphs.iter().cloned().collect();
    loop {
        let mut fresh: Vec<SizeChangeGraph> = Vec::new();
        for g1 in &closure {
            for g2 in &closure {
                if g1.to == g2.from {
                    let g = g1.compose(g2);
                    if !closure.contains(&g) {
                        fresh.push(g);
                    }
                }
            }
        }
        if fresh.is_empty() {
            break;
        }
        closure.extend(fresh);
    }

    // The size-change principle: every idempotent self-graph must
    // carry a strict self-edge.
    for g in &closure {
        if g.from == g.to && g.idempotent() && !g.has_strict_self_edge() {
            return SctOutcome::unproven(
                format!(
                    "idempotent call graph `{} → {}` has no strictly \
                     descending argument; a recursion along it need not \
                     shrink anything",
                    g.from, g.to
                ),
                graphs,
            );
        }
    }
    let reason = format!(
        "size-change termination: {} call graph(s), {} in closure, every \
         idempotent self-graph strictly descends",
        graphs.len(),
        closure.len(),
    );
    SctOutcome {
        cert: Some(TerminationCert::issue(rs, &reason)),
        reason,
        graphs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoas_core::parse::parse_ty;
    use hoas_core::sig::Signature;
    use hoas_rewrite::{NativeRule, Rule};

    fn sig() -> Signature {
        Signature::parse(
            "type o.
             const and : o -> o -> o.
             const or : o -> o -> o.
             const not : o -> o.",
        )
        .unwrap()
    }

    #[test]
    fn negation_normal_form_is_proven() {
        let s = sig();
        let o = parse_ty("o").unwrap();
        let mut rs = RuleSet::new();
        for (name, metas, lhs, rhs) in [
            ("nn", vec![("P", "o")], "not (not ?P)", "?P"),
            (
                "na",
                vec![("P", "o"), ("Q", "o")],
                "not (and ?P ?Q)",
                "or (not ?P) (not ?Q)",
            ),
            (
                "no",
                vec![("P", "o"), ("Q", "o")],
                "not (or ?P ?Q)",
                "and (not ?P) (not ?Q)",
            ),
        ] {
            let metas: Vec<(&str, &str)> = metas.iter().map(|(m, t)| (*m, *t)).collect();
            rs.push(Rule::parse(&s, name, &o, &metas, lhs, rhs).unwrap())
                .unwrap();
        }
        let out = analyze_ruleset(&rs);
        assert!(out.proven(), "{}", out.reason);
        let cert = out.cert.unwrap();
        assert!(cert.covers(&rs));
    }

    #[test]
    fn growing_rule_is_not_proven() {
        let s = sig();
        let o = parse_ty("o").unwrap();
        let mut rs = RuleSet::new();
        // not ?P ~> not (not (not ?P)): the self-call argument grows.
        rs.push(
            Rule::parse(
                &s,
                "grow",
                &o,
                &[("P", "o")],
                "not ?P",
                "not (not (not ?P))",
            )
            .unwrap(),
        )
        .unwrap();
        let out = analyze_ruleset(&rs);
        assert!(!out.proven());
        assert!(out.reason.contains("no strictly descending"));
    }

    #[test]
    fn swap_loop_is_not_proven() {
        let s = sig();
        let o = parse_ty("o").unwrap();
        let mut rs = RuleSet::new();
        rs.push(
            Rule::parse(
                &s,
                "ao",
                &o,
                &[("P", "o"), ("Q", "o")],
                "and ?P ?Q",
                "or ?P ?Q",
            )
            .unwrap(),
        )
        .unwrap();
        rs.push(
            Rule::parse(
                &s,
                "oa",
                &o,
                &[("P", "o"), ("Q", "o")],
                "or ?P ?Q",
                "and ?P ?Q",
            )
            .unwrap(),
        )
        .unwrap();
        let out = analyze_ruleset(&rs);
        assert!(!out.proven(), "and ⇄ or swaps forever");
    }

    #[test]
    fn native_rules_block_the_proof() {
        let mut rs = RuleSet::new();
        rs.push_native(NativeRule::new("opaque", parse_ty("o").unwrap(), |_| None))
            .unwrap();
        let out = analyze_ruleset(&rs);
        assert!(!out.proven());
        assert!(out.reason.contains("opaque"));
    }

    #[test]
    fn descent_measure_is_conservative_about_unmatched_occurrences() {
        // p = and ?P ?P, u = not ?P: one ?P occurrence matched, one
        // unmatched (penalty 0 for a bare meta): w(u)=2 < w(p)=5.
        let s = sig();
        let o = parse_ty("o").unwrap();
        let rule = Rule::parse(
            &s,
            "d",
            &o,
            &[("P", "o")],
            "not (and ?P ?P)",
            "not (not ?P)",
        )
        .unwrap();
        let (_, ps) = rule.lhs().spine();
        // Call argument `not ?P` vs lhs argument `and ?P ?P`.
        let u = Term::app(Term::cnst("not"), Term::Meta(hoas_core::MVar::new(0, "P")));
        assert_eq!(descends(&u, ps[0]), Some(true));
        // But `and ?P ?P` does not descend into `not ?P`: the second
        // occurrence has no match.
        assert_eq!(descends(ps[0], &u), None);
    }
}
