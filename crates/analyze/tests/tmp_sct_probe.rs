use hoas_analyze::termination::analyze_ruleset;
use hoas_core::parse::{parse_term, parse_ty};
use hoas_core::sig::Signature;
use hoas_rewrite::{Engine, EngineConfig, Rule, RuleSet};

#[test]
fn probe_encoded_beta_loops() {
    let sig = Signature::parse(
        "type i.
         const app : i -> i -> i.
         const lam : (i -> i) -> i.",
    )
    .unwrap();
    let i = parse_ty("i").unwrap();
    let mut rs = RuleSet::new();
    rs.push(
        Rule::parse(
            &sig,
            "beta",
            &i,
            &[("F", "i -> i"), ("X", "i")],
            "app (lam ?F) ?X",
            "?F ?X",
        )
        .unwrap(),
    )
    .unwrap();
    let out = analyze_ruleset(&rs);
    eprintln!("proven = {}, reason = {}", out.proven(), out.reason);

    // omega: app (lam x. app x x) (lam x. app x x)
    let omega = parse_term(&sig, "app (lam (\\x. app x x)) (lam (\\x. app x x))")
        .or_else(|_| parse_term(&sig, "app (lam (fun x => app x x)) (lam (fun x => app x x))"));
    eprintln!("omega parse: {:?}", omega.as_ref().map(|t| t.to_string()));
    if let Ok(omega) = omega {
        let cfg = EngineConfig { max_steps: 50, ..EngineConfig::default() };
        let mut eng = Engine::with_config(&sig, &rs, cfg);
        let res = eng.normalize(&i, &omega).unwrap();
        eprintln!("steps = {}, fixpoint = {}, term = {}", res.steps, res.fixpoint, res.term);
        assert!(!res.fixpoint, "omega should exhaust the budget, never a fixpoint");
    }
}
