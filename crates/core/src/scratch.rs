//! Per-thread scratch arena for building transient terms without interning.
//!
//! Interning every intermediate node a traversal builds pays a store probe
//! plus an `Arc`/`Sym` clone/drop pair per child — the single-thread
//! refcount tax DESIGN §7 measured after the `Rc → Arc` switch. This
//! module offers an alternative construction strategy that avoids the tax
//! without giving up hash-consing:
//!
//! * Callers build their intermediates as **uninterned scratch nodes**
//!   ([`SId`]-indexed slots in a [`ScratchArena`]) carrying the same cached
//!   annotations (`max_free`/`has_meta`/`beta_normal`) interned nodes do,
//!   so every sharing guard behaves identically.
//! * Subtrees a traversal does not change are captured as interned leaves —
//!   one `Arc` clone at the point of capture, zero per-grandchild churn.
//! * Only the **final** result is interned, bottom-up, through the store's
//!   batch entry point (one thread-context borrow for the whole tree,
//!   borrowed-parts probes that touch no child refcount on a hit), and
//!   [`ScratchArena::finish_term`] resolves scratch nodes by **moving**
//!   their `Sym`s and `TermRef`s into the output (`mem::replace`) — no
//!   refcount operation at all for payloads that survive.
//!
//! Scratch nodes that β-contraction discards (the λ and application
//! wrappers of a redex, pairs consumed by projections) are simply dropped
//! with the arena — they were never interned, so they cost a `Vec` slot
//! instead of an allocate/intern/drop round trip. The `scratch_nodes` /
//! `batch_interned` / `refcount_ops_saved` counters in
//! [`crate::store::InternStats`] make the effect observable.
//!
//! The kernel's production hot paths do **not** route through the arena:
//! session-threaded rebuilds plus the [`crate::opmemo`] apply cache
//! measured faster there, because the fused arena path forfeits the cached
//! `max_free`/`beta_normal` guards and the memo (DESIGN §7). The arena is
//! kept for explicitly transient construction and is exercised directly by
//! the scratch-transparency suite.
//!
//! # Transparency
//!
//! The arena is a pure construction-strategy change: for every kernel
//! operation the final interned result has the **same**
//! [`crate::store::NodeId`] the old intern-every-node path produced (the
//! scratch-transparency property suite locks this down), and recursion
//! order matches the old traversals exactly, so divergence behavior is
//! unchanged too.

use crate::intern::Sym;
use crate::store::{self, NodeView};
use crate::term::{MVar, Term, TermRef};
use std::cell::RefCell;

/// Index of a node in a [`ScratchArena`]. Only meaningful for the arena
/// that issued it, within one [`with_arena`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SId(u32);

/// The shape of one scratch node. Children are arena-local [`SId`]s;
/// subtrees that already exist in the store are captured whole as
/// [`SKind::Interned`] leaves.
enum SKind {
    /// An already-interned subtree, reused as-is.
    Interned(TermRef),
    /// De Bruijn variable.
    Var(u32),
    /// Constant.
    Const(Sym),
    /// Metavariable.
    Meta(MVar),
    /// Integer literal.
    Int(i64),
    /// Unit value. Also the sentinel left behind when a resolved node's
    /// payload is moved out (sound: a moved node is never read again —
    /// `uses` counting plus the memo guarantee it).
    Unit,
    /// λ-abstraction.
    Lam(Sym, SId),
    /// Application.
    App(SId, SId),
    /// Pair.
    Pair(SId, SId),
    /// First projection.
    Fst(SId),
    /// Second projection.
    Snd(SId),
}

/// One arena slot: a shape plus the same O(1) annotations interned nodes
/// cache, and a reference count (`uses`) maintained by the constructors so
/// [`ScratchArena::finish_term`] knows which nodes need memoization.
struct SNode {
    kind: SKind,
    max_free: u32,
    has_meta: bool,
    beta_normal: bool,
    uses: u32,
}

/// A bump-allocated workspace for transient term construction.
///
/// Obtain one through [`with_arena`]; build with the constructor methods
/// (annotations are computed bottom-up exactly as the interning smart
/// constructors do); extract the result once with
/// [`ScratchArena::finish_term`], which batch-interns every surviving node.
#[derive(Default)]
pub struct ScratchArena {
    nodes: Vec<SNode>,
    /// Parallel to `nodes`: interned result of a node that resolved with
    /// `uses > 1`, so later parents reuse it with one clone instead of
    /// re-resolving a moved-out slot.
    memo: Vec<Option<TermRef>>,
    /// Nodes consumed into the finished output (the rest were transient).
    resolved: u64,
}

/// Runs `f` with the calling thread's scratch arena, cleared on entry and
/// on exit (so panics never leak stale state into the next run, and held
/// `Arc`s are dropped promptly).
///
/// Re-entrant calls — a kernel operation invoked while another one is
/// mid-flight on the same thread — fall back to a fresh temporary arena,
/// so nesting is always safe, just not pooled.
pub fn with_arena<R>(f: impl FnOnce(&mut ScratchArena) -> R) -> R {
    thread_local! {
        static ARENA: RefCell<ScratchArena> = RefCell::new(ScratchArena::default());
    }
    ARENA.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ar) => {
            ar.reset();
            let out = f(&mut ar);
            ar.reset();
            out
        }
        Err(_) => f(&mut ScratchArena::default()),
    })
}

impl ScratchArena {
    fn reset(&mut self) {
        // Bound the pooled footprint: a pathological term can grow the
        // arena arbitrarily; don't keep that capacity forever.
        if self.nodes.capacity() > (1 << 20) {
            self.nodes = Vec::new();
            self.memo = Vec::new();
        } else {
            self.nodes.clear();
            self.memo.clear();
        }
        self.resolved = 0;
    }

    fn push(&mut self, kind: SKind, max_free: u32, has_meta: bool, beta_normal: bool) -> SId {
        let id = SId(self.nodes.len() as u32);
        self.nodes.push(SNode {
            kind,
            max_free,
            has_meta,
            beta_normal,
            uses: 0,
        });
        self.memo.push(None);
        id
    }

    fn bump(&mut self, c: SId) {
        self.nodes[c.0 as usize].uses += 1;
    }

    fn node(&self, t: SId) -> &SNode {
        &self.nodes[t.0 as usize]
    }

    fn is_lam(&self, t: SId) -> bool {
        match &self.node(t).kind {
            SKind::Lam(..) => true,
            SKind::Interned(r) => matches!(r.term(), Term::Lam(..)),
            _ => false,
        }
    }

    fn is_pair(&self, t: SId) -> bool {
        match &self.node(t).kind {
            SKind::Pair(..) => true,
            SKind::Interned(r) => matches!(r.term(), Term::Pair(..)),
            _ => false,
        }
    }

    // ---- constructors ------------------------------------------------

    /// Captures an already-interned subtree as a scratch leaf (one `Arc`
    /// clone; the annotations are copied from the node).
    pub fn of_ref(&mut self, r: &TermRef) -> SId {
        let (mf, hm, bn) = (r.max_free(), r.has_meta(), r.is_beta_normal());
        self.push(SKind::Interned(r.clone()), mf, hm, bn)
    }

    /// Converts a borrowed [`Term`] into a scratch node: leaves are copied,
    /// a compound root becomes one scratch node over its (already interned)
    /// children.
    pub fn of_term(&mut self, t: &Term) -> SId {
        match t {
            Term::Var(i) => self.var(*i),
            Term::Const(c) => self.push(SKind::Const(c.clone()), 0, false, true),
            Term::Meta(m) => self.push(SKind::Meta(m.clone()), 0, true, true),
            Term::Int(n) => self.push(SKind::Int(*n), 0, false, true),
            Term::Unit => self.push(SKind::Unit, 0, false, true),
            Term::Lam(h, b) => {
                let b2 = self.of_ref(b);
                self.lam(h.clone(), b2)
            }
            Term::App(f, a) => {
                let f2 = self.of_ref(f);
                let a2 = self.of_ref(a);
                self.app(f2, a2)
            }
            Term::Pair(a, b) => {
                let a2 = self.of_ref(a);
                let b2 = self.of_ref(b);
                self.pair(a2, b2)
            }
            Term::Fst(p) => {
                let p2 = self.of_ref(p);
                self.fst_of(p2)
            }
            Term::Snd(p) => {
                let p2 = self.of_ref(p);
                self.snd_of(p2)
            }
        }
    }

    pub(crate) fn var(&mut self, i: u32) -> SId {
        self.push(SKind::Var(i), i + 1, false, true)
    }

    /// λ-abstraction scratch node; annotations combined exactly as
    /// [`Term::max_free`]/[`Term::has_metas`]/[`Term::is_beta_normal`] do.
    pub fn lam(&mut self, hint: Sym, body: SId) -> SId {
        self.bump(body);
        let b = self.node(body);
        let (mf, hm, bn) = (b.max_free.saturating_sub(1), b.has_meta, b.beta_normal);
        self.push(SKind::Lam(hint, body), mf, hm, bn)
    }

    /// Application scratch node (not β-normal when `f` is a λ).
    pub fn app(&mut self, f: SId, a: SId) -> SId {
        self.bump(f);
        self.bump(a);
        let bn = !self.is_lam(f) && self.node(f).beta_normal && self.node(a).beta_normal;
        let mf = self.node(f).max_free.max(self.node(a).max_free);
        let hm = self.node(f).has_meta || self.node(a).has_meta;
        self.push(SKind::App(f, a), mf, hm, bn)
    }

    /// Pair scratch node.
    pub fn pair(&mut self, a: SId, b: SId) -> SId {
        self.bump(a);
        self.bump(b);
        let mf = self.node(a).max_free.max(self.node(b).max_free);
        let hm = self.node(a).has_meta || self.node(b).has_meta;
        let bn = self.node(a).beta_normal && self.node(b).beta_normal;
        self.push(SKind::Pair(a, b), mf, hm, bn)
    }

    /// First-projection scratch node (not β-normal when `p` is a pair).
    pub fn fst_of(&mut self, p: SId) -> SId {
        self.bump(p);
        let bn = self.node(p).beta_normal && !self.is_pair(p);
        let (mf, hm) = (self.node(p).max_free, self.node(p).has_meta);
        self.push(SKind::Fst(p), mf, hm, bn)
    }

    /// Second-projection scratch node (not β-normal when `p` is a pair).
    pub fn snd_of(&mut self, p: SId) -> SId {
        self.bump(p);
        let bn = self.node(p).beta_normal && !self.is_pair(p);
        let (mf, hm) = (self.node(p).max_free, self.node(p).has_meta);
        self.push(SKind::Snd(p), mf, hm, bn)
    }

    // ---- shifting ----------------------------------------------------

    /// Shifts free variables of a borrowed term up by `d`, as a scratch
    /// subtree. O(1) (a single capture) when nothing can move.
    pub fn shift_term(&mut self, s: &Term, d: u32) -> SId {
        if d == 0 || s.max_free() == 0 {
            self.of_term(s)
        } else {
            self.reindex_term(s, d, 0, true)
        }
    }

    /// Shared traversal behind `shift_above` and `unshift_above`: renumbers
    /// free variables `>= cutoff` up (`up = true`) or down by `d`.
    /// Callers have already ruled out the identity case
    /// (`d == 0 || max_free <= cutoff`).
    ///
    /// # Panics
    ///
    /// In the downward direction, panics if a variable in
    /// `[cutoff, cutoff + d)` occurs — such a term would dangle.
    pub(crate) fn reindex_term(&mut self, t: &Term, d: u32, cutoff: u32, up: bool) -> SId {
        match t {
            // `max_free > cutoff` for a variable means `i >= cutoff`.
            Term::Var(i) => {
                if up {
                    self.var(i + d)
                } else if *i >= cutoff + d {
                    self.var(i - d)
                } else {
                    assert!(
                        *i < cutoff,
                        "unshift_above: variable {i} would dangle (cutoff {cutoff}, d {d})"
                    );
                    self.var(*i)
                }
            }
            Term::Lam(h, b) => {
                let b2 = self.reindex_ref(b, d, cutoff + 1, up);
                self.lam(h.clone(), b2)
            }
            Term::App(f, a) => {
                let f2 = self.reindex_ref(f, d, cutoff, up);
                let a2 = self.reindex_ref(a, d, cutoff, up);
                self.app(f2, a2)
            }
            Term::Pair(a, b) => {
                let a2 = self.reindex_ref(a, d, cutoff, up);
                let b2 = self.reindex_ref(b, d, cutoff, up);
                self.pair(a2, b2)
            }
            Term::Fst(p) => {
                let p2 = self.reindex_ref(p, d, cutoff, up);
                self.fst_of(p2)
            }
            Term::Snd(p) => {
                let p2 = self.reindex_ref(p, d, cutoff, up);
                self.snd_of(p2)
            }
            Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => self.of_term(t),
        }
    }

    fn reindex_ref(&mut self, t: &TermRef, d: u32, cutoff: u32, up: bool) -> SId {
        if t.max_free() <= cutoff {
            self.of_ref(t)
        } else {
            self.reindex_term(t.term(), d, cutoff, up)
        }
    }

    /// [`ScratchArena::shift_term`] over an existing scratch subtree.
    fn shift_sid(&mut self, t: SId, d: u32, cutoff: u32) -> SId {
        if d == 0 || self.node(t).max_free <= cutoff {
            return t;
        }
        match &self.nodes[t.0 as usize].kind {
            SKind::Interned(r) => {
                let r = r.clone();
                self.reindex_term(r.term(), d, cutoff, true)
            }
            SKind::Var(i) => {
                let i = *i;
                self.var(i + d)
            }
            SKind::Lam(h, b) => {
                let (h, b) = (h.clone(), *b);
                let b2 = self.shift_sid(b, d, cutoff + 1);
                self.lam(h, b2)
            }
            SKind::App(f, a) => {
                let (f, a) = (*f, *a);
                let f2 = self.shift_sid(f, d, cutoff);
                let a2 = self.shift_sid(a, d, cutoff);
                self.app(f2, a2)
            }
            SKind::Pair(a, b) => {
                let (a, b) = (*a, *b);
                let a2 = self.shift_sid(a, d, cutoff);
                let b2 = self.shift_sid(b, d, cutoff);
                self.pair(a2, b2)
            }
            SKind::Fst(p) => {
                let p = *p;
                let p2 = self.shift_sid(p, d, cutoff);
                self.fst_of(p2)
            }
            SKind::Snd(p) => {
                let p = *p;
                let p2 = self.shift_sid(p, d, cutoff);
                self.snd_of(p2)
            }
            // Closed leaves were caught by the `max_free` guard above.
            SKind::Const(_) | SKind::Meta(_) | SKind::Int(_) | SKind::Unit => t,
        }
    }

    // ---- hereditary substitution & normalization ---------------------

    /// Hereditary substitution of scratch subtree `s` for variable `k` in
    /// a borrowed term, contracting every redex the substitution creates.
    /// Callers have already ruled out the share case
    /// (`max_free <= k && beta_normal`).
    pub(crate) fn hsub_term(&mut self, t: &Term, k: u32, s: SId) -> SId {
        match t {
            Term::Var(i) => {
                if *i == k {
                    self.shift_sid(s, k, 0)
                } else if *i > k {
                    self.var(i - 1)
                } else {
                    self.var(*i)
                }
            }
            Term::Lam(h, b) => {
                let b2 = self.hsub_tref(b, k + 1, s);
                self.lam(h.clone(), b2)
            }
            Term::App(f, a) => {
                let a2 = self.hsub_tref(a, k, s);
                let f2 = self.hsub_tref(f, k, s);
                self.happly(f2, a2)
            }
            Term::Pair(a, b) => {
                let a2 = self.hsub_tref(a, k, s);
                let b2 = self.hsub_tref(b, k, s);
                self.pair(a2, b2)
            }
            Term::Fst(p) => {
                let p2 = self.hsub_tref(p, k, s);
                self.hfst(p2)
            }
            Term::Snd(p) => {
                let p2 = self.hsub_tref(p, k, s);
                self.hsnd(p2)
            }
            Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => self.of_term(t),
        }
    }

    fn hsub_tref(&mut self, t: &TermRef, k: u32, s: SId) -> SId {
        if t.max_free() <= k && t.is_beta_normal() {
            self.of_ref(t)
        } else {
            self.hsub_term(t.term(), k, s)
        }
    }

    /// [`ScratchArena::hsub_term`] over an existing scratch subtree.
    fn hsub_sid(&mut self, t: SId, k: u32, s: SId) -> SId {
        {
            let n = self.node(t);
            if n.max_free <= k && n.beta_normal {
                return t;
            }
        }
        match &self.nodes[t.0 as usize].kind {
            SKind::Interned(r) => {
                let r = r.clone();
                self.hsub_term(r.term(), k, s)
            }
            SKind::Var(i) => {
                let i = *i;
                if i == k {
                    self.shift_sid(s, k, 0)
                } else if i > k {
                    self.var(i - 1)
                } else {
                    self.var(i)
                }
            }
            SKind::Lam(h, b) => {
                let (h, b) = (h.clone(), *b);
                let b2 = self.hsub_sid(b, k + 1, s);
                self.lam(h, b2)
            }
            SKind::App(f, a) => {
                let (f, a) = (*f, *a);
                let a2 = self.hsub_sid(a, k, s);
                let f2 = self.hsub_sid(f, k, s);
                self.happly(f2, a2)
            }
            SKind::Pair(a, b) => {
                let (a, b) = (*a, *b);
                let a2 = self.hsub_sid(a, k, s);
                let b2 = self.hsub_sid(b, k, s);
                self.pair(a2, b2)
            }
            SKind::Fst(p) => {
                let p = *p;
                let p2 = self.hsub_sid(p, k, s);
                self.hfst(p2)
            }
            SKind::Snd(p) => {
                let p = *p;
                let p2 = self.hsub_sid(p, k, s);
                self.hsnd(p2)
            }
            // Leaves were caught by the share guard above.
            SKind::Const(_) | SKind::Meta(_) | SKind::Int(_) | SKind::Unit => t,
        }
    }

    /// Application with hereditary β-contraction: if `f` is a λ, opens its
    /// body with `a` (contracting created redexes), otherwise builds the
    /// application node.
    pub fn happly(&mut self, f: SId, a: SId) -> SId {
        let (sb, rb) = match &self.nodes[f.0 as usize].kind {
            SKind::Lam(_, b) => (Some(*b), None),
            SKind::Interned(r) => match r.term() {
                Term::Lam(_, b) => (None, Some(b.clone())),
                _ => (None, None),
            },
            _ => (None, None),
        };
        if let Some(b) = sb {
            return self.hsub_sid(b, 0, a);
        }
        if let Some(b) = rb {
            if b.max_free() == 0 && b.is_beta_normal() {
                return self.of_ref(&b);
            }
            return self.hsub_term(b.term(), 0, a);
        }
        self.app(f, a)
    }

    /// First projection with contraction: `fst (a, b) ⇒ a`.
    pub fn hfst(&mut self, p: SId) -> SId {
        let (sa, ra) = match &self.nodes[p.0 as usize].kind {
            SKind::Pair(a, _) => (Some(*a), None),
            SKind::Interned(r) => match r.term() {
                Term::Pair(a, _) => (None, Some(a.clone())),
                _ => (None, None),
            },
            _ => (None, None),
        };
        if let Some(a) = sa {
            return a;
        }
        if let Some(a) = ra {
            return self.of_ref(&a);
        }
        self.fst_of(p)
    }

    /// Second projection with contraction: `snd (a, b) ⇒ b`.
    pub fn hsnd(&mut self, p: SId) -> SId {
        let (sb, rb) = match &self.nodes[p.0 as usize].kind {
            SKind::Pair(_, b) => (Some(*b), None),
            SKind::Interned(r) => match r.term() {
                Term::Pair(_, b) => (None, Some(b.clone())),
                _ => (None, None),
            },
            _ => (None, None),
        };
        if let Some(b) = sb {
            return b;
        }
        if let Some(b) = rb {
            return self.of_ref(&b);
        }
        self.snd_of(p)
    }

    /// Full β-normal form of a borrowed term, over scratch. Callers have
    /// already ruled out the cached-normal case.
    pub(crate) fn nf_term(&mut self, t: &Term) -> SId {
        match t {
            Term::App(f, a) => {
                let f2 = self.nf_tref(f);
                let a2 = self.nf_tref(a);
                self.happly(f2, a2)
            }
            Term::Lam(h, b) => {
                let b2 = self.nf_tref(b);
                self.lam(h.clone(), b2)
            }
            Term::Pair(a, b) => {
                let a2 = self.nf_tref(a);
                let b2 = self.nf_tref(b);
                self.pair(a2, b2)
            }
            Term::Fst(p) => {
                let p2 = self.nf_tref(p);
                self.hfst(p2)
            }
            Term::Snd(p) => {
                let p2 = self.nf_tref(p);
                self.hsnd(p2)
            }
            Term::Var(_) | Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => {
                self.of_term(t)
            }
        }
    }

    fn nf_tref(&mut self, t: &TermRef) -> SId {
        if t.is_beta_normal() {
            self.of_ref(t)
        } else {
            self.nf_term(t.term())
        }
    }

    /// Full β-normal form of an existing scratch subtree.
    pub fn nf_sid(&mut self, t: SId) -> SId {
        if self.node(t).beta_normal {
            return t;
        }
        match &self.nodes[t.0 as usize].kind {
            SKind::Interned(r) => {
                let r = r.clone();
                self.nf_term(r.term())
            }
            SKind::App(f, a) => {
                let (f, a) = (*f, *a);
                let f2 = self.nf_sid(f);
                let a2 = self.nf_sid(a);
                self.happly(f2, a2)
            }
            SKind::Lam(h, b) => {
                let (h, b) = (h.clone(), *b);
                let b2 = self.nf_sid(b);
                self.lam(h, b2)
            }
            SKind::Pair(a, b) => {
                let (a, b) = (*a, *b);
                let a2 = self.nf_sid(a);
                let b2 = self.nf_sid(b);
                self.pair(a2, b2)
            }
            SKind::Fst(p) => {
                let p = *p;
                let p2 = self.nf_sid(p);
                self.hfst(p2)
            }
            SKind::Snd(p) => {
                let p = *p;
                let p2 = self.nf_sid(p);
                self.hsnd(p2)
            }
            // β-normal leaves were caught by the guard above.
            SKind::Var(_) | SKind::Const(_) | SKind::Meta(_) | SKind::Int(_) | SKind::Unit => t,
        }
    }

    // ---- batch intern ------------------------------------------------

    /// Resolves one scratch node to an interned [`TermRef`] inside an open
    /// intern session, moving payloads out of the arena (`mem::replace`)
    /// so surviving `Sym`s and `TermRef`s transfer with zero refcount
    /// operations. Nodes referenced more than once are memoized.
    fn resolve(&mut self, t: SId, sess: &mut store::InternSession<'_>) -> TermRef {
        if let Some(r) = &self.memo[t.0 as usize] {
            return r.clone();
        }
        let uses = self.nodes[t.0 as usize].uses;
        let kind = std::mem::replace(&mut self.nodes[t.0 as usize].kind, SKind::Unit);
        self.resolved += 1;
        let out = match kind {
            SKind::Interned(r) => r,
            SKind::Var(i) => sess.intern_view(&NodeView::Var(i)),
            SKind::Const(c) => sess.intern_view(&NodeView::Const(&c)),
            SKind::Meta(m) => sess.intern_view(&NodeView::Meta(&m)),
            SKind::Int(n) => sess.intern_view(&NodeView::Int(n)),
            SKind::Unit => sess.intern_view(&NodeView::Unit),
            SKind::Lam(h, b) => {
                let b2 = self.resolve(b, sess);
                sess.intern_view(&NodeView::Lam(&h, &b2))
            }
            SKind::App(f, a) => {
                let f2 = self.resolve(f, sess);
                let a2 = self.resolve(a, sess);
                sess.intern_view(&NodeView::App(&f2, &a2))
            }
            SKind::Pair(a, b) => {
                let a2 = self.resolve(a, sess);
                let b2 = self.resolve(b, sess);
                sess.intern_view(&NodeView::Pair(&a2, &b2))
            }
            SKind::Fst(p) => {
                let p2 = self.resolve(p, sess);
                sess.intern_view(&NodeView::Fst(&p2))
            }
            SKind::Snd(p) => {
                let p2 = self.resolve(p, sess);
                sess.intern_view(&NodeView::Snd(&p2))
            }
        };
        if uses > 1 {
            self.memo[t.0 as usize] = Some(out.clone());
        }
        out
    }

    /// Batch-interns the subtree rooted at `root` and returns it as a
    /// [`Term`] — children interned, the root itself left uninterned,
    /// mirroring what the old `Term`-returning kernel entry points
    /// produced. One intern session serves the whole tree.
    pub fn finish_term(&mut self, root: SId) -> Term {
        store::with_session(|sess| {
            let kind = std::mem::replace(&mut self.nodes[root.0 as usize].kind, SKind::Unit);
            self.resolved += 1;
            let out = match kind {
                SKind::Interned(r) => r.into_term(),
                SKind::Var(i) => Term::Var(i),
                SKind::Const(c) => Term::Const(c),
                SKind::Meta(m) => Term::Meta(m),
                SKind::Int(n) => Term::Int(n),
                SKind::Unit => Term::Unit,
                SKind::Lam(h, b) => {
                    let b2 = self.resolve(b, sess);
                    Term::Lam(h, b2)
                }
                SKind::App(f, a) => {
                    let f2 = self.resolve(f, sess);
                    let a2 = self.resolve(a, sess);
                    Term::App(f2, a2)
                }
                SKind::Pair(a, b) => {
                    let a2 = self.resolve(a, sess);
                    let b2 = self.resolve(b, sess);
                    Term::Pair(a2, b2)
                }
                SKind::Fst(p) => {
                    let p2 = self.resolve(p, sess);
                    Term::Fst(p2)
                }
                SKind::Snd(p) => {
                    let p2 = self.resolve(p, sess);
                    Term::Snd(p2)
                }
            };
            let built = self.nodes.len() as u64;
            let dead = built.saturating_sub(self.resolved);
            sess.record_scratch(built, dead);
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(i)
    }

    #[test]
    fn finish_reproduces_direct_intern_ids() {
        // λx. (x c) rebuilt through scratch lands on the same NodeId as a
        // direct smart-constructor build.
        let direct = TermRef::new(Term::lam("x", Term::app(v(0), Term::cnst("c"))));
        let scratch = with_arena(|ar| {
            let x = ar.var(0);
            let c = ar.of_term(&Term::cnst("c"));
            let body = ar.app(x, c);
            let l = ar.lam(Sym::new("x"), body);
            ar.finish_term(l)
        });
        assert_eq!(TermRef::new(scratch).id(), direct.id());
    }

    #[test]
    fn annotations_match_smart_constructors() {
        with_arena(|ar| {
            // (λx. x) y — a redex: not β-normal, max_free 1.
            let x = ar.var(0);
            let l = ar.lam(Sym::new("x"), x);
            let y = ar.var(0);
            let r = ar.app(l, y);
            assert_eq!(ar.node(r).max_free, 1);
            assert!(!ar.node(r).beta_normal);
            assert!(!ar.node(r).has_meta);
            let t = ar.finish_term(r);
            assert_eq!(t.max_free(), 1);
            assert!(!t.is_beta_normal());
        });
    }

    #[test]
    fn happly_contracts_hereditarily() {
        // (λf. f c) (λx. x) ⇒ c in one pass, over scratch.
        let out = with_arena(|ar| {
            let fun = ar.of_term(&Term::lam("f", Term::app(v(0), Term::cnst("c"))));
            let id = ar.of_term(&Term::lam("x", v(0)));
            let r = ar.happly(fun, id);
            ar.finish_term(r)
        });
        assert_eq!(out, Term::cnst("c"));
        assert!(out.is_beta_normal());
    }

    #[test]
    fn shared_substituend_resolves_once() {
        // subst body (x x) with s: both occurrences share one scratch node,
        // which must resolve through the memo (exercises `uses > 1`).
        let out = with_arena(|ar| {
            let s = ar.of_term(&Term::app(Term::cnst("a"), Term::cnst("b")));
            let r = ar.app(s, s);
            ar.finish_term(r)
        });
        let ab = Term::app(Term::cnst("a"), Term::cnst("b"));
        assert_eq!(out, Term::app(ab.clone(), ab));
    }

    #[test]
    fn nested_with_arena_is_safe() {
        let out = with_arena(|outer| {
            let inner = with_arena(|ar| {
                let c = ar.of_term(&Term::cnst("k"));
                ar.finish_term(c)
            });
            let i = outer.of_term(&inner);
            outer.finish_term(i)
        });
        assert_eq!(out, Term::cnst("k"));
    }

    #[test]
    fn scratch_counters_are_recorded() {
        let before = crate::store::stats();
        let _ = with_arena(|ar| {
            let t = ar.of_term(&Term::lam("x", Term::app(v(0), v(0))));
            let n = ar.nf_sid(t);
            ar.finish_term(n)
        });
        let after = crate::store::stats();
        let d = after.since(&before);
        assert!(d.scratch_nodes > 0, "scratch nodes should be counted");
    }
}
