//! Typing contexts for de Bruijn terms.

use crate::intern::Sym;
use crate::ty::Ty;
use std::fmt;

/// A typing context: a stack of `(hint, type)` entries, innermost last.
///
/// `Var(0)` refers to the **last** pushed entry.
///
/// ```
/// use hoas_core::{ctx::Ctx, Sym, Ty};
/// let ctx = Ctx::new()
///     .push(Sym::new("x"), Ty::Int)
///     .push(Sym::new("y"), Ty::Unit);
/// assert_eq!(ctx.lookup(0).unwrap().1, &Ty::Unit); // y, innermost
/// assert_eq!(ctx.lookup(1).unwrap().1, &Ty::Int); // x
/// assert!(ctx.lookup(2).is_none());
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Ctx {
    entries: Vec<(Sym, Ty)>,
}

impl Ctx {
    /// The empty context.
    pub fn new() -> Ctx {
        Ctx::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the context is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns a new context extended with one entry (persistent-style API;
    /// contexts are small, so cloning is fine and keeps borrows simple).
    #[must_use]
    pub fn push(&self, hint: Sym, ty: Ty) -> Ctx {
        let mut entries = self.entries.clone();
        entries.push((hint, ty));
        Ctx { entries }
    }

    /// Extends in place.
    pub fn push_mut(&mut self, hint: Sym, ty: Ty) {
        self.entries.push((hint, ty));
    }

    /// Removes the innermost entry in place.
    pub fn pop_mut(&mut self) -> Option<(Sym, Ty)> {
        self.entries.pop()
    }

    /// Looks up a de Bruijn index (0 = innermost).
    pub fn lookup(&self, index: u32) -> Option<(&Sym, &Ty)> {
        let n = self.entries.len();
        let i = n.checked_sub(1 + index as usize)?;
        self.entries.get(i).map(|(s, t)| (s, t))
    }

    /// Iterates entries from outermost to innermost.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = (&Sym, &Ty)> {
        self.entries.iter().map(|(s, t)| (s, t))
    }

    /// The hints currently in scope, outermost first.
    pub fn hints(&self) -> Vec<&Sym> {
        self.entries.iter().map(|(s, _)| s).collect()
    }
}

impl FromIterator<(Sym, Ty)> for Ctx {
    fn from_iter<I: IntoIterator<Item = (Sym, Ty)>>(iter: I) -> Self {
        Ctx {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Sym, Ty)> for Ctx {
    fn extend<I: IntoIterator<Item = (Sym, Ty)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

impl fmt::Display for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return f.write_str("·");
        }
        for (i, (s, t)) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{s} : {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_innermost_first() {
        let ctx = Ctx::new()
            .push(Sym::new("a"), Ty::base("A"))
            .push(Sym::new("b"), Ty::base("B"));
        assert_eq!(ctx.lookup(0).unwrap().0.as_str(), "b");
        assert_eq!(ctx.lookup(1).unwrap().0.as_str(), "a");
        assert!(ctx.lookup(2).is_none());
    }

    #[test]
    fn push_is_persistent() {
        let base = Ctx::new();
        let ext = base.push(Sym::new("x"), Ty::Int);
        assert!(base.is_empty());
        assert_eq!(ext.len(), 1);
    }

    #[test]
    fn push_pop_mut() {
        let mut ctx = Ctx::new();
        ctx.push_mut(Sym::new("x"), Ty::Int);
        assert_eq!(ctx.len(), 1);
        let (s, t) = ctx.pop_mut().unwrap();
        assert_eq!(s.as_str(), "x");
        assert_eq!(t, Ty::Int);
        assert!(ctx.pop_mut().is_none());
    }

    #[test]
    fn display_empty_and_nonempty() {
        assert_eq!(Ctx::new().to_string(), "·");
        let ctx = Ctx::new().push(Sym::new("x"), Ty::Int);
        assert_eq!(ctx.to_string(), "x : int");
    }

    #[test]
    fn from_iterator() {
        let ctx: Ctx = [(Sym::new("x"), Ty::Int), (Sym::new("y"), Ty::Unit)]
            .into_iter()
            .collect();
        assert_eq!(ctx.len(), 2);
        assert_eq!(ctx.lookup(0).unwrap().0.as_str(), "y");
    }
}
