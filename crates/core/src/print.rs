//! Pretty-printing of types and terms.
//!
//! The printer *resurrects names*: de Bruijn indices are rendered using
//! each binder's hint, freshened (`x`, `x1`, `x2`, …) against the names
//! already in scope so that the output never shadows confusingly and
//! re-parses to an α-equivalent term (see the parser round-trip tests).

use crate::term::Term;
use crate::ty::Ty;
use std::fmt;

/// Precedence levels for type printing: 0 = arrow position (lowest),
/// 1 = product position, 2 = atom position.
pub(crate) fn fmt_ty(ty: &Ty, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match ty {
        Ty::Base(s) => write!(f, "{s}"),
        Ty::Int => f.write_str("int"),
        Ty::Unit => f.write_str("unit"),
        Ty::Var(v) => {
            if *v < 26 {
                write!(f, "'{}", (b'a' + *v as u8) as char)
            } else {
                write!(f, "'t{v}")
            }
        }
        Ty::Arrow(a, b) => {
            let parens = prec > 0;
            if parens {
                f.write_str("(")?;
            }
            fmt_ty(a, f, 1)?;
            f.write_str(" -> ")?;
            fmt_ty(b, f, 0)?;
            if parens {
                f.write_str(")")?;
            }
            Ok(())
        }
        Ty::Prod(a, b) => {
            let parens = prec > 1;
            if parens {
                f.write_str("(")?;
            }
            fmt_ty(a, f, 2)?;
            f.write_str(" * ")?;
            fmt_ty(b, f, 2)?;
            if parens {
                f.write_str(")")?;
            }
            Ok(())
        }
    }
}

/// Renders a type to a string (same as its `Display`).
pub fn ty_to_string(ty: &Ty) -> String {
    ty.to_string()
}

struct TermPrinter<'a> {
    /// Names in scope, innermost last.
    env: Vec<String>,
    f: &'a mut dyn fmt::Write,
}

const PREC_LAM: u8 = 0;
const PREC_APP: u8 = 1;
const PREC_ATOM: u8 = 2;

impl TermPrinter<'_> {
    fn fresh_name(&self, hint: &str) -> String {
        let base = if hint.is_empty() { "x" } else { hint };
        if !self.env.iter().any(|n| n == base) {
            return base.to_string();
        }
        for i in 1u32.. {
            let cand = format!("{base}{i}");
            if !self.env.iter().any(|n| n == &cand) {
                return cand;
            }
        }
        unreachable!()
    }

    fn go(&mut self, t: &Term, prec: u8) -> fmt::Result {
        match t {
            Term::Var(i) => {
                let n = self.env.len();
                match n.checked_sub(1 + *i as usize).and_then(|k| self.env.get(k)) {
                    Some(name) => self.f.write_str(name),
                    // Dangling index: print positionally so output is still
                    // unambiguous (cannot clash with identifiers).
                    None => write!(self.f, "#{i}"),
                }
            }
            Term::Const(c) => self.f.write_str(c.as_str()),
            Term::Meta(m) => write!(self.f, "?{}", m.hint()),
            Term::Int(n) => write!(self.f, "{n}"),
            Term::Unit => self.f.write_str("()"),
            Term::Lam(h, b) => {
                let parens = prec > PREC_LAM;
                if parens {
                    self.f.write_str("(")?;
                }
                let name = self.fresh_name(h.as_str());
                write!(self.f, "\\{name}. ")?;
                self.env.push(name);
                self.go(b, PREC_LAM)?;
                self.env.pop();
                if parens {
                    self.f.write_str(")")?;
                }
                Ok(())
            }
            Term::App(fun, arg) => {
                let parens = prec > PREC_APP;
                if parens {
                    self.f.write_str("(")?;
                }
                self.go(fun, PREC_APP)?;
                self.f.write_str(" ")?;
                self.go(arg, PREC_ATOM)?;
                if parens {
                    self.f.write_str(")")?;
                }
                Ok(())
            }
            Term::Pair(a, b) => {
                self.f.write_str("(")?;
                self.go(a, PREC_LAM)?;
                self.f.write_str(", ")?;
                self.go(b, PREC_LAM)?;
                self.f.write_str(")")
            }
            Term::Fst(p) => {
                let parens = prec > PREC_APP;
                if parens {
                    self.f.write_str("(")?;
                }
                self.f.write_str("fst ")?;
                self.go(p, PREC_ATOM)?;
                if parens {
                    self.f.write_str(")")?;
                }
                Ok(())
            }
            Term::Snd(p) => {
                let parens = prec > PREC_APP;
                if parens {
                    self.f.write_str("(")?;
                }
                self.f.write_str("snd ")?;
                self.go(p, PREC_ATOM)?;
                if parens {
                    self.f.write_str(")")?;
                }
                Ok(())
            }
        }
    }
}

pub(crate) fn fmt_term(t: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let mut s = String::new();
    {
        let mut p = TermPrinter {
            env: Vec::new(),
            f: &mut s,
        };
        p.go(t, PREC_LAM).expect("writing to String cannot fail");
    }
    f.write_str(&s)
}

/// Renders a term to a string (same as its `Display`).
pub fn term_to_string(t: &Term) -> String {
    t.to_string()
}

/// Renders a term whose free de Bruijn variables should be shown with the
/// given names (outermost first).
pub fn term_to_string_in(t: &Term, scope: &[&str]) -> String {
    let mut s = String::new();
    let mut p = TermPrinter {
        env: scope.iter().map(|n| n.to_string()).collect(),
        f: &mut s,
    };
    p.go(t, PREC_LAM).expect("writing to String cannot fail");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::MVar;

    fn v(i: u32) -> Term {
        Term::Var(i)
    }

    #[test]
    fn prints_lambdas_and_apps() {
        crate::store::StoreHandle::isolated().enter(|| {
            // Isolated store: this test asserts printed hints, which are
            // canonical per α-class per store (first intern wins).
            let t = Term::lam("x", Term::app(v(0), v(0)));
            assert_eq!(t.to_string(), r"\x. x x");
            let t = Term::app(Term::lam("x", v(0)), Term::cnst("c"));
            assert_eq!(t.to_string(), r"(\x. x) c");
        })
    }

    #[test]
    fn app_associativity_parens() {
        // f (g x) needs parens, (f g) x does not.
        let t = Term::app(Term::cnst("f"), Term::app(Term::cnst("g"), Term::cnst("x")));
        assert_eq!(t.to_string(), "f (g x)");
        let t = Term::app(Term::app(Term::cnst("f"), Term::cnst("g")), Term::cnst("x"));
        assert_eq!(t.to_string(), "f g x");
    }

    #[test]
    fn freshens_shadowed_hints() {
        crate::store::StoreHandle::isolated().enter(|| {
            // Isolated store: this test asserts printed hints, which are
            // canonical per α-class per store (first intern wins).
            // λx. λx. (inner outer) — both hints "x".
            let t = Term::lam("x", Term::lam("x", Term::app(v(0), v(1))));
            assert_eq!(t.to_string(), r"\x. \x1. x1 x");
        })
    }

    #[test]
    fn dangling_vars_print_positionally() {
        assert_eq!(v(3).to_string(), "#3");
    }

    #[test]
    fn pairs_projections_literals() {
        let t = Term::pair(Term::Int(-2), Term::Unit);
        assert_eq!(t.to_string(), "(-2, ())");
        let t = Term::fst(Term::cnst("p"));
        assert_eq!(t.to_string(), "fst p");
        let t = Term::app(Term::fst(Term::cnst("p")), Term::Int(1));
        assert_eq!(t.to_string(), "fst p 1");
        let t = Term::fst(Term::app(Term::cnst("f"), Term::Int(1)));
        assert_eq!(t.to_string(), "fst (f 1)");
    }

    #[test]
    fn metas_print_with_hint() {
        crate::store::StoreHandle::isolated().enter(|| {
            // Isolated store: this test asserts printed hints, which are
            // canonical per α-class per store (first intern wins).
            let t = Term::Meta(MVar::new(0, "P"));
            assert_eq!(t.to_string(), "?P");
        })
    }

    #[test]
    fn scoped_printing_names_free_vars() {
        let t = Term::app(v(0), v(1));
        assert_eq!(term_to_string_in(&t, &["outer", "inner"]), "inner outer");
    }

    #[test]
    fn ty_var_letters() {
        assert_eq!(Ty::Var(0).to_string(), "'a");
        assert_eq!(Ty::Var(25).to_string(), "'z");
        assert_eq!(Ty::Var(26).to_string(), "'t26");
    }
}
