//! Explicit simultaneous substitutions — the metalanguage's substitution
//! calculus as a first-class value.
//!
//! A [`Sub`] is `(t₀, t₁, …, tₙ₋₁; ↑k)`: it maps `Var(0) ↦ t₀`, …,
//! `Var(n-1) ↦ tₙ₋₁`, and every other variable `Var(i) ↦ Var(i - n + k)`.
//! This is the standard parallel-substitution presentation (a fragment of
//! the σ-calculus) and what gives the object languages their simultaneous
//! substitution lemmas *for free*: composition is defined and associative,
//! and β-contraction is `cons(arg, id)`.
//!
//! All composition/application laws are checked by unit tests here and by
//! property tests in the workspace test suite.

use crate::subst::shift;
use crate::term::{Term, TermRef};
use std::fmt;

/// A simultaneous substitution `(entries; ↑tail_shift)`.
///
/// ```
/// use hoas_core::sub::Sub;
/// use hoas_core::Term;
/// // [c/0] — β-substitution of `c` for the innermost variable.
/// let sigma = Sub::single(Term::cnst("c"));
/// let body = Term::app(Term::Var(0), Term::Var(1));
/// assert_eq!(
///     sigma.apply(&body),
///     Term::app(Term::cnst("c"), Term::Var(0)),
/// );
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sub {
    /// `entries[i]` replaces `Var(i)`.
    entries: Vec<Term>,
    /// Variables `>= entries.len()` map to `Var(i - entries.len() + tail_shift)`.
    tail_shift: u32,
}

impl Sub {
    /// The identity substitution.
    pub fn id() -> Sub {
        Sub {
            entries: Vec::new(),
            tail_shift: 0,
        }
    }

    /// The weakening substitution `↑k` (shift every variable up by `k`).
    pub fn weaken(k: u32) -> Sub {
        Sub {
            entries: Vec::new(),
            tail_shift: k,
        }
    }

    /// `cons(t, σ)`: maps `Var(0) ↦ t` and `Var(i+1) ↦ σ(Var(i))`.
    #[must_use]
    pub fn cons(t: Term, sigma: &Sub) -> Sub {
        let mut entries = Vec::with_capacity(sigma.entries.len() + 1);
        entries.push(t);
        entries.extend(sigma.entries.iter().cloned());
        Sub {
            entries,
            tail_shift: sigma.tail_shift,
        }
    }

    /// The β-substitution `[t/0] = cons(t, id)`:
    /// `Sub::single(t).apply(body) == subst::instantiate(body, t)`.
    pub fn single(t: Term) -> Sub {
        Sub::cons(t, &Sub::id())
    }

    /// Builds a substitution from the terms for the `n` innermost
    /// variables (`ts[0]` replaces `Var(0)`), leaving the rest unchanged.
    pub fn from_terms(ts: impl IntoIterator<Item = Term>) -> Sub {
        Sub {
            entries: ts.into_iter().collect(),
            tail_shift: 0,
        }
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether this is syntactically the identity (no entries, no shift).
    /// Note that e.g. `cons(Var 0, ↑1)` is extensionally the identity but
    /// not syntactically; see [`Sub::is_identity_extensional`].
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.tail_shift == 0
    }

    /// Whether the substitution maps every variable to itself.
    pub fn is_identity_extensional(&self) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, t)| t == &Term::Var(i as u32))
            && self.tail_shift as usize == self.entries.len()
            || self.is_empty()
    }

    /// What the substitution maps `Var(i)` to.
    pub fn lookup(&self, i: u32) -> Term {
        match self.entries.get(i as usize) {
            Some(t) => t.clone(),
            None => Term::Var(i - self.entries.len() as u32 + self.tail_shift),
        }
    }

    /// `lift(σ)`: the substitution to use under one binder —
    /// `cons(Var 0, σ ∘ ↑1)`.
    #[must_use]
    pub fn lift(&self) -> Sub {
        let mut entries = Vec::with_capacity(self.entries.len() + 1);
        entries.push(Term::Var(0));
        entries.extend(self.entries.iter().map(|t| shift(t, 1)));
        Sub {
            entries,
            tail_shift: self.tail_shift + 1,
        }
    }

    /// Applies the substitution to a term (plain, non-hereditary: β-redexes
    /// created by the substitution are kept; normalize afterwards if
    /// needed).
    pub fn apply(&self, t: &Term) -> Term {
        if self.is_empty() {
            return t.clone();
        }
        self.apply_at(t, 0)
    }

    fn apply_at(&self, t: &Term, depth: u32) -> Term {
        // Every free variable of `t` is bound below `depth`: the
        // substitution cannot touch it, so share the whole subtree.
        if t.max_free() <= depth {
            return t.clone();
        }
        match t {
            Term::Var(i) => {
                if *i < depth {
                    t.clone()
                } else {
                    shift(&self.lookup(i - depth), depth)
                }
            }
            Term::Lam(h, b) => Term::lam(h.clone(), self.apply_at_ref(b, depth + 1)),
            Term::App(f, a) => Term::app(self.apply_at_ref(f, depth), self.apply_at_ref(a, depth)),
            Term::Pair(a, b) => {
                Term::pair(self.apply_at_ref(a, depth), self.apply_at_ref(b, depth))
            }
            Term::Fst(p) => Term::fst(self.apply_at_ref(p, depth)),
            Term::Snd(p) => Term::snd(self.apply_at_ref(p, depth)),
            Term::Const(_) | Term::Meta(_) | Term::Int(_) | Term::Unit => t.clone(),
        }
    }

    /// [`Sub::apply_at`] on a shared subterm, preserving the `Arc` when the
    /// subterm is out of the substitution's reach.
    fn apply_at_ref(&self, t: &TermRef, depth: u32) -> TermRef {
        if t.max_free() <= depth {
            t.clone()
        } else {
            TermRef::new(self.apply_at(t, depth))
        }
    }

    /// Composition: `a.compose(&b)` is the substitution with
    /// `a.compose(&b).apply(t) == a.apply(&b.apply(t))` for all `t`
    /// (apply `b` first).
    #[must_use]
    pub fn compose(&self, b: &Sub) -> Sub {
        let n1 = b.entries.len() as u32;
        let k1 = b.tail_shift;
        let n2 = self.entries.len() as u32;
        // Entries must cover every variable whose image under `b`'s tail
        // still hits an entry of `self`.
        let extra = n2.saturating_sub(k1);
        let new_n = n1 + extra;
        let mut entries = Vec::with_capacity(new_n as usize);
        for e in &b.entries {
            entries.push(self.apply(e));
        }
        for i in n1..new_n {
            entries.push(self.lookup(i - n1 + k1));
        }
        // For i >= new_n: b maps to Var(i - n1 + k1) with index >= n2, so
        // self maps on to Var(i - n1 + k1 - n2 + k2).
        let tail_shift = new_n - n1 + k1 - n2 + self.tail_shift;
        Sub {
            entries,
            tail_shift,
        }
    }
}

impl Default for Sub {
    fn default() -> Self {
        Sub::id()
    }
}

impl fmt::Display for Sub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, t) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "; ↑{})", self.tail_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subst;

    fn v(i: u32) -> Term {
        Term::Var(i)
    }

    #[test]
    fn identity_is_identity() {
        let t = Term::lam("x", Term::app(v(0), v(3)));
        assert_eq!(Sub::id().apply(&t), t);
        assert!(Sub::id().is_empty());
        assert!(Sub::id().is_identity_extensional());
    }

    #[test]
    fn weaken_is_shift() {
        let t = Term::lam("x", Term::app(v(0), v(2)));
        assert_eq!(Sub::weaken(3).apply(&t), subst::shift(&t, 3));
    }

    #[test]
    fn single_is_beta() {
        let body = Term::lam("y", Term::app(v(1), v(0)));
        let arg = Term::cnst("c");
        assert_eq!(
            Sub::single(arg.clone()).apply(&body),
            subst::instantiate(&body, &arg)
        );
    }

    #[test]
    fn simultaneous_is_not_iterated() {
        // σ = [Var0 ↦ Var1, Var1 ↦ Var0] swaps — impossible as two
        // iterated single substitutions without a temporary.
        let swap = Sub::from_terms([v(1), v(0)]);
        let t = Term::app(v(0), v(1));
        assert_eq!(swap.apply(&t), Term::app(v(1), v(0)));
        // And under a binder both images shift.
        let t2 = Term::lam("x", Term::app(v(1), v(2)));
        assert_eq!(swap.apply(&t2), Term::lam("x", Term::app(v(2), v(1))));
    }

    #[test]
    fn lift_matches_binder_traversal() {
        let sigma = Sub::from_terms([Term::cnst("a")]);
        let lifted = sigma.lift();
        assert_eq!(lifted.lookup(0), v(0));
        assert_eq!(lifted.lookup(1), Term::cnst("a"));
        // Applying σ to λ.b equals λ.(lift σ applied to b).
        let b = Term::app(v(0), v(1));
        assert_eq!(
            sigma.apply(&Term::lam("x", b.clone())),
            Term::lam("x", lifted.apply(&b))
        );
    }

    #[test]
    fn compose_law_on_samples() {
        let a = Sub::from_terms([Term::cnst("a"), Term::app(Term::cnst("f"), v(0))]);
        let b = Sub::cons(Term::app(Term::cnst("g"), v(1)), &Sub::weaken(2));
        let ts = [
            v(0),
            v(1),
            v(4),
            Term::lam("x", Term::app(v(0), v(2))),
            Term::app(Term::lam("x", v(1)), v(0)),
            Term::pair(v(0), Term::fst(v(3))),
        ];
        let ab = a.compose(&b);
        for t in &ts {
            assert_eq!(
                ab.apply(t),
                a.apply(&b.apply(t)),
                "composition law failed on {t} (ab = {ab})"
            );
        }
    }

    #[test]
    fn compose_with_identity() {
        let s = Sub::cons(Term::cnst("a"), &Sub::weaken(1));
        assert_eq!(Sub::id().compose(&s), s);
        // id ∘ s has the same action (may differ syntactically only in
        // entries that spell out the identity).
        let si = s.compose(&Sub::id());
        for i in 0..5 {
            assert_eq!(si.lookup(i), s.lookup(i));
        }
    }

    #[test]
    fn compose_weakenings_add() {
        let w = Sub::weaken(2).compose(&Sub::weaken(3));
        for i in 0..4 {
            assert_eq!(w.lookup(i), v(i + 5));
        }
    }

    #[test]
    fn lookup_past_entries_uses_tail() {
        let s = Sub {
            entries: vec![Term::cnst("a")],
            tail_shift: 4,
        };
        assert_eq!(s.lookup(0), Term::cnst("a"));
        assert_eq!(s.lookup(1), v(4));
        assert_eq!(s.lookup(7), v(10));
    }

    #[test]
    fn extensional_identity_detection() {
        let s = Sub {
            entries: vec![v(0), v(1)],
            tail_shift: 2,
        };
        assert!(!s.is_empty());
        assert!(s.is_identity_extensional());
        let t = Term::lam("x", Term::app(v(0), v(5)));
        assert_eq!(s.apply(&t), t);
    }

    #[test]
    fn display_format() {
        let s = Sub::cons(Term::cnst("a"), &Sub::weaken(1));
        assert_eq!(s.to_string(), "(a; ↑1)");
    }
}
