//! # hoas-core — the HOAS metalanguage kernel
//!
//! This crate implements the typed λ-calculus metalanguage of
//! *Pfenning & Elliott, "Higher-Order Abstract Syntax", PLDI 1988*: a simply
//! typed λ-calculus with products, unit, integer literals, and ML-style
//! (prenex-polymorphic) constants, in which object-language binding
//! constructs are represented as meta-level functions.
//!
//! The central payoff of the paper is that, once an object language is
//! encoded this way,
//!
//! * object-language **substitution** is meta-level **β-reduction**
//!   ([`normalize::happly`], [`normalize::nf`]),
//! * object-language **renaming** is meta-level **α-conversion** (terms are
//!   de Bruijn, so α-equivalence is structural equality),
//! * object-language **syntactic analysis** of binding structure is
//!   meta-level **higher-order matching** (see the `hoas-unify` crate).
//!
//! ## Representation
//!
//! Terms ([`term::Term`]) use de Bruijn indices with printing *hints*;
//! equality ignores hints, so `==` *is* α-equivalence. Types ([`ty::Ty`])
//! are simple types over declared base types, with numbered type variables
//! used both for constant type schemas ([`ty::TyScheme`]) and during type
//! reconstruction ([`infer`]).
//!
//! ## Canonical forms
//!
//! Following the logical-framework tradition the paper initiated, adequacy
//! of encodings is stated for *canonical* (η-long β-normal) terms.
//! [`normalize`] provides β-normalization by hereditary substitution and
//! typed η-expansion to canonical form; [`typeck`] checks canonical terms
//! bidirectionally.
//!
//! ## Quick example
//!
//! ```
//! use hoas_core::prelude::*;
//!
//! // Signature for the untyped λ-calculus.
//! let sig = Signature::parse(
//!     "type tm.
//!      const lam : (tm -> tm) -> tm.
//!      const app : tm -> tm -> tm.",
//! )?;
//!
//! // (λx. x x) encoded: lam (\x. app x x)
//! let t = parse_term(&sig, r"lam (\x. app x x)")?.term;
//! let ty = infer::reconstruct(&sig, &t)?;
//! assert_eq!(ty.to_string(), "tm");
//!
//! // β-reduction performs object-level substitution for free:
//! let redex = parse_term(&sig, r"(\x. app x x) (lam (\y. y))")?.term;
//! let nf = normalize::nf(&redex);
//! assert_eq!(nf, parse_term(&sig, r"app (lam (\y. y)) (lam (\y. y))")?.term);
//! # Ok::<(), hoas_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod codec;
pub mod ctx;
pub mod error;
pub mod infer;
pub mod intern;
pub mod normalize;
mod opmemo;
pub mod parse;
pub mod print;
pub mod scratch;
pub mod sig;
pub mod store;
pub mod sub;
pub mod subst;
pub mod term;
pub mod ty;
pub mod typeck;
pub mod validate;

pub use error::Error;
pub use intern::Sym;
pub use store::{InternStats, NodeId, StoreHandle};
pub use term::{MVar, Term, TermRef};
pub use ty::{Ty, TyScheme};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::build::{app, apps, c, fst, int, lam, mvar, pair, snd, unit, BTerm};
    pub use crate::ctx::Ctx;
    pub use crate::error::Error;
    pub use crate::infer;
    pub use crate::intern::Sym;
    pub use crate::normalize;
    pub use crate::parse::{parse_term, parse_ty};
    pub use crate::sig::Signature;
    pub use crate::store::{InternStats, NodeId, StoreHandle};
    pub use crate::subst;
    pub use crate::term::{MVar, MetaEnv, Term, TermRef};
    pub use crate::ty::{Ty, TyScheme};
    pub use crate::typeck;
}
